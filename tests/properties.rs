//! Property-based tests over the core invariants (proptest).

use iris_netgraph::{dijkstra, hose, Dinic, FailureScenarios, Graph};
use proptest::prelude::*;

/// Random small undirected graph: n in 2..8, edges with lengths.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..8).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, 0.1f64..50.0), 1..16).prop_map(move |edges| {
            let mut g = Graph::new(n);
            for (u, v, len) in edges {
                if u != v {
                    g.add_edge(u, v, len);
                }
            }
            g
        })
    })
}

proptest! {
    #[test]
    fn dijkstra_satisfies_triangle_inequality(g in arb_graph()) {
        let disabled = vec![false; g.edge_count()];
        let n = g.node_count();
        let dist: Vec<Vec<f64>> = (0..n).map(|s| dijkstra(&g, s, &disabled).dist).collect();
        for a in 0..n {
            // Distance to self is zero; symmetry; triangle inequality.
            prop_assert_eq!(dist[a][a], 0.0);
            for b in 0..n {
                prop_assert_eq!(dist[a][b].is_finite(), dist[b][a].is_finite());
                if dist[a][b].is_finite() {
                    prop_assert!((dist[a][b] - dist[b][a]).abs() < 1e-9);
                }
                for c in 0..n {
                    if dist[a][b].is_finite() && dist[b][c].is_finite() {
                        prop_assert!(dist[a][c] <= dist[a][b] + dist[b][c] + 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn dijkstra_paths_have_consistent_length(g in arb_graph()) {
        let disabled = vec![false; g.edge_count()];
        let r = dijkstra(&g, 0, &disabled);
        for t in 0..g.node_count() {
            if let Some(edges) = r.path_edges(&g, t) {
                let len: f64 = edges.iter().map(|&e| g.perturbed_length(e)).sum();
                prop_assert!((len - r.dist[t]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn maxflow_is_monotone_in_capacity(caps in proptest::collection::vec(1u64..20, 4)) {
        // Diamond network: flow grows (weakly) when any capacity grows.
        let flow = |c: &[u64]| {
            let mut d = Dinic::new(4);
            d.add_edge(0, 1, c[0]);
            d.add_edge(0, 2, c[1]);
            d.add_edge(1, 3, c[2]);
            d.add_edge(2, 3, c[3]);
            d.max_flow(0, 3)
        };
        let base = flow(&caps);
        for i in 0..4 {
            let mut bigger = caps.clone();
            bigger[i] += 5;
            prop_assert!(flow(&bigger) >= base);
        }
    }

    #[test]
    fn hose_load_bounds(
        caps in proptest::collection::vec(1u64..50, 3..6),
        pair_selector in proptest::collection::vec(any::<bool>(), 15),
    ) {
        let n = caps.len();
        let mut pairs = Vec::new();
        let mut k = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                if *pair_selector.get(k).unwrap_or(&false) {
                    pairs.push((i, j));
                }
                k += 1;
            }
        }
        prop_assume!(!pairs.is_empty());
        let cap_fn = |d: usize| caps[d];
        let load = hose::max_edge_load(&cap_fn, &pairs);
        let naive = hose::naive_edge_load(&cap_fn, &pairs);
        // Exact load never exceeds the naive bound...
        prop_assert!(load <= naive + 1e-9);
        // ...never exceeds half the total capacity of involved DCs...
        let involved: u64 = (0..n)
            .filter(|&d| pairs.iter().any(|&(a, b)| a == d || b == d))
            .map(|d| caps[d])
            .sum();
        prop_assert!(load <= involved as f64 / 2.0 + 1e-9);
        // ...and is at least the largest single pair demand.
        let best_pair = pairs
            .iter()
            .map(|&(a, b)| caps[a].min(caps[b]))
            .max()
            .expect("non-empty") as f64;
        prop_assert!(load >= best_pair - 1e-9);
    }

    #[test]
    fn hose_load_is_monotone_in_capacity(
        caps in proptest::collection::vec(1u64..30, 4),
    ) {
        let pairs = [(0usize, 1usize), (0, 2), (1, 3), (2, 3)];
        let load = |c: &[u64]| hose::max_edge_load(&|d| c[d], &pairs);
        let base = load(&caps);
        for i in 0..4 {
            let mut bigger = caps.clone();
            bigger[i] += 7;
            prop_assert!(load(&bigger) >= base - 1e-9);
        }
    }

    #[test]
    fn failure_scenarios_count_and_cardinality(m in 0usize..10, k in 0usize..4) {
        let all: Vec<_> = FailureScenarios::new(m, k).collect();
        prop_assert_eq!(all.len() as u64, FailureScenarios::count_scenarios(m, k));
        for s in &all {
            prop_assert!(s.len() <= k.min(m));
            // Strictly increasing edge ids (canonical form).
            for w in s.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn parallel_provision_matches_sequential(
        map_seed in 0u64..200,
        n_dcs in 3usize..6,
        threads in 2usize..8,
        cuts in 0usize..2,
    ) {
        use iris_fibermap::{synth, MetroParams, PlacementParams};
        let region = synth::place_dcs(
            synth::generate_metro(&MetroParams {
                seed: map_seed,
                n_huts: 10,
                ..MetroParams::default()
            }),
            &PlacementParams {
                seed: map_seed.wrapping_mul(31).wrapping_add(7),
                n_dcs,
                ..PlacementParams::default()
            },
        );
        let goals = iris_planner::DesignGoals::with_cuts(cuts);
        let seq = iris_planner::provision_with_threads(&region, &goals, 1);
        let par = iris_planner::provision_with_threads(&region, &goals, threads);
        // Bit-exact equality of the provisioned capacities...
        let seq_bits: Vec<u64> = seq.edge_capacity_wl.iter().map(|c| c.to_bits()).collect();
        let par_bits: Vec<u64> = par.edge_capacity_wl.iter().map(|c| c.to_bits()).collect();
        prop_assert_eq!(seq_bits, par_bits);
        // ...and identical infeasibility reports and scenario counts.
        prop_assert_eq!(seq.infeasible, par.infeasible);
        prop_assert_eq!(seq.scenarios_examined, par.scenarios_examined);
    }

    #[test]
    fn robust_provision_is_feasible_and_thread_invariant(
        map_seed in 0u64..100,
        n_dcs in 3usize..6,
        threads in 2usize..8,
        family_seed in 0u64..50,
    ) {
        use iris_fibermap::{synth, MetroParams, PlacementParams};
        use iris_planner::workload::{FamilyKind, FamilySpec, MatrixFamily};
        let region = synth::place_dcs(
            synth::generate_metro(&MetroParams {
                seed: map_seed,
                n_huts: 10,
                ..MetroParams::default()
            }),
            &PlacementParams {
                seed: map_seed.wrapping_mul(31).wrapping_add(7),
                n_dcs,
                ..PlacementParams::default()
            },
        );
        let goals = iris_planner::DesignGoals::with_cuts(1);
        let spec = FamilySpec::new(FamilyKind::Burst, 4, family_seed);
        let family = MatrixFamily::build(&region, &goals, &spec);
        let seq = iris_planner::provision_robust_with_threads(&region, &goals, &family, 1);
        // Feasible for every training matrix: the per-edge family-max
        // sums iterate pairs in the same order as the feasibility check,
        // so this holds bitwise, not just within a tolerance.
        if seq.infeasible.is_empty() {
            for demands in family.matrices() {
                prop_assert!(iris_planner::topology::supports_matrix(
                    &region, &goals, &seq, demands,
                ));
            }
        }
        // Bit-identical across thread counts, like the hose planner.
        let par = iris_planner::provision_robust_with_threads(&region, &goals, &family, threads);
        let seq_bits: Vec<u64> = seq.edge_capacity_wl.iter().map(|c| c.to_bits()).collect();
        let par_bits: Vec<u64> = par.edge_capacity_wl.iter().map(|c| c.to_bits()).collect();
        prop_assert_eq!(seq_bits, par_bits);
        prop_assert_eq!(seq.infeasible, par.infeasible);
        prop_assert_eq!(seq.scenarios_examined, par.scenarios_examined);
    }

    #[test]
    fn residual_packing_is_sound(
        residuals in proptest::collection::vec(0u64..=40, 0..12),
    ) {
        let bins = iris_planner::residual::pack_residuals(&residuals, 40);
        let total: u64 = residuals.iter().sum();
        // At least the volume bound, at most one bin per demand.
        prop_assert!(bins as u64 >= total.div_ceil(40).min(residuals.len() as u64));
        prop_assert!(bins <= residuals.iter().filter(|&&r| r > 0).count());
    }

    #[test]
    fn residual_after_base_never_exceeds_demand(
        demands in proptest::collection::vec(0u64..100, 1..10),
    ) {
        let r = iris_planner::residual::residual_after_base(&demands, 40);
        let total: u64 = demands.iter().sum();
        prop_assert!(r <= total);
        // Scaling every demand by a fiber multiple cannot increase the
        // *fractional* residual share.
        if total > 0 {
            prop_assert!(r as f64 <= total as f64);
        }
    }

    #[test]
    fn appendix_b_quadratic_bound(n in 1usize..30, d_frac in 0.0f64..1.0) {
        // (n - D/λ) · D/n <= λ·n/4 for all feasible D — the key step of
        // Observation 2.
        let lambda = 40.0;
        let d = d_frac * lambda * n as f64;
        let residual = (n as f64 - d / lambda) * d / n as f64;
        prop_assert!(residual <= lambda * n as f64 / 4.0 + 1e-9);
    }

    #[test]
    fn ber_is_monotone_in_osnr(a in 0.0f64..40.0, delta in 0.0f64..10.0) {
        let worse = iris_optics::ber::ber_16qam(a);
        let better = iris_optics::ber::ber_16qam(a + delta);
        prop_assert!(better <= worse + 1e-15);
    }

    #[test]
    fn db_round_trips(db in -50.0f64..50.0) {
        let mw = iris_optics::db::dbm_to_mw(db);
        prop_assert!((iris_optics::db::mw_to_dbm(mw) - db).abs() < 1e-9);
    }

    #[test]
    fn budget_report_consistent_when_path_passes(
        spans in proptest::collection::vec(1.0f64..40.0, 1..4),
        switches in 0usize..4,
    ) {
        use iris_optics::{evaluate_path, PathElement, SwitchElement};
        let mut elements = vec![PathElement::default_amp()];
        for (i, &km) in spans.iter().enumerate() {
            elements.push(PathElement::fiber_km(km));
            if i < switches {
                elements.push(PathElement::Switch(SwitchElement::Oss));
            }
        }
        elements.push(PathElement::default_amp());
        if let Ok(report) = evaluate_path(&elements) {
            let total: f64 = spans.iter().sum();
            prop_assert!((report.total_km - total).abs() < 1e-9);
            prop_assert_eq!(report.amplifier_count, 2);
            prop_assert!(report.switch_loss_db <= 10.0 + 1e-9);
            prop_assert!(report.worst_segment_loss_db <= 20.0 + 1e-9);
        }
    }

    #[test]
    fn wavelength_assignment_conserves_demand(
        demands in proptest::collection::vec((0usize..6, 0u32..200), 0..8),
    ) {
        let fibers = iris_control::assign_wavelengths(&demands, 40);
        let assigned: u64 = fibers.iter().map(|f| f.live_count() as u64).sum();
        let requested: u64 = demands.iter().map(|&(_, d)| u64::from(d)).sum();
        prop_assert_eq!(assigned, requested);
        for f in &fibers {
            prop_assert!(f.live_count() <= 40);
        }
    }

    #[test]
    fn traffic_matrix_weights_form_distribution(n in 2usize..12, seed in 0u64..500) {
        let m = iris_simnet::TrafficMatrix::heavy_tailed(n, seed);
        let total: f64 = m.weights().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(m.weights().iter().all(|&w| w >= 0.0));
    }

    #[test]
    fn command_codec_round_trips(
        switch in any::<u32>(), input in any::<u32>(), output in any::<u32>(),
    ) {
        use iris_control::messages::Command;
        let cmd = Command::SetCross { switch, input, output };
        let mut buf = cmd.encode();
        let decoded = Command::decode(&mut buf).unwrap().unwrap();
        prop_assert_eq!(decoded, cmd);
    }
}

// Resilience invariant (§4.1 + recovery): the planner provisions every
// duct for the worst hose load over all <= k cut scenarios, so live
// recovery from any such scenario must keep every demand feasible —
// zero shed pairs, zero overloaded ducts, converged devices. On plans
// the planner itself reported infeasible, recovery must degrade
// gracefully: only planner-reported pairs may be shed.
proptest! {
    #[test]
    fn tolerated_cut_sets_stay_feasible_through_live_recovery(
        seed in 0u64..40,
        n_dcs in 5usize..13,
        k in 1usize..3,
        picks in proptest::collection::vec(0usize..10_000, 2),
    ) {
        use iris_control::Controller;
        use iris_fibermap::synth::{generate_metro, place_dcs};
        use iris_fibermap::{MetroParams, PlacementParams};
        use iris_planner::{provision, DesignGoals};
        use std::collections::BTreeSet;

        let map = generate_metro(&MetroParams { seed, ..MetroParams::default() });
        let region = place_dcs(
            map,
            &PlacementParams { seed: seed.wrapping_add(1), n_dcs, ..PlacementParams::default() },
        );
        let goals = DesignGoals::with_cuts(k);
        let prov = provision(&region, &goals);

        let controller = Controller::for_region(&region, &goals);
        let base: iris_control::controller::Allocation =
            iris_planner::topology::nominal_paths(&region, &goals)
                .iter()
                .map(|p| ((p.a, p.b), 1u32))
                .collect();
        prop_assert!(controller.reconfigure(&base).converged());

        let edge_count = region.map.graph().edge_count();
        let cuts: BTreeSet<usize> = picks.iter().take(k).map(|p| p % edge_count).collect();
        let cuts: Vec<usize> = cuts.into_iter().collect();

        let rec = controller
            .handle_fiber_cut(&region, &goals, &prov, &cuts)
            .expect("in-range cuts");
        prop_assert!(rec.within_tolerance);
        prop_assert!(rec.reconfig.converged());
        prop_assert!(
            rec.overloaded_edges.is_empty(),
            "provisioned capacity must absorb any <= k cut: {:?}",
            rec.overloaded_edges
        );
        if prov.infeasible.is_empty() {
            prop_assert!(
                rec.fully_recovered(),
                "feasible plan lost demands under cuts {cuts:?}: shed {:?}",
                rec.shed_pairs
            );
        } else {
            // Degraded plans shed only what the planner already reported.
            let reported: BTreeSet<(usize, usize)> =
                prov.infeasible.iter().map(|i| i.pair).collect();
            for pair in &rec.shed_pairs {
                prop_assert!(
                    reported.contains(pair),
                    "shed pair {pair:?} was never reported infeasible by the planner"
                );
            }
        }
    }
}
