//! Seeded closed-loop load generator.
//!
//! `connections` client threads each replay a deterministic, seeded mix
//! of reads (`GetPlan`, `GetTopology`, `QueryPath`, `Health`) and writes
//! (`UpdateDemand`); connection 0 optionally injects a `ReportFiberCut`
//! halfway through its sequence so read tail latency can be observed
//! *while a recovery is in flight*. Each DC pair is owned by exactly one
//! connection (updates for a pair are totally ordered), which makes the
//! final allocation — and everything else in [`LoadResults`] — a pure
//! function of the seed and the region. Wall-clock measurements
//! (latency percentiles, throughput, realized coalescing) are split into
//! [`MeasuredStats`], which is printed but never serialized, so
//! `results/service_load.json` is byte-identical across runs, machines
//! and worker-thread counts.

use crate::api::{AllocEntry, RecoverySummary, Request, Response};
use crate::client::ServiceClient;
use iris_errors::{IrisError, IrisResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address.
    pub addr: String,
    /// Seed for the request mix.
    pub seed: u64,
    /// Total request budget, split evenly across connections (the split
    /// is exact: the effective total is `requests / connections *
    /// connections`).
    pub requests: u64,
    /// Concurrent client connections.
    pub connections: usize,
    /// Ducts connection 0 cuts halfway through its sequence; empty for a
    /// pure read/write run.
    pub cuts: Vec<usize>,
    /// `UpdateDemand` circuit counts are drawn from `1..=max_circuits`
    /// (never 0, so no pair ever loses its path state).
    pub max_circuits: u32,
    /// Idle-baseline reads issued before the load phase, to calibrate
    /// read tail latency on an unloaded server.
    pub baseline_requests: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7117".to_owned(),
            seed: 7,
            requests: 2000,
            connections: 4,
            cuts: Vec::new(),
            max_circuits: 4,
            baseline_requests: 200,
        }
    }
}

/// One operation's share of the generated mix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCount {
    /// Operation name ([`Request::op`]).
    pub op: String,
    /// Requests generated.
    pub count: u64,
}

/// The injected cut and its (modeled, deterministic) recovery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CutOutcome {
    /// Ducts cut.
    pub cuts: Vec<usize>,
    /// Position in connection 0's sequence where the cut was injected.
    pub at_request: u64,
    /// The recovery as reported by the server. All times are modeled
    /// (detection + re-plan + reconfiguration pipeline), so they are
    /// identical across runs.
    pub recovery: RecoverySummary,
}

/// The seed-deterministic portion of a load run — everything serialized
/// to `results/service_load.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadResults {
    /// The seed.
    pub seed: u64,
    /// Client connections.
    pub connections: usize,
    /// Requests actually issued (after even split, excluding the cut and
    /// baseline reads).
    pub requests: u64,
    /// Generated mix per operation, op name ascending.
    pub op_counts: Vec<OpCount>,
    /// Distinct DC pairs that received at least one update.
    pub update_pairs: usize,
    /// Updates superseded by a later update to the same pair — the upper
    /// bound on server-side coalescing (the realized count depends on
    /// batch timing and is reported in [`MeasuredStats`]).
    pub coalescable_updates: u64,
    /// `coalescable_updates / total updates` (0 when no updates).
    pub coalescable_ratio: f64,
    /// The injected cut, if one was configured.
    pub cut: Option<CutOutcome>,
    /// The allocation after every write drained, `(a, b)` ascending —
    /// per-pair this is exactly the last generated update (or the seed
    /// value 1), because each pair is owned by one connection.
    pub final_allocation: Vec<AllocEntry>,
    /// Unexpected request failures (anything besides backpressure
    /// retries and post-cut unreachable reads). Always 0 on a healthy
    /// run.
    pub errors: u64,
}

/// Per-operation wall-clock latency summary.
#[derive(Debug, Clone)]
pub struct OpLatency {
    /// Operation name.
    pub op: String,
    /// Completed requests.
    pub count: u64,
    /// Median latency, ms.
    pub p50_ms: f64,
    /// 99th-percentile latency, ms.
    pub p99_ms: f64,
}

/// Wall-clock observations — printed, never serialized (they differ run
/// to run).
#[derive(Debug, Clone)]
pub struct MeasuredStats {
    /// Load-phase duration, s.
    pub wall_s: f64,
    /// Completed requests per second across all connections.
    pub throughput_rps: f64,
    /// Latency per op, op name ascending.
    pub per_op: Vec<OpLatency>,
    /// p99 of baseline reads on the idle server, ms.
    pub baseline_read_p99_ms: f64,
    /// p99 of reads completed while the recovery was in flight, ms (0 if
    /// no cut or no overlapping reads).
    pub recovery_read_p99_ms: f64,
    /// Reads that overlapped the in-flight recovery.
    pub reads_during_recovery: u64,
    /// Wall time connection 0 waited for the recovery reply, ms.
    pub recovery_wall_ms: f64,
    /// Backpressure retries performed by clients.
    pub retries: u64,
    /// Reads answered `Unreachable` (possible only for cut sets beyond
    /// the planner's tolerance).
    pub unreachable_reads: u64,
    /// `UpdateDemand`s the server actually absorbed by coalescing.
    pub server_coalesced: u64,
    /// Writes the server rejected with `Overloaded`.
    pub server_overloaded: u64,
}

/// Everything a load run produces.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Seed-deterministic results (serialize these).
    pub results: LoadResults,
    /// Wall-clock observations (print these).
    pub measured: MeasuredStats,
}

/// One completed request's measurement.
struct Sample {
    op: &'static str,
    ms: f64,
    read_during_recovery: bool,
}

struct WorkerOutcome {
    samples: Vec<Sample>,
    retries: u64,
    unreachable: u64,
    errors: u64,
    recovery: Option<(RecoverySummary, f64)>,
}

/// Generate connection `conn`'s request sequence. Reads draw from every
/// pair; updates draw only from the connection's owned pairs.
fn generate_sequence(
    cfg: &LoadgenConfig,
    conn: usize,
    per_conn: u64,
    pairs: &[(usize, usize)],
) -> Vec<Request> {
    let mut rng =
        StdRng::seed_from_u64(cfg.seed ^ (conn as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let owned: Vec<(usize, usize)> = pairs
        .iter()
        .enumerate()
        .filter(|(i, _)| i % cfg.connections == conn)
        .map(|(_, &p)| p)
        .collect();
    let mut seq = Vec::with_capacity(per_conn as usize);
    for _ in 0..per_conn {
        let roll: u32 = rng.random_range(0..100);
        let req = if roll < 10 {
            Request::GetPlan
        } else if roll < 20 {
            Request::GetTopology
        } else if roll < 60 {
            let (a, b) = pairs[rng.random_range(0..pairs.len())];
            Request::QueryPath { a, b }
        } else if roll < 95 && !owned.is_empty() {
            let (a, b) = owned[rng.random_range(0..owned.len())];
            let circuits = rng.random_range(1..=cfg.max_circuits.max(1));
            Request::UpdateDemand { a, b, circuits }
        } else {
            Request::Health
        };
        seq.push(req);
    }
    seq
}

/// Replay one connection's sequence against the server, retrying on
/// backpressure and timing every completed request.
fn run_worker(
    addr: &str,
    seq: &[Request],
    cut_at: Option<(u64, Vec<usize>)>,
    recovery_in_flight: &AtomicBool,
) -> IrisResult<WorkerOutcome> {
    let mut client = ServiceClient::connect_retry(addr, 20, 50)?;
    let mut out = WorkerOutcome {
        samples: Vec::with_capacity(seq.len()),
        retries: 0,
        unreachable: 0,
        errors: 0,
        recovery: None,
    };
    for (i, req) in seq.iter().enumerate() {
        if let Some((at, cuts)) = &cut_at {
            if i as u64 == *at {
                recovery_in_flight.store(true, Ordering::SeqCst);
                let start = Instant::now();
                let resp = client.call(&Request::ReportFiberCut { cuts: cuts.clone() })?;
                let wall_ms = start.elapsed().as_secs_f64() * 1e3;
                recovery_in_flight.store(false, Ordering::SeqCst);
                match resp {
                    Response::Recovery(summary) => out.recovery = Some((summary, wall_ms)),
                    Response::Error(e) => return Err(e),
                    other => {
                        return Err(IrisError::Decode {
                            detail: format!("unexpected reply to ReportFiberCut: {other:?}"),
                        })
                    }
                }
                out.samples.push(Sample {
                    op: "report_fiber_cut",
                    ms: wall_ms,
                    read_during_recovery: false,
                });
            }
        }
        let during = !req.is_write() && recovery_in_flight.load(Ordering::SeqCst);
        let start = Instant::now();
        loop {
            match client.call(req)? {
                Response::Error(IrisError::Overloaded { retry_after_ms }) => {
                    out.retries += 1;
                    std::thread::sleep(Duration::from_millis(retry_after_ms.max(1)));
                }
                Response::Error(IrisError::Unreachable { .. }) => {
                    out.unreachable += 1;
                    break;
                }
                Response::Error(_) => {
                    out.errors += 1;
                    break;
                }
                _ => break,
            }
        }
        out.samples.push(Sample {
            op: req.op(),
            ms: start.elapsed().as_secs_f64() * 1e3,
            read_during_recovery: during,
        });
    }
    Ok(out)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Poll `Health` until the mutator queue is empty twice in a row, so the
/// final topology read observes every applied write.
fn quiesce(client: &mut ServiceClient) -> IrisResult<()> {
    let mut empty_polls = 0;
    for _ in 0..2000 {
        match client.call(&Request::Health)?.into_result()? {
            Response::Health(h) if h.queue_depth == 0 => {
                empty_polls += 1;
                if empty_polls >= 2 {
                    return Ok(());
                }
            }
            _ => empty_polls = 0,
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    Err(IrisError::Io {
        detail: "mutator queue never drained".to_owned(),
    })
}

/// Run the full load: baseline reads, the seeded multi-connection mix
/// (with the optional mid-run cut), quiesce, and the final consistency
/// reads.
///
/// # Errors
///
/// [`IrisError::Io`] if the server is unreachable or a worker fails.
pub fn run_loadgen(cfg: &LoadgenConfig) -> IrisResult<LoadReport> {
    if cfg.connections == 0 {
        return Err(IrisError::InvalidInput {
            detail: "loadgen needs at least one connection".to_owned(),
        });
    }
    let mut control = ServiceClient::connect_retry(&cfg.addr, 40, 100)?;

    // The pair universe: every reachable pair in the server's seed
    // allocation, (a, b) ascending — deterministic for a given region.
    let topology = match control.call(&Request::GetTopology)?.into_result()? {
        Response::Topology(t) => t,
        other => {
            return Err(IrisError::Decode {
                detail: format!("unexpected reply to GetTopology: {other:?}"),
            })
        }
    };
    let pairs: Vec<(usize, usize)> = topology.allocation.iter().map(|e| (e.a, e.b)).collect();
    if pairs.is_empty() {
        return Err(IrisError::InvalidInput {
            detail: "server has no reachable DC pairs to load".to_owned(),
        });
    }

    // Idle baseline: alternate the two read paths before any writes.
    let mut baseline: Vec<f64> = Vec::with_capacity(cfg.baseline_requests as usize);
    for i in 0..cfg.baseline_requests {
        let (a, b) = pairs[(i as usize) % pairs.len()];
        let req = if i % 2 == 0 {
            Request::GetPlan
        } else {
            Request::QueryPath { a, b }
        };
        let start = Instant::now();
        control.call(&req)?.into_result()?;
        baseline.push(start.elapsed().as_secs_f64() * 1e3);
    }
    baseline.sort_by(f64::total_cmp);

    // Generate every sequence up front: the mix (and everything derived
    // from it) is fixed before a single load request is sent.
    let per_conn = cfg.requests / cfg.connections as u64;
    let sequences: Vec<Vec<Request>> = (0..cfg.connections)
        .map(|c| generate_sequence(cfg, c, per_conn, &pairs))
        .collect();

    // Deterministic mix accounting.
    let mut op_counts: std::collections::BTreeMap<&'static str, u64> =
        std::collections::BTreeMap::new();
    let mut updates_per_pair: std::collections::BTreeMap<(usize, usize), u64> =
        std::collections::BTreeMap::new();
    for seq in &sequences {
        for req in seq {
            *op_counts.entry(req.op()).or_insert(0) += 1;
            if let Request::UpdateDemand { a, b, .. } = req {
                *updates_per_pair.entry((*a, *b)).or_insert(0) += 1;
            }
        }
    }
    let total_updates: u64 = updates_per_pair.values().sum();
    let coalescable: u64 = updates_per_pair.values().map(|&n| n - 1).sum();
    let cut_at = (!cfg.cuts.is_empty() && per_conn > 0).then(|| (per_conn / 2, cfg.cuts.clone()));
    if cut_at.is_some() {
        *op_counts.entry("report_fiber_cut").or_insert(0) += 1;
    }

    // The load phase: one thread per connection, closed loop.
    let recovery_in_flight = Arc::new(AtomicBool::new(false));
    let load_start = Instant::now();
    let outcomes: Vec<IrisResult<WorkerOutcome>> = std::thread::scope(|scope| {
        let handles: Vec<_> = sequences
            .iter()
            .enumerate()
            .map(|(c, seq)| {
                let flag = Arc::clone(&recovery_in_flight);
                let cut = if c == 0 { cut_at.clone() } else { None };
                let addr = cfg.addr.clone();
                scope.spawn(move || run_worker(&addr, seq, cut, &flag))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(IrisError::Io {
                        detail: "loadgen worker panicked".to_owned(),
                    })
                })
            })
            .collect()
    });
    let wall_s = load_start.elapsed().as_secs_f64();

    let mut samples: Vec<Sample> = Vec::new();
    let mut retries = 0u64;
    let mut unreachable = 0u64;
    let mut errors = 0u64;
    let mut recovery: Option<(RecoverySummary, f64)> = None;
    for outcome in outcomes {
        let mut o = outcome?;
        samples.append(&mut o.samples);
        retries += o.retries;
        unreachable += o.unreachable;
        errors += o.errors;
        if o.recovery.is_some() {
            recovery = o.recovery;
        }
    }

    // Drain the write queue, then read the final state.
    quiesce(&mut control)?;
    let final_topology = match control.call(&Request::GetTopology)?.into_result()? {
        Response::Topology(t) => t,
        other => {
            return Err(IrisError::Decode {
                detail: format!("unexpected reply to GetTopology: {other:?}"),
            })
        }
    };
    let health = match control.call(&Request::Health)?.into_result()? {
        Response::Health(h) => h,
        other => {
            return Err(IrisError::Decode {
                detail: format!("unexpected reply to Health: {other:?}"),
            })
        }
    };

    // Wall-clock summaries.
    let mut per_op: Vec<OpLatency> = Vec::new();
    for &op in op_counts.keys() {
        let mut ms: Vec<f64> = samples
            .iter()
            .filter(|s| s.op == op)
            .map(|s| s.ms)
            .collect();
        ms.sort_by(f64::total_cmp);
        per_op.push(OpLatency {
            op: op.to_owned(),
            count: ms.len() as u64,
            p50_ms: percentile(&ms, 50.0),
            p99_ms: percentile(&ms, 99.0),
        });
    }
    let mut during: Vec<f64> = samples
        .iter()
        .filter(|s| s.read_during_recovery)
        .map(|s| s.ms)
        .collect();
    during.sort_by(f64::total_cmp);

    let results = LoadResults {
        seed: cfg.seed,
        connections: cfg.connections,
        requests: per_conn * cfg.connections as u64,
        op_counts: op_counts
            .iter()
            .map(|(&op, &count)| OpCount {
                op: op.to_owned(),
                count,
            })
            .collect(),
        update_pairs: updates_per_pair.len(),
        coalescable_updates: coalescable,
        coalescable_ratio: if total_updates == 0 {
            0.0
        } else {
            coalescable as f64 / total_updates as f64
        },
        cut: recovery.as_ref().map(|(summary, _)| CutOutcome {
            cuts: cfg.cuts.clone(),
            at_request: per_conn / 2,
            recovery: summary.clone(),
        }),
        final_allocation: final_topology.allocation,
        errors,
    };
    let measured = MeasuredStats {
        wall_s,
        throughput_rps: if wall_s > 0.0 {
            samples.len() as f64 / wall_s
        } else {
            0.0
        },
        per_op,
        baseline_read_p99_ms: percentile(&baseline, 99.0),
        recovery_read_p99_ms: percentile(&during, 99.0),
        reads_during_recovery: during.len() as u64,
        recovery_wall_ms: recovery.as_ref().map_or(0.0, |&(_, wall)| wall),
        retries,
        unreachable_reads: unreachable,
        server_coalesced: health.coalesced,
        server_overloaded: health.overloaded,
    };
    Ok(LoadReport { results, measured })
}

/// Serialize the deterministic results to `path` (creating parent
/// directories), with a trailing newline — the artifact CI byte-diffs.
///
/// # Errors
///
/// [`IrisError::Io`] on serialization or filesystem failure.
pub fn write_results(results: &LoadResults, path: &str) -> IrisResult<()> {
    let mut text = serde_json::to_string_pretty(results).map_err(|e| IrisError::Io {
        detail: format!("cannot serialize load results: {e}"),
    })?;
    text.push('\n');
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| IrisError::Io {
                detail: format!("cannot create {}: {e}", parent.display()),
            })?;
        }
    }
    std::fs::write(path, text).map_err(|e| IrisError::Io {
        detail: format!("cannot write {path}: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_seed_deterministic_and_partition_updates() {
        let cfg = LoadgenConfig {
            requests: 400,
            connections: 3,
            ..LoadgenConfig::default()
        };
        let pairs: Vec<(usize, usize)> = vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        let a: Vec<Vec<Request>> = (0..3)
            .map(|c| generate_sequence(&cfg, c, 100, &pairs))
            .collect();
        let b: Vec<Vec<Request>> = (0..3)
            .map(|c| generate_sequence(&cfg, c, 100, &pairs))
            .collect();
        assert_eq!(a, b, "same seed must generate the same mix");

        // No pair is updated by two connections.
        let mut owner: std::collections::BTreeMap<(usize, usize), usize> =
            std::collections::BTreeMap::new();
        for (c, seq) in a.iter().enumerate() {
            for req in seq {
                if let Request::UpdateDemand { a, b, circuits } = req {
                    assert!(*circuits >= 1, "updates never drop a pair to 0 circuits");
                    let prev = owner.insert((*a, *b), c);
                    assert!(
                        prev.is_none() || prev == Some(c),
                        "pair ({a}, {b}) updated by connections {prev:?} and {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn different_seeds_generate_different_mixes() {
        let pairs = vec![(0, 1), (0, 2), (1, 2)];
        let a = generate_sequence(
            &LoadgenConfig {
                seed: 1,
                ..LoadgenConfig::default()
            },
            0,
            200,
            &pairs,
        );
        let b = generate_sequence(
            &LoadgenConfig {
                seed: 2,
                ..LoadgenConfig::default()
            },
            0,
            200,
            &pairs,
        );
        assert_ne!(a, b);
    }

    #[test]
    fn percentile_handles_edges() {
        assert_eq!(percentile(&[], 99.0), 0.0);
        assert_eq!(percentile(&[5.0], 50.0), 5.0);
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        // Nearest-rank on 100 samples: p50 rounds to index 50 (value 51).
        assert_eq!(percentile(&v, 50.0), 51.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
    }

    #[test]
    fn results_serialize_deterministically() {
        let results = LoadResults {
            seed: 7,
            connections: 2,
            requests: 10,
            op_counts: vec![OpCount {
                op: "get_plan".into(),
                count: 10,
            }],
            update_pairs: 0,
            coalescable_updates: 0,
            coalescable_ratio: 0.0,
            cut: None,
            final_allocation: vec![AllocEntry {
                a: 0,
                b: 1,
                circuits: 1,
            }],
            errors: 0,
        };
        let a = serde_json::to_string_pretty(&results).unwrap();
        let b = serde_json::to_string_pretty(&results).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("\"seed\": 7"), "{a}");
    }
}
