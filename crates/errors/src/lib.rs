//! The workspace's typed error surface.
//!
//! Fallible paths in the planner and control plane return [`IrisError`]
//! instead of panicking or threading bare `String`s. Every variant has a
//! stable kebab-case [`IrisError::code`] so operators (and the CLI's
//! exit path) can name the cause without parsing prose, and the enum is
//! serializable so recovery/shed reports can embed the exact failure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::fmt;

/// Shorthand result alias used across the workspace.
pub type IrisResult<T> = Result<T, IrisError>;

/// A typed, serializable error with a stable machine-readable code.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum IrisError {
    /// An OSS cross-connect names a port outside the switch.
    PortOutOfRange {
        /// Device name.
        device: String,
        /// Requested input port.
        input: usize,
        /// Requested output port.
        output: usize,
        /// Ports the device actually has.
        ports: usize,
    },
    /// A transceiver / emulator channel outside the device's band.
    ChannelOutOfRange {
        /// Device name.
        device: String,
        /// Requested channel.
        channel: u32,
        /// Channels the device supports.
        count: u32,
    },
    /// A site or DC cannot be reached over the (surviving) fiber map.
    Unreachable {
        /// What could not be reached, e.g. `DC 3 -> hub 7`.
        what: String,
    },
    /// A control-plane frame failed to decode.
    Decode {
        /// What was wrong with the frame.
        detail: String,
    },
    /// Post-actuation verification found a device out of intent.
    VerifyFailed {
        /// Device name.
        device: String,
        /// The observed mismatch.
        detail: String,
    },
    /// A reconfiguration step exhausted its retry budget.
    RetriesExhausted {
        /// Pipeline phase that kept failing.
        phase: String,
        /// Attempts made before giving up.
        attempts: u32,
        /// The last failure observed.
        last_error: String,
    },
    /// The device is quarantined and excluded from actuation.
    Quarantined {
        /// Device name.
        device: String,
    },
    /// A plan or recovery target cannot be satisfied.
    Infeasible {
        /// Why, e.g. `duct 4 over planned capacity by 80 wavelengths`.
        detail: String,
    },
    /// A bounded write queue is full; the caller should back off.
    Overloaded {
        /// Suggested delay before retrying, ms.
        retry_after_ms: u64,
    },
    /// Malformed input (CLI flags, config files, region instances).
    InvalidInput {
        /// What was malformed.
        detail: String,
    },
    /// Filesystem or serialization failure.
    Io {
        /// What failed.
        detail: String,
    },
}

impl IrisError {
    /// Stable kebab-case identifier of the failure class.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            IrisError::PortOutOfRange { .. } => "port-out-of-range",
            IrisError::ChannelOutOfRange { .. } => "channel-out-of-range",
            IrisError::Unreachable { .. } => "unreachable",
            IrisError::Decode { .. } => "decode",
            IrisError::VerifyFailed { .. } => "verify-failed",
            IrisError::RetriesExhausted { .. } => "retries-exhausted",
            IrisError::Quarantined { .. } => "quarantined",
            IrisError::Infeasible { .. } => "infeasible",
            IrisError::Overloaded { .. } => "overloaded",
            IrisError::InvalidInput { .. } => "invalid-input",
            IrisError::Io { .. } => "io",
        }
    }
}

impl fmt::Display for IrisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrisError::PortOutOfRange {
                device,
                input,
                output,
                ports,
            } => write!(
                f,
                "{device}: port out of range ({input} -> {output}, {ports} ports)"
            ),
            IrisError::ChannelOutOfRange {
                device,
                channel,
                count,
            } => write!(f, "{device}: channel {channel} out of range ({count})"),
            IrisError::Unreachable { what } => write!(f, "unreachable: {what}"),
            IrisError::Decode { detail } => write!(f, "decode: {detail}"),
            IrisError::VerifyFailed { device, detail } => {
                write!(f, "verification failed on {device}: {detail}")
            }
            IrisError::RetriesExhausted {
                phase,
                attempts,
                last_error,
            } => write!(
                f,
                "{phase}: retries exhausted after {attempts} attempts (last: {last_error})"
            ),
            IrisError::Quarantined { device } => write!(f, "{device} is quarantined"),
            IrisError::Infeasible { detail } => write!(f, "infeasible: {detail}"),
            IrisError::Overloaded { retry_after_ms } => {
                write!(f, "overloaded: retry after {retry_after_ms} ms")
            }
            IrisError::InvalidInput { detail } => write!(f, "{detail}"),
            IrisError::Io { detail } => write!(f, "{detail}"),
        }
    }
}

impl std::error::Error for IrisError {}

impl From<String> for IrisError {
    fn from(detail: String) -> Self {
        IrisError::InvalidInput { detail }
    }
}

impl From<&str> for IrisError {
    fn from(detail: &str) -> Self {
        IrisError::InvalidInput {
            detail: detail.to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_kebab_case() {
        let all = [
            IrisError::PortOutOfRange {
                device: "OSS".into(),
                input: 1,
                output: 2,
                ports: 2,
            },
            IrisError::ChannelOutOfRange {
                device: "TX".into(),
                channel: 41,
                count: 40,
            },
            IrisError::Unreachable { what: "x".into() },
            IrisError::Decode { detail: "x".into() },
            IrisError::VerifyFailed {
                device: "OSS".into(),
                detail: "x".into(),
            },
            IrisError::RetriesExhausted {
                phase: "actuate".into(),
                attempts: 3,
                last_error: "x".into(),
            },
            IrisError::Quarantined {
                device: "OSS".into(),
            },
            IrisError::Infeasible { detail: "x".into() },
            IrisError::Overloaded { retry_after_ms: 10 },
            IrisError::InvalidInput { detail: "x".into() },
            IrisError::Io { detail: "x".into() },
        ];
        for e in &all {
            let code = e.code();
            assert!(!code.is_empty());
            assert!(
                code.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{code}"
            );
        }
    }

    #[test]
    fn display_names_the_device() {
        let e = IrisError::PortOutOfRange {
            device: "OSS@HUT3".into(),
            input: 9,
            output: 1,
            ports: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains("OSS@HUT3"), "{msg}");
        assert!(msg.contains('9'), "{msg}");
    }

    #[test]
    fn string_conversion_is_invalid_input() {
        let e: IrisError = "bad flag".into();
        assert_eq!(e.code(), "invalid-input");
        let e: IrisError = String::from("bad").into();
        assert_eq!(e.code(), "invalid-input");
    }

    #[test]
    fn errors_compare_and_clone() {
        let e = IrisError::Infeasible {
            detail: "duct 4 over capacity".into(),
        };
        assert_eq!(e.clone(), e);
        assert_ne!(
            e,
            IrisError::Quarantined {
                device: "OSS".into()
            }
        );
    }
}
