//! Crash recovery and the shared write-batch application core.
//!
//! Recovery rebuilds the pre-crash control plane from the durable state
//! [`Wal::open`] found: restore the compacted snapshot (reconfigure to
//! its allocation, re-derive the cut state from its cumulative cut set),
//! then replay every WAL record after it. Because per-pair paths are a
//! deterministic function of the active cut set, and every stored
//! `RecoverySummary` is replayed verbatim rather than recomputed, the
//! republished [`StateSnapshot`] is byte-identical to the one the server
//! published before it died.
//!
//! [`ControlMachine`] is the single implementation of "apply one
//! coalesced write batch": the live mutator thread drives it per batch,
//! recovery replays WAL records through the same controller calls, and
//! the crash harness (`iris chaos --crash`) drives it directly — so a
//! crashed-and-recovered server cannot drift from an uninterrupted one
//! by construction.

use crate::api::{AllocEntry, RecoverySummary};
use crate::state::{PairPath, StateSnapshot};
use crate::wal::{CutRecord, DurableState, PersistedSnapshot, Wal, WalBatch};
use iris_control::Controller;
use iris_errors::{IrisError, IrisResult};
use iris_fibermap::Region;
use iris_netgraph::EdgeId;
use iris_planner::topology::nominal_paths;
use iris_planner::{DesignGoals, Provisioning, ScenarioEngine};
use std::collections::BTreeMap;
use std::time::Instant;

/// What one recovery replayed, all deterministic except the wall clock
/// (which goes to telemetry only, never into serialized artifacts).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayStats {
    /// Epoch of the compacted snapshot recovery started from, if any.
    pub from_snapshot_epoch: Option<u64>,
    /// Good WAL records found by salvage.
    pub salvaged_records: u64,
    /// Bytes of torn tail dropped by salvage.
    pub truncated_bytes: u64,
    /// Records actually replayed (salvaged minus those at or below the
    /// snapshot's epoch).
    pub replayed_batches: u64,
    /// Records skipped because the snapshot was newer (a crash between
    /// snapshot rename and log truncate leaves these behind).
    pub skipped_records: u64,
    /// Sum of the *modeled* reconfiguration/recovery times of every
    /// replayed operation, ms — the deterministic recovery-cost proxy
    /// reported by the crash sweep.
    pub replay_reconfig_ms: f64,
    /// The epoch the recovered snapshot republishes at.
    pub recovered_epoch: u64,
}

/// Rebuild controller state and the publishable snapshot from durable
/// state. The `controller` must be freshly constructed for the region
/// (no writes applied yet). Returns the snapshot to republish, the
/// active cut set, and what was replayed.
///
/// # Errors
///
/// [`IrisError::ReplayFailed`] if the record epochs are discontinuous or
/// a replayed operation cannot be re-applied; any controller error
/// encountered while re-applying a cut.
pub fn recover(
    region: &Region,
    goals: &DesignGoals,
    provisioning: &Provisioning,
    controller: &Controller,
    durable: &DurableState,
) -> IrisResult<(StateSnapshot, Vec<EdgeId>, ReplayStats)> {
    let start = Instant::now();
    let mut replay_ms = 0.0f64;

    // Restore the base state: the compacted snapshot if there is one,
    // else the boot seed (one circuit per reachable pair) every fresh
    // server starts from — WAL updates are deltas against that seed.
    let (mut epoch, mut writes_applied, mut coalesced, mut last_recovery, mut active_cuts) =
        match &durable.snapshot {
            Some(snap) => {
                let target: iris_control::controller::Allocation = snap
                    .allocation
                    .iter()
                    .map(|e| ((e.a, e.b), e.circuits))
                    .collect();
                replay_ms += controller.reconfigure(&target).total_ms;
                if !snap.active_cuts.is_empty() {
                    let report = controller.handle_fiber_cut(
                        region,
                        goals,
                        provisioning,
                        &snap.active_cuts,
                    )?;
                    replay_ms += report.recovery_ms;
                }
                (
                    snap.epoch,
                    snap.writes_applied,
                    snap.coalesced,
                    snap.last_recovery.clone(),
                    snap.active_cuts.clone(),
                )
            }
            None => {
                let seed: iris_control::controller::Allocation = controller
                    .current_paths()
                    .keys()
                    .map(|&pair| (pair, 1u32))
                    .collect();
                controller.reconfigure(&seed);
                (0, 0, 0, None, Vec::new())
            }
        };
    let from_snapshot_epoch = durable.snapshot.as_ref().map(|s| s.epoch);

    let mut replayed = 0u64;
    let mut skipped = 0u64;
    for batch in &durable.batches {
        if batch.epoch <= epoch {
            // Snapshot newer than the log: a crash between compaction's
            // rename and truncate left already-compacted records behind.
            skipped += 1;
            continue;
        }
        if batch.epoch != epoch + 1 {
            return Err(IrisError::ReplayFailed {
                detail: format!(
                    "record epoch {} does not follow epoch {epoch} (lost a record mid-log?)",
                    batch.epoch
                ),
            });
        }
        if !batch.updates.is_empty() {
            let mut target = controller.allocation();
            for e in &batch.updates {
                if e.circuits == 0 {
                    target.remove(&(e.a, e.b));
                } else {
                    target.insert((e.a, e.b), e.circuits);
                }
            }
            replay_ms += controller.reconfigure(&target).total_ms;
        }
        for cut in &batch.cuts {
            let report = controller
                .handle_fiber_cut(region, goals, provisioning, &cut.cuts)
                .map_err(|e| IrisError::ReplayFailed {
                    detail: format!(
                        "cannot re-apply cut {:?} from record epoch {}: {e}",
                        cut.cuts, batch.epoch
                    ),
                })?;
            replay_ms += report.recovery_ms;
            active_cuts = cut.cuts.clone();
            last_recovery = Some(cut.recovery.clone());
        }
        epoch = batch.epoch;
        writes_applied += batch.writes_applied;
        coalesced += batch.coalesced;
        replayed += 1;
    }

    let paths = snapshot_paths(region, goals, epoch, &active_cuts);
    let quarantined = match (&durable.snapshot, replayed) {
        // Nothing replayed after the snapshot: carry its quarantine set
        // verbatim (the fault-free service path never quarantines, so
        // the controller cannot reconstruct one).
        (Some(snap), 0) => snap.quarantined.clone(),
        _ => controller.quarantined(),
    };
    let snapshot = StateSnapshot {
        epoch,
        allocation: controller.allocation(),
        paths,
        active_cuts: active_cuts.clone(),
        quarantined,
        writes_applied,
        coalesced,
        last_recovery,
    };
    iris_telemetry::global()
        .histogram("iris_service_replay_ms")
        .record(start.elapsed().as_secs_f64() * 1e3);
    let stats = ReplayStats {
        from_snapshot_epoch,
        salvaged_records: durable.salvage.records,
        truncated_bytes: durable.salvage.truncated_bytes,
        replayed_batches: replayed,
        skipped_records: skipped,
        replay_reconfig_ms: replay_ms,
        recovered_epoch: epoch,
    };
    Ok((snapshot, active_cuts, stats))
}

/// The per-pair paths a snapshot at `epoch` publishes. Epoch 0 is the
/// boot snapshot and uses the planner's nominal paths, exactly as a
/// fresh [`crate::serve`] does; every later epoch was published by the
/// mutator and uses the scenario engine, exactly as the mutator does.
fn snapshot_paths(
    region: &Region,
    goals: &DesignGoals,
    epoch: u64,
    active_cuts: &[EdgeId],
) -> BTreeMap<(usize, usize), PairPath> {
    let mut paths = BTreeMap::new();
    if epoch == 0 && active_cuts.is_empty() {
        for p in nominal_paths(region, goals) {
            paths.insert(
                (p.a, p.b),
                PairPath {
                    nodes: p.nodes.clone(),
                    edges: p.edges.clone(),
                    length_km: p.length_km,
                },
            );
        }
    } else {
        let mut engine = ScenarioEngine::new(region, goals);
        engine.for_scenarios(std::slice::from_ref(&active_cuts.to_vec()), |_, view| {
            for p in view.paths() {
                paths.insert(
                    (p.a, p.b),
                    PairPath {
                        nodes: p.nodes.clone(),
                        edges: p.edges.clone(),
                        length_km: p.length_km,
                    },
                );
            }
        });
    }
    paths
}

/// Outcome of one fiber-cut operation inside a batch.
#[derive(Debug, Clone, PartialEq)]
pub enum CutReply {
    /// The cut changed the active set; recovery completed.
    Applied(RecoverySummary),
    /// Every listed duct was already severed: an idempotent no-op.
    AlreadySevered {
        /// The unchanged cumulative active cut set.
        active_cuts: Vec<usize>,
    },
    /// Recovery failed; the active set is unchanged.
    Failed(IrisError),
}

/// What [`ControlMachine::apply_batch`] did.
#[derive(Debug)]
pub struct BatchResult {
    /// The next snapshot to publish, or `None` if the batch changed
    /// nothing (every operation was an idempotent no-op) — no epoch is
    /// consumed and nothing is logged.
    pub snapshot: Option<StateSnapshot>,
    /// Per-cut-operation outcomes, in submission order.
    pub cut_replies: Vec<CutReply>,
    /// The durable record this batch produced (`Some` iff a snapshot
    /// was), whether or not a WAL is attached — the unit the federation
    /// layer ships to follower regions.
    pub batch: Option<WalBatch>,
}

/// The single writer's state: region, controller, scenario engine, the
/// active cut set, and (optionally) the write-ahead log. One instance is
/// owned by whoever plays the mutator — the server's mutator thread or
/// the crash harness.
pub struct ControlMachine<'r> {
    region: &'r Region,
    goals: &'r DesignGoals,
    provisioning: &'r Provisioning,
    controller: &'r Controller,
    engine: ScenarioEngine<'r>,
    active_cuts: Vec<EdgeId>,
    wal: Option<Wal>,
    snapshot_every: u64,
    /// When set, [`Self::apply_batch`] appends WAL records *without*
    /// fsyncing; the owner is responsible for syncing (via
    /// [`Wal::sync_handle`]) before acknowledging the batch — the
    /// group-commit protocol.
    deferred_sync: bool,
}

impl<'r> ControlMachine<'r> {
    /// A machine over an already-recovered (or freshly booted)
    /// controller. `active_cuts` is the recovered cumulative cut set;
    /// `wal` is `None` for a memory-only server. `snapshot_every` is the
    /// compaction cadence in batches (0 = never compact).
    pub fn new(
        region: &'r Region,
        goals: &'r DesignGoals,
        provisioning: &'r Provisioning,
        controller: &'r Controller,
        active_cuts: Vec<EdgeId>,
        wal: Option<Wal>,
        snapshot_every: u64,
    ) -> Self {
        Self {
            engine: ScenarioEngine::new(region, goals),
            region,
            goals,
            provisioning,
            controller,
            active_cuts,
            wal,
            snapshot_every,
            deferred_sync: false,
        }
    }

    /// Switch WAL appends to group-commit mode: records are written but
    /// not fsync'd by [`Self::apply_batch`]; the caller must sync (one
    /// [`crate::wal::WalSyncHandle::sync`] covers every append since the
    /// last) before acknowledging the batches to clients. Compaction
    /// still syncs its snapshot file immediately — the snapshot then
    /// covers any not-yet-synced records, which the truncate discards.
    pub fn set_deferred_sync(&mut self, deferred: bool) {
        self.deferred_sync = deferred;
    }

    /// A duplicated descriptor for group-commit fsyncs, or `None` for a
    /// memory-only machine. See [`Wal::sync_handle`].
    ///
    /// # Errors
    ///
    /// [`IrisError::Io`] if the descriptor cannot be duplicated.
    pub fn wal_sync_handle(&self) -> IrisResult<Option<crate::wal::WalSyncHandle>> {
        self.wal.as_ref().map(Wal::sync_handle).transpose()
    }

    /// The cumulative active cut set.
    #[must_use]
    pub fn active_cuts(&self) -> &[EdgeId] {
        &self.active_cuts
    }

    /// The WAL's cumulative statistics (`None` for a memory-only
    /// machine).
    #[must_use]
    pub fn wal_stats(&self) -> Option<crate::wal::WalStats> {
        self.wal.as_ref().map(Wal::stats)
    }

    /// Apply one coalesced batch: demand updates first (one
    /// reconfiguration to the merged target), then each cut operation in
    /// order. The WAL record is appended and fsync'd *before* the
    /// snapshot is handed back for publication; a batch that applied
    /// nothing returns no snapshot and writes no record.
    ///
    /// # Errors
    ///
    /// [`IrisError::Io`] / [`IrisError::Decode`] if the WAL append or
    /// compaction fails — the controller state is already advanced, so
    /// callers should treat this as fatal for durability.
    pub fn apply_batch(
        &mut self,
        prev: &StateSnapshot,
        updates: &BTreeMap<(usize, usize), u32>,
        coalesced_now: u64,
        cuts_ops: &[Vec<EdgeId>],
    ) -> IrisResult<BatchResult> {
        let telemetry = iris_telemetry::global();
        let mut writes_applied_now = 0u64;
        let mut last_recovery = prev.last_recovery.clone();
        let mut cut_records: Vec<CutRecord> = Vec::new();
        let mut cut_replies = Vec::with_capacity(cuts_ops.len());

        // Child spans (controller reconfigurations, per-phase modeled
        // steps) nest under "apply" when the mutator opened a batch
        // trace; replay and the crash harness run with no trace and
        // record nothing.
        let apply_span = iris_telemetry::trace::span("apply");

        if !updates.is_empty() {
            let mut target = self.controller.allocation();
            for (&pair, &circuits) in updates {
                if circuits == 0 {
                    target.remove(&pair);
                } else {
                    target.insert(pair, circuits);
                }
            }
            let report = self.controller.reconfigure(&target);
            telemetry
                .histogram("iris_service_reconfig_ms")
                .record(report.total_ms);
            writes_applied_now += updates.len() as u64;
        }

        for cuts in cuts_ops {
            let mut merged = self.active_cuts.clone();
            merged.extend(cuts.iter().copied());
            merged.sort_unstable();
            merged.dedup();
            if merged == self.active_cuts {
                // Every listed duct is already severed. Re-running
                // recovery would take a different (cheaper) path and
                // re-actuate healthy circuits; answer the typed no-op
                // instead and leave epoch, counters and WAL untouched.
                cut_replies.push(CutReply::AlreadySevered {
                    active_cuts: merged,
                });
                continue;
            }
            match self.controller.handle_fiber_cut(
                self.region,
                self.goals,
                self.provisioning,
                &merged,
            ) {
                Ok(report) => {
                    self.active_cuts = merged;
                    writes_applied_now += 1;
                    let summary = RecoverySummary {
                        cuts: report.cuts.clone(),
                        within_tolerance: report.within_tolerance,
                        fully_recovered: report.fully_recovered(),
                        shed_pairs: report.shed_pairs.len(),
                        detection_ms: report.detection_ms,
                        replan_ms: report.replan_ms,
                        reconfig_ms: report.reconfig.total_ms,
                        recovery_ms: report.recovery_ms,
                    };
                    last_recovery = Some(summary.clone());
                    cut_records.push(CutRecord {
                        cuts: self.active_cuts.clone(),
                        recovery: summary.clone(),
                    });
                    cut_replies.push(CutReply::Applied(summary));
                }
                Err(e) => cut_replies.push(CutReply::Failed(e)),
            }
        }
        drop(apply_span);

        if writes_applied_now == 0 && coalesced_now == 0 {
            // Nothing applied (all no-ops or failures): no epoch, no
            // record, no publish — a restarted server replays the same
            // epoch sequence as one that never saw the no-op.
            return Ok(BatchResult {
                snapshot: None,
                cut_replies,
                batch: None,
            });
        }

        let epoch = prev.epoch + 1;
        let record = WalBatch {
            epoch,
            updates: updates
                .iter()
                .map(|(&(a, b), &circuits)| AllocEntry { a, b, circuits })
                .collect(),
            cuts: cut_records,
            writes_applied: writes_applied_now,
            coalesced: coalesced_now,
        };
        if let Some(wal) = &mut self.wal {
            if self.deferred_sync {
                wal.append_nosync(&record)?;
            } else {
                wal.append(&record)?;
            }
        }

        let build_span = iris_telemetry::trace::span("snapshot_build");
        let mut paths = BTreeMap::new();
        self.engine
            .for_scenarios(std::slice::from_ref(&self.active_cuts), |_, view| {
                for p in view.paths() {
                    paths.insert(
                        (p.a, p.b),
                        PairPath {
                            nodes: p.nodes.clone(),
                            edges: p.edges.clone(),
                            length_km: p.length_km,
                        },
                    );
                }
            });
        let next = StateSnapshot {
            epoch,
            allocation: self.controller.allocation(),
            paths,
            active_cuts: self.active_cuts.clone(),
            quarantined: self.controller.quarantined(),
            writes_applied: prev.writes_applied + writes_applied_now,
            coalesced: prev.coalesced + coalesced_now,
            last_recovery,
        };
        drop(build_span);
        if let Some(wal) = &mut self.wal {
            if self.snapshot_every > 0 && wal.batches_since_compaction() >= self.snapshot_every {
                wal.compact(&PersistedSnapshot::from_state(&next))?;
            }
        }
        Ok(BatchResult {
            snapshot: Some(next),
            cut_replies,
            batch: Some(record),
        })
    }

    /// Apply one batch shipped from a primary region — the follower half
    /// of WAL-shipping replication. The batch is replayed exactly the
    /// way [`recover`] replays a WAL record: updates reconfigure to the
    /// merged absolute target, cuts re-run recovery against the stored
    /// *cumulative* cut set, and the stored [`RecoverySummary`] is
    /// adopted verbatim rather than recomputed — so the follower's next
    /// snapshot is byte-identical to the primary's at the same epoch.
    /// The record is also appended to the follower's own WAL (honouring
    /// deferred sync), keeping its durable log byte-compatible with the
    /// primary's.
    ///
    /// # Errors
    ///
    /// [`IrisError::ReplayFailed`] if `batch.epoch` does not extend the
    /// epoch chain (`prev.epoch + 1`) or a cut cannot be re-applied;
    /// [`IrisError::Io`] / [`IrisError::Decode`] on WAL failure.
    pub fn apply_replicated(
        &mut self,
        prev: &StateSnapshot,
        batch: &WalBatch,
    ) -> IrisResult<StateSnapshot> {
        if batch.epoch != prev.epoch + 1 {
            return Err(IrisError::ReplayFailed {
                detail: format!(
                    "replicated batch epoch {} does not follow local epoch {} (stream gap)",
                    batch.epoch, prev.epoch
                ),
            });
        }
        let mut last_recovery = prev.last_recovery.clone();
        if !batch.updates.is_empty() {
            let mut target = self.controller.allocation();
            for e in &batch.updates {
                if e.circuits == 0 {
                    target.remove(&(e.a, e.b));
                } else {
                    target.insert((e.a, e.b), e.circuits);
                }
            }
            self.controller.reconfigure(&target);
        }
        for cut in &batch.cuts {
            self.controller
                .handle_fiber_cut(self.region, self.goals, self.provisioning, &cut.cuts)
                .map_err(|e| IrisError::ReplayFailed {
                    detail: format!(
                        "cannot re-apply replicated cut {:?} at epoch {}: {e}",
                        cut.cuts, batch.epoch
                    ),
                })?;
            self.active_cuts = cut.cuts.clone();
            last_recovery = Some(cut.recovery.clone());
        }
        if let Some(wal) = &mut self.wal {
            if self.deferred_sync {
                wal.append_nosync(batch)?;
            } else {
                wal.append(batch)?;
            }
        }
        let mut paths = BTreeMap::new();
        self.engine
            .for_scenarios(std::slice::from_ref(&self.active_cuts), |_, view| {
                for p in view.paths() {
                    paths.insert(
                        (p.a, p.b),
                        PairPath {
                            nodes: p.nodes.clone(),
                            edges: p.edges.clone(),
                            length_km: p.length_km,
                        },
                    );
                }
            });
        let next = StateSnapshot {
            epoch: batch.epoch,
            allocation: self.controller.allocation(),
            paths,
            active_cuts: self.active_cuts.clone(),
            quarantined: self.controller.quarantined(),
            writes_applied: prev.writes_applied + batch.writes_applied,
            coalesced: prev.coalesced + batch.coalesced,
            last_recovery,
        };
        if let Some(wal) = &mut self.wal {
            if self.snapshot_every > 0 && wal.batches_since_compaction() >= self.snapshot_every {
                wal.compact(&PersistedSnapshot::from_state(&next))?;
            }
        }
        Ok(next)
    }

    /// Adopt a full persisted snapshot shipped by a primary — the resync
    /// path for a follower that fell behind the primary's in-memory
    /// replication window. Rebuilds controller state exactly the way
    /// [`recover`] restores a compacted snapshot (reconfigure to its
    /// allocation, re-derive cut state from the cumulative set, carry
    /// stored counters and `last_recovery` verbatim), compacts the
    /// follower's own WAL to the adopted state, and returns the snapshot
    /// to publish. A snapshot at or below the local epoch is rejected —
    /// adoption never rewinds the chain.
    ///
    /// # Errors
    ///
    /// [`IrisError::ReplayFailed`] if the snapshot does not advance the
    /// local epoch; controller errors re-applying the cut set;
    /// [`IrisError::Io`] / [`IrisError::Decode`] on WAL failure.
    pub fn adopt_state(
        &mut self,
        prev: &StateSnapshot,
        snap: &PersistedSnapshot,
    ) -> IrisResult<StateSnapshot> {
        if snap.epoch <= prev.epoch && prev.epoch != 0 {
            return Err(IrisError::ReplayFailed {
                detail: format!(
                    "sync-state epoch {} does not advance local epoch {}",
                    snap.epoch, prev.epoch
                ),
            });
        }
        let target: iris_control::controller::Allocation = snap
            .allocation
            .iter()
            .map(|e| ((e.a, e.b), e.circuits))
            .collect();
        self.controller.reconfigure(&target);
        if !snap.active_cuts.is_empty() {
            self.controller
                .handle_fiber_cut(
                    self.region,
                    self.goals,
                    self.provisioning,
                    &snap.active_cuts,
                )
                .map_err(|e| IrisError::ReplayFailed {
                    detail: format!("cannot re-apply cut set {:?}: {e}", snap.active_cuts),
                })?;
        }
        self.active_cuts = snap.active_cuts.clone();
        let paths = snapshot_paths(self.region, self.goals, snap.epoch, &self.active_cuts);
        let next = StateSnapshot {
            epoch: snap.epoch,
            allocation: self.controller.allocation(),
            paths,
            active_cuts: self.active_cuts.clone(),
            quarantined: snap.quarantined.clone(),
            writes_applied: snap.writes_applied,
            coalesced: snap.coalesced,
            last_recovery: snap.last_recovery.clone(),
        };
        if let Some(wal) = &mut self.wal {
            wal.compact(snap)?;
        }
        Ok(next)
    }
}
