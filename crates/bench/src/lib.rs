//! Shared helpers for the Iris figure-regeneration binaries and
//! Criterion benches.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper: it prints the same rows/series the paper reports and writes a
//! JSON record under `results/` for EXPERIMENTS.md. Binaries honour the
//! `IRIS_QUICK=1` environment variable, which shrinks sweeps for smoke
//! testing.

pub mod chaos;
pub mod crash;
pub mod federation;

use iris_fibermap::synth::{generate_metro, place_dcs};
use iris_fibermap::{MetroParams, PlacementParams, Region};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Whether the binaries should run reduced sweeps.
#[must_use]
pub fn quick_mode() -> bool {
    std::env::var("IRIS_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// The evaluation's region-scale knobs (§6.1): 10 fiber maps, DC counts,
/// DC capacities in fibers, wavelengths per fiber.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepPoint {
    /// Which synthetic fiber map (seed).
    pub map_seed: u64,
    /// DCs placed.
    pub n_dcs: usize,
    /// DC capacity, fibers.
    pub f: u32,
    /// Wavelengths per fiber.
    pub lambda: u32,
}

/// All 240 evaluation combinations of §6.1 (or a reduced set in quick
/// mode).
#[must_use]
pub fn sweep_points() -> Vec<SweepPoint> {
    let (maps, dcs, fs, lambdas): (Vec<u64>, Vec<usize>, Vec<u32>, Vec<u32>) = if quick_mode() {
        (vec![1, 2], vec![5, 10], vec![16], vec![40])
    } else {
        (
            (1..=10).collect(),
            vec![5, 10, 15, 20],
            vec![8, 16, 32],
            vec![40, 64],
        )
    };
    let mut points = Vec::new();
    for &map_seed in &maps {
        for &n_dcs in &dcs {
            for &f in &fs {
                for &lambda in &lambdas {
                    points.push(SweepPoint {
                        map_seed,
                        n_dcs,
                        f,
                        lambda,
                    });
                }
            }
        }
    }
    points
}

/// Build the region for one sweep point (deterministic).
#[must_use]
pub fn build_region(p: &SweepPoint) -> Region {
    let map = generate_metro(&MetroParams {
        seed: p.map_seed,
        n_huts: 16,
        ..MetroParams::default()
    });
    place_dcs(
        map,
        &PlacementParams {
            seed: p.map_seed.wrapping_mul(7919).wrapping_add(p.n_dcs as u64),
            n_dcs: p.n_dcs,
            capacity_fibers: p.f,
            wavelengths_per_fiber: p.lambda,
            ..PlacementParams::default()
        },
    )
}

/// A simple synthetic region used by several figures that only need
/// topology (no capacity sweep).
#[must_use]
pub fn simple_region(seed: u64, n_dcs: usize) -> Region {
    build_region(&SweepPoint {
        map_seed: seed,
        n_dcs,
        f: 16,
        lambda: 40,
    })
}

/// Order-preserving parallel map over sweep items using scoped threads.
///
/// Worker count is [`iris_planner::thread_count`] (the `IRIS_THREADS`
/// environment variable when set, else available parallelism), clamped to
/// the item count. Workers pull items off a shared index — no static
/// partitioning, so uneven per-item cost doesn't idle threads — and
/// results are reassembled in input order, making the output identical to
/// a sequential map for any worker count. Per-item planner calls run with
/// nested parallelism disabled, so the thread budget is spent on exactly
/// one fan-out level.
///
/// Records the sweep wall time in the `iris_planner_sweep_wall_ms`
/// histogram and per-worker item counts in
/// `iris_bench_sweep_worker_items_total{worker="i"}`.
///
/// # Panics
///
/// Panics if a worker thread panics.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let telemetry = iris_telemetry::global();
    let wall = iris_telemetry::Span::enter_ms(telemetry.histogram("iris_planner_sweep_wall_ms"));
    let workers = iris_planner::thread_count().clamp(1, items.len().max(1));
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    if workers <= 1 {
        for (i, item) in items.iter().enumerate() {
            out[i] = Some(f(i, item));
        }
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let (tx, rx) = std::sync::mpsc::channel::<(usize, R)>();
            for w in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let f = &f;
                s.spawn(move || {
                    iris_planner::with_nested_parallelism_disabled(|| {
                        let mut done = 0u64;
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            let r = f(i, &items[i]);
                            done += 1;
                            if tx.send((i, r)).is_err() {
                                break;
                            }
                        }
                        iris_telemetry::global()
                            .counter(&iris_telemetry::labeled(
                                "iris_bench_sweep_worker_items_total",
                                "worker",
                                &w.to_string(),
                            ))
                            .add(done);
                    });
                });
            }
            drop(tx);
            for (i, r) in rx {
                out[i] = Some(r);
            }
        });
    }
    wall.finish();
    out.into_iter()
        .map(|r| r.expect("every index is produced exactly once"))
        .collect()
}

/// The `q`-quantile (0-1, nearest-rank) of `values`.
///
/// # Panics
///
/// Panics on an empty slice.
#[must_use]
pub fn percentile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty slice");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let idx = ((sorted.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

/// Print a CDF as `value fraction` rows (ascending), decimated to at
/// most `max_rows`.
pub fn print_cdf(label: &str, values: &[f64], max_rows: usize) {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    println!("# CDF: {label} ({} samples)", sorted.len());
    let step = (sorted.len() / max_rows.max(1)).max(1);
    for (i, v) in sorted.iter().enumerate() {
        if i % step == 0 || i == sorted.len() - 1 {
            println!("{v:10.3}  {:6.3}", (i + 1) as f64 / sorted.len() as f64);
        }
    }
}

/// Write a JSON value under `results/<name>.json` (relative to the
/// workspace root when run via cargo). If the process-global telemetry
/// registry recorded anything, a `results/<name>.metrics.json` sidecar
/// captures the snapshot — planner work counters, simulator event
/// counts, control-plane phase latencies — for the run that produced
/// the figure.
pub fn write_results(name: &str, value: &serde_json::Value) {
    let dir = results_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        eprintln!("warning: could not create {}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let _ = writeln!(
                f,
                "{}",
                serde_json::to_string_pretty(value).expect("serializable")
            );
            println!("# results written to {}", path.display());
        }
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }

    let snapshot = iris_telemetry::global().snapshot();
    if snapshot.is_empty() {
        return;
    }
    let metrics_path = dir.join(format!("{name}.metrics.json"));
    match snapshot.write_to_file(&metrics_path.display().to_string()) {
        Ok(()) => println!("# metrics sidecar written to {}", metrics_path.display()),
        Err(e) => eprintln!("warning: {e}"),
    }
}

fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live at the repo root.
    let manifest = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into());
    PathBuf::from(manifest).join("../../results")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_sweep_has_240_points() {
        // Guard against IRIS_QUICK leaking into the test environment.
        if !quick_mode() {
            assert_eq!(sweep_points().len(), 240);
        }
    }

    #[test]
    fn par_map_matches_sequential_map_in_order() {
        let items: Vec<usize> = (0..37).collect();
        let seq: Vec<usize> = items.iter().map(|&x| x * x + 1).collect();
        let par = par_map(&items, |i, &x| {
            assert_eq!(i, x);
            x * x + 1
        });
        assert_eq!(par, seq);
    }

    #[test]
    fn par_map_empty_input() {
        let out: Vec<u32> = par_map(&[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn percentile_basics() {
        let v = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
    }

    #[test]
    fn build_region_is_deterministic() {
        let p = SweepPoint {
            map_seed: 3,
            n_dcs: 5,
            f: 8,
            lambda: 40,
        };
        let a = build_region(&p);
        let b = build_region(&p);
        assert_eq!(a.dcs, b.dcs);
        assert_eq!(a.map.duct_count(), b.map.duct_count());
    }
}
