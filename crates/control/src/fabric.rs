//! Port-level fabric realization: map a planned Iris network onto
//! concrete optical space switches.
//!
//! The planner decides *what* exists (fibers per duct, amplifiers per
//! hut, circuits per DC pair); this module decides *where each fiber
//! lands*: it sizes one OSS per site, allocates trunk ports for every
//! fiber-pair termination, add/drop ports for DC capacity, loopback
//! ports for amplifiers, and then threads each DC-pair circuit through
//! its sites as concrete `input -> output` cross-connects. The result
//! can be applied to simulated [`SpaceSwitch`] devices and audited with
//! health checks — the controller's "devices are in expected state"
//! operation (§5.2), including fault injection.

use crate::devices::{DeviceHealth, SpaceSwitch};
use iris_errors::IrisResult;
use iris_fibermap::{Region, SiteId};
use iris_planner::topology::nominal_paths;
use iris_planner::{DesignGoals, IrisPlan};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One DC-pair circuit threaded through the fabric.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Circuit {
    /// DC indices (into `region.dcs`).
    pub pair: (usize, usize),
    /// Fiber pairs this circuit bundles (base allocation of the pair).
    pub fiber_pairs: u32,
    /// `(site, input port, output port)` cross-connects, in path order.
    /// Endpoints appear too: the DC's OSS connects the add/drop side to
    /// the trunk side.
    pub cross_connects: Vec<(SiteId, usize, usize)>,
}

/// A fully port-assigned fabric.
#[derive(Debug, Clone)]
pub struct FabricLayout {
    /// One OSS per site (sites without optical equipment get a 0-port
    /// switch and never appear in circuits).
    pub switches: Vec<SpaceSwitch>,
    /// One circuit per reachable DC pair.
    pub circuits: Vec<Circuit>,
    /// Ports consumed per site (for capacity audits).
    pub ports_used: Vec<usize>,
}

/// Size and thread the fabric for `plan` on `region`.
///
/// Port model: each fiber-pair termination takes one bidirectional port
/// on the site's OSS (the pair's two strands patch to one logical port
/// in this abstraction); each amplifier takes two loopback ports; each
/// DC wavelength-group (fiber) of local capacity takes one add/drop
/// port.
///
/// # Errors
///
/// Returns [`iris_errors::IrisError::PortOutOfRange`] if a circuit's
/// cross-connect lands outside its switch — i.e. the sizing above was
/// violated (a planning bug, surfaced instead of panicking).
pub fn build_fabric(
    region: &Region,
    goals: &DesignGoals,
    plan: &IrisPlan,
) -> IrisResult<FabricLayout> {
    let g = region.map.graph();
    let n_sites = g.node_count();

    // --- Size each site's OSS. ---
    let mut trunk_ports = vec![0usize; n_sites]; // fiber-pair terminations
    for (e, edge) in g.edges().iter().enumerate() {
        let pairs = plan.base_fiber_pairs[e] + plan.residual_fiber_pairs[e];
        trunk_ports[edge.u] += pairs as usize;
        trunk_ports[edge.v] += pairs as usize;
    }
    let mut extra_ports = vec![0usize; n_sites];
    for (&site, &amps) in &plan.amps.amps_per_node {
        extra_ports[site] += 2 * amps as usize; // loopback in + out
    }
    for (i, &dc) in region.dcs.iter().enumerate() {
        extra_ports[dc] += region.capacity_fibers[i] as usize; // add/drop
    }
    let mut switches: Vec<SpaceSwitch> = (0..n_sites)
        .map(|s| {
            let ports = trunk_ports[s] + extra_ports[s];
            SpaceSwitch::new(&region.map.site(s).name, ports)
        })
        .collect();

    // --- Allocate trunk port ranges per (site, duct). ---
    // port_base[site][edge] = first port index of that duct's pairs.
    let mut next_port = vec![0usize; n_sites];
    let mut port_base: Vec<BTreeMap<usize, usize>> = vec![BTreeMap::new(); n_sites];
    for (e, edge) in g.edges().iter().enumerate() {
        let pairs = (plan.base_fiber_pairs[e] + plan.residual_fiber_pairs[e]) as usize;
        if pairs == 0 {
            continue;
        }
        for site in [edge.u, edge.v] {
            port_base[site].insert(e, next_port[site]);
            next_port[site] += pairs;
        }
    }
    // Add/drop base per DC (after trunks).
    let mut adddrop_base = vec![usize::MAX; n_sites];
    for (i, &dc) in region.dcs.iter().enumerate() {
        adddrop_base[dc] = next_port[dc];
        next_port[dc] += region.capacity_fibers[i] as usize;
    }

    // Per-(site, duct) rolling offset so parallel circuits get distinct
    // ports.
    let mut duct_cursor: Vec<BTreeMap<usize, usize>> = vec![BTreeMap::new(); n_sites];
    let mut adddrop_cursor = vec![0usize; n_sites];

    // --- Thread circuits along nominal paths. ---
    let mut circuits = Vec::new();
    for path in nominal_paths(region, goals) {
        // One representative strand per DC pair: the layout threads
        // ports, it does not replicate per-wavelength capacity (a full
        // build-out would thread min-capacity/lambda parallel strands
        // through the same port blocks).
        let fiber_pairs = 1u32;
        let mut cross = Vec::new();
        let mut take_port = |site: usize, edge: usize| -> usize {
            let base = port_base[site][&edge];
            let cursor = duct_cursor[site].entry(edge).or_insert(0);
            let port = base + *cursor;
            *cursor += 1;
            port
        };
        // Source DC: add/drop -> first duct.
        let src = path.nodes[0];
        let src_add = adddrop_base[src] + adddrop_cursor[src];
        adddrop_cursor[src] += 1;
        let first_trunk = take_port(src, path.edges[0]);
        cross.push((src, src_add, first_trunk));
        // Transit sites: duct in -> duct out.
        for w in 0..path.edges.len() - 1 {
            let site = path.nodes[w + 1];
            let inp = take_port(site, path.edges[w]);
            let out = take_port(site, path.edges[w + 1]);
            cross.push((site, inp, out));
        }
        // Destination DC: last duct -> add/drop.
        let dst = *path.nodes.last().expect("non-empty");
        let last_trunk = take_port(dst, *path.edges.last().expect("non-empty"));
        let dst_add = adddrop_base[dst] + adddrop_cursor[dst];
        adddrop_cursor[dst] += 1;
        cross.push((dst, last_trunk, dst_add));

        circuits.push(Circuit {
            pair: (path.a, path.b),
            fiber_pairs,
            cross_connects: cross,
        });
    }

    // --- Apply to the switches. ---
    for c in &circuits {
        for &(site, input, output) in &c.cross_connects {
            switches[site].connect(input, output)?;
        }
    }

    Ok(FabricLayout {
        ports_used: next_port,
        switches,
        circuits,
    })
}

impl FabricLayout {
    /// Health-check every circuit against the actual switch state.
    #[must_use]
    pub fn verify(&self) -> Vec<((usize, usize), DeviceHealth)> {
        let mut out = Vec::new();
        for c in &self.circuits {
            let mut health = DeviceHealth::Ok;
            for &(site, input, output) in &c.cross_connects {
                if self.switches[site].output_of(input) != Some(output) {
                    health = DeviceHealth::Degraded(format!(
                        "{}: circuit {:?} expects {input} -> {output}, found {:?}",
                        self.switches[site].name,
                        c.pair,
                        self.switches[site].output_of(input)
                    ));
                    break;
                }
            }
            out.push((c.pair, health));
        }
        out
    }

    /// True when every circuit verifies clean.
    #[must_use]
    pub fn all_healthy(&self) -> bool {
        self.verify().iter().all(|(_, h)| *h == DeviceHealth::Ok)
    }

    /// Fault injection: disconnect one input port at a site (a tech
    /// pulled the wrong jumper). Returns whether anything changed.
    pub fn inject_disconnect(&mut self, site: SiteId, input: usize) -> bool {
        if self.switches[site].output_of(input).is_some() {
            self.switches[site].disconnect(input);
            true
        } else {
            false
        }
    }

    /// Repair: re-apply every circuit's cross-connects (idempotent).
    pub fn reapply_all(&mut self) {
        for c in &self.circuits {
            for &(site, input, output) in &c.cross_connects {
                let _ = self.switches[site].connect(input, output);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iris_fibermap::synth::{generate_metro, place_dcs};
    use iris_fibermap::{MetroParams, PlacementParams};
    use iris_planner::plan_iris;

    fn planned() -> (Region, DesignGoals, IrisPlan) {
        let region = place_dcs(
            generate_metro(&MetroParams::default()),
            &PlacementParams {
                n_dcs: 5,
                ..PlacementParams::default()
            },
        );
        let goals = DesignGoals::with_cuts(0);
        let plan = plan_iris(&region, &goals);
        (region, goals, plan)
    }

    #[test]
    fn fabric_builds_and_verifies() {
        let (region, goals, plan) = planned();
        let fabric = build_fabric(&region, &goals, &plan).expect("fabric builds");
        assert_eq!(fabric.circuits.len(), 10); // C(5,2)
        assert!(fabric.all_healthy());
    }

    #[test]
    fn port_allocation_never_exceeds_switch_size() {
        let (region, goals, plan) = planned();
        let fabric = build_fabric(&region, &goals, &plan).expect("fabric builds");
        for (s, sw) in fabric.switches.iter().enumerate() {
            assert!(
                fabric.ports_used[s] <= sw.ports(),
                "site {s} uses {} of {} ports",
                fabric.ports_used[s],
                sw.ports()
            );
        }
    }

    #[test]
    fn circuits_use_distinct_ports_at_every_site() {
        let (region, goals, plan) = planned();
        let fabric = build_fabric(&region, &goals, &plan).expect("fabric builds");
        let mut used: std::collections::HashSet<(usize, usize)> = Default::default();
        for c in &fabric.circuits {
            for &(site, input, _) in &c.cross_connects {
                assert!(
                    used.insert((site, input)),
                    "input port {input}@{site} assigned twice"
                );
            }
        }
    }

    #[test]
    fn circuit_endpoints_are_the_right_dcs() {
        let (region, goals, plan) = planned();
        let fabric = build_fabric(&region, &goals, &plan).expect("fabric builds");
        for c in &fabric.circuits {
            let first_site = c.cross_connects.first().unwrap().0;
            let last_site = c.cross_connects.last().unwrap().0;
            assert_eq!(first_site, region.dcs[c.pair.0]);
            assert_eq!(last_site, region.dcs[c.pair.1]);
        }
    }

    #[test]
    fn fault_injection_is_caught_and_repaired() {
        let (region, goals, plan) = planned();
        let mut fabric = build_fabric(&region, &goals, &plan).expect("fabric builds");
        // Pull the first circuit's first jumper.
        let (site, input, _) = fabric.circuits[0].cross_connects[0];
        assert!(fabric.inject_disconnect(site, input));
        assert!(!fabric.all_healthy(), "fault must be detected");
        let degraded: Vec<_> = fabric
            .verify()
            .into_iter()
            .filter(|(_, h)| *h != DeviceHealth::Ok)
            .collect();
        assert!(!degraded.is_empty());
        // Repair restores health.
        fabric.reapply_all();
        assert!(fabric.all_healthy());
    }

    #[test]
    fn transit_sites_appear_between_endpoints() {
        let (region, goals, plan) = planned();
        let fabric = build_fabric(&region, &goals, &plan).expect("fabric builds");
        let multi_hop = fabric
            .circuits
            .iter()
            .find(|c| c.cross_connects.len() > 2)
            .expect("some circuit transits a hut");
        for &(site, _, _) in &multi_hop.cross_connects[1..multi_hop.cross_connects.len() - 1] {
            assert!(
                region.dc_index(site).is_none()
                    || site != region.dcs[multi_hop.pair.0] && site != region.dcs[multi_hop.pair.1],
                "interior cross-connect at an endpoint DC"
            );
        }
    }
}
