//! The coordinator ↔ worker wire protocol.
//!
//! Workers speak the workspace's shared frame codec ([`iris_wire`]):
//! length-prefixed frames carrying JSON by default, with the same
//! `Hello { codec: "binary" }` negotiation the control-plane service
//! uses — the ack travels in the old codec, then the connection
//! switches. Binary matters here: a link result is a dense `f64`
//! vector, and [`iris_wire::bin::w_vec_f64`] ships it at 8 bytes per
//! flow instead of ~20 of JSON text.
//!
//! The job unit is deliberately *tiny on the wire*: the coordinator
//! ships the [`WorkSpec`] recipe (topology + matrix + config) **once
//! per connection**, the worker regenerates the flow trace and
//! decomposition locally (both are deterministic functions of the
//! spec), and each subsequent job names a link by id alone. Results
//! stream back as [`WorkerResponse::LinkChunk`] frames so a
//! million-flow link never exceeds [`iris_wire::MAX_FRAME_LEN`].

use iris_errors::{IrisError, IrisResult};
use iris_simnet::engine::SimConfig;
use iris_simnet::trace::FlowTrace;
use iris_simnet::{SimTopology, Simulator, TrafficMatrix};
use iris_wire::bin::{w_bool, w_str, w_u64, w_u8, w_vec_f64, Reader};
use iris_wire::Codec;
use serde::{Deserialize, Serialize};

/// Finish-time entries per [`WorkerResponse::LinkChunk`]. Binary:
/// `16384 * 8 B = 128 KiB` per frame; JSON stays comfortably under
/// [`iris_wire::MAX_FRAME_LEN`] too.
pub const CHUNK_FLOWS: usize = 16_384;

/// The recipe of a simulation run: everything a worker needs to
/// regenerate the trace and decomposition deterministically.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkSpec {
    /// The simulated topology.
    pub topo: SimTopology,
    /// The initial traffic matrix.
    pub matrix: TrafficMatrix,
    /// Full simulator configuration (workload, changes, fabric, seed).
    pub config: SimConfig,
}

impl WorkSpec {
    /// Materialize the spec's flow trace (deterministic).
    #[must_use]
    pub fn trace(&self) -> FlowTrace {
        Simulator::new(self.topo.clone(), self.matrix.clone(), self.config.clone()).trace()
    }

    /// Content fingerprint (FNV-1a over the canonical JSON encoding) —
    /// the worker's spec-cache key.
    ///
    /// # Panics
    ///
    /// Panics if the spec cannot be serialized (all field types are
    /// serializable, so this would be a programming error).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let bytes = serde_json::to_string(self).expect("spec serializes");
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in bytes.into_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Coordinator → worker.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WorkerRequest {
    /// Switch codec (ack travels in the current codec).
    Hello {
        /// Requested codec name (`"json"` or `"binary"`).
        codec: String,
    },
    /// Install the run recipe for subsequent jobs.
    LoadSpec {
        /// The recipe (boxed: it dwarfs the other variants).
        spec: Box<WorkSpec>,
    },
    /// Simulate one link of the installed spec's decomposition.
    RunLink {
        /// Link id.
        link: usize,
    },
}

/// Worker → coordinator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkerResponse {
    /// Codec switch acknowledged.
    HelloOk {
        /// The codec now in effect.
        codec: String,
    },
    /// Spec installed (trace regenerated or served from cache).
    SpecLoaded {
        /// Admitted flows in the trace.
        flows: usize,
        /// Links carrying at least one flow.
        links: usize,
    },
    /// One slice of a link's finish times, aligned with the
    /// decomposition's flow list for that link starting at `offset`.
    LinkChunk {
        /// Link id the slice belongs to.
        link: usize,
        /// Index of the first entry within the link's flow list.
        offset: usize,
        /// Finish times (seconds; negative = incomplete).
        finish_s: Vec<f64>,
        /// Whether this is the link's final slice.
        done: bool,
    },
    /// The request failed; the connection remains usable.
    Error {
        /// The typed failure.
        error: IrisError,
    },
}

const REQ_HELLO: u8 = 1;
const REQ_LOAD_SPEC: u8 = 2;
const REQ_RUN_LINK: u8 = 3;
const RESP_HELLO_OK: u8 = 1;
const RESP_SPEC_LOADED: u8 = 2;
const RESP_LINK_CHUNK: u8 = 3;
const RESP_ERROR: u8 = 4;

/// Encode a request in `codec`.
///
/// # Errors
///
/// Returns [`IrisError::Decode`] if JSON serialization fails (never for
/// well-formed specs).
pub fn encode_request(codec: Codec, req: &WorkerRequest) -> IrisResult<Vec<u8>> {
    match codec {
        Codec::Json => to_json(req),
        Codec::Binary => {
            let mut buf = Vec::new();
            match req {
                WorkerRequest::Hello { codec } => {
                    w_u8(&mut buf, REQ_HELLO);
                    w_str(&mut buf, codec);
                }
                WorkerRequest::LoadSpec { spec } => {
                    // The spec is structural data, not bulk data: nest
                    // its JSON encoding rather than hand-coding every
                    // simnet type.
                    w_u8(&mut buf, REQ_LOAD_SPEC);
                    w_str(&mut buf, &serde_json::to_string(spec).map_err(json_err)?);
                }
                WorkerRequest::RunLink { link } => {
                    w_u8(&mut buf, REQ_RUN_LINK);
                    w_u64(&mut buf, *link as u64);
                }
            }
            Ok(buf)
        }
    }
}

/// Decode a request in `codec`.
///
/// # Errors
///
/// Returns [`IrisError::Decode`] on malformed payloads.
pub fn decode_request(codec: Codec, payload: &[u8]) -> IrisResult<WorkerRequest> {
    match codec {
        Codec::Json => from_json(payload),
        Codec::Binary => {
            let mut r = Reader::new(payload);
            let req = match r.u8("request tag")? {
                REQ_HELLO => WorkerRequest::Hello {
                    codec: r.string("codec name")?,
                },
                REQ_LOAD_SPEC => WorkerRequest::LoadSpec {
                    spec: Box::new(
                        serde_json::from_str(&r.string("spec json")?).map_err(json_err)?,
                    ),
                },
                REQ_RUN_LINK => WorkerRequest::RunLink {
                    link: r.u64("link id")? as usize,
                },
                tag => {
                    return Err(IrisError::Decode {
                        detail: format!("unknown flowsim request tag {tag}"),
                    })
                }
            };
            r.finish("flowsim request")?;
            Ok(req)
        }
    }
}

/// Encode a response in `codec`.
///
/// # Errors
///
/// Returns [`IrisError::Decode`] if JSON serialization fails.
pub fn encode_response(codec: Codec, resp: &WorkerResponse) -> IrisResult<Vec<u8>> {
    match codec {
        Codec::Json => to_json(resp),
        Codec::Binary => {
            let mut buf = Vec::new();
            match resp {
                WorkerResponse::HelloOk { codec } => {
                    w_u8(&mut buf, RESP_HELLO_OK);
                    w_str(&mut buf, codec);
                }
                WorkerResponse::SpecLoaded { flows, links } => {
                    w_u8(&mut buf, RESP_SPEC_LOADED);
                    w_u64(&mut buf, *flows as u64);
                    w_u64(&mut buf, *links as u64);
                }
                WorkerResponse::LinkChunk {
                    link,
                    offset,
                    finish_s,
                    done,
                } => {
                    w_u8(&mut buf, RESP_LINK_CHUNK);
                    w_u64(&mut buf, *link as u64);
                    w_u64(&mut buf, *offset as u64);
                    w_vec_f64(&mut buf, finish_s);
                    w_bool(&mut buf, *done);
                }
                WorkerResponse::Error { error } => {
                    w_u8(&mut buf, RESP_ERROR);
                    w_str(&mut buf, &serde_json::to_string(error).map_err(json_err)?);
                }
            }
            Ok(buf)
        }
    }
}

/// Decode a response in `codec`.
///
/// # Errors
///
/// Returns [`IrisError::Decode`] on malformed payloads.
pub fn decode_response(codec: Codec, payload: &[u8]) -> IrisResult<WorkerResponse> {
    match codec {
        Codec::Json => from_json(payload),
        Codec::Binary => {
            let mut r = Reader::new(payload);
            let resp = match r.u8("response tag")? {
                RESP_HELLO_OK => WorkerResponse::HelloOk {
                    codec: r.string("codec name")?,
                },
                RESP_SPEC_LOADED => WorkerResponse::SpecLoaded {
                    flows: r.u64("flow count")? as usize,
                    links: r.u64("link count")? as usize,
                },
                RESP_LINK_CHUNK => WorkerResponse::LinkChunk {
                    link: r.u64("link id")? as usize,
                    offset: r.u64("chunk offset")? as usize,
                    finish_s: r.vec_f64("finish times")?,
                    done: r.bool("done flag")?,
                },
                RESP_ERROR => WorkerResponse::Error {
                    error: serde_json::from_str(&r.string("error json")?).map_err(json_err)?,
                },
                tag => {
                    return Err(IrisError::Decode {
                        detail: format!("unknown flowsim response tag {tag}"),
                    })
                }
            };
            r.finish("flowsim response")?;
            Ok(resp)
        }
    }
}

fn to_json<T: Serialize>(v: &T) -> IrisResult<Vec<u8>> {
    serde_json::to_string(v)
        .map(String::into_bytes)
        .map_err(json_err)
}

fn from_json<T: Deserialize>(payload: &[u8]) -> IrisResult<T> {
    let text = std::str::from_utf8(payload).map_err(|e| IrisError::Decode {
        detail: format!("flowsim message: invalid utf-8: {e}"),
    })?;
    serde_json::from_str(text).map_err(json_err)
}

fn json_err(e: serde_json::Error) -> IrisError {
    IrisError::Decode {
        detail: format!("flowsim message: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iris_simnet::engine::FabricModel;
    use iris_simnet::traffic::ChangeModel;
    use iris_simnet::workloads::FlowSizeDist;

    fn spec() -> WorkSpec {
        WorkSpec {
            topo: SimTopology::hub_and_spoke(3, 1.0),
            matrix: TrafficMatrix::heavy_tailed(3, 4),
            config: SimConfig {
                duration_s: 2.0,
                utilization: 0.4,
                flow_sizes: FlowSizeDist::facebook_web(),
                change_interval_s: Some(1.0),
                change_model: ChangeModel::Bounded(0.5),
                fabric: FabricModel::Eps,
                capacity_events: Vec::new(),
                seed: 6,
            },
        }
    }

    #[test]
    fn requests_round_trip_in_both_codecs() {
        let reqs = [
            WorkerRequest::Hello {
                codec: "binary".into(),
            },
            WorkerRequest::LoadSpec {
                spec: Box::new(spec()),
            },
            WorkerRequest::RunLink { link: 7 },
        ];
        for codec in [Codec::Json, Codec::Binary] {
            for req in &reqs {
                let bytes = encode_request(codec, req).expect("encode");
                let back = decode_request(codec, &bytes).expect("decode");
                // WorkSpec has no PartialEq (SimConfig holds closures'
                // worth of state? no — just keep it structural): compare
                // through JSON.
                assert_eq!(
                    serde_json::to_string(req).unwrap(),
                    serde_json::to_string(&back).unwrap(),
                    "{codec:?}"
                );
            }
        }
    }

    #[test]
    fn responses_round_trip_in_both_codecs() {
        let resps = [
            WorkerResponse::HelloOk {
                codec: "json".into(),
            },
            WorkerResponse::SpecLoaded {
                flows: 1_000_000,
                links: 17,
            },
            WorkerResponse::LinkChunk {
                link: 3,
                offset: 16_384,
                finish_s: vec![0.25, -1.0, 39.99],
                done: true,
            },
            WorkerResponse::Error {
                error: IrisError::Decode {
                    detail: "boom".into(),
                },
            },
        ];
        for codec in [Codec::Json, Codec::Binary] {
            for resp in &resps {
                let bytes = encode_response(codec, resp).expect("encode");
                assert_eq!(
                    &decode_response(codec, &bytes).expect("decode"),
                    resp,
                    "{codec:?}"
                );
            }
        }
    }

    #[test]
    fn fingerprint_tracks_spec_content() {
        let a = spec();
        let mut b = spec();
        assert_eq!(a.fingerprint(), a.fingerprint());
        b.config.seed = 7;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn binary_garbage_is_a_typed_decode_error() {
        let err = decode_response(Codec::Binary, &[99, 1, 2]).unwrap_err();
        assert!(matches!(err, IrisError::Decode { .. }));
    }
}
