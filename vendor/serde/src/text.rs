//! JSON text: printing and parsing for [`Value`].

use crate::value::Value;
use crate::DeError;

/// Serialize any [`crate::Serialize`] into compact JSON text.
#[must_use]
pub fn to_json_string<T: crate::Serialize + ?Sized>(v: &T) -> String {
    to_json_string_value(&v.to_value())
}

/// Serialize any [`crate::Serialize`] into pretty JSON text.
#[must_use]
pub fn to_json_string_pretty<T: crate::Serialize + ?Sized>(v: &T) -> String {
    to_json_string_pretty_value(&v.to_value())
}

pub(crate) fn to_json_string_value(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

pub(crate) fn to_json_string_pretty_value(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    out
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                // Rust's float Display is the shortest decimal string
                // that round-trips, and never uses exponent notation —
                // always valid JSON.
                out.push_str(&n.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse JSON text into a [`Value`].
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse_json(input: &str) -> Result<Value, DeError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> DeError {
        DeError(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), DeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, DeError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, DeError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, DeError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, DeError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            entries.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, DeError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00))
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = text.chars().next().expect("non-empty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, DeError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let textual = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(i) = textual.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            if let Ok(u) = textual.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        textual
            .parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("bad number"))
    }
}
