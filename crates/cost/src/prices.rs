//! The component price book (§3.3).
//!
//! Prices are amortized $/year so that equipment purchases and fiber
//! leases can be summed directly (the paper amortizes hardware over 3
//! years). Only the *ratios* matter for every result reproduced here.

use serde::{Deserialize, Serialize};

/// Amortized component prices, $/year.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriceBook {
    /// DCI-reach DWDM switch-pluggable transceiver (400ZR-class).
    /// ~$10/Gbps purchase => ~$1300/yr amortized (§3.3).
    pub transceiver: f64,
    /// Short-reach (< 2 km) transceiver, used in the Fig. 7 "with SR"
    /// variant and the Fig. 12(b) sensitivity study.
    pub transceiver_sr: f64,
    /// One leased fiber pair, per span per year (~$3600, §3.3).
    pub fiber_pair_span: f64,
    /// One (unidirectional) OSS port (§3.3: $100-200).
    pub oss_port: f64,
    /// One OXC port — "slightly more expensive than OSS ports".
    pub oxc_port: f64,
    /// One EDFA — "equivalent in cost to a few transceivers".
    pub amplifier: f64,
    /// One electrical switch port — a transceiver costs "roughly 10x an
    /// electrical port" (§2.4).
    pub electrical_port: f64,
}

impl PriceBook {
    /// The paper's 2020 price structure.
    #[must_use]
    pub fn paper_2020() -> Self {
        Self {
            transceiver: 1300.0,
            transceiver_sr: 130.0,
            fiber_pair_span: 3600.0,
            oss_port: 150.0,
            oxc_port: 250.0,
            amplifier: 3900.0, // 3 transceivers' worth
            electrical_port: 130.0,
        }
    }

    /// The Fig. 12(b) sensitivity variant: DCI transceivers priced
    /// (unrealistically optimistically) at short-reach levels.
    #[must_use]
    pub fn with_sr_transceiver_prices(self) -> Self {
        Self {
            transceiver: self.transceiver_sr,
            ..self
        }
    }
}

impl Default for PriceBook {
    fn default() -> Self {
        Self::paper_2020()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ratios_hold() {
        let p = PriceBook::paper_2020();
        // Transceiver ~ 10x electrical port.
        assert!((p.transceiver / p.electrical_port - 10.0).abs() < 0.5);
        // Fiber lease ~ 3x transceiver per year.
        assert!((p.fiber_pair_span / p.transceiver - 3.0).abs() < 0.5);
        // OSS port an order of magnitude below a transceiver.
        assert!(p.transceiver / p.oss_port >= 5.0);
        // OXC slightly pricier than OSS but well below a transceiver.
        assert!(p.oxc_port > p.oss_port && p.oxc_port < p.transceiver);
        // Amplifier ~ a few transceivers.
        assert!(p.amplifier / p.transceiver >= 2.0 && p.amplifier / p.transceiver <= 5.0);
    }

    #[test]
    fn sr_variant_only_touches_transceiver() {
        let p = PriceBook::paper_2020();
        let sr = p.with_sr_transceiver_prices();
        assert_eq!(sr.transceiver, p.transceiver_sr);
        assert_eq!(sr.fiber_pair_span, p.fiber_pair_span);
        assert_eq!(sr.oss_port, p.oss_port);
    }
}
