//! The Iris control plane (§5).
//!
//! A centralized controller gathers DC-DC traffic demands and configures
//! the network's optical components: space switches (OSS), tunable
//! transceivers, amplifiers, and the ASE channel emulators that keep
//! every fiber's spectrum full so amplifier gains never need online
//! management (TC3). The paper's testbed controller is ~9 K lines of
//! Python driving real hardware over serial/HTTPS/NetConf; this crate is
//! its Rust equivalent driving *simulated* devices with the measured
//! actuation latencies, so the orchestration logic — drain, switch,
//! retune, verify, undrain — is exercised end-to-end.
//!
//! * [`devices`] — device models with realistic actuation times and
//!   health checks;
//! * [`wavelength`] — packing a DC's tunable transceivers into outgoing
//!   fibers (the per-DC "basic wavelength management" of §5.2);
//! * [`messages`] — a compact binary wire format for controller-to-site
//!   commands;
//! * [`controller`] — the reconfiguration state machine (plan → drain →
//!   actuate → verify → undrain, with retry, rollback and quarantine)
//!   plus the fiber-cut recovery path;
//! * [`faults`] — seeded, deterministic fault schedules and the injector
//!   that perturbs device actuations;
//! * [`testbed`] — the Fig. 13/14 experiment: periodic path swaps at a
//!   hut, BER sampled every 10 ms, 50 ms recovery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod devices;
pub mod fabric;
pub mod faults;
pub mod messages;
pub mod testbed;
pub mod wavelength;

pub use controller::{
    Controller, ReconfigOutcome, ReconfigPlan, ReconfigReport, RecoveryReport, RetryPolicy,
};
pub use devices::{ChannelEmulator, DeviceHealth, Edfa, SpaceSwitch, TunableTransceiver};
pub use fabric::{build_fabric, Circuit, FabricLayout};
pub use faults::{FaultDomain, FaultEvent, FaultInjector, FaultKind, FaultSchedule};
pub use testbed::{run_testbed, BerSample, TestbedConfig};
pub use wavelength::{assign_wavelengths, FiberAssignment};
