//! Minimal `--key value` option parsing (no external dependencies).

use std::collections::BTreeMap;

/// Parsed `--key value` options.
#[derive(Debug, Default)]
pub struct Options {
    values: BTreeMap<String, String>,
}

impl Options {
    /// Parse a flat list of `--key value` pairs.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut values = BTreeMap::new();
        let mut it = argv.iter();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("expected --option, found '{key}'"));
            };
            let Some(value) = it.next() else {
                return Err(format!("--{name} requires a value"));
            };
            values.insert(name.to_owned(), value.clone());
        }
        Ok(Self { values })
    }

    /// A required string option.
    pub fn required(&self, name: &str) -> Result<&str, String> {
        self.values
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required option --{name}"))
    }

    /// An optional string option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// A numeric option with a default.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.values.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse '{v}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_pairs() {
        let o = Options::parse(&strs(&["--seed", "7", "--out", "r.json"])).unwrap();
        assert_eq!(o.required("seed").unwrap(), "7");
        assert_eq!(o.get("out"), Some("r.json"));
        assert_eq!(o.get("missing"), None);
        assert_eq!(o.num("seed", 0u64).unwrap(), 7);
        assert_eq!(o.num("dcs", 5usize).unwrap(), 5);
    }

    #[test]
    fn rejects_bare_values() {
        assert!(Options::parse(&strs(&["seed", "7"])).is_err());
    }

    #[test]
    fn rejects_missing_value() {
        assert!(Options::parse(&strs(&["--seed"])).is_err());
    }

    #[test]
    fn rejects_unparsable_number() {
        let o = Options::parse(&strs(&["--util", "abc"])).unwrap();
        assert!(o.num("util", 0.4f64).is_err());
    }

    #[test]
    fn missing_required_is_an_error() {
        let o = Options::parse(&[]).unwrap();
        assert!(o.required("region").is_err());
    }
}
