//! Ablation — relaxing OC3 (strict shortest paths) to save fiber.
//!
//! §3.1: "By removing this constraint, simpler designs are easy to
//! build using the same methodology." This ablation quantifies the
//! trade: route the uniform hose matrix over up to k shortest paths
//! with a latency-stretch cap and measure the fiber-pair-spans saved
//! by consolidating partially-filled fibers onto shared ducts.

use iris_planner::relaxed::route_relaxed;
use iris_planner::DesignGoals;

fn main() {
    let goals = DesignGoals::with_cuts(0);
    let stretches = [1.0, 1.1, 1.25, 1.5, 2.0];

    println!("# map  n_dcs  stretch_cap  shortest_spans  relaxed_spans  saved  worst_stretch");
    let mut cases = Vec::new();
    for seed in [2u64, 5, 8] {
        for n_dcs in [6usize, 10] {
            for &cap in &stretches {
                cases.push((seed, n_dcs, cap));
            }
        }
    }
    let results = iris_bench::par_map(&cases, |_, &(seed, n_dcs, cap)| {
        let region = iris_bench::simple_region(seed, n_dcs);
        route_relaxed(&region, &goals, 5, cap)
    });
    let mut rows = Vec::new();
    for (&(seed, n_dcs, cap), routing) in cases.iter().zip(&results) {
        let saved = routing.savings_fraction();
        println!(
            "{seed:4}  {n_dcs:5}  {cap:11.2}  {:14}  {:13}  {:4.1}%  {:12.2}",
            routing.shortest_total_fiber_pair_spans(),
            routing.total_fiber_pair_spans(),
            saved * 100.0,
            routing.max_stretch()
        );
        rows.push(serde_json::json!({
            "map": seed, "n_dcs": n_dcs, "stretch_cap": cap,
            "shortest_spans": routing.shortest_total_fiber_pair_spans(),
            "relaxed_spans": routing.total_fiber_pair_spans(),
            "savings_fraction": saved,
            "max_stretch": routing.max_stretch(),
        }));
    }
    println!("\nshape: savings grow with the latency budget; OC3 (stretch 1.0) is the");
    println!("latency-optimal endpoint the paper plans for, and it pays a fiber premium.");

    iris_bench::write_results(
        "ablation_relaxed_routing",
        &serde_json::json!({
            "rows": rows,
            "paper_claim": "removing OC3 admits simpler/cheaper designs (§3.1)",
        }),
    );
}
