//! A blocking client for the framed JSON protocol.

use crate::api::{decode_response, encode_request, Request, Response};
use crate::frame::{read_frame, write_frame_traced, FrameEvent};
use iris_errors::{IrisError, IrisResult};
use std::net::TcpStream;
use std::time::Duration;

/// One connection to a running service. Requests are strictly
/// request/reply on the connection, so a client is cheap and carries no
/// protocol state beyond the socket.
///
/// # Example
///
/// Boot an in-process server on an ephemeral port, raise one pair's
/// demand, and read back the path its circuits ride:
///
/// ```
/// use iris_fibermap::{synth, MetroParams, PlacementParams};
/// use iris_service::{serve, Request, Response, ServiceClient, ServiceConfig};
///
/// let region = synth::place_dcs(
///     synth::generate_metro(&MetroParams { seed: 7, ..MetroParams::default() }),
///     &PlacementParams { seed: 24, n_dcs: 4, ..PlacementParams::default() },
/// );
/// let mut server = serve(region, &ServiceConfig {
///     addr: "127.0.0.1:0".to_owned(), // port 0 picks a free port
///     ..ServiceConfig::default()
/// })?;
/// let mut client = ServiceClient::connect(&server.local_addr().to_string())?;
///
/// // Pick a reachable DC pair off the topology, then write and read.
/// let Response::Topology(topo) = client.call(&Request::GetTopology)?.into_result()? else {
///     unreachable!("GetTopology answers Topology")
/// };
/// let (a, b) = (topo.allocation[0].a, topo.allocation[0].b);
///
/// let reply = client.call(&Request::UpdateDemand { a, b, circuits: 2 })?;
/// assert!(matches!(reply, Response::DemandAccepted { .. }));
///
/// let Response::Path(path) = client.call(&Request::QueryPath { a, b })?.into_result()? else {
///     unreachable!("allocated pairs have a path")
/// };
/// assert!(path.length_km > 0.0);
/// server.shutdown();
/// # Ok::<(), iris_errors::IrisError>(())
/// ```
#[derive(Debug)]
pub struct ServiceClient {
    stream: TcpStream,
}

impl ServiceClient {
    /// Connect to `addr`.
    ///
    /// # Errors
    ///
    /// [`IrisError::Io`] if the connection fails.
    pub fn connect(addr: &str) -> IrisResult<Self> {
        let stream = TcpStream::connect(addr).map_err(|e| IrisError::Io {
            detail: format!("cannot connect to {addr}: {e}"),
        })?;
        stream.set_nodelay(true).ok();
        Ok(Self { stream })
    }

    /// Connect, retrying `attempts` times with `delay_ms` between tries —
    /// for racing a server that is still planning its region at startup.
    ///
    /// # Errors
    ///
    /// The last [`IrisError::Io`] if every attempt fails.
    pub fn connect_retry(addr: &str, attempts: u32, delay_ms: u64) -> IrisResult<Self> {
        let mut last = IrisError::Io {
            detail: format!("no connection attempts made for {addr}"),
        };
        for attempt in 0..attempts.max(1) {
            match Self::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) => last = e,
            }
            if attempt + 1 < attempts {
                std::thread::sleep(Duration::from_millis(delay_ms));
            }
        }
        Err(last)
    }

    /// Send one request and wait for its reply. `Error` replies are
    /// returned as `Ok(Response::Error(..))` — use
    /// [`Response::into_result`] or [`ServiceClient::call_retrying`] to
    /// surface them as typed errors.
    ///
    /// # Errors
    ///
    /// [`IrisError::Io`] on socket failure, [`IrisError::Decode`] on a
    /// malformed reply or server disconnect mid-reply.
    pub fn call(&mut self, req: &Request) -> IrisResult<Response> {
        // Propagate the caller's trace context (if any) so the server
        // logs the request under an id the caller can correlate. When
        // the local recorder is disabled no header is sent and the
        // frame bytes are identical to the pre-tracing protocol.
        let trace = if iris_telemetry::trace::enabled() {
            iris_telemetry::trace::current_trace().or_else(|| {
                if req.is_write() {
                    Some(iris_telemetry::trace::mint_trace_id())
                } else {
                    None
                }
            })
        } else {
            None
        };
        self.call_with_trace(req, trace)
    }

    /// [`ServiceClient::call`] with an explicit trace context: `Some`
    /// attaches the id as a frame header, `None` sends a legacy frame.
    ///
    /// # Errors
    ///
    /// Same as [`ServiceClient::call`].
    pub fn call_with_trace(&mut self, req: &Request, trace: Option<u64>) -> IrisResult<Response> {
        let payload = encode_request(req)?;
        write_frame_traced(&mut self.stream, &payload, trace)?;
        loop {
            match read_frame(&mut self.stream)? {
                FrameEvent::Frame(bytes) => return decode_response(&bytes),
                FrameEvent::Idle => continue,
                FrameEvent::Eof => {
                    return Err(IrisError::Io {
                        detail: "server closed the connection before replying".to_owned(),
                    })
                }
            }
        }
    }

    /// [`ServiceClient::call`], backing off and retrying (up to
    /// `max_retries` times) when the server answers
    /// [`IrisError::Overloaded`], sleeping the server-suggested
    /// `retry_after_ms` between attempts. Other errors pass through.
    ///
    /// # Errors
    ///
    /// The final [`IrisError`] once retries are exhausted, or any
    /// non-backpressure error immediately.
    pub fn call_retrying(&mut self, req: &Request, max_retries: u32) -> IrisResult<Response> {
        let mut attempt = 0;
        loop {
            match self.call(req)?.into_result() {
                Ok(resp) => return Ok(resp),
                Err(IrisError::Overloaded { retry_after_ms }) if attempt < max_retries => {
                    attempt += 1;
                    std::thread::sleep(Duration::from_millis(retry_after_ms.max(1)));
                }
                Err(e) => return Err(e),
            }
        }
    }
}
