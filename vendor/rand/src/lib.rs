//! Offline stand-in for `rand` 0.9, covering the API subset this
//! workspace uses: `StdRng::seed_from_u64`, `Rng::random::<T>()`, and
//! `Rng::random_range` over half-open and inclusive numeric ranges.
//!
//! The generator is SplitMix64 — deterministic, seedable, and of good
//! enough statistical quality for the workspace's simulation and
//! property tests (which assert determinism and coarse distribution
//! shape, never exact streams).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A seedable random number generator (the subset of rand's trait the
/// workspace calls).
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform generation of a `T` over its "standard" domain: full range
/// for integers, `[0, 1)` for floats, fair coin for `bool`.
pub trait StandardUniform: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value in the range from `rng`.
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// The user-facing generator trait.
pub trait Rng {
    /// The raw 64-bit output stream; everything else derives from it.
    fn next_u64(&mut self) -> u64;

    /// Sample a `T` over its standard domain (see [`StandardUniform`]).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range`. Panics on an empty range.
    fn random_range<T, SR: SampleRange<T>>(&mut self, range: SR) -> T {
        range.sample_range(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A 53-bit-precision uniform draw in `[0, 1)`.
fn unit_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl StandardUniform for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardUniform for usize {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardUniform for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty f64 range");
        // 53-bit draw in [0, 1] inclusive.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + u * (end - start)
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let draw = (u128::from(rng.next_u64()) % width) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty integer range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let draw = (u128::from(rng.next_u64()) % width) as i128;
                (start as i128 + draw) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard generator: SplitMix64 in this stub. Deterministic
    /// for a given seed; not cryptographically secure (neither is the
    /// real `StdRng` guaranteed stable across versions, and the
    /// workspace relies only on seed-determinism within one build).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}
