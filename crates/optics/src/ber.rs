//! Pre-FEC bit-error-rate model for coherent DP-16QAM signals.
//!
//! The testbed experiments of §6.2 (Fig. 14) track the maximum pre-FEC BER
//! at the receivers while the network reconfigures every minute: the BER
//! must stay below the soft-decision FEC threshold of 2×10⁻² so that the
//! post-FEC BER is below 10⁻¹⁵. We reproduce that experiment in simulation
//! using the textbook Gaussian-noise BER expression for square 16-QAM,
//!
//! ```text
//!   BER ≈ (3/8) · erfc( sqrt( (2/5) · SNR ) )
//! ```
//!
//! with the SNR derived from the received OSNR. The mapping is calibrated
//! so that a signal at exactly the 400ZR receiver's minimum OSNR sits at
//! the SD-FEC threshold — the same operating point the paper's Fig. 8
//! budget arithmetic assumes.

/// Complementary error function via the Abramowitz & Stegun 7.1.26
/// polynomial (|error| < 1.5e-7), extended to negative arguments by
/// symmetry.
#[must_use]
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    poly * (-x * x).exp()
}

/// OSNR (dB, 0.1 nm) at which the model crosses the SD-FEC threshold.
///
/// Matches the 400ZR minimum receiver OSNR of [`crate::Transceiver::spec_400zr`].
pub const THRESHOLD_OSNR_DB: f64 = 26.0;

/// Pre-FEC BER of a DP-16QAM signal received at `osnr_db` (dB, 0.1 nm).
///
/// Calibrated such that `ber_16qam(THRESHOLD_OSNR_DB)` equals the
/// [`crate::SD_FEC_THRESHOLD`] of 2×10⁻². Clamped to [1e-18, 0.5]: a dead
/// channel (no light) is pure noise at BER 0.5.
#[must_use]
pub fn ber_16qam(osnr_db: f64) -> f64 {
    // Below 0 dB OSNR the DSP cannot lock at all: the receiver emits
    // random bits (BER 0.5). The Gaussian expression is a high-SNR
    // approximation and would asymptote to 3/8 instead.
    if osnr_db < 0.0 {
        return 0.5;
    }
    // Effective SNR argument: x = sqrt(10^((osnr - C)/10)) with C chosen so
    // that osnr = 26 dB gives erfc-argument solving (3/8)erfc(x) = 2e-2.
    const CALIBRATION_DB: f64 = 23.27;
    let snr = 10f64.powf((osnr_db - CALIBRATION_DB) / 10.0);
    let ber = 0.375 * erfc(snr.sqrt());
    ber.clamp(1e-18, 0.5)
}

/// Post-FEC BER estimate: below the SD-FEC threshold the decoder delivers
/// effectively error-free output (<1e-15, §6.2); above it, FEC fails and
/// the raw BER passes through.
#[must_use]
pub fn post_fec_ber(pre_fec: f64) -> f64 {
    if pre_fec < crate::SD_FEC_THRESHOLD {
        1e-15
    } else {
        pre_fec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(2.0) - 0.004_677_7).abs() < 1e-6);
        assert!((erfc(-1.0) - (2.0 - 0.157_299_2)).abs() < 1e-6);
    }

    #[test]
    fn erfc_is_monotone_decreasing() {
        let mut prev = erfc(0.0);
        for i in 1..40 {
            let v = erfc(i as f64 * 0.1);
            assert!(v < prev);
            prev = v;
        }
    }

    #[test]
    fn threshold_calibration() {
        let ber = ber_16qam(THRESHOLD_OSNR_DB);
        assert!(
            (ber - crate::SD_FEC_THRESHOLD).abs() / crate::SD_FEC_THRESHOLD < 0.05,
            "BER at threshold OSNR = {ber}"
        );
    }

    #[test]
    fn better_osnr_means_lower_ber() {
        assert!(ber_16qam(30.0) < ber_16qam(27.0));
        assert!(ber_16qam(27.0) < ber_16qam(26.0));
        // Healthy margins give the ~1e-3 pre-FEC BERs seen in Fig. 14.
        let healthy = ber_16qam(30.0);
        assert!(healthy < 2e-3 && healthy > 1e-6, "healthy BER = {healthy}");
    }

    #[test]
    fn dead_channel_is_half() {
        assert_eq!(ber_16qam(-100.0), 0.5);
    }

    #[test]
    fn post_fec_is_error_free_below_threshold() {
        assert!(post_fec_ber(1e-2) <= 1e-15);
        assert_eq!(post_fec_ber(0.1), 0.1);
    }
}
