//! Relaxed-OC3 route optimization: trade latency headroom for fiber.
//!
//! OC3 pins every DC pair to its shortest path, which is what the paper
//! evaluates ("Iris's most complex use case: distributed networks that
//! minimize latency"). §3.1 notes that dropping the constraint admits
//! simpler/cheaper designs: a pair with latency headroom can take a
//! slightly longer route that *shares* ducts other pairs already pay
//! for, turning two partially-filled fibers into one full one.
//!
//! The optimizer below works on a representative uniform hose matrix
//! (each DC splits its capacity evenly — the same model as
//! [`crate::oxc`]): pairs are routed greedily in decreasing demand order
//! over their k shortest paths, choosing the candidate that minimizes
//! the *marginal fiber-pairs leased*, subject to the SLA and a latency
//! stretch cap.

use crate::goals::DesignGoals;
use crate::paths::scenario_mask;
use iris_fibermap::Region;
use iris_netgraph::{k_shortest_paths, EdgeId};
use serde::{Deserialize, Serialize};

/// Result of relaxed routing, comparable with shortest-path routing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RelaxedRouting {
    /// Fiber pairs per duct under relaxed routing.
    pub fiber_pairs: Vec<u32>,
    /// Fiber pairs per duct under strict shortest-path routing of the
    /// same demands (the OC3 baseline).
    pub shortest_fiber_pairs: Vec<u32>,
    /// Chosen route per pair, as duct lists (triangular pair order).
    pub routes: Vec<Vec<EdgeId>>,
    /// Latency stretch per pair: chosen length / shortest length.
    pub stretch: Vec<f64>,
}

impl RelaxedRouting {
    /// Total fiber-pair-spans, relaxed.
    #[must_use]
    pub fn total_fiber_pair_spans(&self) -> u64 {
        self.fiber_pairs.iter().map(|&f| u64::from(f)).sum()
    }

    /// Total fiber-pair-spans, the OC3 baseline.
    #[must_use]
    pub fn shortest_total_fiber_pair_spans(&self) -> u64 {
        self.shortest_fiber_pairs
            .iter()
            .map(|&f| u64::from(f))
            .sum()
    }

    /// Fraction of fiber-pair-spans saved by relaxing OC3.
    #[must_use]
    pub fn savings_fraction(&self) -> f64 {
        let base = self.shortest_total_fiber_pair_spans();
        if base == 0 {
            return 0.0;
        }
        1.0 - self.total_fiber_pair_spans() as f64 / base as f64
    }

    /// Worst latency stretch across pairs.
    #[must_use]
    pub fn max_stretch(&self) -> f64 {
        self.stretch.iter().copied().fold(1.0, f64::max)
    }
}

/// Route the uniform hose matrix with up to `max_stretch` latency
/// inflation per pair (e.g. `1.3` = 30% longer than shortest), choosing
/// among `k` candidate paths per pair.
///
/// # Panics
///
/// Panics if `max_stretch < 1` or `k == 0`.
#[must_use]
pub fn route_relaxed(
    region: &Region,
    goals: &DesignGoals,
    k: usize,
    max_stretch: f64,
) -> RelaxedRouting {
    assert!(max_stretch >= 1.0, "stretch cap below 1 is impossible");
    assert!(k >= 1, "need at least one candidate path");
    region.validate();
    let g = region.map.graph();
    let m = g.edge_count();
    let lambda = u64::from(region.wavelengths_per_fiber);
    let mask = scenario_mask(region, goals, &[]);
    let n = region.dcs.len();

    // Uniform representative demands, largest first.
    let mut pairs: Vec<(usize, usize, u64)> = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            let share_a = region.capacity_wavelengths(a) / (n as u64 - 1).max(1);
            let share_b = region.capacity_wavelengths(b) / (n as u64 - 1).max(1);
            pairs.push((a, b, share_a.min(share_b)));
        }
    }
    let pair_count = pairs.len();
    let mut order: Vec<usize> = (0..pair_count).collect();
    order.sort_by(|&x, &y| pairs[y].2.cmp(&pairs[x].2));

    // Shortest-path baseline loads.
    let mut shortest_wl = vec![0u64; m];
    let mut shortest_len = vec![0.0f64; pair_count];
    let kpath_calls = iris_telemetry::global().counter("iris_planner_kpath_calls_total");
    let mut candidates: Vec<Vec<iris_netgraph::CandidatePath>> = Vec::with_capacity(pair_count);
    for &(a, b, wl) in &pairs {
        kpath_calls.inc();
        let cands = k_shortest_paths(g, region.dcs[a], region.dcs[b], k, &mask);
        assert!(!cands.is_empty(), "pair ({a},{b}) disconnected");
        shortest_len[candidates.len()] = cands[0].length_km;
        for &e in &cands[0].edges {
            shortest_wl[e] += wl;
        }
        candidates.push(cands);
    }
    let shortest_fiber_pairs: Vec<u32> = shortest_wl
        .iter()
        .map(|&wl| wl.div_ceil(lambda) as u32)
        .collect();

    // Greedy relaxed assignment.
    let mut load_wl = vec![0u64; m];
    let mut routes = vec![Vec::new(); pair_count];
    let mut stretch = vec![1.0f64; pair_count];
    for &pi in &order {
        let (_, _, wl) = pairs[pi];
        let best = candidates[pi]
            .iter()
            .filter(|c| {
                c.length_km <= goals.sla_km + 1e-9
                    && c.length_km <= shortest_len[pi] * max_stretch + 1e-9
            })
            .min_by_key(|c| {
                // Marginal fibers this candidate would lease, then length
                // as the tiebreak (prefer low latency at equal cost).
                let marginal: u64 = c
                    .edges
                    .iter()
                    .map(|&e| (load_wl[e] + wl).div_ceil(lambda) - load_wl[e].div_ceil(lambda))
                    .sum();
                (marginal, (c.length_km * 1000.0) as u64)
            })
            .expect("the shortest path always qualifies");
        for &e in &best.edges {
            load_wl[e] += wl;
        }
        stretch[pi] = best.length_km / shortest_len[pi].max(1e-9);
        routes[pi] = best.edges.clone();
    }
    let fiber_pairs: Vec<u32> = load_wl
        .iter()
        .map(|&wl| wl.div_ceil(lambda) as u32)
        .collect();

    // Greedy is a heuristic; the shortest-path assignment is always a
    // feasible solution, so never return anything worse than it.
    let relaxed_total: u64 = fiber_pairs.iter().map(|&f| u64::from(f)).sum();
    let shortest_total: u64 = shortest_fiber_pairs.iter().map(|&f| u64::from(f)).sum();
    if relaxed_total > shortest_total {
        let routes = candidates.iter().map(|c| c[0].edges.clone()).collect();
        return RelaxedRouting {
            fiber_pairs: shortest_fiber_pairs.clone(),
            shortest_fiber_pairs,
            routes,
            stretch: vec![1.0; pair_count],
        };
    }

    RelaxedRouting {
        fiber_pairs,
        shortest_fiber_pairs,
        routes,
        stretch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iris_fibermap::synth::{generate_metro, place_dcs};
    use iris_fibermap::{MetroParams, PlacementParams};

    fn region() -> Region {
        place_dcs(
            generate_metro(&MetroParams::default()),
            &PlacementParams {
                n_dcs: 6,
                ..PlacementParams::default()
            },
        )
    }

    #[test]
    fn stretch_one_reproduces_shortest_paths() {
        let r = region();
        let goals = DesignGoals::with_cuts(0);
        let routing = route_relaxed(&r, &goals, 4, 1.0);
        assert_eq!(routing.fiber_pairs, routing.shortest_fiber_pairs);
        assert!((routing.max_stretch() - 1.0).abs() < 1e-9);
        assert!(routing.savings_fraction().abs() < 1e-9);
    }

    #[test]
    fn relaxation_never_costs_more_fiber() {
        let r = region();
        let goals = DesignGoals::with_cuts(0);
        for stretch in [1.1, 1.3, 1.6] {
            let routing = route_relaxed(&r, &goals, 4, stretch);
            assert!(
                routing.total_fiber_pair_spans() <= routing.shortest_total_fiber_pair_spans(),
                "stretch {stretch}: relaxed {} > shortest {}",
                routing.total_fiber_pair_spans(),
                routing.shortest_total_fiber_pair_spans()
            );
        }
    }

    #[test]
    fn stretch_cap_is_respected() {
        let r = region();
        let goals = DesignGoals::with_cuts(0);
        let routing = route_relaxed(&r, &goals, 5, 1.25);
        assert!(routing.max_stretch() <= 1.25 + 1e-9);
        for s in &routing.stretch {
            assert!(*s >= 1.0 - 1e-9, "stretch below 1 is impossible");
        }
    }

    #[test]
    fn routes_respect_sla() {
        let r = region();
        let goals = DesignGoals::with_cuts(0);
        let routing = route_relaxed(&r, &goals, 5, 2.0);
        let g = r.map.graph();
        for route in &routing.routes {
            let len: f64 = route.iter().map(|&e| g.edge(e).length_km).sum();
            assert!(len <= goals.sla_km + 1e-6, "route {len:.1} km over SLA");
        }
    }

    #[test]
    fn wider_candidate_sets_help_or_tie() {
        let r = region();
        let goals = DesignGoals::with_cuts(0);
        let narrow = route_relaxed(&r, &goals, 1, 1.5);
        let wide = route_relaxed(&r, &goals, 6, 1.5);
        assert!(wide.total_fiber_pair_spans() <= narrow.total_fiber_pair_spans());
    }
}
