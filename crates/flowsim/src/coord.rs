//! The coordinator: turn a [`WorkSpec`] into FCT records by fanning
//! per-link jobs out to a backend.
//!
//! Two backends share one job shape (simulate link *l* of the spec's
//! decomposition):
//!
//! * [`Backend::InProcess`] — a scoped thread pool sized by
//!   `iris_planner::thread_count()` (so `IRIS_THREADS` governs it like
//!   every other sweep in the workspace). Zero configuration, no
//!   sockets; the default.
//! * [`Backend::Fleet`] — socket workers. One dispatcher thread per
//!   endpoint pulls jobs from a shared queue, so a slow or dead worker
//!   merely contributes less; a job interrupted by a worker death is
//!   requeued (bounded by [`FleetConfig::max_job_attempts`]) and the
//!   dispatcher reconnects with seeded decorrelated-jitter backoff. A
//!   permanently unreachable endpoint retires its dispatcher; the run
//!   fails only if *every* dispatcher retires with jobs outstanding.
//!
//! Either way the result is deterministic: jobs are pure functions of
//! the spec, results are keyed by link id, and the cross-link
//! combination is a commutative `max` — worker count, thread count,
//! scheduling, and chunk arrival order cannot change a byte of the
//! output.

use crate::cluster::{cluster_links, estimate_member, SlowdownTable};
use crate::decompose::{combine, Decomposition};
use crate::proto::{decode_response, encode_request, WorkSpec, WorkerRequest, WorkerResponse};
use iris_errors::{IrisError, IrisResult};
use iris_simnet::trace::FlowTrace;
use iris_simnet::FlowRecord;
use iris_wire::frame::{read_frame, write_frame, FrameEvent};
use iris_wire::Codec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::net::TcpStream;
use std::sync::Mutex;

/// Where link-simulation jobs run.
#[derive(Debug, Clone)]
pub enum Backend {
    /// Scoped thread pool in this process (the default).
    InProcess,
    /// Socket-connected [`crate::worker`] fleet.
    Fleet(FleetConfig),
}

/// Fleet backend tuning.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker addresses (`host:port`).
    pub endpoints: Vec<String>,
    /// Wire codec after negotiation ([`Codec::Binary`] by default —
    /// results are dense `f64` vectors).
    pub codec: Codec,
    /// Seed for the reconnect jitter streams (dispatcher `i` derives
    /// its own stream from `seed + i`).
    pub seed: u64,
    /// Times a single job may fail (across reconnects and endpoints)
    /// before the run is abandoned.
    pub max_job_attempts: u32,
    /// Consecutive failed connects before a dispatcher retires its
    /// endpoint.
    pub connect_attempts: u32,
    /// Jitter backoff floor, ms.
    pub backoff_base_ms: u64,
    /// Jitter backoff cap, ms.
    pub backoff_cap_ms: u64,
}

impl FleetConfig {
    /// Defaults for a given endpoint list.
    #[must_use]
    pub fn new(endpoints: Vec<String>) -> Self {
        Self {
            endpoints,
            codec: Codec::Binary,
            seed: 1,
            max_job_attempts: 5,
            connect_attempts: 8,
            backoff_base_ms: 10,
            backoff_cap_ms: 500,
        }
    }
}

/// Estimator configuration.
#[derive(Debug, Clone)]
pub struct EstimateConfig {
    /// Cluster links and simulate one representative per cluster
    /// (`false` = exact-per-link mode, every occupied link simulated).
    pub cluster: bool,
    /// Feature-distance threshold for joining a cluster.
    pub epsilon: f64,
    /// Job backend.
    pub backend: Backend,
}

impl Default for EstimateConfig {
    fn default() -> Self {
        Self {
            cluster: true,
            epsilon: 0.02,
            backend: Backend::InProcess,
        }
    }
}

/// The estimator's output.
#[derive(Debug)]
pub struct EstimateReport {
    /// Estimated completed-flow records, in flow arrival order.
    pub records: Vec<FlowRecord>,
    /// Admitted flows in the trace.
    pub flows: usize,
    /// Links carrying at least one flow.
    pub links_occupied: usize,
    /// Links actually simulated (cluster representatives).
    pub links_simulated: usize,
    /// Clusters formed (== `links_simulated`).
    pub clusters: usize,
}

/// Estimate FCTs for `spec`: generate the trace, decompose, cluster,
/// simulate, combine.
///
/// # Errors
///
/// Fails only on fleet-backend transport exhaustion; the in-process
/// backend is infallible.
pub fn estimate(spec: &WorkSpec, cfg: &EstimateConfig) -> IrisResult<EstimateReport> {
    let trace = spec.trace();
    estimate_with_trace(spec, &trace, cfg)
}

/// [`estimate`] for callers that already materialized the trace (e.g.
/// to also replay it through the exact engine for validation).
///
/// # Errors
///
/// See [`estimate`].
pub fn estimate_with_trace(
    spec: &WorkSpec,
    trace: &FlowTrace,
    cfg: &EstimateConfig,
) -> IrisResult<EstimateReport> {
    let telemetry = iris_telemetry::global();
    let dec = Decomposition::build(&spec.topo, trace);
    let occupied = dec.occupied_links();
    let clusters = if cfg.cluster {
        cluster_links(&spec.topo, &dec, &occupied, cfg.epsilon)
    } else {
        occupied
            .iter()
            .map(|&rep| crate::cluster::Cluster {
                rep,
                members: Vec::new(),
            })
            .collect()
    };
    let reps: Vec<usize> = clusters.iter().map(|c| c.rep).collect();
    let rep_finishes: Vec<Vec<f64>> = match &cfg.backend {
        Backend::InProcess => run_in_process(spec, &dec, &reps),
        Backend::Fleet(fleet) => run_fleet(spec, &dec, &reps, fleet)?,
    };
    telemetry
        .counter("iris_flowsim_links_simulated_total")
        .add(reps.len() as u64);

    let mut results: Vec<(usize, Vec<f64>)> = Vec::new();
    let mut estimated = 0u64;
    for (cluster, finishes) in clusters.iter().zip(rep_finishes) {
        if !cluster.members.is_empty() {
            let table = SlowdownTable::build(&spec.topo, &dec, cluster.rep, &finishes);
            for &m in &cluster.members {
                results.push((m, estimate_member(&spec.topo, &dec, m, &table)));
                estimated += 1;
            }
        }
        results.push((cluster.rep, finishes));
    }
    telemetry
        .counter("iris_flowsim_links_estimated_total")
        .add(estimated);
    let records = combine(&spec.topo, &dec, results);
    Ok(EstimateReport {
        records,
        flows: dec.flows.len(),
        links_occupied: occupied.len(),
        links_simulated: reps.len(),
        clusters: clusters.len(),
    })
}

/// Simulate `reps` on a scoped thread pool; results align with `reps`.
fn run_in_process(spec: &WorkSpec, dec: &Decomposition, reps: &[usize]) -> Vec<Vec<f64>> {
    let workers = iris_planner::thread_count().clamp(1, reps.len().max(1));
    if workers <= 1 {
        return reps.iter().map(|&l| dec.simulate(&spec.topo, l)).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Vec<f64>>>> = reps.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                iris_planner::with_nested_parallelism_disabled(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(&link) = reps.get(i) else { break };
                    let finishes = dec.simulate(&spec.topo, link);
                    *slots[i].lock().expect("slot lock") = Some(finishes);
                });
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("slot lock").expect("job ran"))
        .collect()
}

/// Decorrelated-jitter backoff (the service client's retry idiom):
/// each delay is uniform in `base..=prev * 3`, clamped to `cap`.
struct Jitter {
    base_ms: u64,
    cap_ms: u64,
    prev_ms: u64,
    rng: StdRng,
}

impl Jitter {
    fn new(base_ms: u64, cap_ms: u64, seed: u64) -> Self {
        let base_ms = base_ms.max(1);
        Self {
            base_ms,
            cap_ms: cap_ms.max(base_ms),
            prev_ms: base_ms,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn sleep(&mut self) {
        let hi = (self.prev_ms.saturating_mul(3)).max(self.base_ms + 1);
        let delay = self.rng.random_range(self.base_ms..=hi).min(self.cap_ms);
        self.prev_ms = delay;
        std::thread::sleep(std::time::Duration::from_millis(delay));
    }

    fn reset(&mut self) {
        self.prev_ms = self.base_ms;
    }
}

/// One dispatcher's live connection.
struct Conn {
    stream: TcpStream,
    codec: Codec,
}

/// Fan `reps` out to the fleet; results align with `reps`.
fn run_fleet(
    spec: &WorkSpec,
    dec: &Decomposition,
    reps: &[usize],
    fleet: &FleetConfig,
) -> IrisResult<Vec<Vec<f64>>> {
    if fleet.endpoints.is_empty() {
        return Err(IrisError::InvalidInput {
            detail: "fleet backend needs at least one worker endpoint".to_owned(),
        });
    }
    let telemetry = iris_telemetry::global();
    let queue: Mutex<VecDeque<(usize, u32)>> =
        Mutex::new(reps.iter().enumerate().map(|(i, _)| (i, 0)).collect());
    let slots: Vec<Mutex<Option<Vec<f64>>>> = reps.iter().map(|_| Mutex::new(None)).collect();
    let fatal: Mutex<Option<IrisError>> = Mutex::new(None);
    // Jobs not yet completed. An empty queue with `remaining > 0` means
    // another dispatcher holds a job in flight — it will either finish
    // it or requeue it, so idle dispatchers wait instead of exiting.
    // (An incomplete job is always either queued or in flight, so the
    // wait cannot deadlock; if every dispatcher retires unreachable the
    // scope still ends and the unfilled slot reports the failure.)
    let remaining = std::sync::atomic::AtomicUsize::new(reps.len());

    std::thread::scope(|s| {
        for (worker_idx, endpoint) in fleet.endpoints.iter().enumerate() {
            let queue = &queue;
            let slots = &slots;
            let fatal = &fatal;
            let remaining = &remaining;
            s.spawn(move || {
                use std::sync::atomic::Ordering;
                let mut jitter = Jitter::new(
                    fleet.backoff_base_ms,
                    fleet.backoff_cap_ms,
                    fleet.seed.wrapping_add(worker_idx as u64),
                );
                let mut conn: Option<Conn> = None;
                loop {
                    if fatal.lock().expect("fatal lock").is_some() {
                        return;
                    }
                    let popped = queue.lock().expect("queue lock").pop_front();
                    let Some((job, attempts)) = popped else {
                        if remaining.load(Ordering::Relaxed) == 0 {
                            return;
                        }
                        // Another dispatcher holds the outstanding
                        // job(s) in flight; it will finish or requeue.
                        std::thread::sleep(std::time::Duration::from_millis(1));
                        continue;
                    };
                    if attempts >= fleet.max_job_attempts {
                        *fatal.lock().expect("fatal lock") = Some(IrisError::RetriesExhausted {
                            phase: format!("flowsim link job {}", reps[job]),
                            attempts,
                            last_error: "worker fleet kept failing the job".to_owned(),
                        });
                        return;
                    }
                    // Ensure a connection with the spec installed.
                    if conn.is_none() {
                        match connect(endpoint, spec, fleet, &mut jitter) {
                            Ok(c) => {
                                conn = Some(c);
                                jitter.reset();
                            }
                            Err(_) => {
                                // Endpoint unreachable: requeue and
                                // retire this dispatcher.
                                queue.lock().expect("queue lock").push_back((job, attempts));
                                return;
                            }
                        }
                    }
                    let c = conn.as_mut().expect("connected");
                    match run_link(c, reps[job], dec.link_flows[reps[job]].len()) {
                        Ok(finishes) => {
                            *slots[job].lock().expect("slot lock") = Some(finishes);
                            remaining.fetch_sub(1, Ordering::Relaxed);
                            iris_telemetry::global()
                                .counter("iris_flowsim_jobs_total")
                                .add(1);
                        }
                        Err(_) => {
                            // Worker died or answered garbage: drop the
                            // connection, requeue with one more strike.
                            conn = None;
                            iris_telemetry::global()
                                .counter("iris_flowsim_job_retries_total")
                                .add(1);
                            queue
                                .lock()
                                .expect("queue lock")
                                .push_back((job, attempts + 1));
                            jitter.sleep();
                        }
                    }
                }
            });
        }
    });

    if let Some(e) = fatal.into_inner().expect("fatal lock") {
        return Err(e);
    }
    let mut out = Vec::with_capacity(reps.len());
    for (i, slot) in slots.into_iter().enumerate() {
        match slot.into_inner().expect("slot lock") {
            Some(f) => out.push(f),
            None => {
                return Err(IrisError::RetriesExhausted {
                    phase: format!("flowsim link job {}", reps[i]),
                    attempts: 0,
                    last_error: "every worker endpoint became unreachable".to_owned(),
                })
            }
        }
    }
    telemetry.counter("iris_flowsim_fleet_runs_total").add(1);
    Ok(out)
}

/// Connect to `endpoint`, negotiate the codec, install the spec.
/// Retries transport failures with jittered backoff up to
/// `connect_attempts` times.
fn connect(
    endpoint: &str,
    spec: &WorkSpec,
    fleet: &FleetConfig,
    jitter: &mut Jitter,
) -> IrisResult<Conn> {
    let mut last = IrisError::Io {
        detail: format!("never attempted {endpoint}"),
    };
    for attempt in 0..fleet.connect_attempts {
        if attempt > 0 {
            jitter.sleep();
        }
        match try_connect(endpoint, spec, fleet.codec) {
            Ok(conn) => {
                if attempt > 0 {
                    iris_telemetry::global()
                        .counter("iris_flowsim_reconnects_total")
                        .add(1);
                }
                return Ok(conn);
            }
            Err(e) => last = e,
        }
    }
    Err(last)
}

fn try_connect(endpoint: &str, spec: &WorkSpec, codec: Codec) -> IrisResult<Conn> {
    let stream = TcpStream::connect(endpoint).map_err(|e| IrisError::Io {
        detail: format!("connect {endpoint}: {e}"),
    })?;
    stream.set_nodelay(true).ok();
    let mut conn = Conn {
        stream,
        codec: Codec::Json,
    };
    if codec != Codec::Json {
        let ack = roundtrip(
            &mut conn,
            &WorkerRequest::Hello {
                codec: codec.name().to_owned(),
            },
        )?;
        match ack {
            WorkerResponse::HelloOk { .. } => conn.codec = codec,
            other => return Err(unexpected("Hello", &other)),
        }
    }
    let load = WorkerRequest::LoadSpec {
        spec: Box::new(spec.clone()),
    };
    match roundtrip(&mut conn, &load)? {
        WorkerResponse::SpecLoaded { .. } => Ok(conn),
        other => Err(unexpected("LoadSpec", &other)),
    }
}

/// Run one link job on a live connection, reassembling chunks.
fn run_link(conn: &mut Conn, link: usize, expected_flows: usize) -> IrisResult<Vec<f64>> {
    write_frame(
        &mut conn.stream,
        &encode_request(conn.codec, &WorkerRequest::RunLink { link })?,
    )?;
    let mut finishes: Vec<f64> = Vec::with_capacity(expected_flows);
    loop {
        match read_response(conn)? {
            WorkerResponse::LinkChunk {
                link: got,
                offset,
                finish_s,
                done,
            } => {
                if got != link || offset != finishes.len() {
                    return Err(IrisError::Decode {
                        detail: format!(
                            "link {link} chunk misaligned: got link {got} offset {offset}, \
                             expected offset {}",
                            finishes.len()
                        ),
                    });
                }
                finishes.extend_from_slice(&finish_s);
                if done {
                    if finishes.len() != expected_flows {
                        return Err(IrisError::Decode {
                            detail: format!(
                                "link {link}: worker returned {} finishes, expected {}",
                                finishes.len(),
                                expected_flows
                            ),
                        });
                    }
                    return Ok(finishes);
                }
            }
            other => return Err(unexpected("RunLink", &other)),
        }
    }
}

fn roundtrip(conn: &mut Conn, req: &WorkerRequest) -> IrisResult<WorkerResponse> {
    write_frame(&mut conn.stream, &encode_request(conn.codec, req)?)?;
    read_response(conn)
}

fn read_response(conn: &mut Conn) -> IrisResult<WorkerResponse> {
    match read_frame(&mut conn.stream)? {
        FrameEvent::Frame(payload) => decode_response(conn.codec, &payload),
        FrameEvent::Eof | FrameEvent::Idle => Err(IrisError::Io {
            detail: "worker closed the connection mid-reply".to_owned(),
        }),
    }
}

fn unexpected(what: &str, resp: &WorkerResponse) -> IrisError {
    match resp {
        WorkerResponse::Error { error } => error.clone(),
        other => IrisError::Decode {
            detail: format!("unexpected worker reply to {what}: {other:?}"),
        },
    }
}
