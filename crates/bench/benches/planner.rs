//! Criterion benches for the planning pipeline: Algorithm 1, amplifier
//! placement, cut-throughs, and the underlying graph algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iris_bench::{build_region, SweepPoint};
use iris_netgraph::{dijkstra, hose, Dinic};
use iris_planner::amplifiers::place_amplifiers;
use iris_planner::workload::{FamilyKind, FamilySpec, MatrixFamily};
use iris_planner::{
    plan_eps, plan_iris, provision, provision_robust_with_threads, provision_with_threads,
    DesignGoals, ScenarioEngine,
};
use std::hint::black_box;

fn bench_algorithm1(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1_provision");
    for n_dcs in [5usize, 10] {
        let region = build_region(&SweepPoint {
            map_seed: 1,
            n_dcs,
            f: 16,
            lambda: 40,
        });
        for cuts in [0usize, 1] {
            let goals = DesignGoals::with_cuts(cuts);
            group.bench_with_input(
                BenchmarkId::new(format!("{n_dcs}dc"), format!("{cuts}cuts")),
                &goals,
                |b, goals| b.iter(|| black_box(provision(&region, goals))),
            );
        }
    }
    group.finish();
}

/// The scenario engine against the sweep it was built for: incremental
/// path reuse across every `C(m, <=k)` failure scenario, plus explicit
/// 1-vs-N-thread provisioning so a regression in either the cache or
/// the chunk merge shows up as a wall-time delta.
fn bench_scenario_engine(c: &mut Criterion) {
    let region = build_region(&SweepPoint {
        map_seed: 1,
        n_dcs: 10,
        f: 16,
        lambda: 40,
    });
    let goals = DesignGoals::with_cuts(1);
    c.bench_function("scenario_engine_sweep_10dc_1cut", |b| {
        b.iter(|| {
            let mut engine = ScenarioEngine::new(&region, &goals);
            let mut total_edges = 0usize;
            engine.for_each_scenario(|_, view| {
                total_edges += view.paths().map(|p| p.edges.len()).sum::<usize>();
            });
            black_box(total_edges)
        })
    });
    for threads in [1usize, 4] {
        c.bench_function(format!("provision_10dc_1cut_{threads}thread"), |b| {
            b.iter(|| black_box(provision_with_threads(&region, &goals, threads)))
        });
    }
}

/// Robust provisioning over a burst workload family: the family-max
/// per-edge load replaces the hose max-flow inside Algorithm 1, so this
/// tracks both the matrix loop and the pair-set memo. The family is
/// built once outside the timer — matrix generation is not what is
/// being measured.
fn bench_robust_provision(c: &mut Criterion) {
    let region = build_region(&SweepPoint {
        map_seed: 1,
        n_dcs: 10,
        f: 16,
        lambda: 40,
    });
    let goals = DesignGoals::with_cuts(1);
    let spec = FamilySpec::new(FamilyKind::Burst, 8, 42);
    let family = MatrixFamily::build(&region, &goals, &spec);
    for threads in [1usize, 4] {
        c.bench_function(format!("provision_robust_10dc_1cut_{threads}thread"), |b| {
            b.iter(|| {
                black_box(provision_robust_with_threads(
                    &region, &goals, &family, threads,
                ))
            })
        });
    }
}

fn bench_full_plans(c: &mut Criterion) {
    let region = build_region(&SweepPoint {
        map_seed: 2,
        n_dcs: 8,
        f: 16,
        lambda: 40,
    });
    let goals = DesignGoals::with_cuts(1);
    c.bench_function("plan_iris_8dc_1cut", |b| {
        b.iter(|| black_box(plan_iris(&region, &goals)))
    });
    c.bench_function("plan_eps_8dc_1cut", |b| {
        b.iter(|| black_box(plan_eps(&region, &goals)))
    });
    c.bench_function("amplifier_placement_8dc_1cut", |b| {
        b.iter(|| black_box(place_amplifiers(&region, &goals)))
    });
}

fn bench_graph_primitives(c: &mut Criterion) {
    let region = build_region(&SweepPoint {
        map_seed: 3,
        n_dcs: 10,
        f: 16,
        lambda: 40,
    });
    let g = region.map.graph();
    let disabled = vec![false; g.edge_count()];
    c.bench_function("dijkstra_region_graph", |b| {
        b.iter(|| black_box(dijkstra(g, region.dcs[0], &disabled)))
    });

    // Hose max-flow over a 10-DC clique of pairs.
    let caps: Vec<u64> = (0..10).map(|_| 640u64).collect();
    let pairs: Vec<(usize, usize)> = (0..10)
        .flat_map(|i| ((i + 1)..10).map(move |j| (i, j)))
        .collect();
    c.bench_function("hose_max_edge_load_45pairs", |b| {
        b.iter(|| black_box(hose::max_edge_load(&|d| caps[d], &pairs)))
    });

    c.bench_function("dinic_grid_maxflow", |b| {
        b.iter(|| {
            let side = 8;
            let mut d = Dinic::new(side * side);
            for y in 0..side {
                for x in 0..side {
                    let id = y * side + x;
                    if x + 1 < side {
                        d.add_bidirectional_edge(id, id + 1, 7);
                    }
                    if y + 1 < side {
                        d.add_bidirectional_edge(id, id + side, 7);
                    }
                }
            }
            black_box(d.max_flow(0, side * side - 1))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_algorithm1, bench_scenario_engine, bench_robust_provision, bench_full_plans,
        bench_graph_primitives
}
criterion_main!(benches);
