//! Primitives of the compact binary payload encoding.
//!
//! Little-endian, tag-prefixed, no self-description — the message
//! layout lives in the crate that owns the request/response enums;
//! this module holds the value-level encoding every such crate shares:
//!
//! * `u32`/`u64` → fixed-width little-endian; `usize` travels as `u64`
//! * `f64` → IEEE-754 bits, little-endian
//! * `bool` → one byte, `0`/`1` only
//! * `String` → `u32` byte length + UTF-8 bytes
//! * `Vec<T>` → `u32` element count + elements
//!
//! Writer functions keep the terse `w_*` names their call sites read
//! naturally as (`w_u32(buf, v)` — "write a u32"). Encoding is
//! infallible; [`Reader`] is where all the bounds discipline lives:
//! every length/count is checked against the bytes actually remaining
//! in the payload *before* any allocation, so a hostile 4 GiB string
//! header inside a 1 MiB frame is rejected without reserving memory.

use iris_errors::{IrisError, IrisResult};

fn decode_err(detail: impl Into<String>) -> IrisError {
    IrisError::Decode {
        detail: detail.into(),
    }
}

// ---------------------------------------------------------------
// writer
// ---------------------------------------------------------------

/// Append one byte (enum tags, small counters).
pub fn w_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Append a `u32`, little-endian.
pub fn w_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64`, little-endian.
pub fn w_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `usize` as a `u64`.
pub fn w_usize(buf: &mut Vec<u8>, v: usize) {
    w_u64(buf, v as u64);
}

/// Append an `f64` as its IEEE-754 bits, little-endian.
pub fn w_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Append a `bool` as one `0`/`1` byte.
pub fn w_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(u8::from(v));
}

/// Append a string as `u32` byte length + UTF-8 bytes.
pub fn w_str(buf: &mut Vec<u8>, s: &str) {
    // Frame payloads are capped at 1 MiB, far below u32::MAX; the
    // cast cannot truncate anything that fits a frame.
    w_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Append an element count as a `u32`.
pub fn w_count(buf: &mut Vec<u8>, n: usize) {
    w_u32(buf, n as u32);
}

/// Append a `Vec<usize>` as count + elements.
pub fn w_vec_usize(buf: &mut Vec<u8>, v: &[usize]) {
    w_count(buf, v.len());
    for &x in v {
        w_usize(buf, x);
    }
}

/// Append a `Vec<f64>` as count + IEEE-754 bit patterns.
pub fn w_vec_f64(buf: &mut Vec<u8>, v: &[f64]) {
    w_count(buf, v.len());
    for &x in v {
        w_f64(buf, x);
    }
}

// ---------------------------------------------------------------
// reader
// ---------------------------------------------------------------

/// Cursor over a payload. Every `take` checks remaining bytes
/// first; length headers are validated against the remainder before
/// any buffer is reserved.
pub struct Reader<'a> {
    b: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Start decoding `payload`.
    #[must_use]
    pub fn new(payload: &'a [u8]) -> Self {
        Self { b: payload }
    }

    /// Reject trailing bytes once a value has been decoded.
    ///
    /// # Errors
    ///
    /// [`IrisError::Decode`] when bytes remain.
    pub fn finish(&self, what: &str) -> IrisResult<()> {
        if self.b.is_empty() {
            Ok(())
        } else {
            Err(decode_err(format!(
                "binary {what}: {} trailing bytes after value",
                self.b.len()
            )))
        }
    }

    fn take(&mut self, n: usize, what: &str) -> IrisResult<&'a [u8]> {
        if self.b.len() < n {
            return Err(decode_err(format!(
                "binary payload truncated reading {what}: need {n} bytes, have {}",
                self.b.len()
            )));
        }
        let (head, rest) = self.b.split_at(n);
        self.b = rest;
        Ok(head)
    }

    /// One byte (enum tags).
    ///
    /// # Errors
    ///
    /// [`IrisError::Decode`] on truncation.
    pub fn u8(&mut self, what: &str) -> IrisResult<u8> {
        Ok(self.take(1, what)?[0])
    }

    /// A little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`IrisError::Decode`] on truncation.
    pub fn u32(&mut self, what: &str) -> IrisResult<u32> {
        let raw = self.take(4, what)?;
        Ok(u32::from_le_bytes([raw[0], raw[1], raw[2], raw[3]]))
    }

    /// A little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`IrisError::Decode`] on truncation.
    pub fn u64(&mut self, what: &str) -> IrisResult<u64> {
        let raw = self.take(8, what)?;
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(raw);
        Ok(u64::from_le_bytes(bytes))
    }

    /// A `usize` carried as `u64` (rejects values over the platform
    /// width).
    ///
    /// # Errors
    ///
    /// [`IrisError::Decode`] on truncation or overflow.
    pub fn usize_(&mut self, what: &str) -> IrisResult<usize> {
        let v = self.u64(what)?;
        usize::try_from(v).map_err(|_| decode_err(format!("binary {what}: {v} exceeds usize")))
    }

    /// An `f64` from its IEEE-754 bits.
    ///
    /// # Errors
    ///
    /// [`IrisError::Decode`] on truncation.
    pub fn f64(&mut self, what: &str) -> IrisResult<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// A `bool` from one `0`/`1` byte.
    ///
    /// # Errors
    ///
    /// [`IrisError::Decode`] on truncation or any other byte value.
    pub fn bool(&mut self, what: &str) -> IrisResult<bool> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(decode_err(format!(
                "binary {what}: invalid bool byte {other}"
            ))),
        }
    }

    /// A length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`IrisError::Decode`] on truncation, a length exceeding the
    /// remaining payload, or invalid UTF-8.
    pub fn string(&mut self, what: &str) -> IrisResult<String> {
        let len = self.u32(what)? as usize;
        // `take` is the pre-allocation bounds check: a length
        // larger than the remaining payload fails here, before the
        // String is built.
        let raw = self.take(len, what)?;
        std::str::from_utf8(raw)
            .map(str::to_owned)
            .map_err(|e| decode_err(format!("binary {what}: invalid UTF-8: {e}")))
    }

    /// Read an element count, rejecting counts whose minimum
    /// encoding could not fit the remaining payload (so `Vec`
    /// capacity is never reserved off attacker-controlled numbers).
    ///
    /// # Errors
    ///
    /// [`IrisError::Decode`] on truncation or an impossible count.
    pub fn count(&mut self, min_item: usize, what: &str) -> IrisResult<usize> {
        let n = self.u32(what)? as usize;
        if n.saturating_mul(min_item) > self.b.len() {
            return Err(decode_err(format!(
                "binary {what}: {n} elements cannot fit {} remaining bytes",
                self.b.len()
            )));
        }
        Ok(n)
    }

    /// A count-prefixed `Vec<usize>`.
    ///
    /// # Errors
    ///
    /// [`IrisError::Decode`] on truncation or an impossible count.
    pub fn vec_usize(&mut self, what: &str) -> IrisResult<Vec<usize>> {
        let n = self.count(8, what)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.usize_(what)?);
        }
        Ok(v)
    }

    /// A count-prefixed `Vec<f64>`.
    ///
    /// # Errors
    ///
    /// [`IrisError::Decode`] on truncation or an impossible count.
    pub fn vec_f64(&mut self, what: &str) -> IrisResult<Vec<f64>> {
        let n = self.count(8, what)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.f64(what)?);
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let mut buf = Vec::new();
        w_u8(&mut buf, 7);
        w_u32(&mut buf, 0xDEAD_BEEF);
        w_u64(&mut buf, u64::MAX - 1);
        w_usize(&mut buf, 42);
        w_f64(&mut buf, -0.125);
        w_bool(&mut buf, true);
        w_str(&mut buf, "héllo");
        w_vec_usize(&mut buf, &[1, 2, 3]);
        w_vec_f64(&mut buf, &[0.5, f64::INFINITY]);

        let mut rd = Reader::new(&buf);
        assert_eq!(rd.u8("a").unwrap(), 7);
        assert_eq!(rd.u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(rd.u64("c").unwrap(), u64::MAX - 1);
        assert_eq!(rd.usize_("d").unwrap(), 42);
        assert_eq!(rd.f64("e").unwrap(), -0.125);
        assert!(rd.bool("f").unwrap());
        assert_eq!(rd.string("g").unwrap(), "héllo");
        assert_eq!(rd.vec_usize("h").unwrap(), vec![1, 2, 3]);
        assert_eq!(rd.vec_f64("i").unwrap(), vec![0.5, f64::INFINITY]);
        rd.finish("all").unwrap();
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let rd = Reader::new(&[0u8]);
        let err = rd.finish("value").unwrap_err();
        assert_eq!(err.code(), "decode");
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn hostile_lengths_fail_before_allocation() {
        // String header claiming u32::MAX bytes inside a tiny payload.
        let mut buf = Vec::new();
        w_u32(&mut buf, u32::MAX);
        buf.extend_from_slice(b"hi");
        let mut rd = Reader::new(&buf);
        assert_eq!(rd.string("s").unwrap_err().code(), "decode");

        // Vec count claiming 500M elements.
        let mut buf = Vec::new();
        w_u32(&mut buf, 500_000_000);
        buf.extend_from_slice(&[0u8; 16]);
        let mut rd = Reader::new(&buf);
        let err = rd.vec_usize("v").unwrap_err();
        assert!(err.to_string().contains("cannot fit"), "{err}");
    }

    #[test]
    fn bad_bool_bytes_are_rejected() {
        let mut rd = Reader::new(&[2u8]);
        let err = rd.bool("flag").unwrap_err();
        assert!(err.to_string().contains("bool"), "{err}");
    }

    #[test]
    fn truncation_names_the_field() {
        let mut rd = Reader::new(&[1u8, 2]);
        let err = rd.u32("epoch").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("epoch"), "{msg}");
        assert!(msg.contains("need 4"), "{msg}");
    }
}
