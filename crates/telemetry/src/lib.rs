//! Workspace-wide observability: lock-free counters and gauges,
//! log-bucketed histograms with quantile export, RAII span timers, a
//! process-global registry that snapshots to JSON or Prometheus text,
//! and request-scoped tracing backed by a lock-free flight recorder
//! (see the [`trace`] module).
//!
//! Metric names follow Prometheus conventions:
//! `iris_<crate>_<what>_<unit-or-total>`, e.g.
//! `iris_simnet_events_total` or `iris_control_phase_ms{phase="drain"}`.
//! A label pair is folded into the name with [`labeled`]; the registry
//! treats the full string as the key and the Prometheus exporter emits
//! it verbatim, which renders correctly for single-label series.
//!
//! Recording is cheap (one atomic RMW for counters/gauges, two plus a
//! CAS loop for histograms) so instrumentation can stay on in hot
//! simulation loops. Creation/lookup takes a registry read lock — hold
//! the returned `Arc` rather than re-looking up per event.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod histogram;
mod registry;
mod span;
pub mod trace;

pub use histogram::Histogram;
pub use registry::{global, HistogramSummary, Registry, Snapshot};
pub use span::Span;

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    #[must_use]
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (level, high-water mark, …).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    #[must_use]
    pub const fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjust by a (possibly negative) delta.
    pub fn add(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    /// Raise the value to `v` if it is below (high-water mark).
    pub fn set_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Fold one label pair into a metric name:
/// `labeled("iris_control_phase_ms", "phase", "drain")` →
/// `iris_control_phase_ms{phase="drain"}`.
#[must_use]
pub fn labeled(base: &str, key: &str, value: &str) -> String {
    format!("{base}{{{key}=\"{value}\"}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_tracks_level_and_high_water() {
        let g = Gauge::new();
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        g.set_max(10);
        g.set_max(7);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn labeled_formats_prometheus_style() {
        assert_eq!(
            labeled("iris_control_phase_ms", "phase", "drain"),
            "iris_control_phase_ms{phase=\"drain\"}"
        );
    }
}
