//! Region-scale flow-level simulation of circuit transience (§6.3).
//!
//! Iris reconfigures optical circuits in response to failures and slow
//! traffic changes; during a reconfiguration the moving fibers carry no
//! traffic for ~70 ms. The paper studies the application-layer impact
//! with flow-level simulations comparing flow completion times (FCTs) on
//! Iris against an always-on EPS fabric, across utilizations, traffic
//! change magnitudes, reconfiguration intervals, and flow-size
//! distributions (Figs. 17-18).
//!
//! This crate reproduces that study:
//!
//! * [`workloads`] — empirical flow-size distributions (pFabric
//!   web-search; Facebook web / hadoop / cache);
//! * [`traffic`] — heavy-tailed DC-pair traffic matrices with bounded or
//!   unbounded change;
//! * [`topology`] — the simulated link/route model, derivable from a
//!   planned region or built synthetically;
//! * [`engine`] — a deterministic event-driven fluid simulator with
//!   max-min fair rate allocation;
//! * [`experiment`] — paired Iris-vs-EPS runs sharing identical arrival
//!   sequences, reporting percentile FCT slowdowns.
//!
//! The simulator is *fluid*: flows receive their max-min fair share
//! instantaneously (no packets, no transport dynamics). The paper drains
//! circuits before switching, so loss is out of scope; what matters is
//! the transient capacity reduction, which the fluid model captures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod experiment;
pub mod topology;
pub mod trace;
pub mod traffic;
pub mod workloads;

pub use engine::{FlowRecord, RunManifest, SimConfig, SimRun, Simulator};
pub use experiment::{run_comparison, ComparisonResult, ExperimentConfig};
pub use topology::SimTopology;
pub use trace::{FlowTrace, TraceArrival, TraceFlow};
pub use traffic::TrafficMatrix;
pub use workloads::FlowSizeDist;
