//! Algorithm 1 — topology & capacity planning (§4.1).
//!
//! For every failure scenario up to the cut tolerance, route every DC pair
//! over its unique shortest path, and set each duct's capacity to the
//! worst-case hose-model load it must carry across scenarios. Ducts that
//! end up with zero capacity — and huts with no capacitated ducts — are
//! simply not part of the topology, so Algorithm 1 answers all three of
//! the §2 questions at once: which ducts are used, at what capacity, and
//! which huts house switching equipment.

use crate::engine::{self, ScenarioEngine, ScenarioView};
use crate::goals::DesignGoals;
use crate::paths::{scenario_paths, DcPath};
use iris_fibermap::{Region, SiteId, SiteKind};
use iris_netgraph::{EdgeId, FailureScenarios, HoseScratch};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A DC pair that cannot meet the goals in some failure scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InfeasiblePair {
    /// DC indices (into `region.dcs`).
    pub pair: (usize, usize),
    /// The failure scenario (failed duct ids) exhibiting the problem.
    pub scenario: Vec<EdgeId>,
}

/// The output of Algorithm 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Provisioning {
    /// Worst-case hose load per duct, in wavelengths (indexed by duct id;
    /// zero for unused ducts). May be half-integral.
    pub edge_capacity_wl: Vec<f64>,
    /// DC pairs that were unreachable (or SLA-violating) in at least one
    /// scenario. Empty for a feasible instance.
    pub infeasible: Vec<InfeasiblePair>,
    /// Number of failure scenarios examined.
    pub scenarios_examined: u64,
}

impl Provisioning {
    /// Ducts with non-zero provisioned capacity.
    #[must_use]
    pub fn used_edges(&self) -> Vec<EdgeId> {
        (0..self.edge_capacity_wl.len())
            .filter(|&e| self.edge_capacity_wl[e] > 0.0)
            .collect()
    }

    /// Fiber pairs to lease per duct: the hose load rounded up to whole
    /// fibers of `lambda` wavelengths each (zero where unused).
    #[must_use]
    pub fn edge_fiber_pairs(&self, lambda: u32) -> Vec<u32> {
        self.edge_capacity_wl
            .iter()
            .map(|&wl| (wl / f64::from(lambda)).ceil() as u32)
            .collect()
    }

    /// Huts that terminate at least one used duct — these house switching
    /// equipment; the rest of the fiber map is not built out.
    #[must_use]
    pub fn used_huts(&self, region: &Region) -> Vec<SiteId> {
        let g = region.map.graph();
        let mut used = vec![false; g.node_count()];
        for e in self.used_edges() {
            let edge = g.edge(e);
            used[edge.u] = true;
            used[edge.v] = true;
        }
        (0..g.node_count())
            .filter(|&n| used[n] && region.map.site(n).kind == SiteKind::Hut)
            .collect()
    }

    /// Total leased fiber pairs across all ducts.
    #[must_use]
    pub fn total_fiber_pairs(&self, lambda: u32) -> u64 {
        self.edge_fiber_pairs(lambda)
            .iter()
            .map(|&f| u64::from(f))
            .sum()
    }
}

/// Per-chunk accumulator of [`provision_chunk`], merged by
/// [`provision_with_threads`].
struct ChunkResult {
    capacity: Vec<f64>,
    infeasible: Vec<InfeasiblePair>,
    scenarios_examined: u64,
    hose_lookups: u64,
    hose_invocations: u64,
}

/// Provision over one contiguous slice of the scenario enumeration.
///
/// All state is chunk-local: the scenario engine (with its baseline path
/// cache), the hose-load memo, the Dinic arena and the per-edge pair
/// buffers. Duct capacities are worst-case maxima, so chunk results merge
/// by elementwise max regardless of how scenarios were partitioned.
fn provision_chunk(
    region: &Region,
    goals: &DesignGoals,
    caps: &[u64],
    chunk: &[Vec<EdgeId>],
) -> ChunkResult {
    let m = region.map.graph().edge_count();
    let mut engine = ScenarioEngine::new(region, goals);
    let mut capacity = vec![0.0f64; m];
    let mut infeasible = Vec::new();
    // Memoized hose loads, keyed by the pair-index set crossing a duct
    // (pair indices are the engine's stable ids for DC pairs, so equal
    // keys mean equal pair sets). Boxed-slice keys with `&[u32]` lookups
    // avoid an allocation on every memo hit.
    let mut memo: HashMap<Box<[u32]>, f64> = HashMap::new();
    let mut hose = HoseScratch::new();
    // pairs_on_edge[e] — pair indices crossing duct `e` in the current
    // scenario; `touched` lists the non-empty entries so clearing is
    // O(touched), not O(m).
    let mut pairs_on_edge: Vec<Vec<u32>> = vec![Vec::new(); m];
    let mut touched: Vec<EdgeId> = Vec::new();
    let mut pair_buf: Vec<(usize, usize)> = Vec::new();
    let mut hose_lookups = 0u64;
    let mut hose_invocations = 0u64;

    engine.for_scenarios(chunk, |scenario, view: ScenarioView<'_>| {
        for pair in view.unreachable() {
            infeasible.push(InfeasiblePair {
                pair,
                scenario: scenario.to_vec(),
            });
        }
        // Group pairs by duct. Paths iterate in ascending pair-index
        // order, so each per-edge list is already sorted.
        for (idx, p) in view.indexed_paths() {
            for &e in &p.edges {
                if pairs_on_edge[e].is_empty() {
                    touched.push(e);
                }
                pairs_on_edge[e].push(idx);
            }
        }
        for &e in &touched {
            let pairs = &pairs_on_edge[e];
            hose_lookups += 1;
            let load = if let Some(&l) = memo.get(pairs.as_slice()) {
                l
            } else {
                hose_invocations += 1;
                pair_buf.clear();
                pair_buf.extend(pairs.iter().map(|&i| view.pair(i)));
                let l = hose.max_edge_load(&|dc| caps[dc], &pair_buf);
                memo.insert(pairs.clone().into_boxed_slice(), l);
                l
            };
            if load > capacity[e] {
                capacity[e] = load;
            }
        }
        for e in touched.drain(..) {
            pairs_on_edge[e].clear();
        }
    });

    ChunkResult {
        capacity,
        infeasible,
        scenarios_examined: chunk.len() as u64,
        hose_lookups,
        hose_invocations,
    }
}

/// Run Algorithm 1 on a region with the default thread count
/// ([`engine::thread_count`]: `IRIS_THREADS`, programmatic default, or
/// the machine's available parallelism).
///
/// The hose max-flow for a duct depends only on the set of DC pairs
/// crossing it, so results are memoized by pair set — across the thousands
/// of failure scenarios the same sets recur constantly.
#[must_use]
pub fn provision(region: &Region, goals: &DesignGoals) -> Provisioning {
    provision_with_threads(region, goals, engine::thread_count())
}

/// Run Algorithm 1 with an explicit thread count.
///
/// The scenario enumeration is split into `threads` contiguous chunks
/// processed by scoped worker threads, each with its own scenario engine
/// and hose memo. Because duct capacities merge by elementwise max (a
/// commutative, associative reduction over finite values) and infeasible
/// pairs are concatenated in chunk order (= global scenario order), the
/// output is **bit-identical for every thread count**.
///
/// # Panics
///
/// Panics if a worker thread panics.
#[must_use]
pub fn provision_with_threads(
    region: &Region,
    goals: &DesignGoals,
    threads: usize,
) -> Provisioning {
    let telemetry = iris_telemetry::global();
    let wall =
        iris_telemetry::Span::enter_ms(telemetry.histogram("iris_planner_provision_wall_ms"));
    region.validate();
    let g = region.map.graph();
    let m = g.edge_count();
    let caps: Vec<u64> = (0..region.dcs.len())
        .map(|i| region.capacity_wavelengths(i))
        .collect();

    let scenarios: Vec<Vec<EdgeId>> = FailureScenarios::new(m, goals.max_cuts).collect();
    let threads = threads.max(1).min(scenarios.len().max(1));

    let results: Vec<ChunkResult> = if threads == 1 {
        vec![provision_chunk(region, goals, &caps, &scenarios)]
    } else {
        let chunk_size = scenarios.len().div_ceil(threads);
        let chunks: Vec<&[Vec<EdgeId>]> = scenarios.chunks(chunk_size).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| {
                    let caps = &caps;
                    s.spawn(move || provision_chunk(region, goals, caps, chunk))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("provision worker panicked"))
                .collect()
        })
    };

    let mut capacity = vec![0.0f64; m];
    let mut infeasible = Vec::new();
    let mut scenarios_examined = 0u64;
    let mut hose_lookups = 0u64;
    let mut hose_invocations = 0u64;
    for (i, r) in results.into_iter().enumerate() {
        for (c, rc) in capacity.iter_mut().zip(&r.capacity) {
            if *rc > *c {
                *c = *rc;
            }
        }
        infeasible.extend(r.infeasible);
        scenarios_examined += r.scenarios_examined;
        hose_lookups += r.hose_lookups;
        hose_invocations += r.hose_invocations;
        telemetry
            .counter(&iris_telemetry::labeled(
                "iris_planner_sweep_thread_scenarios_total",
                "thread",
                &i.to_string(),
            ))
            .add(r.scenarios_examined);
    }

    telemetry
        .counter("iris_planner_scenarios_total")
        .add(scenarios_examined);
    telemetry
        .counter("iris_planner_hose_maxflow_total")
        .add(hose_invocations);
    telemetry
        .counter("iris_planner_hose_memo_hits_total")
        .add(hose_lookups - hose_invocations);
    wall.finish();

    Provisioning {
        edge_capacity_wl: capacity,
        infeasible,
        scenarios_examined,
    }
}

/// The naive §4.1 provisioning (sum of `min(C_u, C_v)` per crossing pair),
/// kept as an ablation to quantify the over-provisioning it causes.
#[must_use]
pub fn provision_naive(region: &Region, goals: &DesignGoals) -> Provisioning {
    region.validate();
    let m = region.map.graph().edge_count();
    let mut capacity = vec![0.0f64; m];
    let mut load = vec![0.0f64; m];
    let mut infeasible = Vec::new();
    let mut scenarios_examined = 0u64;
    let caps: Vec<u64> = (0..region.dcs.len())
        .map(|i| region.capacity_wavelengths(i))
        .collect();

    let mut engine = ScenarioEngine::new(region, goals);
    engine.for_each_scenario(|scenario, view| {
        scenarios_examined += 1;
        for pair in view.unreachable() {
            infeasible.push(InfeasiblePair {
                pair,
                scenario: scenario.to_vec(),
            });
        }
        load.fill(0.0);
        for p in view.paths() {
            let demand = caps[p.a].min(caps[p.b]) as f64;
            for &e in &p.edges {
                load[e] += demand;
            }
        }
        for e in 0..m {
            capacity[e] = capacity[e].max(load[e]);
        }
    });

    Provisioning {
        edge_capacity_wl: capacity,
        infeasible,
        scenarios_examined,
    }
}

/// Check that provisioned capacities suffice for a *specific* traffic
/// matrix routed over nominal shortest paths. Used by tests as an
/// independent oracle of the hose computation.
///
/// `demands[i][j]` is in wavelengths; only `i < j` entries are read.
#[must_use]
pub fn supports_matrix(
    region: &Region,
    goals: &DesignGoals,
    prov: &Provisioning,
    demands: &[Vec<f64>],
) -> bool {
    let (paths, _) = scenario_paths(region, goals, &[]);
    let mut load = vec![0.0f64; region.map.graph().edge_count()];
    for p in &paths {
        let d = demands[p.a][p.b];
        for &e in &p.edges {
            load[e] += d;
        }
    }
    load.iter()
        .zip(&prov.edge_capacity_wl)
        .all(|(&l, &c)| l <= c + 1e-6)
}

/// All nominal-scenario shortest paths (convenience for downstream
/// consumers that only need the no-failure topology).
#[must_use]
pub fn nominal_paths(region: &Region, goals: &DesignGoals) -> Vec<DcPath> {
    scenario_paths(region, goals, &[]).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use iris_fibermap::{synth, FiberMap, MetroParams, PlacementParams};
    use iris_geo::Point;

    fn small_region() -> Region {
        synth::place_dcs(
            synth::generate_metro(&MetroParams {
                n_huts: 10,
                ..MetroParams::default()
            }),
            &PlacementParams {
                n_dcs: 4,
                ..PlacementParams::default()
            },
        )
    }

    /// Hand-built hub-and-spoke: 4 DCs around one hut.
    fn star_region(capacity_fibers: u32) -> Region {
        let mut map = FiberMap::new();
        let hub = map.add_site(SiteKind::Hut, Point::new(0.0, 0.0));
        let mut dcs = Vec::new();
        for (x, y) in [(10.0, 0.0), (-10.0, 0.0), (0.0, 10.0), (0.0, -10.0)] {
            let d = map.add_site(SiteKind::DataCenter, Point::new(x, y));
            map.add_duct(d, hub, 12.0);
            dcs.push(d);
        }
        Region {
            map,
            dcs,
            capacity_fibers: vec![capacity_fibers; 4],
            wavelengths_per_fiber: 40,
            gbps_per_wavelength: 400.0,
        }
    }

    #[test]
    fn star_provisions_each_spoke_at_dc_capacity() {
        let r = star_region(10);
        let prov = provision(&r, &DesignGoals::with_cuts(0));
        // Every spoke carries its DC's full hose capacity: 400 wavelengths.
        for e in 0..4 {
            assert!(
                (prov.edge_capacity_wl[e] - 400.0).abs() < 1e-6,
                "spoke {e} = {}",
                prov.edge_capacity_wl[e]
            );
        }
        assert_eq!(prov.edge_fiber_pairs(40), vec![10, 10, 10, 10]);
        assert!(prov.infeasible.is_empty());
        assert_eq!(prov.used_huts(&r), vec![0]);
    }

    #[test]
    fn star_with_cut_tolerance_reports_infeasibility() {
        // A star has no alternate routes: any single cut isolates a DC.
        let r = star_region(10);
        let prov = provision(&r, &DesignGoals::with_cuts(1));
        assert!(!prov.infeasible.is_empty());
    }

    #[test]
    fn hose_capacity_never_exceeds_naive() {
        let r = small_region();
        let goals = DesignGoals::with_cuts(1);
        let exact = provision(&r, &goals);
        let naive = provision_naive(&r, &goals);
        for e in 0..exact.edge_capacity_wl.len() {
            assert!(
                exact.edge_capacity_wl[e] <= naive.edge_capacity_wl[e] + 1e-6,
                "edge {e}: exact {} > naive {}",
                exact.edge_capacity_wl[e],
                naive.edge_capacity_wl[e]
            );
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn capacity_supports_uniform_matrix() {
        let r = small_region();
        let goals = DesignGoals::with_cuts(0);
        let prov = provision(&r, &goals);
        let n = r.dcs.len();
        // Uniform all-to-all matrix: each DC splits its hose capacity
        // evenly across the other DCs.
        let mut demands = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let di = r.capacity_wavelengths(i) as f64 / (n - 1) as f64;
                let dj = r.capacity_wavelengths(j) as f64 / (n - 1) as f64;
                demands[i][j] = di.min(dj);
            }
        }
        assert!(supports_matrix(&r, &goals, &prov, &demands));
    }

    #[test]
    fn capacity_supports_single_hot_pair() {
        let r = small_region();
        let goals = DesignGoals::with_cuts(0);
        let prov = provision(&r, &goals);
        let n = r.dcs.len();
        // The extreme hose matrix: DCs 0 and 1 exchange their full caps.
        let mut demands = vec![vec![0.0; n]; n];
        demands[0][1] = r.capacity_wavelengths(0).min(r.capacity_wavelengths(1)) as f64;
        assert!(supports_matrix(&r, &goals, &prov, &demands));
    }

    #[test]
    fn overfull_matrix_is_rejected() {
        let r = star_region(10);
        let goals = DesignGoals::with_cuts(0);
        let prov = provision(&r, &goals);
        let mut demands = vec![vec![0.0; 4]; 4];
        demands[0][1] = 800.0; // 2x DC 0's hose capacity
        assert!(!supports_matrix(&r, &goals, &prov, &demands));
    }

    #[test]
    fn more_cut_tolerance_never_shrinks_capacity() {
        let r = small_region();
        let p0 = provision(&r, &DesignGoals::with_cuts(0));
        let p1 = provision(&r, &DesignGoals::with_cuts(1));
        let total0: f64 = p0.edge_capacity_wl.iter().sum();
        let total1: f64 = p1.edge_capacity_wl.iter().sum();
        assert!(total1 >= total0 - 1e-6, "{total1} < {total0}");
        assert!(p1.scenarios_examined > p0.scenarios_examined);
    }

    #[test]
    fn scenario_count_matches_formula() {
        let r = small_region();
        let m = r.map.graph().edge_count();
        let p = provision(&r, &DesignGoals::with_cuts(1));
        assert_eq!(p.scenarios_examined, 1 + m as u64);
    }

    #[test]
    fn unused_ducts_have_zero_capacity() {
        let r = small_region();
        let prov = provision(&r, &DesignGoals::with_cuts(0));
        let used = prov.used_edges();
        for e in 0..prov.edge_capacity_wl.len() {
            if !used.contains(&e) {
                assert_eq!(prov.edge_capacity_wl[e], 0.0);
                assert_eq!(prov.edge_fiber_pairs(40)[e], 0);
            }
        }
    }

    #[test]
    fn parallel_provision_is_bit_identical_to_sequential() {
        let r = small_region();
        let goals = DesignGoals::with_cuts(1);
        let seq = provision_with_threads(&r, &goals, 1);
        for threads in [2, 3, 7] {
            let par = provision_with_threads(&r, &goals, threads);
            // f64 equality must be exact, not approximate: compare bits.
            let seq_bits: Vec<u64> = seq.edge_capacity_wl.iter().map(|c| c.to_bits()).collect();
            let par_bits: Vec<u64> = par.edge_capacity_wl.iter().map(|c| c.to_bits()).collect();
            assert_eq!(seq_bits, par_bits, "{threads} threads");
            assert_eq!(seq.infeasible, par.infeasible, "{threads} threads");
            assert_eq!(
                seq.scenarios_examined, par.scenarios_examined,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn parallel_provision_identical_with_infeasible_pairs() {
        // The star has no alternate routes, so every cut scenario yields
        // infeasible pairs — their global order must survive chunking.
        let r = star_region(10);
        let goals = DesignGoals::with_cuts(1);
        let seq = provision_with_threads(&r, &goals, 1);
        let par = provision_with_threads(&r, &goals, 3);
        assert!(!seq.infeasible.is_empty());
        assert_eq!(seq.infeasible, par.infeasible);
        let seq_bits: Vec<u64> = seq.edge_capacity_wl.iter().map(|c| c.to_bits()).collect();
        let par_bits: Vec<u64> = par.edge_capacity_wl.iter().map(|c| c.to_bits()).collect();
        assert_eq!(seq_bits, par_bits);
    }

    #[test]
    fn thread_count_larger_than_scenario_count_is_clamped() {
        let r = star_region(4);
        let goals = DesignGoals::with_cuts(0); // 1 scenario
        let p = provision_with_threads(&r, &goals, 64);
        assert_eq!(p.scenarios_examined, 1);
    }

    #[test]
    fn fiber_rounding_is_ceil() {
        let prov = Provisioning {
            edge_capacity_wl: vec![0.0, 1.0, 40.0, 40.5, 81.0],
            infeasible: vec![],
            scenarios_examined: 1,
        };
        assert_eq!(prov.edge_fiber_pairs(40), vec![0, 1, 1, 2, 3]);
        assert_eq!(prov.total_fiber_pairs(40), 7);
    }
}
