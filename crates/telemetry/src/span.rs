//! RAII span timing: a [`Span`] records its lifetime into a histogram
//! when dropped.

use crate::Histogram;
use std::sync::Arc;
use std::time::Instant;

/// Times a region of code. Created by [`Span::enter`]; the elapsed
/// wall time in **seconds** is recorded into the histogram on drop.
/// Use a `_ms`-named histogram with [`Span::enter_ms`] to record
/// milliseconds instead.
#[derive(Debug)]
pub struct Span {
    histogram: Arc<Histogram>,
    start: Instant,
    scale: f64,
    recorded: bool,
}

impl Span {
    /// Start timing; the drop records seconds.
    #[must_use]
    pub fn enter(histogram: Arc<Histogram>) -> Self {
        Span {
            histogram,
            start: Instant::now(),
            scale: 1.0,
            recorded: false,
        }
    }

    /// Start timing; the drop records milliseconds.
    #[must_use]
    pub fn enter_ms(histogram: Arc<Histogram>) -> Self {
        Span {
            histogram,
            start: Instant::now(),
            scale: 1e3,
            recorded: false,
        }
    }

    /// Record now and return the elapsed value (in the span's unit)
    /// instead of waiting for drop.
    pub fn finish(mut self) -> f64 {
        self.recorded = true;
        let elapsed = self.start.elapsed().as_secs_f64() * self.scale;
        self.histogram.record(elapsed);
        elapsed
    }

    /// Abandon the span without recording (e.g. on an error path).
    pub fn cancel(mut self) {
        self.recorded = true;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.recorded {
            self.histogram
                .record(self.start.elapsed().as_secs_f64() * self.scale);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let h = Arc::new(Histogram::new());
        {
            let _span = Span::enter(Arc::clone(&h));
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 0.0);
    }

    #[test]
    fn finish_records_exactly_once() {
        let h = Arc::new(Histogram::new());
        let span = Span::enter_ms(Arc::clone(&h));
        let elapsed = span.finish();
        assert_eq!(h.count(), 1);
        assert!(elapsed >= 0.0);
    }

    #[test]
    fn cancel_records_nothing() {
        let h = Arc::new(Histogram::new());
        Span::enter(Arc::clone(&h)).cancel();
        assert_eq!(h.count(), 0);
    }
}
