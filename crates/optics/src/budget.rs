//! End-to-end optical link budget evaluation (TC1–TC4).
//!
//! A DC-DC light path in Iris is a sequence of fiber spans, switching
//! elements and amplifiers. The evaluator walks the path and checks the
//! four technology constraints of §3.2:
//!
//! * **TC1** — no unamplified segment may lose more power than one
//!   amplifier's gain restores (80 km of fiber at 0.25 dB/km for a 20 dB
//!   EDFA), counting element insertion losses within the segment;
//! * **TC2** — at most 3 amplifiers end-to-end (≤ 1 in-line), from the
//!   cascaded-OSNR budget of [`crate::osnr`];
//! * **TC4** — switching-element insertion loss within the 10 dB
//!   reconfiguration budget (≤ 6 OSS or ≤ 1 OXC traversals);
//! * **OC1** — total fiber length within the 120 km latency SLA.
//!
//! TC3 (amplifier power management) is a *design* property — fixed gains,
//! input power limiters and full-spectrum ASE filling — handled by the
//! control-plane crate; it does not constrain path shape.

use crate::components::{Amplifier, FiberSpan, SwitchElement};
use serde::{Deserialize, Serialize};

/// One element of an end-to-end optical path, in travel order.
///
/// Terminal amplifiers at the sending and receiving DCs are included as
/// explicit `Amplifier` elements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PathElement {
    /// A run of fiber.
    Fiber(FiberSpan),
    /// A switching element traversal.
    Switch(SwitchElement),
    /// An amplification point.
    Amp(Amplifier),
}

impl PathElement {
    /// Convenience constructor for a standard-loss fiber span.
    #[must_use]
    pub fn fiber_km(length_km: f64) -> Self {
        PathElement::Fiber(FiberSpan::new(length_km))
    }

    /// Convenience constructor for a default EDFA.
    #[must_use]
    pub fn default_amp() -> Self {
        PathElement::Amp(Amplifier::default())
    }
}

/// Why a path fails its budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BudgetViolation {
    /// An unamplified segment loses more than one amplifier can restore.
    SegmentLossExceeded {
        /// Index of the segment (0 = from the sending DC).
        segment: usize,
        /// Accumulated loss of the segment, dB.
        loss_db: f64,
        /// The allowed maximum, dB.
        limit_db: f64,
    },
    /// More amplifiers than the OSNR cascade budget admits (TC2).
    TooManyAmplifiers {
        /// Amplifier count found on the path.
        count: usize,
        /// Maximum permitted end-to-end.
        limit: usize,
    },
    /// Switching insertion loss exceeds the reconfiguration budget (TC4).
    SwitchLossExceeded {
        /// Total switching loss, dB.
        loss_db: f64,
        /// The 10 dB budget.
        limit_db: f64,
    },
    /// Total fiber distance breaks the latency SLA (OC1).
    PathTooLong {
        /// Total fiber length, km.
        length_km: f64,
        /// The SLA limit, km.
        limit_km: f64,
    },
}

impl std::fmt::Display for BudgetViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetViolation::SegmentLossExceeded {
                segment,
                loss_db,
                limit_db,
            } => write!(
                f,
                "segment {segment} loses {loss_db:.1} dB, exceeding the {limit_db:.1} dB amplifier gain (TC1)"
            ),
            BudgetViolation::TooManyAmplifiers { count, limit } => write!(
                f,
                "{count} amplifiers on path, OSNR cascade budget admits {limit} (TC2)"
            ),
            BudgetViolation::SwitchLossExceeded { loss_db, limit_db } => write!(
                f,
                "switching loss {loss_db:.1} dB exceeds the {limit_db:.1} dB reconfiguration budget (TC4)"
            ),
            BudgetViolation::PathTooLong {
                length_km,
                limit_km,
            } => write!(
                f,
                "path length {length_km:.1} km exceeds the {limit_km:.1} km latency SLA (OC1)"
            ),
        }
    }
}

impl std::error::Error for BudgetViolation {}

/// Summary of a path that passed its budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetReport {
    /// Total fiber length, km.
    pub total_km: f64,
    /// Number of amplifiers (terminal + in-line).
    pub amplifier_count: usize,
    /// Total switching-element insertion loss, dB.
    pub switch_loss_db: f64,
    /// OSNR penalty of the amplifier cascade, dB.
    pub osnr_penalty_db: f64,
    /// Worst unamplified-segment loss, dB.
    pub worst_segment_loss_db: f64,
    /// One-way propagation delay contribution, ms.
    pub propagation_ms: f64,
}

/// Evaluate an end-to-end path against TC1/TC2/TC4 and OC1.
///
/// Returns the budget summary, or the *first* violated constraint in the
/// order TC1 (per segment, in travel order), TC2, TC4, OC1.
///
/// # Examples
///
/// ```
/// use iris_optics::{evaluate_path, PathElement, SwitchElement};
/// // Booster -> 60 km -> hut OSS + in-line amp -> 55 km -> pre-amp:
/// // a valid 115 km Iris light path.
/// let path = [
///     PathElement::default_amp(),
///     PathElement::fiber_km(60.0),
///     PathElement::Switch(SwitchElement::Oss),
///     PathElement::default_amp(),
///     PathElement::fiber_km(55.0),
///     PathElement::default_amp(),
/// ];
/// let report = evaluate_path(&path).expect("within budget");
/// assert_eq!(report.amplifier_count, 3);
/// assert!(report.total_km <= 120.0);
///
/// // 100 km with no in-line amplification violates TC1.
/// let too_far = [
///     PathElement::default_amp(),
///     PathElement::fiber_km(100.0),
///     PathElement::default_amp(),
/// ];
/// assert!(evaluate_path(&too_far).is_err());
/// ```
pub fn evaluate_path(elements: &[PathElement]) -> Result<BudgetReport, BudgetViolation> {
    let mut total_km = 0.0f64;
    let mut amp_count = 0usize;
    let mut switch_loss = 0.0f64;
    let mut segment_loss = 0.0f64;
    let mut worst_segment = 0.0f64;
    let mut segment_index = 0usize;
    let limit_db = crate::AMPLIFIER_GAIN_DB;

    for el in elements {
        match el {
            PathElement::Fiber(span) => {
                total_km += span.length_km;
                segment_loss += span.loss_db();
            }
            PathElement::Switch(sw) => {
                switch_loss += sw.loss_db();
                segment_loss += sw.loss_db();
            }
            PathElement::Amp(_) => {
                if segment_loss > limit_db + 1e-9 {
                    return Err(BudgetViolation::SegmentLossExceeded {
                        segment: segment_index,
                        loss_db: segment_loss,
                        limit_db,
                    });
                }
                worst_segment = worst_segment.max(segment_loss);
                segment_loss = 0.0;
                segment_index += 1;
                amp_count += 1;
            }
        }
    }
    // Final segment (to the receiving transceiver after the last amp).
    if segment_loss > limit_db + 1e-9 {
        return Err(BudgetViolation::SegmentLossExceeded {
            segment: segment_index,
            loss_db: segment_loss,
            limit_db,
        });
    }
    worst_segment = worst_segment.max(segment_loss);

    if amp_count > crate::MAX_AMPLIFIERS_PER_PATH {
        return Err(BudgetViolation::TooManyAmplifiers {
            count: amp_count,
            limit: crate::MAX_AMPLIFIERS_PER_PATH,
        });
    }
    if switch_loss > crate::RECONFIG_LOSS_BUDGET_DB + 1e-9 {
        return Err(BudgetViolation::SwitchLossExceeded {
            loss_db: switch_loss,
            limit_db: crate::RECONFIG_LOSS_BUDGET_DB,
        });
    }
    if total_km > crate::MAX_PATH_KM + 1e-9 {
        return Err(BudgetViolation::PathTooLong {
            length_km: total_km,
            limit_km: crate::MAX_PATH_KM,
        });
    }

    Ok(BudgetReport {
        total_km,
        amplifier_count: amp_count,
        switch_loss_db: switch_loss,
        osnr_penalty_db: crate::osnr::cascade_penalty_default_db(amp_count),
        worst_segment_loss_db: worst_segment,
        propagation_ms: total_km / 200.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn amp() -> PathElement {
        PathElement::default_amp()
    }

    fn fiber(km: f64) -> PathElement {
        PathElement::fiber_km(km)
    }

    fn oss() -> PathElement {
        PathElement::Switch(SwitchElement::Oss)
    }

    #[test]
    fn simple_80km_link_passes() {
        // Fig. 8's canonical point-to-point link: amp, 80 km, amp.
        let r = evaluate_path(&[amp(), fiber(80.0), amp()]).unwrap();
        assert_eq!(r.amplifier_count, 2);
        assert!((r.total_km - 80.0).abs() < 1e-12);
        assert!((r.worst_segment_loss_db - 20.0).abs() < 1e-12);
    }

    #[test]
    fn unamplified_100km_fails_tc1() {
        let e = evaluate_path(&[amp(), fiber(100.0), amp()]).unwrap_err();
        assert!(matches!(e, BudgetViolation::SegmentLossExceeded { .. }));
    }

    #[test]
    fn inline_amp_extends_reach_to_120km() {
        // TC2: one extra in-line amplifier reaches 120 km.
        let r = evaluate_path(&[amp(), fiber(60.0), amp(), fiber(60.0), amp()]).unwrap();
        assert_eq!(r.amplifier_count, 3);
        assert!((r.total_km - 120.0).abs() < 1e-12);
    }

    #[test]
    fn four_amplifiers_fail_tc2() {
        let e = evaluate_path(&[
            amp(),
            fiber(40.0),
            amp(),
            fiber(40.0),
            amp(),
            fiber(40.0),
            amp(),
        ])
        .unwrap_err();
        assert_eq!(e, BudgetViolation::TooManyAmplifiers { count: 4, limit: 3 });
    }

    #[test]
    fn six_oss_hops_pass_seven_fail() {
        let mut ok: Vec<PathElement> = vec![amp()];
        for _ in 0..6 {
            ok.push(oss());
            ok.push(fiber(5.0));
        }
        ok.push(amp());
        let r = evaluate_path(&ok).unwrap();
        assert!((r.switch_loss_db - 9.0).abs() < 1e-12);

        let mut bad: Vec<PathElement> = vec![amp()];
        for _ in 0..7 {
            bad.push(oss());
            bad.push(fiber(5.0));
        }
        bad.push(amp());
        let e = evaluate_path(&bad).unwrap_err();
        assert!(matches!(e, BudgetViolation::SwitchLossExceeded { .. }));
    }

    #[test]
    fn one_oxc_passes_two_fail() {
        let ok = [
            amp(),
            PathElement::Switch(SwitchElement::Oxc),
            fiber(10.0),
            amp(),
        ];
        assert!(evaluate_path(&ok).is_ok());
        // 4 km keeps the segment within TC1 (9 + 1 + 9 = 19 dB < 20 dB)
        // so the TC4 switch-loss check is the one that fires.
        let bad = [
            amp(),
            PathElement::Switch(SwitchElement::Oxc),
            fiber(4.0),
            PathElement::Switch(SwitchElement::Oxc),
            amp(),
        ];
        assert!(matches!(
            evaluate_path(&bad),
            Err(BudgetViolation::SwitchLossExceeded { .. })
        ));
    }

    #[test]
    fn path_over_120km_fails_oc1() {
        let e = evaluate_path(&[amp(), fiber(70.0), amp(), fiber(70.0), amp()]).unwrap_err();
        assert!(matches!(e, BudgetViolation::PathTooLong { .. }));
    }

    #[test]
    fn switch_loss_counts_toward_segment_budget() {
        // 75 km of fiber (18.75 dB) + an OSS (1.5 dB) = 20.25 dB > 20 dB.
        let e = evaluate_path(&[amp(), fiber(75.0), oss(), amp()]).unwrap_err();
        assert!(matches!(e, BudgetViolation::SegmentLossExceeded { .. }));
        // 70 km + OSS = 19 dB: fine.
        assert!(evaluate_path(&[amp(), fiber(70.0), oss(), amp()]).is_ok());
    }

    #[test]
    fn report_propagation_delay() {
        let r = evaluate_path(&[amp(), fiber(60.0), amp(), fiber(60.0), amp()]).unwrap();
        assert!(matches!(r, BudgetReport { .. }));
        // 120 km at 200 km/ms one-way.
        assert!((r.propagation_ms - 0.6).abs() < 1e-12);
    }

    #[test]
    fn violation_messages_are_informative() {
        let e = evaluate_path(&[amp(), fiber(100.0), amp()]).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("TC1"), "{msg}");
    }

    #[test]
    fn empty_path_is_trivially_fine() {
        let r = evaluate_path(&[]).unwrap();
        assert_eq!(r.amplifier_count, 0);
        assert_eq!(r.total_km, 0.0);
    }
}
