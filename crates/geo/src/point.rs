//! Points and segments in a local planar (kilometre) coordinate system.
//!
//! Regions span only tens of kilometres, so a flat local tangent plane is an
//! excellent approximation; we never need geodesic math.

use serde::{Deserialize, Serialize};

/// A point in the region's local coordinate system, in kilometres.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// East-west coordinate, km.
    pub x: f64,
    /// North-south coordinate, km.
    pub y: f64,
}

impl Point {
    /// Construct a point from kilometre coordinates.
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin of the local frame.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Straight-line (Euclidean) distance to `other`, km.
    #[must_use]
    pub fn distance(&self, other: &Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Squared distance; cheaper when only comparisons are needed.
    #[must_use]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Midpoint of the segment from `self` to `other`.
    #[must_use]
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Linear interpolation: `t = 0` gives `self`, `t = 1` gives `other`.
    #[must_use]
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Rotate around the origin by `radians` counter-clockwise.
    #[must_use]
    pub fn rotated(&self, radians: f64) -> Point {
        let (s, c) = radians.sin_cos();
        Point::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }

    /// Translate by the vector `(dx, dy)`.
    #[must_use]
    pub fn translated(&self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }
}

/// A straight segment between two points — e.g. one fiber-duct leg.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// One endpoint.
    pub a: Point,
    /// The other endpoint.
    pub b: Point,
}

impl Segment {
    /// Construct a segment between `a` and `b`.
    #[must_use]
    pub const fn new(a: Point, b: Point) -> Self {
        Self { a, b }
    }

    /// Length of the segment, km.
    #[must_use]
    pub fn length(&self) -> f64 {
        self.a.distance(&self.b)
    }

    /// Shortest distance from `p` to any point of the segment, km.
    ///
    /// Used when snapping a candidate DC site onto the nearest fiber duct.
    #[must_use]
    pub fn distance_to_point(&self, p: &Point) -> f64 {
        self.closest_point(p).distance(p)
    }

    /// The point on the segment closest to `p`.
    #[must_use]
    pub fn closest_point(&self, p: &Point) -> Point {
        let vx = self.b.x - self.a.x;
        let vy = self.b.y - self.a.y;
        let len_sq = vx * vx + vy * vy;
        if len_sq == 0.0 {
            return self.a;
        }
        let t = ((p.x - self.a.x) * vx + (p.y - self.a.y) * vy) / len_sq;
        let t = t.clamp(0.0, 1.0);
        self.a.lerp(&self.b, t)
    }

    /// Parameter `t in [0, 1]` of the closest point (0 at `a`, 1 at `b`).
    #[must_use]
    pub fn closest_t(&self, p: &Point) -> f64 {
        let vx = self.b.x - self.a.x;
        let vy = self.b.y - self.a.y;
        let len_sq = vx * vx + vy * vy;
        if len_sq == 0.0 {
            return 0.0;
        }
        (((p.x - self.a.x) * vx + (p.y - self.a.y) * vy) / len_sq).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.5, -2.0);
        let b = Point::new(-3.0, 7.25);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn midpoint_and_lerp_agree() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -6.0);
        assert_eq!(a.midpoint(&b), a.lerp(&b, 0.5));
    }

    #[test]
    fn rotation_preserves_length() {
        let p = Point::new(3.0, 4.0);
        let r = p.rotated(1.234);
        assert!((r.distance(&Point::ORIGIN) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn segment_closest_point_interior() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        let p = Point::new(5.0, 3.0);
        assert_eq!(s.closest_point(&p), Point::new(5.0, 0.0));
        assert_eq!(s.distance_to_point(&p), 3.0);
    }

    #[test]
    fn segment_closest_point_clamps_to_endpoints() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert_eq!(s.closest_point(&Point::new(-4.0, 0.0)), s.a);
        assert_eq!(s.closest_point(&Point::new(14.0, 1.0)), s.b);
    }

    #[test]
    fn degenerate_segment() {
        let s = Segment::new(Point::new(2.0, 2.0), Point::new(2.0, 2.0));
        assert_eq!(s.length(), 0.0);
        assert_eq!(s.distance_to_point(&Point::new(2.0, 5.0)), 3.0);
    }
}
