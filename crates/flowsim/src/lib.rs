//! Distributed flow simulation: per-link decomposition, link
//! clustering, and a coordinator/worker fleet for 10⁶–10⁷-flow FCT
//! evaluation.
//!
//! The exact engine in `iris-simnet` recomputes global max-min rates on
//! every flow event — O(flows × links) per event, fine for 10⁴ flows,
//! hopeless for 10⁷. This crate trades the global waterfill for the
//! Parsimon observation that a flow's completion time is dominated by
//! its *bottleneck* duct: each occupied link becomes an **independent
//! single-link processor-sharing simulation** ([`decompose`], [`link`]),
//! similar links are **clustered** so only one representative per
//! cluster is simulated ([`cluster`]), and the per-link jobs — now
//! embarrassingly parallel — are **sharded across a worker fleet** over
//! the workspace's frame codec ([`proto`], [`worker`], [`coord`]).
//!
//! Determinism contract: every artifact is byte-identical regardless of
//! backend, worker count, or `IRIS_THREADS`. This falls out of the
//! architecture rather than discipline — jobs are pure functions of the
//! [`proto::WorkSpec`], results are keyed by link id, and the cross-link
//! combination ([`decompose::combine`]) is a commutative `max`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cluster;
pub mod coord;
pub mod decompose;
pub mod link;
pub mod proto;
pub mod worker;

pub use cluster::{cluster_links, Cluster, LinkFeatures, SlowdownTable};
pub use coord::{
    estimate, estimate_with_trace, Backend, EstimateConfig, EstimateReport, FleetConfig,
};
pub use decompose::{combine, Decomposition};
pub use link::{simulate_link, LinkFlow, ScaleSegment, INCOMPLETE};
pub use proto::WorkSpec;
pub use worker::{serve, spawn_ephemeral, WorkerConfig};
