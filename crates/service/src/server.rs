//! The sharded non-blocking event-loop server.
//!
//! One acceptor thread takes connections off the listener and deals
//! them round-robin to `N` shard threads (see [`ServiceConfig::shards`]).
//! Each shard runs a level-triggered readiness loop ([`iris_poll`]) over
//! the connections pinned to it: sockets are non-blocking, partial
//! frames accumulate in per-connection read buffers, and responses drain
//! through per-connection write buffers — no thread ever parks on a
//! single peer, so one shard multiplexes thousands of connections.
//!
//! Reads stay epoch-published: `GetPlan` and `GetTopology` replies are
//! **pre-serialized once per epoch** (in both wire codecs, with the
//! length prefix already attached), so serving one is a memcpy from the
//! current `Published` buffer. `QueryPath` / `Health` are answered
//! from the same immutable snapshot `Arc`.
//!
//! Writes flow through the bounded queue to the single mutator thread
//! exactly as before (batching + last-update-per-pair coalescing), but
//! durability is **group-committed**: the mutator appends each batch's
//! WAL record without fsyncing and hands the batch to a syncer thread,
//! which drains every batch the mutator produced while the previous
//! fsync was in flight, makes them all durable with *one* fsync, and
//! only then publishes the newest snapshot and routes `ReportFiberCut`
//! acknowledgements back to their shards. Acknowledge-after-durable is
//! preserved; the fsyncs are amortized.
//!
//! A connection speaks JSON until it negotiates the compact binary
//! codec with [`crate::api::Request::Hello`]; the acknowledgement is
//! sent in the old codec and everything after it in the new one.

use crate::api::{
    AllocEntry, HealthInfo, PathInfo, PeerInfo, PlanSummary, Request, Response, SlowRequestInfo,
    TopologySummary, TraceDumpInfo, TraceEventInfo,
};
use crate::client::{Backoff, ServiceClient};
use crate::codec::{self, Codec};
use crate::frame::{parse_frame, MAX_FRAME_LEN};
use crate::recovery::{self, ControlMachine, CutReply, ReplayStats};
use crate::state::{SnapshotCell, StateSnapshot};
use crate::wal::{DurableState, PersistedSnapshot, Wal, WalBatch, WalStats, WalSyncHandle};
use iris_control::Controller;
use iris_errors::{IrisError, IrisResult};
use iris_fibermap::Region;
use iris_netgraph::EdgeId;
use iris_planner::{plan_iris, DesignGoals};
use iris_poll::{Interest, Poller, Waker};
use iris_telemetry::{labeled, Counter, Gauge, Histogram};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, VecDeque};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Token reserved for each shard's cross-thread waker.
const WAKER_TOKEN: usize = usize::MAX;
/// Read-buffer growth increment.
const READ_CHUNK: usize = 64 * 1024;
/// Per-readiness-event read budget; a firehose connection yields to its
/// shard siblings after this many bytes (level-triggered readiness
/// re-reports the rest immediately).
const READ_BUDGET: usize = 256 * 1024;
/// Published batches the primary keeps in memory for incremental
/// WAL-shipping; followers further behind resync via a full
/// [`Request::SyncState`] snapshot instead.
const REPL_LOG_CAP: usize = 1024;
/// Ceiling of the acceptor's transient-error backoff, ms.
const ACCEPT_BACKOFF_CAP_MS: u64 = 100;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Listen address. Port 0 picks an ephemeral port (see
    /// [`ServiceHandle::local_addr`]).
    pub addr: String,
    /// Planner cut tolerance `k` the region is provisioned for.
    pub cuts: usize,
    /// Bounded mutator-queue capacity; a full queue answers writes with
    /// [`IrisError::Overloaded`].
    pub queue_capacity: usize,
    /// How long the mutator waits after the first write of a batch to
    /// gather (and coalesce) more, ms.
    pub coalesce_window_ms: u64,
    /// Shard poll tick, ms: the event-loop wait timeout, which bounds
    /// how long a shard can go without noticing a shutdown request.
    pub read_timeout_ms: u64,
    /// Durability directory. When set, every applied write batch is
    /// appended to a write-ahead log here and group-committed (one
    /// fsync covers every batch produced while the previous fsync was
    /// in flight) before its snapshot is published, and a restarted
    /// server recovers the pre-crash state from it. `None` keeps the
    /// server memory-only.
    pub wal_dir: Option<String>,
    /// Compact the log into a snapshot every this many batches
    /// (0 = never compact). Ignored without `wal_dir`.
    pub snapshot_every: u64,
    /// Whether the flight recorder traces requests and write batches
    /// (process-wide switch; `iris serve` maps `IRIS_TRACE=0` here).
    pub trace: bool,
    /// Slow-request threshold, ms: requests and batches at or above it
    /// land in the slow-request log (0 logs everything).
    pub slow_ms: f64,
    /// Event-loop shards (worker threads multiplexing connections).
    /// 0 picks one per available core, clamped to 1..=8.
    pub shards: usize,
    /// This instance's region id in a federation (0 for a standalone
    /// server).
    pub region_id: u64,
    /// Peer region addresses this instance replicates to while it is
    /// the primary. Empty for a standalone server.
    pub peers: Vec<String>,
    /// Start as a follower: local writes are rejected with
    /// [`IrisError::NotPrimary`] and state arrives via replication until
    /// a [`Request::Promote`] flips the role.
    pub follower: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7117".to_owned(),
            cuts: 1,
            queue_capacity: 64,
            coalesce_window_ms: 2,
            read_timeout_ms: 50,
            wal_dir: None,
            snapshot_every: 64,
            trace: true,
            slow_ms: 250.0,
            shards: 0,
            region_id: 0,
            peers: Vec::new(),
            follower: false,
        }
    }
}

impl ServiceConfig {
    /// The backoff suggested to clients hitting a full queue: long
    /// enough for at least one batch to drain.
    #[must_use]
    pub fn retry_after_ms(&self) -> u64 {
        10 + 2 * self.coalesce_window_ms
    }

    /// The effective shard count (resolves the `0 = auto` default).
    #[must_use]
    pub fn effective_shards(&self) -> usize {
        if self.shards == 0 {
            iris_planner::thread_count().clamp(1, 8)
        } else {
            self.shards.clamp(1, 32)
        }
    }
}

/// Where a deferred acknowledgement (`ReportFiberCut`, `UpdateDemand`,
/// `Replicate`, `SyncState`) must be routed once its batch is durable:
/// shard + connection slot + a generation fence (slots are recycled) +
/// the response's sequence number.
#[derive(Debug, Clone, Copy)]
struct CutDest {
    shard: usize,
    token: usize,
    gen: u64,
    seq: u64,
}

/// One queued write.
enum WriteOp {
    Update {
        a: usize,
        b: usize,
        circuits: u32,
        dest: CutDest,
        /// When the op entered the queue (feeds the batch trace's
        /// queue-wait span).
        enqueued: Instant,
    },
    Cut {
        cuts: Vec<EdgeId>,
        dest: CutDest,
        enqueued: Instant,
    },
    /// One WAL batch shipped from a primary region (serialized
    /// [`WalBatch`] JSON), applied via
    /// [`ControlMachine::apply_replicated`].
    Replicate {
        batch_json: String,
        dest: CutDest,
        enqueued: Instant,
    },
    /// A full persisted snapshot shipped from a primary region
    /// (serialized [`PersistedSnapshot`] JSON), adopted via
    /// [`ControlMachine::adopt_state`].
    SyncState {
        state_json: String,
        dest: CutDest,
        enqueued: Instant,
    },
}

impl WriteOp {
    fn enqueued(&self) -> Instant {
        match self {
            WriteOp::Update { enqueued, .. }
            | WriteOp::Cut { enqueued, .. }
            | WriteOp::Replicate { enqueued, .. }
            | WriteOp::SyncState { enqueued, .. } => *enqueued,
        }
    }
}

/// One acknowledgement held back until its batch's group commit: the
/// syncer routes these to their shards only after the fsync, so every
/// ack a client sees describes durable state.
enum DeferredReply {
    /// A fiber-cut outcome.
    Cut(CutReply),
    /// A demand update became durable and visible at `epoch` — the
    /// read-your-writes fence a client hands to `GetPlanAt`.
    Demand { epoch: u64 },
    /// A replicated batch (or adopted snapshot) committed at `epoch`
    /// with the follower snapshot fingerprinting to `state_crc`.
    Replicated {
        epoch: u64,
        state_crc: u32,
        op: &'static str,
    },
    /// The operation failed (WAL error, epoch-chain gap, ...).
    Failed { op: &'static str, err: IrisError },
}

impl DeferredReply {
    /// Telemetry label of the operation being acknowledged.
    fn op(&self) -> &'static str {
        match self {
            DeferredReply::Cut(_) => "report_fiber_cut",
            DeferredReply::Demand { .. } => "update_demand",
            DeferredReply::Replicated { op, .. } | DeferredReply::Failed { op, .. } => op,
        }
    }
}

/// Payload selector for [`ShardRunner::defer_repl_write`].
enum WriteOpKind {
    /// Serialized [`WalBatch`] JSON.
    Replicate(String),
    /// Serialized [`PersistedSnapshot`] JSON.
    SyncState(String),
}

/// One published batch retained for incremental replication: the epoch,
/// the canonical-state CRC a correct follower must report back, and the
/// serialized [`WalBatch`].
#[derive(Clone)]
struct ReplEntry {
    epoch: u64,
    state_crc: u32,
    batch_json: Arc<String>,
}

/// What the primary knows about one replication peer; written by the
/// peer's replicator thread, read by `Health` and the chaos harness.
struct PeerState {
    addr: String,
    /// The peer's region id as learned from its `Health` reply (0 until
    /// the first successful probe).
    region: AtomicU64,
    acked_epoch: AtomicU64,
    connected: AtomicBool,
    reconnects: AtomicU64,
    /// Partition-simulation switch: while set, the replicator drops the
    /// connection and ships nothing, so the peer lags exactly like one
    /// behind a severed inter-region link.
    paused: AtomicBool,
}

/// Codec-indexed slot (`[Json, Binary]`) for pre-serialized buffers.
fn cidx(codec: Codec) -> usize {
    match codec {
        Codec::Json => 0,
        Codec::Binary => 1,
    }
}

/// The per-epoch read-path publication: the snapshot itself plus the
/// `GetPlan` / `GetTopology` replies pre-serialized in both codecs with
/// their length prefixes attached, so serving one is a single memcpy.
struct Published {
    snap: Arc<StateSnapshot>,
    plan_framed: [Vec<u8>; 2],
    topo_framed: [Vec<u8>; 2],
}

/// Frame `resp` (length prefix + payload) in `codec`, appending to
/// `out`. `out` is untouched on error.
fn frame_response(codec: Codec, resp: &Response, out: &mut Vec<u8>) -> IrisResult<()> {
    let start = out.len();
    out.extend_from_slice(&[0u8; 4]);
    if let Err(e) = codec::encode_response_into(codec, resp, out) {
        out.truncate(start);
        return Err(e);
    }
    let len = out.len() - start - 4;
    if len > MAX_FRAME_LEN {
        out.truncate(start);
        return Err(IrisError::Io {
            detail: format!("{len} byte response exceeds the {MAX_FRAME_LEN} byte frame limit"),
        });
    }
    let prefix = u32::try_from(len).unwrap_or(u32::MAX).to_be_bytes();
    out[start..start + 4].copy_from_slice(&prefix);
    Ok(())
}

/// Build the [`Published`] buffers for `snap`.
fn build_published(
    plan: &PlanSummary,
    dc_count: usize,
    huts: usize,
    ducts: usize,
    snap: Arc<StateSnapshot>,
) -> IrisResult<Published> {
    let mut plan = plan.clone();
    plan.epoch = snap.epoch;
    let plan_resp = Response::Plan(plan);
    let topo_resp = Response::Topology(TopologySummary {
        epoch: snap.epoch,
        dcs: dc_count,
        huts,
        ducts,
        active_cuts: snap.active_cuts.clone(),
        allocation: snap
            .allocation
            .iter()
            .map(|(&(a, b), &circuits)| AllocEntry { a, b, circuits })
            .collect(),
        quarantined: snap.quarantined.clone(),
    });
    let mut plan_framed = [Vec::new(), Vec::new()];
    let mut topo_framed = [Vec::new(), Vec::new()];
    for codec in [Codec::Json, Codec::Binary] {
        frame_response(codec, &plan_resp, &mut plan_framed[cidx(codec)])?;
        frame_response(codec, &topo_resp, &mut topo_framed[cidx(codec)])?;
    }
    Ok(Published {
        snap,
        plan_framed,
        topo_framed,
    })
}

/// State shared by the acceptor, shard loops, mutator and syncer.
struct Shared {
    cell: SnapshotCell,
    /// The pre-serialized read-path buffers, swapped once per epoch.
    published: RwLock<Arc<Published>>,
    /// Static plan summary; `epoch` is patched per publication.
    plan: PlanSummary,
    huts: usize,
    dc_count: usize,
    edge_count: usize,
    retry_after_ms: u64,
    shutdown: AtomicBool,
    /// Writes accepted but not yet visible in a published snapshot
    /// (queued + in-batch + awaiting the group fsync). Reaching zero
    /// therefore means every acknowledged write is readable.
    queue_depth: AtomicUsize,
    overloaded: AtomicU64,
    /// When the server started serving (for `HealthInfo::uptime_ms`).
    start: Instant,
    /// WAL statistics mirrored out of the mutator-owned [`crate::wal::Wal`]
    /// after each group commit so read threads can answer `Health`
    /// without touching the write path. Fsync latency is stored in µs
    /// to keep it atomic.
    wal_records: AtomicU64,
    wal_bytes: AtomicU64,
    last_fsync_us: AtomicU64,
    /// This instance's region id.
    region: u64,
    /// Role switch: `true` accepts local writes and replicates out,
    /// `false` rejects them with `NotPrimary` and applies `Replicate`
    /// frames instead. Flipped by [`Request::Promote`].
    is_primary: AtomicBool,
    /// Replication peers (config order).
    peers: Vec<Arc<PeerState>>,
    /// The bounded in-memory window of published batches the replicator
    /// threads ship from, newest at the back.
    repl_log: Mutex<VecDeque<ReplEntry>>,
    /// The coalesce window, used to convert replication lag from epochs
    /// into a deterministic modeled milliseconds figure.
    coalesce_window_ms: u64,
}

impl Shared {
    /// Per-peer replication status rows for `Health` and `iris top`.
    /// Lag is measured in epochs (exact and deterministic); the modeled
    /// ms figure assumes one batch per coalesce window plus 1 ms of
    /// shipping.
    fn peer_infos(&self) -> Vec<PeerInfo> {
        let epoch = self.cell.load().epoch;
        self.peers
            .iter()
            .map(|p| {
                let acked = p.acked_epoch.load(Ordering::SeqCst);
                let lag = epoch.saturating_sub(acked);
                PeerInfo {
                    region: p.region.load(Ordering::SeqCst),
                    addr: p.addr.clone(),
                    connected: p.connected.load(Ordering::SeqCst),
                    acked_epoch: acked,
                    lag_epochs: lag,
                    lag_ms: lag as f64 * (self.coalesce_window_ms + 1) as f64,
                    reconnects: p.reconnects.load(Ordering::SeqCst),
                }
            })
            .collect()
    }
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServiceHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    replay: Option<ReplayStats>,
    wakers: Vec<Arc<Waker>>,
    accept: Option<JoinHandle<()>>,
    shards: Vec<JoinHandle<()>>,
    mutator: Option<JoinHandle<()>>,
    syncer: Option<JoinHandle<()>>,
    replicators: Vec<JoinHandle<()>>,
}

impl ServiceHandle {
    /// The bound listen address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The currently published state snapshot (what readers see).
    #[must_use]
    pub fn current_snapshot(&self) -> Arc<StateSnapshot> {
        self.shared.cell.load()
    }

    /// What WAL recovery replayed at startup. `None` when the server
    /// runs without a `wal_dir`.
    #[must_use]
    pub fn replay_stats(&self) -> Option<&ReplayStats> {
        self.replay.as_ref()
    }

    /// Stop accepting, wake every shard, and join all server threads.
    /// The syncer is joined last so every acknowledged write's group
    /// fsync has completed by the time this returns.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        if let Ok(mut s) = TcpStream::connect(self.local_addr) {
            let _ = s.flush();
        }
        for waker in &self.wakers {
            waker.wake();
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.shards.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.mutator.take() {
            let _ = h.join();
        }
        if let Some(h) = self.syncer.take() {
            let _ = h.join();
        }
        for h in self.replicators.drain(..) {
            let _ = h.join();
        }
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// This instance's region id.
    #[must_use]
    pub fn region_id(&self) -> u64 {
        self.shared.region
    }

    /// Whether this instance currently accepts local writes (primary)
    /// or only replicated state (follower).
    #[must_use]
    pub fn is_primary(&self) -> bool {
        self.shared.is_primary.load(Ordering::SeqCst)
    }

    /// Promote this instance to primary in-process (the wire-level
    /// equivalent is [`Request::Promote`]). Idempotent.
    pub fn promote(&self) {
        self.shared.is_primary.store(true, Ordering::SeqCst);
    }

    /// Per-peer replication status (same rows `Health` reports).
    #[must_use]
    pub fn peer_infos(&self) -> Vec<PeerInfo> {
        self.shared.peer_infos()
    }

    /// Simulate (or heal) a network partition towards `addr`: while
    /// paused, the peer's replicator drops its connection and ships
    /// nothing. Returns whether a peer with that address exists.
    pub fn set_peer_paused(&self, addr: &str, paused: bool) -> bool {
        let Some(peer) = self.shared.peers.iter().find(|p| p.addr == addr) else {
            return false;
        };
        peer.paused.store(paused, Ordering::SeqCst);
        true
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Plan the region, boot the controller — from the `wal_dir`'s durable
/// state when there is one (replaying WAL-after-snapshot), else seeded
/// with one circuit per reachable DC pair — bind the listener and start
/// serving.
///
/// # Errors
///
/// [`IrisError::Io`] if the address cannot be bound, the WAL cannot be
/// opened, or the event-loop plumbing (poller/waker) cannot be created;
/// [`IrisError::Corrupt`] / [`IrisError::ReplayFailed`] if the durable
/// state cannot be recovered (see [`crate::recovery`]).
pub fn serve(region: Region, config: &ServiceConfig) -> IrisResult<ServiceHandle> {
    iris_telemetry::trace::set_enabled(config.trace);
    iris_telemetry::trace::set_slow_threshold_ms(config.slow_ms);
    let goals = DesignGoals::with_cuts(config.cuts);
    let plan = plan_iris(&region, &goals);
    let controller = Controller::for_region(&region, &goals);

    // Boot via the recovery path in both cases: with an empty durable
    // state it reproduces the fresh-boot seed (one circuit per reachable
    // pair at epoch 0), so a recovered server and a new one share one
    // code path by construction.
    let (wal, durable) = match &config.wal_dir {
        Some(dir) => {
            let (wal, durable) = Wal::open(Path::new(dir))?;
            (Some(wal), durable)
        }
        None => (None, DurableState::empty()),
    };
    let wal_backed = wal.is_some();
    let sync_handle = wal.as_ref().map(Wal::sync_handle).transpose()?;
    let (boot, active_cuts, stats) =
        recovery::recover(&region, &goals, &plan.provisioning, &controller, &durable)?;
    let replay = config.wal_dir.as_ref().map(|_| stats);

    let plan_summary = PlanSummary {
        epoch: 0,
        dcs: region.dcs.len(),
        ducts: region.map.duct_count(),
        used_ducts: plan.provisioning.used_edges().len(),
        cut_tolerance: goals.max_cuts,
        scenarios_examined: plan.provisioning.scenarios_examined,
        dc_transceivers: plan.dc_transceivers,
        fiber_pair_spans: plan.total_fiber_pair_spans(),
        oss_ports: plan.oss_ports(),
        feasible: plan.is_feasible(),
    };

    let listener = TcpListener::bind(&config.addr).map_err(|e| IrisError::Io {
        detail: format!("cannot bind {}: {e}", config.addr),
    })?;
    let local_addr = listener.local_addr().map_err(|e| IrisError::Io {
        detail: format!("cannot resolve listen address: {e}"),
    })?;

    let nshards = config.effective_shards();
    let boot_wal_stats = wal.as_ref().map(Wal::stats).unwrap_or_default();
    let boot_snap = Arc::new(boot);
    let published = build_published(
        &plan_summary,
        region.dcs.len(),
        region.map.huts().len(),
        region.map.duct_count(),
        Arc::clone(&boot_snap),
    )?;
    let peers: Vec<Arc<PeerState>> = config
        .peers
        .iter()
        .map(|addr| {
            Arc::new(PeerState {
                addr: addr.clone(),
                region: AtomicU64::new(0),
                acked_epoch: AtomicU64::new(0),
                connected: AtomicBool::new(false),
                reconnects: AtomicU64::new(0),
                paused: AtomicBool::new(false),
            })
        })
        .collect();
    let shared = Arc::new(Shared {
        cell: SnapshotCell::new((*boot_snap).clone()),
        published: RwLock::new(Arc::new(published)),
        plan: plan_summary,
        huts: region.map.huts().len(),
        dc_count: region.dcs.len(),
        edge_count: region.map.duct_count(),
        retry_after_ms: config.retry_after_ms(),
        shutdown: AtomicBool::new(false),
        queue_depth: AtomicUsize::new(0),
        overloaded: AtomicU64::new(0),
        start: Instant::now(),
        wal_records: AtomicU64::new(boot_wal_stats.records),
        wal_bytes: AtomicU64::new(boot_wal_stats.bytes),
        last_fsync_us: AtomicU64::new(0),
        region: config.region_id,
        is_primary: AtomicBool::new(!config.follower),
        peers,
        repl_log: Mutex::new(VecDeque::new()),
        coalesce_window_ms: config.coalesce_window_ms,
    });

    let io_err = |what: &str, e: std::io::Error| IrisError::Io {
        detail: format!("cannot create shard {what}: {e}"),
    };
    let (tx, rx) = mpsc::sync_channel::<WriteOp>(config.queue_capacity.max(1));
    let (sync_tx, sync_rx) = mpsc::channel::<SyncMsg>();
    let mut intake_txs = Vec::with_capacity(nshards);
    let mut done_txs = Vec::with_capacity(nshards);
    let mut wakers = Vec::with_capacity(nshards);
    let mut shard_parts = Vec::with_capacity(nshards);
    for _ in 0..nshards {
        let (intake_tx, intake_rx) = mpsc::channel::<TcpStream>();
        let (done_tx, done_rx) = mpsc::channel::<(CutDest, DeferredReply)>();
        let poller = Poller::new().map_err(|e| io_err("poller", e))?;
        let waker = Arc::new(Waker::new().map_err(|e| io_err("waker", e))?);
        intake_txs.push(intake_tx);
        done_txs.push(done_tx);
        wakers.push(Arc::clone(&waker));
        shard_parts.push((poller, waker, intake_rx, done_rx));
    }

    let mutator = {
        let shared = Arc::clone(&shared);
        let provisioning = plan.provisioning.clone();
        let window = Duration::from_millis(config.coalesce_window_ms);
        let snapshot_every = config.snapshot_every;
        let boot_snap = Arc::clone(&boot_snap);
        std::thread::spawn(move || {
            let machine = ControlMachine::new(
                &region,
                &goals,
                &provisioning,
                &controller,
                active_cuts,
                wal,
                snapshot_every,
            );
            mutator_loop(
                machine, &rx, &shared, window, &sync_tx, boot_snap, wal_backed,
            );
        })
    };

    let syncer = {
        let shared = Arc::clone(&shared);
        let wakers = wakers.clone();
        std::thread::spawn(move || syncer_loop(&sync_rx, &shared, sync_handle, &done_txs, &wakers))
    };

    let mut shards = Vec::with_capacity(nshards);
    let tick = Duration::from_millis(config.read_timeout_ms.max(1));
    for (id, (poller, waker, intake, done)) in shard_parts.into_iter().enumerate() {
        let runner = ShardRunner {
            id,
            shared: Arc::clone(&shared),
            tx: tx.clone(),
            poller,
            waker,
            intake,
            done,
            done_alive: true,
            conns: Vec::new(),
            free: Vec::new(),
            next_gen: 0,
            metrics: ShardMetrics::new(id),
            waits: Vec::new(),
        };
        shards.push(std::thread::spawn(move || runner.run(tick)));
    }

    let accept = {
        let shared = Arc::clone(&shared);
        let wakers = wakers.clone();
        std::thread::spawn(move || {
            let accept_errors = iris_telemetry::global().counter("iris_service_accept_errors");
            let mut next = 0usize;
            let mut backoff_ms = 1u64;
            for conn in listener.incoming() {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let stream = match conn {
                    Ok(stream) => {
                        backoff_ms = 1;
                        stream
                    }
                    Err(_) => {
                        // Transient accept failures (EMFILE, ECONNABORTED,
                        // EINTR, ...) must not tear down the listener:
                        // count them and back off so an fd-exhausted
                        // process does not spin, then keep accepting.
                        accept_errors.inc();
                        std::thread::sleep(Duration::from_millis(backoff_ms));
                        backoff_ms = (backoff_ms * 2).min(ACCEPT_BACKOFF_CAP_MS);
                        continue;
                    }
                };
                let shard = next % intake_txs.len();
                next += 1;
                if intake_txs[shard].send(stream).is_err() {
                    break;
                }
                wakers[shard].wake();
            }
        })
    };

    let replicators = shared
        .peers
        .iter()
        .enumerate()
        .map(|(idx, peer)| {
            let shared = Arc::clone(&shared);
            let peer = Arc::clone(peer);
            std::thread::spawn(move || replicator_loop(&shared, &peer, idx))
        })
        .collect();

    Ok(ServiceHandle {
        local_addr,
        shared,
        replay,
        wakers,
        accept: Some(accept),
        shards,
        mutator: Some(mutator),
        syncer: Some(syncer),
        replicators,
    })
}

/// Sleep up to `ms` in short slices, returning early (false) when
/// shutdown is requested — keeps replicator backoffs from delaying
/// [`ServiceHandle::shutdown`].
fn nap(shared: &Shared, ms: u64) -> bool {
    let mut left = ms;
    while left > 0 {
        if shared.shutdown.load(Ordering::SeqCst) {
            return false;
        }
        let step = left.min(20);
        std::thread::sleep(Duration::from_millis(step));
        left -= step;
    }
    !shared.shutdown.load(Ordering::SeqCst)
}

/// One peer's replication pump, running for the server's lifetime and
/// active only while this instance is primary and the peer is not
/// paused (partitioned).
///
/// Per session: connect (seeded decorrelated-jitter backoff between
/// attempts), negotiate the binary codec, probe `Health` to learn the
/// follower's region and resume epoch, then ship batches from the
/// in-memory replication window in epoch order, checking every
/// `ReplicateAck` CRC against the primary's own canonical-state CRC at
/// that epoch. A follower behind the window (or answering with an
/// epoch-chain gap or CRC divergence) is resynced with one full
/// `SyncState` snapshot, then streaming resumes.
fn replicator_loop(shared: &Shared, peer: &PeerState, idx: usize) {
    let telemetry = iris_telemetry::global();
    let ship_c = telemetry.counter(&labeled(
        "iris_service_replicated_batches_total",
        "peer",
        &peer.addr,
    ));
    let sync_c = telemetry.counter(&labeled(
        "iris_service_state_syncs_total",
        "peer",
        &peer.addr,
    ));
    let crc_c = telemetry.counter("iris_service_replication_crc_mismatch_total");
    let mut backoff = Backoff::new(5, 500, 0x5EED_u64 ^ (shared.region << 8) ^ idx as u64);

    'session: loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if !shared.is_primary.load(Ordering::SeqCst) || peer.paused.load(Ordering::SeqCst) {
            peer.connected.store(false, Ordering::SeqCst);
            if !nap(shared, 5) {
                return;
            }
            continue 'session;
        }
        let mut client = match ServiceClient::connect(&peer.addr) {
            Ok(c) => c,
            Err(_) => {
                peer.reconnects.fetch_add(1, Ordering::SeqCst);
                if !nap(shared, backoff.next_delay_ms()) {
                    return;
                }
                continue 'session;
            }
        };
        // A hung or partitioned follower must not wedge the pump.
        let _ = client.set_deadline(Some(Duration::from_millis(2000)));
        let _ = client.hello(Codec::Binary);
        let follower = match client.call(&Request::Health) {
            Ok(Response::Health(h)) => h,
            _ => {
                peer.reconnects.fetch_add(1, Ordering::SeqCst);
                if !nap(shared, backoff.next_delay_ms()) {
                    return;
                }
                continue 'session;
            }
        };
        peer.region.store(follower.region, Ordering::SeqCst);
        peer.acked_epoch.store(follower.epoch, Ordering::SeqCst);
        peer.connected.store(true, Ordering::SeqCst);
        let mut next_epoch = follower.epoch + 1;

        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            if !shared.is_primary.load(Ordering::SeqCst) || peer.paused.load(Ordering::SeqCst) {
                peer.connected.store(false, Ordering::SeqCst);
                continue 'session;
            }
            let local_epoch = shared.cell.load().epoch;
            if next_epoch > local_epoch {
                // Caught up; poll for the next publish.
                if !nap(shared, 1) {
                    return;
                }
                continue;
            }
            let entry = {
                let log = shared.repl_log.lock();
                log.iter().find(|e| e.epoch == next_epoch).cloned()
            };
            let mut need_sync = entry.is_none();
            if let Some(entry) = entry {
                match client.call_retrying(
                    &Request::Replicate {
                        source_region: shared.region,
                        batch: (*entry.batch_json).clone(),
                    },
                    4,
                ) {
                    Ok(Response::ReplicateAck { epoch, state_crc }) => {
                        if state_crc == entry.state_crc {
                            ship_c.inc();
                            peer.acked_epoch.store(epoch, Ordering::SeqCst);
                            next_epoch = epoch + 1;
                            continue;
                        }
                        // The follower committed the batch but its state
                        // diverged: fall back to a full snapshot.
                        crc_c.inc();
                        need_sync = true;
                    }
                    Err(IrisError::ReplayFailed { .. }) => need_sync = true,
                    Ok(_) | Err(_) => {
                        peer.connected.store(false, Ordering::SeqCst);
                        peer.reconnects.fetch_add(1, Ordering::SeqCst);
                        if !nap(shared, backoff.next_delay_ms()) {
                            return;
                        }
                        continue 'session;
                    }
                }
            }
            if need_sync {
                let snap = shared.cell.load();
                let persisted = PersistedSnapshot::from_state(&snap);
                let Ok(state_json) = serde_json::to_string(&persisted) else {
                    continue 'session;
                };
                match client.call_retrying(
                    &Request::SyncState {
                        source_region: shared.region,
                        state: state_json,
                    },
                    4,
                ) {
                    Ok(Response::ReplicateAck { epoch, state_crc }) => {
                        sync_c.inc();
                        if state_crc != snap.state_crc() {
                            crc_c.inc();
                        }
                        peer.acked_epoch.store(epoch, Ordering::SeqCst);
                        next_epoch = epoch + 1;
                    }
                    _ => {
                        peer.connected.store(false, Ordering::SeqCst);
                        peer.reconnects.fetch_add(1, Ordering::SeqCst);
                        if !nap(shared, backoff.next_delay_ms()) {
                            return;
                        }
                        continue 'session;
                    }
                }
            }
        }
    }
}

/// One applied batch handed from the mutator to the syncer for group
/// commit: fsync (if a record was appended), publish, route cut acks.
struct SyncMsg {
    snapshot: Option<Arc<StateSnapshot>>,
    replies: Vec<(CutDest, DeferredReply)>,
    /// The batch rendered for the replication window (primary-originated
    /// and replicated batches both land here, so a freshly promoted
    /// follower can ship incrementally).
    repl_entry: Option<ReplEntry>,
    /// Whether this batch appended a WAL record the group fsync must
    /// cover.
    appended: bool,
    /// Writes this batch applied (`writes_applied` delta).
    applied: u64,
    /// Updates this batch absorbed by coalescing.
    coalesced: u64,
    /// Queue ops this batch consumed (drives the pending-write gauge).
    batch_len: usize,
    wal_stats: Option<WalStats>,
    batch_trace: u64,
    /// The WAL append failed: route the replies, then stop the server.
    fatal: bool,
}

/// The single writer: pop a write, gather the coalesce window, apply the
/// batch through the [`ControlMachine`] (which appends it to the WAL
/// *without* fsyncing), and hand the result to the syncer for group
/// commit.
fn mutator_loop(
    mut machine: ControlMachine<'_>,
    rx: &Receiver<WriteOp>,
    shared: &Shared,
    window: Duration,
    sync_tx: &Sender<SyncMsg>,
    boot_snap: Arc<StateSnapshot>,
    wal_backed: bool,
) {
    machine.set_deferred_sync(true);
    let telemetry = iris_telemetry::global();
    // The last snapshot this thread built. `shared.cell` lags behind it
    // (publication happens in the syncer, after the group fsync), so
    // the mutator must chain batches off its own copy.
    let mut prev = boot_snap;

    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let first = match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(op) => op,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        };
        // Trace bookkeeping: queue wait is measured from the first
        // op's enqueue to its pop (FIFO queue, so it waited longest);
        // coalescing covers the gather window plus the drain.
        let first_enqueued = first.enqueued();
        let popped = Instant::now();
        let mut batch = vec![first];
        if !window.is_zero() {
            std::thread::sleep(window);
        }
        while let Ok(op) = rx.try_recv() {
            batch.push(op);
        }
        let drained = Instant::now();

        // Partition the drain: local ops coalesce into one batch, while
        // replication ops apply standalone in arrival order. A server
        // only ever sees one kind per drain in practice — shards reject
        // local writes on a follower and `Replicate` frames on a
        // primary — so the partition does not reorder anything a client
        // can observe.
        let mut updates: BTreeMap<(usize, usize), u32> = BTreeMap::new();
        let mut update_dests: Vec<CutDest> = Vec::new();
        let mut cuts_ops: Vec<(Vec<EdgeId>, CutDest)> = Vec::new();
        let mut repl_ops: Vec<WriteOp> = Vec::new();
        let mut coalesced_now = 0u64;
        let mut local_len = 0usize;
        for op in batch {
            match op {
                WriteOp::Update {
                    a,
                    b,
                    circuits,
                    dest,
                    ..
                } => {
                    if updates.insert((a, b), circuits).is_some() {
                        coalesced_now += 1;
                    }
                    update_dests.push(dest);
                    local_len += 1;
                }
                WriteOp::Cut { cuts, dest, .. } => {
                    cuts_ops.push((cuts, dest));
                    local_len += 1;
                }
                op => repl_ops.push(op),
            }
        }

        if local_len > 0 {
            // Every batch gets its own trace: the root span covers the
            // apply path, with queue-wait and coalesce recorded as
            // sibling windows preceding it. The group fsync + publish
            // land under a `group_commit` root in the same trace,
            // emitted by the syncer.
            let batch_trace = iris_telemetry::trace::mint_trace_id();
            let batch_span = iris_telemetry::trace::root_span(batch_trace, "write_batch");
            iris_telemetry::trace::emit_window("queue_wait", first_enqueued, popped);
            iris_telemetry::trace::emit_window("coalesce", popped, drained);

            let only_cuts: Vec<Vec<EdgeId>> = cuts_ops.iter().map(|(c, _)| c.clone()).collect();
            match machine.apply_batch(&prev, &updates, coalesced_now, &only_cuts) {
                Ok(result) => {
                    let snapshot = result.snapshot.map(Arc::new);
                    let applied = snapshot
                        .as_ref()
                        .map_or(0, |next| next.writes_applied - prev.writes_applied);
                    // Demand acks carry the epoch their write is
                    // readable at: the batch's commit epoch, or the
                    // current one when the whole batch was a no-op.
                    let ack_epoch = snapshot.as_ref().map_or(prev.epoch, |next| next.epoch);
                    if let Some(next) = &snapshot {
                        prev = Arc::clone(next);
                    }
                    let repl_entry = match (&snapshot, result.batch) {
                        (Some(next), Some(record)) => {
                            serde_json::to_string(&record).ok().map(|json| ReplEntry {
                                epoch: next.epoch,
                                state_crc: next.state_crc(),
                                batch_json: Arc::new(json),
                            })
                        }
                        _ => None,
                    };
                    let mut replies: Vec<(CutDest, DeferredReply)> = update_dests
                        .drain(..)
                        .map(|dest| (dest, DeferredReply::Demand { epoch: ack_epoch }))
                        .collect();
                    replies.extend(
                        cuts_ops
                            .drain(..)
                            .map(|(_, dest)| dest)
                            .zip(result.cut_replies.into_iter().map(DeferredReply::Cut)),
                    );
                    let msg = SyncMsg {
                        appended: wal_backed && snapshot.is_some(),
                        snapshot,
                        replies,
                        repl_entry,
                        applied,
                        coalesced: coalesced_now,
                        batch_len: local_len,
                        wal_stats: machine.wal_stats(),
                        batch_trace,
                        fatal: false,
                    };
                    if sync_tx.send(msg).is_err() {
                        return;
                    }
                    drop(batch_span);
                    iris_telemetry::trace::note_if_slow(
                        "write_batch",
                        popped.elapsed().as_secs_f64() * 1e3,
                        batch_trace,
                    );
                }
                Err(e) => {
                    // The WAL could not be written: accepting more
                    // writes would let acknowledged state evaporate on
                    // the next crash, so fail loudly and stop the
                    // server.
                    telemetry.counter("iris_service_wal_errors_total").inc();
                    let mut replies: Vec<(CutDest, DeferredReply)> = update_dests
                        .drain(..)
                        .map(|dest| {
                            (
                                dest,
                                DeferredReply::Failed {
                                    op: "update_demand",
                                    err: e.clone(),
                                },
                            )
                        })
                        .collect();
                    replies.extend(cuts_ops.drain(..).map(|(_, dest)| {
                        (
                            dest,
                            DeferredReply::Failed {
                                op: "report_fiber_cut",
                                err: e.clone(),
                            },
                        )
                    }));
                    let msg = SyncMsg {
                        snapshot: None,
                        replies,
                        repl_entry: None,
                        appended: false,
                        applied: 0,
                        coalesced: 0,
                        batch_len: local_len,
                        wal_stats: None,
                        batch_trace,
                        fatal: true,
                    };
                    let _ = sync_tx.send(msg);
                    shared.shutdown.store(true, Ordering::SeqCst);
                    return;
                }
            }
        }

        for op in repl_ops {
            if !apply_repl_op(&mut machine, &mut prev, shared, sync_tx, wal_backed, op) {
                return;
            }
        }
    }
}

/// Apply one replication op (a shipped WAL batch or a full snapshot)
/// through the [`ControlMachine`] and hand its deferred `ReplicateAck`
/// to the syncer. Returns whether the mutator should keep running:
/// epoch-chain gaps and undecodable frames only fail the one request
/// (the primary falls back to `SyncState`), while a WAL write failure
/// is as fatal as it is for local batches.
fn apply_repl_op(
    machine: &mut ControlMachine<'_>,
    prev: &mut Arc<StateSnapshot>,
    shared: &Shared,
    sync_tx: &Sender<SyncMsg>,
    wal_backed: bool,
    op: WriteOp,
) -> bool {
    let batch_trace = iris_telemetry::trace::mint_trace_id();
    let (dest, op_name, outcome, shipped_json) = match op {
        WriteOp::Replicate {
            batch_json, dest, ..
        } => {
            let outcome = serde_json::from_str::<WalBatch>(&batch_json)
                .map_err(|e| IrisError::Decode {
                    detail: format!("replicated batch does not parse: {e}"),
                })
                .and_then(|record| machine.apply_replicated(prev, &record));
            (dest, "replicate", outcome, Some(batch_json))
        }
        WriteOp::SyncState {
            state_json, dest, ..
        } => {
            let outcome = serde_json::from_str::<PersistedSnapshot>(&state_json)
                .map_err(|e| IrisError::Decode {
                    detail: format!("sync-state snapshot does not parse: {e}"),
                })
                .and_then(|snap| machine.adopt_state(prev, &snap));
            (dest, "sync_state", outcome, None)
        }
        WriteOp::Update { .. } | WriteOp::Cut { .. } => return true,
    };
    match outcome {
        Ok(next) => {
            let next = Arc::new(next);
            let epoch = next.epoch;
            let applied = next.writes_applied.saturating_sub(prev.writes_applied);
            let coalesced = next.coalesced.saturating_sub(prev.coalesced);
            let state_crc = next.state_crc();
            *prev = Arc::clone(&next);
            let repl_entry = shipped_json.map(|json| ReplEntry {
                epoch,
                state_crc,
                batch_json: Arc::new(json),
            });
            let msg = SyncMsg {
                appended: wal_backed && repl_entry.is_some(),
                snapshot: Some(next),
                replies: vec![(
                    dest,
                    DeferredReply::Replicated {
                        epoch,
                        state_crc,
                        op: op_name,
                    },
                )],
                repl_entry,
                applied,
                coalesced,
                batch_len: 1,
                wal_stats: machine.wal_stats(),
                batch_trace,
                fatal: false,
            };
            sync_tx.send(msg).is_ok()
        }
        Err(e) => {
            let fatal = matches!(e, IrisError::Io { .. });
            if fatal {
                iris_telemetry::global()
                    .counter("iris_service_wal_errors_total")
                    .inc();
            }
            let msg = SyncMsg {
                snapshot: None,
                replies: vec![(
                    dest,
                    DeferredReply::Failed {
                        op: op_name,
                        err: e,
                    },
                )],
                repl_entry: None,
                appended: false,
                applied: 0,
                coalesced: 0,
                batch_len: 1,
                wal_stats: machine.wal_stats(),
                batch_trace,
                fatal,
            };
            let sent = sync_tx.send(msg).is_ok();
            if fatal {
                shared.shutdown.store(true, Ordering::SeqCst);
                return false;
            }
            sent
        }
    }
}

/// The group-commit thread: drain every batch the mutator produced
/// while the previous fsync was in flight, make them all durable with
/// one fsync, publish the newest snapshot (rebuilding the
/// pre-serialized read buffers), and only then route cut
/// acknowledgements back to their shards.
fn syncer_loop(
    rx: &Receiver<SyncMsg>,
    shared: &Shared,
    handle: Option<WalSyncHandle>,
    done_txs: &[Sender<(CutDest, DeferredReply)>],
    wakers: &[Arc<Waker>],
) {
    let telemetry = iris_telemetry::global();
    let batches_c = telemetry.counter("iris_service_group_commit_batches");
    let saved_c = telemetry.counter("iris_service_fsyncs_saved");
    let size_h = telemetry.histogram("iris_service_group_commit_size");
    let epoch_g = telemetry.gauge("iris_service_epoch");
    let writes_c = telemetry.counter("iris_service_writes_applied_total");
    let coalesced_c = telemetry.counter("iris_service_coalesced_total");
    let queue_g = telemetry.gauge("iris_service_queue_depth");

    loop {
        let first = match rx.recv() {
            Ok(msg) => msg,
            Err(_) => return, // mutator exited; nothing left to commit
        };
        let mut group = vec![first];
        while let Ok(msg) = rx.try_recv() {
            group.push(msg);
        }
        let mut fatal = group.iter().any(|m| m.fatal);
        let appended = group.iter().filter(|m| m.appended).count() as u64;
        let trace = group
            .iter()
            .rev()
            .find(|m| m.appended)
            .or_else(|| group.last())
            .map_or(0, |m| m.batch_trace);

        // The commit gets its own root span in the trace of the last
        // batch it covers: the fsync and publish happen on this thread,
        // outside the mutator's `write_batch` span stack.
        let commit_span = iris_telemetry::trace::root_span(trace, "group_commit");
        if appended > 0 {
            if let Some(h) = handle.as_ref() {
                match h.sync() {
                    Ok(ms) => shared
                        .last_fsync_us
                        .store((ms * 1e3) as u64, Ordering::Relaxed),
                    Err(_) => {
                        // Nothing in this group is durable: fail every
                        // pending ack in it and stop the server rather
                        // than acknowledge state that can evaporate.
                        telemetry.counter("iris_service_wal_errors_total").inc();
                        fatal = true;
                        for msg in &mut group {
                            msg.snapshot = None;
                            msg.repl_entry = None;
                            for (_, reply) in &mut msg.replies {
                                let op = reply.op();
                                *reply = DeferredReply::Failed {
                                    op,
                                    err: IrisError::Io {
                                        detail: "WAL group fsync failed".to_owned(),
                                    },
                                };
                            }
                        }
                    }
                }
            }
            batches_c.add(appended);
            saved_c.add(appended - 1);
            size_h.record(appended as f64);
        }

        // Publish once per group: the newest snapshot covers them all.
        let mut published_now = false;
        if let Some(next) = group.iter().rev().find_map(|m| m.snapshot.clone()) {
            epoch_g.set(next.epoch as i64);
            let _publish = iris_telemetry::trace::span("publish");
            match build_published(
                &shared.plan,
                shared.dc_count,
                shared.huts,
                shared.edge_count,
                Arc::clone(&next),
            ) {
                Ok(p) => {
                    *shared.published.write() = Arc::new(p);
                    shared.cell.store(next);
                    published_now = true;
                }
                Err(_) => fatal = true,
            }
        }
        drop(commit_span);

        // Feed the replication window only after the group fsync:
        // replicator threads must never ship a batch that could still
        // evaporate in a crash.
        if !fatal {
            let mut log = shared.repl_log.lock();
            for msg in &mut group {
                if let Some(entry) = msg.repl_entry.take() {
                    log.push_back(entry);
                    while log.len() > REPL_LOG_CAP {
                        log.pop_front();
                    }
                }
            }
        }

        writes_c.add(group.iter().map(|m| m.applied).sum());
        coalesced_c.add(group.iter().map(|m| m.coalesced).sum());
        if let Some(stats) = group.iter().rev().find_map(|m| m.wal_stats) {
            shared.wal_records.store(stats.records, Ordering::Relaxed);
            shared.wal_bytes.store(stats.bytes, Ordering::Relaxed);
        }
        let consumed: usize = group.iter().map(|m| m.batch_len).sum();
        let depth = shared
            .queue_depth
            .fetch_sub(consumed, Ordering::SeqCst)
            .saturating_sub(consumed);
        queue_g.set(depth as i64);

        // Acknowledge-after-durable: deferred replies leave only now.
        // Every shard is woken after a publish so parked epoch-waits
        // (`GetPlanAt`) notice the new epoch promptly.
        let mut touched = vec![published_now; done_txs.len()];
        for msg in group {
            for (dest, reply) in msg.replies {
                if dest.shard < done_txs.len() && done_txs[dest.shard].send((dest, reply)).is_ok() {
                    touched[dest.shard] = true;
                }
            }
        }
        for (shard, wake) in touched.into_iter().enumerate() {
            if wake {
                wakers[shard].wake();
            }
        }
        if fatal {
            shared.shutdown.store(true, Ordering::SeqCst);
            for waker in wakers {
                waker.wake();
            }
            return;
        }
    }
}

/// Telemetry labels for every operation a connection can carry
/// (`invalid` covers undecodable requests).
const OPS: [&str; 14] = [
    "get_plan",
    "get_plan_at",
    "get_topology",
    "query_path",
    "update_demand",
    "report_fiber_cut",
    "health",
    "metrics_snapshot",
    "trace_dump",
    "hello",
    "replicate",
    "sync_state",
    "promote",
    "invalid",
];

fn op_idx(op: &str) -> usize {
    OPS.iter().position(|&o| o == op).unwrap_or(OPS.len() - 1)
}

/// Per-shard cached telemetry handles: registry lookups hash the metric
/// name, so the hot path resolves them once per shard instead of once
/// per request.
struct ShardMetrics {
    /// `(requests_total, latency_ms)` per op, [`OPS`] order.
    ops: Vec<(Arc<Counter>, Arc<Histogram>)>,
    shard_requests: Arc<Counter>,
    connections: Arc<Counter>,
    queue_gauge: Arc<Gauge>,
    overloaded: Arc<Counter>,
}

impl ShardMetrics {
    fn new(shard: usize) -> Self {
        let t = iris_telemetry::global();
        let shard_label = shard.to_string();
        Self {
            ops: OPS
                .iter()
                .map(|op| {
                    (
                        t.counter(&labeled("iris_service_requests_total", "op", op)),
                        t.histogram(&labeled("iris_service_latency_ms", "op", op)),
                    )
                })
                .collect(),
            shard_requests: t.counter(&labeled(
                "iris_service_shard_requests_total",
                "shard",
                &shard_label,
            )),
            connections: t.counter(&labeled(
                "iris_service_shard_connections_total",
                "shard",
                &shard_label,
            )),
            queue_gauge: t.gauge("iris_service_queue_depth"),
            overloaded: t.counter("iris_service_overloaded_total"),
        }
    }
}

/// Interest bitmask: bit 0 = read, bit 1 = write, 0 = deregistered.
const WANT_READ: u8 = 1;
const WANT_WRITE: u8 = 2;

fn interest_of(mask: u8) -> Interest {
    match mask {
        WANT_READ => Interest::READ,
        WANT_WRITE => Interest::WRITE,
        _ => Interest::READ_WRITE,
    }
}

/// One response owed to a connection, in request order. `framed` is
/// `None` while a `ReportFiberCut` waits for its batch's group commit;
/// everything behind it queues here so replies never reorder.
struct OutSlot {
    seq: u64,
    framed: Option<Vec<u8>>,
    op_start: Instant,
    trace_id: u64,
    codec: Codec,
}

/// One multiplexed connection.
struct Conn {
    stream: TcpStream,
    /// Generation fence: slots are recycled, and a late cut reply must
    /// not land on a connection that reused the token.
    gen: u64,
    rbuf: Vec<u8>,
    rlen: usize,
    wbuf: Vec<u8>,
    wpos: usize,
    out: VecDeque<OutSlot>,
    next_seq: u64,
    codec: Codec,
    /// Current poller registration (interest bitmask; 0 = deregistered).
    registered: u8,
    /// Stop reading; close once the write buffer and slot queue drain.
    closing: bool,
}

impl Conn {
    fn new(stream: TcpStream, gen: u64) -> Self {
        Self {
            stream,
            gen,
            rbuf: Vec::new(),
            rlen: 0,
            wbuf: Vec::new(),
            wpos: 0,
            out: VecDeque::new(),
            next_seq: 0,
            codec: Codec::Json,
            registered: 0,
            closing: false,
        }
    }
}

/// One parked `GetPlanAt`: the slot to fill once the published epoch
/// reaches `min_epoch`, or with a typed `Timeout` once the deadline
/// passes.
struct EpochWait {
    token: usize,
    gen: u64,
    seq: u64,
    min_epoch: u64,
    deadline: Instant,
    wait_ms: u64,
}

/// One shard's event loop state.
struct ShardRunner {
    id: usize,
    shared: Arc<Shared>,
    tx: SyncSender<WriteOp>,
    poller: Poller,
    waker: Arc<Waker>,
    intake: Receiver<TcpStream>,
    done: Receiver<(CutDest, DeferredReply)>,
    done_alive: bool,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_gen: u64,
    metrics: ShardMetrics,
    /// Parked `GetPlanAt` requests, serviced every loop iteration.
    waits: Vec<EpochWait>,
}

impl ShardRunner {
    fn run(mut self, tick: Duration) {
        if self
            .poller
            .register(self.waker.fd(), WAKER_TOKEN, Interest::READ)
            .is_err()
        {
            return;
        }
        let mut events = Vec::new();
        loop {
            if self.poller.wait(&mut events, Some(tick)).is_err() {
                std::thread::sleep(tick);
            }
            self.waker.drain();
            while let Ok(stream) = self.intake.try_recv() {
                self.accept_stream(stream);
            }
            if self.done_alive {
                loop {
                    match self.done.try_recv() {
                        Ok((dest, reply)) => self.fill_deferred(dest, reply),
                        Err(mpsc::TryRecvError::Empty) => break,
                        Err(mpsc::TryRecvError::Disconnected) => {
                            self.done_alive = false;
                            self.fail_pending_cuts();
                            break;
                        }
                    }
                }
            }
            for ev in &events {
                if ev.token == WAKER_TOKEN {
                    continue;
                }
                self.on_event(ev.token, ev.readable, ev.writable, ev.error);
            }
            self.service_epoch_waits();
            if self.shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
        }
    }

    fn accept_stream(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        // Replies are small frames on a request/reply socket: without
        // NODELAY they sit out Nagle + delayed-ACK (~40 ms per call).
        let _ = stream.set_nodelay(true);
        self.next_gen += 1;
        let token = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        let fd = stream.as_raw_fd();
        let mut conn = Conn::new(stream, self.next_gen);
        if self.poller.register(fd, token, Interest::READ).is_ok() {
            conn.registered = WANT_READ;
            self.conns[token] = Some(conn);
            self.metrics.connections.inc();
        } else {
            self.free.push(token);
        }
    }

    fn on_event(&mut self, token: usize, readable: bool, writable: bool, error: bool) {
        let Some(mut conn) = self.conns.get_mut(token).and_then(Option::take) else {
            return;
        };
        let mut alive = !error;
        if alive && readable {
            alive = self.conn_readable(&mut conn, token);
        }
        if alive && writable {
            alive = try_flush(&mut conn);
        }
        if alive {
            alive = self.finalize(&mut conn, token);
        }
        if alive {
            self.conns[token] = Some(conn);
        } else {
            self.drop_conn(&conn, token);
        }
    }

    fn drop_conn(&mut self, conn: &Conn, token: usize) {
        if conn.registered != 0 {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
        }
        self.free.push(token);
    }

    /// Read until the socket would block, then parse and serve every
    /// complete frame buffered so far. Returns whether the connection
    /// stays alive.
    fn conn_readable(&mut self, conn: &mut Conn, token: usize) -> bool {
        let mut budget = READ_BUDGET;
        loop {
            if conn.rbuf.len() < conn.rlen + 4096 {
                conn.rbuf.resize(conn.rlen + READ_CHUNK, 0);
            }
            match conn.stream.read(&mut conn.rbuf[conn.rlen..]) {
                Ok(0) => {
                    // EOF: serve what's buffered, flush, then close.
                    conn.closing = true;
                    break;
                }
                Ok(n) => {
                    conn.rlen += n;
                    budget = budget.saturating_sub(n);
                    if budget == 0 {
                        break; // level-triggered: the rest re-reports
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        let mut off = 0;
        while !conn.closing {
            match parse_frame(&conn.rbuf[off..conn.rlen]) {
                Ok(Some(frame)) => {
                    off += frame.consumed;
                    self.process_request(conn, token, &frame.payload, frame.trace_id);
                }
                Ok(None) => break,
                Err(e) => {
                    // The stream state is unknown after a framing
                    // error: answer best-effort, flush, then close.
                    self.deliver(conn, &Response::Error(e), conn.codec);
                    conn.closing = true;
                }
            }
        }
        if conn.closing {
            conn.rlen = 0;
        } else if off > 0 {
            conn.rbuf.copy_within(off..conn.rlen, 0);
            conn.rlen -= off;
        }
        true
    }

    /// Decode and dispatch one request payload.
    fn process_request(
        &mut self,
        conn: &mut Conn,
        token: usize,
        payload: &[u8],
        frame_trace: Option<u64>,
    ) {
        let start = Instant::now();
        // A client-supplied trace id (frame header) wins so the caller
        // can correlate; otherwise mint one server-side.
        let trace_id = frame_trace.unwrap_or_else(iris_telemetry::trace::mint_trace_id);
        let req = match codec::decode_request(conn.codec, payload) {
            Ok(req) => req,
            Err(e) => {
                // Decode errors keep the connection: the frame was
                // well-formed, so the stream stays in sync.
                self.deliver(conn, &Response::Error(e), conn.codec);
                self.record("invalid", start, trace_id);
                return;
            }
        };
        let op = req.op();
        let span = iris_telemetry::trace::root_span(trace_id, op);
        match req {
            Request::GetPlan => {
                let published = Arc::clone(&*self.shared.published.read());
                self.deliver_pre(conn, &published.plan_framed[cidx(conn.codec)]);
            }
            Request::GetPlanAt { min_epoch, wait_ms } => {
                let published = Arc::clone(&*self.shared.published.read());
                if published.snap.epoch >= min_epoch {
                    self.deliver_pre(conn, &published.plan_framed[cidx(conn.codec)]);
                } else {
                    // Park: the slot fills from a later publication, or
                    // with a typed Timeout at the deadline. A parked
                    // slot keeps replies behind it ordered, exactly
                    // like a pending cut ack.
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    conn.out.push_back(OutSlot {
                        seq,
                        framed: None,
                        op_start: start,
                        trace_id,
                        codec: conn.codec,
                    });
                    self.waits.push(EpochWait {
                        token,
                        gen: conn.gen,
                        seq,
                        min_epoch,
                        deadline: start + Duration::from_millis(wait_ms),
                        wait_ms,
                    });
                    drop(span);
                    return; // recorded when the wait resolves
                }
            }
            Request::GetTopology => {
                let published = Arc::clone(&*self.shared.published.read());
                self.deliver_pre(conn, &published.topo_framed[cidx(conn.codec)]);
            }
            Request::QueryPath { a, b } => {
                let resp = self.query_path_response(a, b);
                self.deliver(conn, &resp, conn.codec);
            }
            Request::UpdateDemand { a, b, circuits } => {
                if !self.shared.is_primary.load(Ordering::SeqCst) {
                    let resp = Response::Error(IrisError::NotPrimary {
                        region: self.shared.region,
                    });
                    self.deliver(conn, &resp, conn.codec);
                } else {
                    match normalize_pair(a, b, self.shared.dc_count) {
                        Err(e) => self.deliver(conn, &Response::Error(e), conn.codec),
                        Ok((a, b)) => {
                            // Acknowledge-after-durable, like cuts: the
                            // DemandAccepted leaves only after the group
                            // commit, carrying the commit epoch as the
                            // client's read-your-writes fence.
                            let seq = conn.next_seq;
                            conn.next_seq += 1;
                            conn.out.push_back(OutSlot {
                                seq,
                                framed: None,
                                op_start: start,
                                trace_id,
                                codec: conn.codec,
                            });
                            let dest = CutDest {
                                shard: self.id,
                                token,
                                gen: conn.gen,
                                seq,
                            };
                            match self.enqueue(WriteOp::Update {
                                a,
                                b,
                                circuits,
                                dest,
                                enqueued: Instant::now(),
                            }) {
                                Ok(_) => {
                                    drop(span);
                                    return; // recorded at fill time
                                }
                                Err(e) => {
                                    conn.out.pop_back();
                                    self.deliver(conn, &Response::Error(e), conn.codec);
                                }
                            }
                        }
                    }
                }
            }
            Request::ReportFiberCut { cuts } => {
                if !self.shared.is_primary.load(Ordering::SeqCst) {
                    let resp = Response::Error(IrisError::NotPrimary {
                        region: self.shared.region,
                    });
                    self.deliver(conn, &resp, conn.codec);
                } else if let Some(err) = self.validate_cuts(&cuts) {
                    self.deliver(conn, &err, conn.codec);
                } else {
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    conn.out.push_back(OutSlot {
                        seq,
                        framed: None,
                        op_start: start,
                        trace_id,
                        codec: conn.codec,
                    });
                    let dest = CutDest {
                        shard: self.id,
                        token,
                        gen: conn.gen,
                        seq,
                    };
                    match self.enqueue(WriteOp::Cut {
                        cuts,
                        dest,
                        enqueued: Instant::now(),
                    }) {
                        Ok(_) => {
                            // The ack routes back after the group
                            // commit; latency is recorded at fill time.
                            drop(span);
                            return;
                        }
                        Err(e) => {
                            conn.out.pop_back();
                            self.deliver(conn, &Response::Error(e), conn.codec);
                        }
                    }
                }
            }
            Request::Replicate { batch, .. } => {
                if self.shared.is_primary.load(Ordering::SeqCst) {
                    // Two primaries shipping at each other is a config
                    // error (or a split brain); refuse rather than fork
                    // the epoch chain.
                    let resp = Response::Error(IrisError::InvalidInput {
                        detail: format!(
                            "region {} is a primary and does not accept replicated batches",
                            self.shared.region
                        ),
                    });
                    self.deliver(conn, &resp, conn.codec);
                } else {
                    self.defer_repl_write(
                        conn,
                        token,
                        start,
                        trace_id,
                        WriteOpKind::Replicate(batch),
                    );
                    drop(span);
                    return; // recorded at fill time
                }
            }
            Request::SyncState { state, .. } => {
                if self.shared.is_primary.load(Ordering::SeqCst) {
                    let resp = Response::Error(IrisError::InvalidInput {
                        detail: format!(
                            "region {} is a primary and does not accept state syncs",
                            self.shared.region
                        ),
                    });
                    self.deliver(conn, &resp, conn.codec);
                } else {
                    self.defer_repl_write(
                        conn,
                        token,
                        start,
                        trace_id,
                        WriteOpKind::SyncState(state),
                    );
                    drop(span);
                    return; // recorded at fill time
                }
            }
            Request::Promote => {
                // Idempotent: promoting a primary changes nothing. The
                // reply is the enriched health row so the caller sees
                // the new role immediately.
                self.shared.is_primary.store(true, Ordering::SeqCst);
                let resp = self.health_response();
                self.deliver(conn, &resp, conn.codec);
            }
            Request::Health => {
                let resp = self.health_response();
                self.deliver(conn, &resp, conn.codec);
            }
            Request::MetricsSnapshot => {
                iris_telemetry::global()
                    .gauge("iris_service_uptime_ms")
                    .set(self.shared.start.elapsed().as_millis() as i64);
                let resp = Response::Metrics {
                    prometheus: iris_telemetry::global().snapshot().to_prometheus_text(),
                };
                self.deliver(conn, &resp, conn.codec);
            }
            Request::TraceDump { max_events } => {
                let resp = trace_dump_response(max_events);
                self.deliver(conn, &resp, conn.codec);
            }
            Request::Hello { codec: name } => match Codec::from_name(&name) {
                Some(next) => {
                    // Ack in the *old* codec, then switch: the client
                    // decodes the ack before changing its own framing.
                    let old = conn.codec;
                    self.deliver(
                        conn,
                        &Response::HelloAck {
                            codec: next.name().to_owned(),
                        },
                        old,
                    );
                    conn.codec = next;
                }
                None => {
                    let resp = Response::Error(IrisError::InvalidInput {
                        detail: format!("unknown codec {name:?} (expected \"json\" or \"binary\")"),
                    });
                    self.deliver(conn, &resp, conn.codec);
                }
            },
        }
        drop(span);
        self.record(op, start, trace_id);
    }

    fn record(&self, op: &'static str, start: Instant, trace_id: u64) {
        let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
        iris_telemetry::trace::note_if_slow(op, elapsed_ms, trace_id);
        let (count, latency) = &self.metrics.ops[op_idx(op)];
        count.inc();
        latency.record(elapsed_ms);
        self.metrics.shard_requests.inc();
    }

    /// Queue `resp` for the connection: straight into the write buffer
    /// when nothing is pending, else as a filled slot behind whatever
    /// still waits (so replies keep request order).
    fn deliver(&self, conn: &mut Conn, resp: &Response, codec: Codec) {
        if conn.out.is_empty() {
            if frame_response(codec, resp, &mut conn.wbuf).is_err() {
                let frame = encode_error_frame(codec);
                if frame.is_empty() {
                    conn.closing = true;
                } else {
                    conn.wbuf.extend_from_slice(&frame);
                }
            }
        } else {
            let mut buf = Vec::new();
            if frame_response(codec, resp, &mut buf).is_err() {
                let fallback = encode_error_frame(codec);
                buf = fallback;
            }
            let seq = conn.next_seq;
            conn.next_seq += 1;
            conn.out.push_back(OutSlot {
                seq,
                framed: Some(buf),
                op_start: Instant::now(),
                trace_id: 0,
                codec,
            });
        }
    }

    /// Queue an already-framed (pre-serialized) reply.
    fn deliver_pre(&self, conn: &mut Conn, framed: &[u8]) {
        if conn.out.is_empty() {
            conn.wbuf.extend_from_slice(framed);
        } else {
            let seq = conn.next_seq;
            conn.next_seq += 1;
            conn.out.push_back(OutSlot {
                seq,
                framed: Some(framed.to_vec()),
                op_start: Instant::now(),
                trace_id: 0,
                codec: conn.codec,
            });
        }
    }

    /// Promote filled slots into the write buffer, flush, and update
    /// the poller registration. Returns whether the connection stays
    /// alive.
    fn finalize(&mut self, conn: &mut Conn, token: usize) -> bool {
        while conn.out.front().is_some_and(|s| s.framed.is_some()) {
            let slot = conn.out.pop_front();
            if let Some(framed) = slot.and_then(|s| s.framed) {
                conn.wbuf.extend_from_slice(&framed);
            }
        }
        if !try_flush(conn) {
            return false;
        }
        let want_write = conn.wpos < conn.wbuf.len();
        if conn.closing && !want_write && conn.out.is_empty() {
            return false;
        }
        let mut desired = 0u8;
        if !conn.closing {
            desired |= WANT_READ;
        }
        if want_write {
            desired |= WANT_WRITE;
        }
        if desired != conn.registered {
            let fd = conn.stream.as_raw_fd();
            let ok = match (conn.registered, desired) {
                (0, 0) => Ok(()),
                (0, d) => self.poller.register(fd, token, interest_of(d)),
                (_, 0) => self.poller.deregister(fd),
                (_, d) => self.poller.modify(fd, token, interest_of(d)),
            };
            if ok.is_err() {
                return false;
            }
            conn.registered = desired;
        }
        true
    }

    /// Park a replication write exactly like a cut: slot first, then
    /// enqueue; the `ReplicateAck` routes back after the group commit.
    fn defer_repl_write(
        &mut self,
        conn: &mut Conn,
        token: usize,
        start: Instant,
        trace_id: u64,
        kind: WriteOpKind,
    ) {
        let seq = conn.next_seq;
        conn.next_seq += 1;
        conn.out.push_back(OutSlot {
            seq,
            framed: None,
            op_start: start,
            trace_id,
            codec: conn.codec,
        });
        let dest = CutDest {
            shard: self.id,
            token,
            gen: conn.gen,
            seq,
        };
        let op = match kind {
            WriteOpKind::Replicate(batch_json) => WriteOp::Replicate {
                batch_json,
                dest,
                enqueued: Instant::now(),
            },
            WriteOpKind::SyncState(state_json) => WriteOp::SyncState {
                state_json,
                dest,
                enqueued: Instant::now(),
            },
        };
        if let Err(e) = self.enqueue(op) {
            conn.out.pop_back();
            self.deliver(conn, &Response::Error(e), conn.codec);
        }
    }

    /// Route one durable deferred acknowledgement into its waiting slot.
    fn fill_deferred(&mut self, dest: CutDest, reply: DeferredReply) {
        let Some(mut conn) = self.conns.get_mut(dest.token).and_then(Option::take) else {
            return;
        };
        if conn.gen != dest.gen {
            // The token was recycled; the original peer is gone.
            self.conns[dest.token] = Some(conn);
            return;
        }
        if let Some(slot) = conn
            .out
            .iter_mut()
            .find(|s| s.seq == dest.seq && s.framed.is_none())
        {
            let op = reply.op();
            let resp = match reply {
                DeferredReply::Cut(CutReply::Applied(summary)) => Response::Recovery(summary),
                DeferredReply::Cut(CutReply::AlreadySevered { active_cuts }) => {
                    Response::CutAlreadyActive { active_cuts }
                }
                DeferredReply::Cut(CutReply::Failed(e)) => Response::Error(e),
                DeferredReply::Demand { epoch } => Response::DemandAccepted {
                    queue_depth: self.shared.queue_depth.load(Ordering::SeqCst),
                    epoch,
                },
                DeferredReply::Replicated {
                    epoch, state_crc, ..
                } => Response::ReplicateAck { epoch, state_crc },
                DeferredReply::Failed { err, .. } => Response::Error(err),
            };
            let mut buf = Vec::new();
            if frame_response(slot.codec, &resp, &mut buf).is_err() {
                buf = encode_error_frame(slot.codec);
            }
            let elapsed_ms = slot.op_start.elapsed().as_secs_f64() * 1e3;
            let trace_id = slot.trace_id;
            slot.framed = Some(buf);
            iris_telemetry::trace::note_if_slow(op, elapsed_ms, trace_id);
            let (count, latency) = &self.metrics.ops[op_idx(op)];
            count.inc();
            latency.record(elapsed_ms);
            self.metrics.shard_requests.inc();
        }
        if self.finalize(&mut conn, dest.token) {
            self.conns[dest.token] = Some(conn);
        } else {
            self.drop_conn(&conn, dest.token);
        }
    }

    /// Resolve parked `GetPlanAt` requests: fill with the published
    /// plan once the epoch catches up, or with a typed `Timeout` at the
    /// deadline.
    fn service_epoch_waits(&mut self) {
        if self.waits.is_empty() {
            return;
        }
        let published = Arc::clone(&*self.shared.published.read());
        let epoch = published.snap.epoch;
        let now = Instant::now();
        let mut i = 0;
        while i < self.waits.len() {
            let ready = epoch >= self.waits[i].min_epoch;
            let expired = now >= self.waits[i].deadline;
            if !ready && !expired {
                i += 1;
                continue;
            }
            let wait = self.waits.swap_remove(i);
            self.fill_wait(&published, &wait, ready);
        }
    }

    /// Fill one resolved epoch-wait slot (satisfied or timed out).
    fn fill_wait(&mut self, published: &Published, wait: &EpochWait, ready: bool) {
        let Some(mut conn) = self.conns.get_mut(wait.token).and_then(Option::take) else {
            return;
        };
        if conn.gen != wait.gen {
            self.conns[wait.token] = Some(conn);
            return;
        }
        if let Some(slot) = conn
            .out
            .iter_mut()
            .find(|s| s.seq == wait.seq && s.framed.is_none())
        {
            let buf = if ready {
                published.plan_framed[cidx(slot.codec)].clone()
            } else {
                let resp = Response::Error(IrisError::Timeout {
                    what: format!("epoch wait for epoch {}", wait.min_epoch),
                    after_ms: wait.wait_ms,
                });
                let mut buf = Vec::new();
                if frame_response(slot.codec, &resp, &mut buf).is_err() {
                    buf = encode_error_frame(slot.codec);
                }
                buf
            };
            let elapsed_ms = slot.op_start.elapsed().as_secs_f64() * 1e3;
            let trace_id = slot.trace_id;
            slot.framed = Some(buf);
            iris_telemetry::trace::note_if_slow("get_plan_at", elapsed_ms, trace_id);
            let (count, latency) = &self.metrics.ops[op_idx("get_plan_at")];
            count.inc();
            latency.record(elapsed_ms);
            self.metrics.shard_requests.inc();
        }
        if self.finalize(&mut conn, wait.token) {
            self.conns[wait.token] = Some(conn);
        } else {
            self.drop_conn(&conn, wait.token);
        }
    }

    /// The reply channel died with acknowledgements still pending:
    /// answer them (cuts, demand acks, replication acks, parked epoch
    /// waits alike) with a typed error instead of leaving clients
    /// hanging.
    fn fail_pending_cuts(&mut self) {
        for token in 0..self.conns.len() {
            let Some(mut conn) = self.conns.get_mut(token).and_then(Option::take) else {
                continue;
            };
            let mut filled = false;
            for slot in conn.out.iter_mut().filter(|s| s.framed.is_none()) {
                let resp = Response::Error(IrisError::Io {
                    detail: "mutator exited before the write committed".to_owned(),
                });
                let mut buf = Vec::new();
                if frame_response(slot.codec, &resp, &mut buf).is_err() {
                    buf = encode_error_frame(slot.codec);
                }
                slot.framed = Some(buf);
                filled = true;
            }
            if !filled || self.finalize(&mut conn, token) {
                self.conns[token] = Some(conn);
            } else {
                self.drop_conn(&conn, token);
            }
        }
    }

    fn query_path_response(&self, a: usize, b: usize) -> Response {
        match normalize_pair(a, b, self.shared.dc_count) {
            Err(e) => Response::Error(e),
            Ok((a, b)) => {
                let snap = Arc::clone(&self.shared.published.read().snap);
                match snap.paths.get(&(a, b)) {
                    Some(p) => Response::Path(PathInfo {
                        a,
                        b,
                        nodes: p.nodes.clone(),
                        edges: p.edges.clone(),
                        length_km: p.length_km,
                        rtt_ms: iris_geo::rtt_ms(p.length_km),
                        circuits: snap.allocation.get(&(a, b)).copied().unwrap_or(0),
                        epoch: snap.epoch,
                    }),
                    None => Response::Error(IrisError::Unreachable {
                        what: format!("DC {a} -> DC {b} with cuts {:?}", snap.active_cuts),
                    }),
                }
            }
        }
    }

    fn validate_cuts(&self, cuts: &[usize]) -> Option<Response> {
        if cuts.is_empty() {
            return Some(Response::Error(IrisError::InvalidInput {
                detail: "ReportFiberCut needs at least one duct id".to_owned(),
            }));
        }
        if let Some(&bad) = cuts.iter().find(|&&c| c >= self.shared.edge_count) {
            return Some(Response::Error(IrisError::InvalidInput {
                detail: format!(
                    "cut duct {bad} out of range (region has {} ducts)",
                    self.shared.edge_count
                ),
            }));
        }
        None
    }

    fn health_response(&self) -> Response {
        let snap = Arc::clone(&self.shared.published.read().snap);
        let primary = self.shared.is_primary.load(Ordering::SeqCst);
        Response::Health(HealthInfo {
            region: self.shared.region,
            role: if primary { "primary" } else { "follower" }.to_owned(),
            peers: self.shared.peer_infos(),
            epoch: snap.epoch,
            queue_depth: self.shared.queue_depth.load(Ordering::SeqCst),
            writes_applied: snap.writes_applied,
            coalesced: snap.coalesced,
            overloaded: self.shared.overloaded.load(Ordering::SeqCst),
            active_cuts: snap.active_cuts.clone(),
            quarantined: snap.quarantined.len(),
            last_recovery: snap.last_recovery.clone(),
            uptime_ms: self.shared.start.elapsed().as_millis() as u64,
            wal_records: self.shared.wal_records.load(Ordering::Relaxed),
            wal_bytes: self.shared.wal_bytes.load(Ordering::Relaxed),
            last_fsync_ms: self.shared.last_fsync_us.load(Ordering::Relaxed) as f64 / 1e3,
        })
    }

    /// Try to enqueue a write; a full queue is typed backpressure.
    ///
    /// The depth counter is bumped *before* the send: once the op is in
    /// the channel the syncer may consume the batch and decrement at
    /// any moment, so counting afterwards would race the decrement and
    /// underflow.
    fn enqueue(&self, op: WriteOp) -> IrisResult<usize> {
        let depth = self.shared.queue_depth.fetch_add(1, Ordering::SeqCst) + 1;
        match self.tx.try_send(op) {
            Ok(()) => {
                self.metrics.queue_gauge.set(depth as i64);
                Ok(depth)
            }
            Err(TrySendError::Full(_)) => {
                self.shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
                self.shared.overloaded.fetch_add(1, Ordering::SeqCst);
                self.metrics.overloaded.inc();
                Err(IrisError::Overloaded {
                    retry_after_ms: self.shared.retry_after_ms,
                })
            }
            Err(TrySendError::Disconnected(_)) => {
                self.shared.queue_depth.fetch_sub(1, Ordering::SeqCst);
                Err(IrisError::Io {
                    detail: "mutator queue is closed".to_owned(),
                })
            }
        }
    }
}

/// Write buffered bytes until the socket would block. Returns whether
/// the connection stays alive.
fn try_flush(conn: &mut Conn) -> bool {
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => return false,
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    if conn.wpos == conn.wbuf.len() {
        conn.wbuf.clear();
        conn.wpos = 0;
    } else if conn.wpos > READ_CHUNK {
        conn.wbuf.drain(..conn.wpos);
        conn.wpos = 0;
    }
    true
}

/// Frame a generic encode-failure error, falling back to an empty
/// (connection-closing) buffer if even that cannot be encoded.
fn encode_error_frame(codec: Codec) -> Vec<u8> {
    let err = Response::Error(IrisError::Decode {
        detail: "response could not be encoded".to_owned(),
    });
    let mut buf = Vec::new();
    let _ = frame_response(codec, &err, &mut buf);
    buf
}

fn trace_dump_response(max_events: u64) -> Response {
    // Cap the dump so the encoded response stays well inside
    // MAX_FRAME_LEN (~140 bytes per event as JSON).
    let max = if max_events == 0 {
        2000
    } else {
        max_events.min(4000) as usize
    };
    let dump = iris_telemetry::trace::dump(max);
    Response::Trace(TraceDumpInfo {
        enabled: dump.enabled,
        dropped: dump.dropped,
        events: dump
            .events
            .into_iter()
            .map(|e| TraceEventInfo {
                trace_id: e.trace_id,
                span_id: e.span_id,
                parent_id: e.parent_id,
                stage: e.stage,
                start_us: e.start_us,
                dur_us: e.dur_us,
                modeled: e.modeled,
            })
            .collect(),
        slow: dump
            .slow
            .into_iter()
            .map(|s| SlowRequestInfo {
                trace_id: s.trace_id,
                op: s.op,
                total_ms: s.total_ms,
                at_us: s.at_us,
            })
            .collect(),
    })
}

/// Validate and order a DC pair as `(min, max)`.
fn normalize_pair(a: usize, b: usize, dc_count: usize) -> IrisResult<(usize, usize)> {
    if a == b {
        return Err(IrisError::InvalidInput {
            detail: format!("pair endpoints must differ (got {a}, {b})"),
        });
    }
    let hi = a.max(b);
    if hi >= dc_count {
        return Err(IrisError::InvalidInput {
            detail: format!("DC {hi} out of range (region has {dc_count} DCs)"),
        });
    }
    Ok((a.min(b), a.max(b)))
}
