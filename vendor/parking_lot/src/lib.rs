//! Offline stand-in for `parking_lot`: the same panic-free, non-poisoning
//! `Mutex`/`RwLock` API, implemented over `std::sync`. Poisoned std
//! guards are unwrapped into their inner guard, matching parking_lot's
//! "no poisoning" semantics.

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose guards never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquire shared read access, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire exclusive write access, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}
