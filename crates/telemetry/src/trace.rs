//! Request-scoped tracing and the in-process flight recorder.
//!
//! A **trace** is one unit of externally visible work — a service
//! request, or one mutation batch — identified by a process-unique
//! [`TraceId`] minted with [`mint_trace_id`] (or carried in from a
//! client via the frame codec's optional trace header). Within a
//! trace, RAII span guards ([`root_span`], [`span`]) time stages of
//! the pipeline and record one **event** each into the flight
//! recorder when dropped. The current trace context is kept in a
//! thread-local stack, so deep callees (the controller, the WAL) can
//! attach child spans without any signature changes — and code that
//! runs with no active trace (replay, the crash harness, benches)
//! records nothing at all.
//!
//! The **flight recorder** is a fixed set of sharded ring buffers of
//! atomic words: recording takes a handful of relaxed atomic stores,
//! never allocates, never blocks, and overwrites the oldest events
//! when full. Threads are spread round-robin across shards, so the
//! thread-per-connection server does not serialize on one head
//! pointer. [`dump`] snapshots the rings into owned [`TraceEvent`]s
//! (newest last) for the `TraceDump` RPC and `iris trace dump`.
//!
//! Readers and writers synchronize per slot with a sequence word
//! (write 0, write fields, publish sequence). A reader that observes
//! a slot mid-write skips it; with pathological timing a torn read
//! could slip through, which is acceptable for a diagnostic ring —
//! no correctness decision is ever made from trace data.
//!
//! Two event flavours exist: **measured** spans carry wall-clock
//! start offsets (µs since the recorder epoch) and durations, while
//! **modeled** spans ([`emit_modeled`]) carry the controller's
//! modeled timeline (offsets relative to the parent span's start).
//! Wall-clock data never reaches the seeded deterministic artifacts;
//! the recorder is export-only via [`dump`].

use parking_lot::{Mutex, RwLock};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Ring shards; threads are assigned round-robin.
const SHARDS: usize = 8;
/// Slots per shard (events kept before overwrite, per shard).
const SLOTS: usize = 2048;
/// Atomic words per slot: seq, trace, span|parent, stage|flags,
/// start, duration.
const WORDS: usize = 6;
/// Retained slow-request log entries (oldest evicted).
const SLOW_LOG_CAP: usize = 64;
/// Flag bit: the event is a modeled timeline step, not a measurement.
const FLAG_MODELED: u64 = 1;

/// A process-unique trace identifier. The upper 32 bits carry a
/// per-process nonce (the PID) so ids minted by a client and a server
/// on the same machine do not collide in one dump.
pub type TraceId = u64;

struct Shard {
    /// Total events ever written to this shard; slot = head % SLOTS.
    head: AtomicU64,
    /// `SLOTS * WORDS` atomic words, see the slot layout above.
    words: Vec<AtomicU64>,
}

#[derive(Default)]
struct StageTable {
    names: Vec<String>,
    index: BTreeMap<String, u32>,
}

struct SlowRecord {
    trace_id: TraceId,
    op: String,
    total_ms: f64,
    at_us: u64,
}

struct Recorder {
    epoch: Instant,
    enabled: AtomicBool,
    next_trace: AtomicU64,
    next_span: AtomicU32,
    next_seq: AtomicU64,
    next_shard: AtomicUsize,
    shards: Vec<Shard>,
    stages: RwLock<StageTable>,
    slow: Mutex<VecDeque<SlowRecord>>,
    slow_threshold_us: AtomicU64,
}

static RECORDER: OnceLock<Recorder> = OnceLock::new();

fn recorder() -> &'static Recorder {
    RECORDER.get_or_init(|| Recorder {
        epoch: Instant::now(),
        enabled: AtomicBool::new(true),
        next_trace: AtomicU64::new(1),
        next_span: AtomicU32::new(1),
        next_seq: AtomicU64::new(1),
        next_shard: AtomicUsize::new(0),
        shards: (0..SHARDS)
            .map(|_| Shard {
                head: AtomicU64::new(0),
                words: (0..SLOTS * WORDS).map(|_| AtomicU64::new(0)).collect(),
            })
            .collect(),
        stages: RwLock::new(StageTable::default()),
        slow: Mutex::new(VecDeque::new()),
        slow_threshold_us: AtomicU64::new(250_000),
    })
}

thread_local! {
    /// This thread's ring shard (usize::MAX = not yet assigned).
    static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    /// The active span stack: (trace id, span id), innermost last.
    static STACK: RefCell<Vec<(TraceId, u32)>> = const { RefCell::new(Vec::new()) };
}

fn thread_shard() -> usize {
    SHARD.with(|cell| {
        let mut s = cell.get();
        if s == usize::MAX {
            s = recorder().next_shard.fetch_add(1, Ordering::Relaxed) % SHARDS;
            cell.set(s);
        }
        s
    })
}

/// Turn the flight recorder on or off process-wide. Recording is on
/// by default; when off, span guards are inert (one atomic load).
pub fn set_enabled(on: bool) {
    recorder().enabled.store(on, Ordering::Relaxed);
}

/// Whether the flight recorder is currently recording.
#[must_use]
pub fn enabled() -> bool {
    recorder().enabled.load(Ordering::Relaxed)
}

/// Apply the `IRIS_TRACE` environment variable: `0`, `false`, or
/// `off` disables the recorder; anything else (including unset)
/// leaves it enabled. Returns the resulting state.
pub fn init_from_env() -> bool {
    let on = !matches!(
        std::env::var("IRIS_TRACE").as_deref(),
        Ok("0") | Ok("false") | Ok("off")
    );
    set_enabled(on);
    on
}

/// Mint a fresh trace id: PID nonce in the upper bits, a process
/// counter in the lower.
#[must_use]
pub fn mint_trace_id() -> TraceId {
    let n = recorder().next_trace.fetch_add(1, Ordering::Relaxed);
    (u64::from(std::process::id()) << 32) ^ n
}

/// The trace id of the innermost active span on this thread, if any.
#[must_use]
pub fn current_trace() -> Option<TraceId> {
    STACK.with(|s| s.borrow().last().map(|&(t, _)| t))
}

fn intern(stage: &str) -> u32 {
    let rec = recorder();
    if let Some(&idx) = rec.stages.read().index.get(stage) {
        return idx;
    }
    let mut table = rec.stages.write();
    if let Some(&idx) = table.index.get(stage) {
        return idx;
    }
    let idx = table.names.len() as u32;
    table.names.push(stage.to_owned());
    table.index.insert(stage.to_owned(), idx);
    idx
}

fn stage_name(idx: u32) -> String {
    recorder()
        .stages
        .read()
        .names
        .get(idx as usize)
        .cloned()
        .unwrap_or_else(|| format!("stage-{idx}"))
}

fn now_us() -> u64 {
    recorder().epoch.elapsed().as_micros() as u64
}

/// Write one event into this thread's ring shard.
fn record_event(
    trace_id: TraceId,
    span_id: u32,
    parent_id: u32,
    stage: u32,
    flags: u64,
    start_us: u64,
    dur_us: u64,
) {
    let rec = recorder();
    let seq = rec.next_seq.fetch_add(1, Ordering::Relaxed);
    let shard = &rec.shards[thread_shard()];
    let slot = (shard.head.fetch_add(1, Ordering::Relaxed) as usize) % SLOTS;
    let w = &shard.words[slot * WORDS..(slot + 1) * WORDS];
    w[0].store(0, Ordering::Release); // invalidate while writing
    w[1].store(trace_id, Ordering::Release);
    w[2].store(
        (u64::from(span_id) << 32) | u64::from(parent_id),
        Ordering::Release,
    );
    w[3].store((u64::from(stage) << 32) | flags, Ordering::Release);
    w[4].store(start_us, Ordering::Release);
    w[5].store(dur_us, Ordering::Release);
    w[0].store(seq, Ordering::Release); // publish
}

/// RAII guard for one traced stage; records an event on drop.
/// Obtained from [`root_span`] or [`span`]; inert guards (recorder
/// off, or no active trace for [`span`]) record nothing.
#[derive(Debug)]
pub struct SpanGuard {
    active: bool,
    trace_id: TraceId,
    span_id: u32,
    parent_id: u32,
    stage: u32,
    start: Instant,
    start_us: u64,
    cancelled: bool,
}

impl SpanGuard {
    /// The span id of this guard (0 for inert guards).
    #[must_use]
    pub fn span_id(&self) -> u32 {
        self.span_id
    }

    /// Abandon the span without recording an event.
    pub fn cancel(mut self) {
        self.cancelled = true;
    }
}

fn inert() -> SpanGuard {
    SpanGuard {
        active: false,
        trace_id: 0,
        span_id: 0,
        parent_id: 0,
        stage: 0,
        start: Instant::now(),
        start_us: 0,
        cancelled: false,
    }
}

/// Open a root span for `trace_id`, making it the current trace on
/// this thread until the guard drops. Inert when the recorder is off.
#[must_use]
pub fn root_span(trace_id: TraceId, stage: &str) -> SpanGuard {
    open_span(Some(trace_id), stage)
}

/// Open a child span of the current trace. Inert when there is no
/// current trace on this thread or the recorder is off.
#[must_use]
pub fn span(stage: &str) -> SpanGuard {
    open_span(None, stage)
}

fn open_span(root: Option<TraceId>, stage: &str) -> SpanGuard {
    if !enabled() {
        return inert();
    }
    let (trace_id, parent_id) = match root {
        Some(t) => (t, 0),
        None => match STACK.with(|s| s.borrow().last().copied()) {
            Some((t, parent)) => (t, parent),
            None => return inert(),
        },
    };
    let rec = recorder();
    let span_id = rec.next_span.fetch_add(1, Ordering::Relaxed);
    STACK.with(|s| s.borrow_mut().push((trace_id, span_id)));
    // One clock reading serves both the duration base and the epoch
    // offset — clock reads are not free on every host.
    let start = Instant::now();
    SpanGuard {
        active: true,
        trace_id,
        span_id,
        parent_id,
        stage: intern(stage),
        start,
        start_us: start.duration_since(rec.epoch).as_micros() as u64,
        cancelled: false,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&(_, id)| id == self.span_id) {
                stack.truncate(pos);
            }
        });
        if !self.cancelled {
            record_event(
                self.trace_id,
                self.span_id,
                self.parent_id,
                self.stage,
                0,
                self.start_us,
                self.start.elapsed().as_micros() as u64,
            );
        }
    }
}

/// Record a **modeled** child event under the current span:
/// `start_ms`/`dur_ms` come from a model (the controller's
/// reconfiguration timeline), with the start offset relative to the
/// parent span, not the recorder epoch. No-op without a current trace.
pub fn emit_modeled(stage: &str, start_ms: f64, dur_ms: f64) {
    if !enabled() {
        return;
    }
    let Some((trace_id, parent_id)) = STACK.with(|s| s.borrow().last().copied()) else {
        return;
    };
    let rec = recorder();
    let span_id = rec.next_span.fetch_add(1, Ordering::Relaxed);
    record_event(
        trace_id,
        span_id,
        parent_id,
        intern(stage),
        FLAG_MODELED,
        (start_ms.max(0.0) * 1e3) as u64,
        (dur_ms.max(0.0) * 1e3) as u64,
    );
}

/// Record a measured child event under the current span from an
/// explicit `[start, end]` window (e.g. queue wait measured from an
/// op's enqueue timestamp). No-op without a current trace.
pub fn emit_window(stage: &str, start: Instant, end: Instant) {
    if !enabled() {
        return;
    }
    let Some((trace_id, parent_id)) = STACK.with(|s| s.borrow().last().copied()) else {
        return;
    };
    let rec = recorder();
    let span_id = rec.next_span.fetch_add(1, Ordering::Relaxed);
    let now = Instant::now();
    let start_us = now_us().saturating_sub(now.duration_since(start).as_micros() as u64);
    record_event(
        trace_id,
        span_id,
        parent_id,
        intern(stage),
        0,
        start_us,
        end.duration_since(start).as_micros() as u64,
    );
}

/// Set the slow-request threshold in milliseconds. Requests and
/// batches at or above it are kept in the slow-request log
/// (0 logs everything; the default is 250 ms).
pub fn set_slow_threshold_ms(ms: f64) {
    recorder()
        .slow_threshold_us
        .store((ms.max(0.0) * 1e3) as u64, Ordering::Relaxed);
}

/// Log `op` into the slow-request log if `total_ms` meets the
/// threshold. Returns whether it was logged.
pub fn note_if_slow(op: &str, total_ms: f64, trace_id: TraceId) -> bool {
    let rec = recorder();
    if !rec.enabled.load(Ordering::Relaxed) {
        return false;
    }
    let threshold = rec.slow_threshold_us.load(Ordering::Relaxed);
    if ((total_ms * 1e3) as u64) < threshold {
        return false;
    }
    let mut slow = rec.slow.lock();
    if slow.len() >= SLOW_LOG_CAP {
        slow.pop_front();
    }
    slow.push_back(SlowRecord {
        trace_id,
        op: op.to_owned(),
        total_ms,
        at_us: now_us(),
    });
    true
}

/// One recorded event, as exported by [`dump`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// The trace this event belongs to.
    pub trace_id: TraceId,
    /// This span's id (unique within the process).
    pub span_id: u32,
    /// The parent span's id (0 = root of its trace).
    pub parent_id: u32,
    /// Pipeline stage name, e.g. `wal_fsync`.
    pub stage: String,
    /// Start offset: µs since the recorder epoch for measured events,
    /// µs relative to the parent span for modeled events.
    pub start_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
    /// Whether this is a modeled timeline step rather than a
    /// wall-clock measurement.
    pub modeled: bool,
    /// Global recording order (ascending).
    pub seq: u64,
}

/// One slow-request log entry.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowEntry {
    /// The offending request's trace id.
    pub trace_id: TraceId,
    /// The request op (or `write_batch`).
    pub op: String,
    /// Total handling time in ms.
    pub total_ms: f64,
    /// When it was logged, µs since the recorder epoch.
    pub at_us: u64,
}

/// A snapshot of the flight recorder: ring events plus the slow log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecorderDump {
    /// Whether the recorder was enabled at dump time.
    pub enabled: bool,
    /// Events overwritten before they could be dumped (lower bound).
    pub dropped: u64,
    /// Recorded events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Slow-request log, oldest first.
    pub slow: Vec<SlowEntry>,
}

/// Snapshot the flight recorder: up to `max_events` newest events
/// (0 = everything retained) plus the slow-request log.
#[must_use]
pub fn dump(max_events: usize) -> RecorderDump {
    let rec = recorder();
    let mut events = Vec::new();
    let mut dropped = 0u64;
    for shard in &rec.shards {
        dropped += shard
            .head
            .load(Ordering::Relaxed)
            .saturating_sub(SLOTS as u64);
        for slot in 0..SLOTS {
            let w = &shard.words[slot * WORDS..(slot + 1) * WORDS];
            let seq = w[0].load(Ordering::Acquire);
            if seq == 0 {
                continue;
            }
            let trace_id = w[1].load(Ordering::Relaxed);
            let ids = w[2].load(Ordering::Relaxed);
            let meta = w[3].load(Ordering::Relaxed);
            let start_us = w[4].load(Ordering::Relaxed);
            let dur_us = w[5].load(Ordering::Relaxed);
            if w[0].load(Ordering::Acquire) != seq {
                continue; // overwritten mid-read
            }
            events.push(TraceEvent {
                trace_id,
                span_id: (ids >> 32) as u32,
                parent_id: ids as u32,
                stage: stage_name((meta >> 32) as u32),
                start_us,
                dur_us,
                modeled: meta & FLAG_MODELED != 0,
                seq,
            });
        }
    }
    events.sort_by_key(|e| e.seq);
    if max_events > 0 && events.len() > max_events {
        events.drain(..events.len() - max_events);
    }
    let slow = rec
        .slow
        .lock()
        .iter()
        .map(|s| SlowEntry {
            trace_id: s.trace_id,
            op: s.op.clone(),
            total_ms: s.total_ms,
            at_us: s.at_us,
        })
        .collect();
    RecorderDump {
        enabled: enabled(),
        dropped,
        events,
        slow,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All recording assertions live in one test so the
    /// enable/disable toggling cannot race with parallel tests in
    /// this binary.
    #[test]
    fn spans_record_trees_modeled_events_and_respect_the_switch() {
        // A root span with a nested child and a modeled step.
        let trace = mint_trace_id();
        let (root_id, child_id);
        {
            let root = root_span(trace, "write_batch");
            root_id = root.span_id();
            assert_eq!(current_trace(), Some(trace));
            {
                let child = span("wal_append");
                child_id = child.span_id();
                emit_modeled("drain", 0.0, 15.0);
            }
        }
        assert_eq!(current_trace(), None);

        let d = dump(0);
        let mine: Vec<_> = d.events.iter().filter(|e| e.trace_id == trace).collect();
        assert_eq!(mine.len(), 3, "root + child + modeled: {mine:?}");
        let root_ev = mine.iter().find(|e| e.stage == "write_batch").unwrap();
        let child_ev = mine.iter().find(|e| e.stage == "wal_append").unwrap();
        let modeled = mine.iter().find(|e| e.stage == "drain").unwrap();
        assert_eq!(root_ev.parent_id, 0);
        assert_eq!(root_ev.span_id, root_id);
        assert_eq!(child_ev.parent_id, root_id);
        assert_eq!(child_ev.span_id, child_id);
        assert_eq!(modeled.parent_id, child_id, "modeled under innermost span");
        assert!(modeled.modeled);
        assert_eq!(modeled.dur_us, 15_000);
        assert!(!child_ev.modeled);
        assert!(root_ev.dur_us >= child_ev.dur_us);

        // A span with no active trace is inert.
        {
            let orphan = span("orphan_stage");
            assert_eq!(orphan.span_id(), 0);
        }
        assert!(!dump(0).events.iter().any(|e| e.stage == "orphan_stage"));

        // Cancel records nothing.
        let cancelled_trace = mint_trace_id();
        root_span(cancelled_trace, "cancelled").cancel();
        assert!(!dump(0).events.iter().any(|e| e.trace_id == cancelled_trace));

        // Disabled recorder records nothing, then recovers.
        set_enabled(false);
        assert!(!enabled());
        let silent = mint_trace_id();
        {
            let _g = root_span(silent, "silent");
            emit_modeled("silent_child", 0.0, 1.0);
        }
        set_enabled(true);
        assert!(!dump(0).events.iter().any(|e| e.trace_id == silent));

        // Slow log: gate at 0 logs everything; high gate logs nothing.
        set_slow_threshold_ms(0.0);
        assert!(note_if_slow("unit_test_op", 0.01, trace));
        set_slow_threshold_ms(1e9);
        assert!(!note_if_slow("unit_test_op_fast", 0.01, trace));
        set_slow_threshold_ms(250.0);
        let d = dump(0);
        assert!(d.slow.iter().any(|s| s.op == "unit_test_op"));
        assert!(!d.slow.iter().any(|s| s.op == "unit_test_op_fast"));

        // Ring overwrite: flood one thread's shard past capacity.
        let flood = mint_trace_id();
        for _ in 0..SLOTS + 64 {
            let _g = root_span(flood, "flood");
        }
        let d = dump(0);
        assert!(d.dropped > 0, "flood must overwrite: {}", d.dropped);
        // Bounded dump size.
        let capped = dump(10);
        assert!(capped.events.len() <= 10);
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let a = mint_trace_id();
        let b = mint_trace_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
