//! The centralized (hub-and-spoke) baseline design (§2, Fig. 1(c)).
//!
//! All DCs connect to two hub sites that together provide a non-blocking
//! "big switch"; there are no direct DC-DC connections. This is the
//! design Microsoft Azure operated at publication time and the paper's
//! baseline for every §2 trade-off. The planner here:
//!
//! * routes each DC's capacity to both hubs over shortest fiber paths
//!   (half to each by default — the §2.4 port accounting — or fully
//!   dual-homed for stricter resilience);
//! * checks the siting rule: every DC-hub leg within half the SLA
//!   distance, so any DC-hub-DC path meets OC1;
//! * reports per-duct fiber, hub switching ports, and DC-DC latencies,
//!   ready for [`iris_cost`](https://docs.rs/iris-cost)-style accounting.

use crate::goals::DesignGoals;
use iris_errors::{IrisError, IrisResult};
use iris_fibermap::{Region, SiteId};
use iris_netgraph::dijkstra;
use serde::{Deserialize, Serialize};

/// How each DC's capacity is spread over the two hubs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HubHoming {
    /// Half the capacity to each hub (§2.4's port model; one hub loss
    /// halves regional capacity).
    Split,
    /// Full capacity to both hubs (2x the access fiber and hub ports;
    /// survives a hub loss at full capacity).
    Full,
}

/// A planned hub-and-spoke network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CentralizedPlan {
    /// The two hub sites.
    pub hubs: (SiteId, SiteId),
    /// Homing policy used.
    pub homing: HubHoming,
    /// Fiber pairs leased per duct (indexed by duct id).
    pub fiber_pairs: Vec<u32>,
    /// Transceiver count at DC side (one per wavelength of connected
    /// capacity).
    pub dc_transceivers: u64,
    /// Transceiver count at the hubs (electrical realization terminates
    /// every access fiber there).
    pub hub_transceivers: u64,
    /// Electrical switch ports forming the hubs' non-blocking fabric.
    pub hub_switch_ports: u64,
    /// DC-hub legs exceeding the siting rule (`leg > sla/2`), as
    /// `(dc_index, hub, km)` — empty for a conformant region.
    pub siting_violations: Vec<(usize, SiteId, f64)>,
    /// Best DC-hub-DC fiber distance per unordered pair (km), triangular
    /// order.
    pub pair_distance_km: Vec<f64>,
}

impl CentralizedPlan {
    /// Total fiber pairs leased (per span).
    #[must_use]
    pub fn total_fiber_pair_spans(&self) -> u64 {
        self.fiber_pairs.iter().map(|&f| u64::from(f)).sum()
    }

    /// All transceivers.
    #[must_use]
    pub fn total_transceivers(&self) -> u64 {
        self.dc_transceivers + self.hub_transceivers
    }

    /// Whether every DC respects the hub-distance siting rule.
    #[must_use]
    pub fn meets_siting_rule(&self) -> bool {
        self.siting_violations.is_empty()
    }

    /// Worst DC-DC fiber distance via the hubs, km.
    #[must_use]
    pub fn worst_pair_km(&self) -> f64 {
        self.pair_distance_km.iter().copied().fold(0.0, f64::max)
    }
}

/// Plan a centralized network on `region` with the given `hubs`.
///
/// # Errors
///
/// Returns [`IrisError::Unreachable`] if a DC cannot reach a hub at all
/// (disconnected map).
pub fn plan_centralized(
    region: &Region,
    goals: &DesignGoals,
    hubs: (SiteId, SiteId),
    homing: HubHoming,
) -> IrisResult<CentralizedPlan> {
    region.validate();
    let g = region.map.graph();
    let disabled = vec![false; g.edge_count()];
    let lambda = u64::from(region.wavelengths_per_fiber);
    let max_leg = goals.sla_km / 2.0;

    let mut fiber_pairs = vec![0u32; g.edge_count()];
    let mut siting_violations = Vec::new();
    let mut hub_capacity_wl = 0u64; // total wavelengths landing on hubs

    // Shortest-path trees from both hubs.
    let trees = [
        dijkstra(g, hubs.0, &disabled),
        dijkstra(g, hubs.1, &disabled),
    ];

    for (i, &dc) in region.dcs.iter().enumerate() {
        let cap_wl = region.capacity_wavelengths(i);
        // Capacity per hub leg.
        let legs: &[(usize, u64)] = match homing {
            HubHoming::Split => &[(0, cap_wl / 2 + cap_wl % 2), (1, cap_wl / 2)],
            HubHoming::Full => &[(0, cap_wl), (1, cap_wl)],
        };
        for &(h, leg_wl) in legs {
            let dist = trees[h].dist[dc];
            if !dist.is_finite() {
                return Err(IrisError::Unreachable {
                    what: format!("DC {dc} cannot reach hub {}", [hubs.0, hubs.1][h]),
                });
            }
            if dist > max_leg + 1e-9 {
                siting_violations.push((i, [hubs.0, hubs.1][h], dist));
            }
            let fibers = leg_wl.div_ceil(lambda) as u32;
            if fibers > 0 {
                let Some(edges) = trees[h].path_edges(g, dc) else {
                    return Err(IrisError::Unreachable {
                        what: format!("DC {dc} has no path to hub {}", [hubs.0, hubs.1][h]),
                    });
                };
                for e in edges {
                    fiber_pairs[e] += fibers;
                }
            }
            hub_capacity_wl += leg_wl;
        }
    }

    // Non-blocking hub fabric: every arriving wavelength terminates in a
    // transceiver plugged into a switch port; a folded-Clos fabric needs
    // roughly one more internal port per external one, counted as the
    // §2.4 model does (hub ports = arriving capacity).
    let hub_transceivers = hub_capacity_wl;
    let hub_switch_ports = hub_capacity_wl;

    // Inter-hub trunk for hub-to-hub transit (Split homing: a pair homed
    // to different hubs crosses it; provision the worst case of half the
    // region's capacity, like the L5 duct of Fig. 1(e)).
    if matches!(homing, HubHoming::Split) {
        if let Some(trunk_edges) = trees[0].path_edges(g, hubs.1) {
            let total_wl: u64 = (0..region.dcs.len())
                .map(|i| region.capacity_wavelengths(i))
                .sum();
            let trunk_fibers = (total_wl / 2).div_ceil(lambda) as u32;
            for e in trunk_edges {
                fiber_pairs[e] += trunk_fibers;
            }
        }
    }

    // DC-DC distances via the better hub.
    let n = region.dcs.len();
    let mut pair_distance_km = Vec::with_capacity(n * (n - 1) / 2);
    for a in 0..n {
        for b in (a + 1)..n {
            let (da, db) = (region.dcs[a], region.dcs[b]);
            let via = (0..2)
                .map(|h| trees[h].dist[da] + trees[h].dist[db])
                .fold(f64::INFINITY, f64::min);
            pair_distance_km.push(via);
        }
    }

    let dc_transceivers: u64 = match homing {
        HubHoming::Split => (0..n).map(|i| region.capacity_wavelengths(i)).sum(),
        HubHoming::Full => (0..n).map(|i| 2 * region.capacity_wavelengths(i)).sum(),
    };

    Ok(CentralizedPlan {
        hubs,
        homing,
        fiber_pairs,
        dc_transceivers,
        hub_transceivers,
        hub_switch_ports,
        siting_violations,
        pair_distance_km,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use iris_fibermap::synth::{generate_metro, pick_hub_pair, place_dcs};
    use iris_fibermap::{FiberMap, MetroParams, PlacementParams, SiteKind};
    use iris_geo::Point;

    fn star_region() -> (Region, SiteId, SiteId) {
        let mut map = FiberMap::new();
        let h1 = map.add_site(SiteKind::Hut, Point::new(-2.0, 0.0));
        let h2 = map.add_site(SiteKind::Hut, Point::new(2.0, 0.0));
        map.add_duct(h1, h2, 5.0);
        let mut dcs = Vec::new();
        for (x, y) in [(-20.0, 10.0), (20.0, 10.0), (0.0, -20.0)] {
            let d = map.add_site(SiteKind::DataCenter, Point::new(x, y));
            map.add_duct_detour(d, h1, 1.2);
            map.add_duct_detour(d, h2, 1.2);
            dcs.push(d);
        }
        (
            Region {
                map,
                dcs,
                capacity_fibers: vec![10; 3],
                wavelengths_per_fiber: 40,
                gbps_per_wavelength: 400.0,
            },
            h1,
            h2,
        )
    }

    #[test]
    fn split_homing_moves_half_capacity_to_each_hub() {
        let (r, h1, h2) = star_region();
        let plan = plan_centralized(&r, &DesignGoals::default(), (h1, h2), HubHoming::Split)
            .expect("plannable");
        // 3 DCs x 400 wl -> 1200 wl land on the hubs.
        assert_eq!(plan.hub_transceivers, 1200);
        assert_eq!(plan.dc_transceivers, 1200);
        assert!(plan.meets_siting_rule());
        // Each DC has two 5-fiber legs.
        let dc_access: u32 = plan.fiber_pairs[1..].iter().sum();
        assert_eq!(dc_access, 6 * 5);
    }

    #[test]
    fn full_homing_doubles_access() {
        let (r, h1, h2) = star_region();
        let split = plan_centralized(&r, &DesignGoals::default(), (h1, h2), HubHoming::Split)
            .expect("plannable");
        let full = plan_centralized(&r, &DesignGoals::default(), (h1, h2), HubHoming::Full)
            .expect("plannable");
        assert_eq!(full.hub_transceivers, 2 * split.hub_transceivers);
        assert_eq!(full.dc_transceivers, 2 * split.dc_transceivers);
        assert!(full.total_fiber_pair_spans() > split.total_fiber_pair_spans());
    }

    #[test]
    fn split_homing_provisions_the_hub_trunk() {
        let (r, h1, h2) = star_region();
        let plan = plan_centralized(&r, &DesignGoals::default(), (h1, h2), HubHoming::Split)
            .expect("plannable");
        // Trunk = duct 0: half of 1200 wl = 600 wl = 15 fibers.
        assert_eq!(plan.fiber_pairs[0], 15);
    }

    #[test]
    fn far_dc_violates_siting_rule() {
        let (mut r, h1, h2) = star_region();
        let far = r.map.add_site(SiteKind::DataCenter, Point::new(80.0, 0.0));
        r.map.add_duct_detour(far, h2, 1.2); // ~93 km > 60 km leg limit
        r.map.add_duct_detour(far, h1, 1.2);
        r.dcs.push(far);
        r.capacity_fibers.push(10);
        let plan = plan_centralized(&r, &DesignGoals::default(), (h1, h2), HubHoming::Split)
            .expect("plannable");
        assert!(!plan.meets_siting_rule());
        assert!(plan
            .siting_violations
            .iter()
            .all(|&(dc, _, km)| dc == 3 && km > 60.0));
    }

    #[test]
    fn pair_distances_use_the_better_hub() {
        let (r, h1, h2) = star_region();
        let plan = plan_centralized(&r, &DesignGoals::default(), (h1, h2), HubHoming::Split)
            .expect("plannable");
        assert_eq!(plan.pair_distance_km.len(), 3);
        for (idx, &via) in plan.pair_distance_km.iter().enumerate() {
            // Hub transit is never shorter than the direct fiber route.
            let (a, b) = [(0, 1), (0, 2), (1, 2)][idx];
            let direct = r.map.fiber_distance(r.dcs[a], r.dcs[b]).unwrap();
            assert!(
                via >= direct - 1e-9,
                "pair {idx}: via {via} < direct {direct}"
            );
        }
        assert!(plan.worst_pair_km() <= 120.0);
    }

    #[test]
    fn centralized_on_synthetic_region_is_plannable() {
        let region = place_dcs(
            generate_metro(&MetroParams::default()),
            &PlacementParams {
                n_dcs: 6,
                ..PlacementParams::default()
            },
        );
        let hubs = pick_hub_pair(&region.map, 4.0, 7.0);
        let plan = plan_centralized(&region, &DesignGoals::default(), hubs, HubHoming::Split)
            .expect("plannable");
        assert!(plan.total_fiber_pair_spans() > 0);
        assert_eq!(plan.pair_distance_km.len(), 15);
    }
}
