//! A blocking client for the framed protocol (JSON by default, compact
//! binary after a [`Request::Hello`] negotiation).

use crate::api::{Request, Response};
use crate::codec::{self, Codec};
use crate::frame::{read_frame, write_frame_traced, FrameEvent};
use iris_errors::{IrisError, IrisResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::TcpStream;
use std::time::Duration;

/// Decorrelated-jitter backoff for retry loops: each delay is drawn
/// uniformly from `base..=prev * 3` (clamped to `cap`), so concurrent
/// clients hitting the same overloaded server spread out instead of
/// retrying in lockstep the way a fixed `retry_after` sleep would.
///
/// The sequence is a pure function of the seed, which makes the bound
/// behaviour unit-testable: every delay `d` satisfies
/// `base <= d <= min(cap, max(prev * 3, base + 1))`.
#[derive(Debug)]
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    prev_ms: u64,
    rng: StdRng,
}

impl Backoff {
    /// A backoff starting at `base_ms` and never sleeping longer than
    /// `cap_ms`, jittered by a deterministic stream seeded with `seed`.
    #[must_use]
    pub fn new(base_ms: u64, cap_ms: u64, seed: u64) -> Self {
        let base_ms = base_ms.max(1);
        Self {
            base_ms,
            cap_ms: cap_ms.max(base_ms),
            prev_ms: base_ms,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The next delay, in milliseconds.
    pub fn next_delay_ms(&mut self) -> u64 {
        let hi = self
            .prev_ms
            .saturating_mul(3)
            .max(self.base_ms + 1)
            .min(self.cap_ms);
        let span = hi - self.base_ms + 1;
        let delay = self.base_ms + self.rng.random_range(0..span);
        self.prev_ms = delay;
        delay
    }
}

/// One connection to a running service. Requests are strictly
/// request/reply on the connection, so a client carries no protocol
/// state beyond the socket and the negotiated wire codec.
///
/// # Example
///
/// Boot an in-process server on an ephemeral port, raise one pair's
/// demand, and read back the path its circuits ride:
///
/// ```
/// use iris_fibermap::{synth, MetroParams, PlacementParams};
/// use iris_service::{serve, Request, Response, ServiceClient, ServiceConfig};
///
/// let region = synth::place_dcs(
///     synth::generate_metro(&MetroParams { seed: 7, ..MetroParams::default() }),
///     &PlacementParams { seed: 24, n_dcs: 4, ..PlacementParams::default() },
/// );
/// let mut server = serve(region, &ServiceConfig {
///     addr: "127.0.0.1:0".to_owned(), // port 0 picks a free port
///     ..ServiceConfig::default()
/// })?;
/// let mut client = ServiceClient::connect(&server.local_addr().to_string())?;
///
/// // Pick a reachable DC pair off the topology, then write and read.
/// let Response::Topology(topo) = client.call(&Request::GetTopology)?.into_result()? else {
///     unreachable!("GetTopology answers Topology")
/// };
/// let (a, b) = (topo.allocation[0].a, topo.allocation[0].b);
///
/// let reply = client.call(&Request::UpdateDemand { a, b, circuits: 2 })?;
/// assert!(matches!(reply, Response::DemandAccepted { .. }));
///
/// let Response::Path(path) = client.call(&Request::QueryPath { a, b })?.into_result()? else {
///     unreachable!("allocated pairs have a path")
/// };
/// assert!(path.length_km > 0.0);
/// server.shutdown();
/// # Ok::<(), iris_errors::IrisError>(())
/// ```
#[derive(Debug)]
pub struct ServiceClient {
    stream: TcpStream,
    codec: Codec,
    /// Per-call deadline; `None` blocks forever (the legacy behaviour).
    deadline: Option<Duration>,
}

impl ServiceClient {
    /// Connect to `addr`. The connection speaks JSON until
    /// [`ServiceClient::hello`] negotiates another codec.
    ///
    /// # Errors
    ///
    /// [`IrisError::Io`] if the connection fails.
    pub fn connect(addr: &str) -> IrisResult<Self> {
        let stream = TcpStream::connect(addr).map_err(|e| IrisError::Io {
            detail: format!("cannot connect to {addr}: {e}"),
        })?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            stream,
            codec: Codec::Json,
            deadline: None,
        })
    }

    /// Bound every subsequent call: if no reply byte arrives within the
    /// deadline the call fails with a typed [`IrisError::Timeout`]
    /// instead of stalling forever on a hung or partitioned server.
    /// `None` restores unbounded blocking.
    ///
    /// # Errors
    ///
    /// [`IrisError::Io`] if the socket rejects the timeout.
    pub fn set_deadline(&mut self, deadline: Option<Duration>) -> IrisResult<()> {
        let io_err = |e: std::io::Error| IrisError::Io {
            detail: format!("cannot set socket deadline: {e}"),
        };
        self.stream.set_read_timeout(deadline).map_err(io_err)?;
        self.stream.set_write_timeout(deadline).map_err(io_err)?;
        self.deadline = deadline;
        Ok(())
    }

    /// Connect, retrying `attempts` times with `delay_ms` between tries —
    /// for racing a server that is still planning its region at startup.
    ///
    /// # Errors
    ///
    /// The last [`IrisError::Io`] if every attempt fails.
    pub fn connect_retry(addr: &str, attempts: u32, delay_ms: u64) -> IrisResult<Self> {
        let mut last = IrisError::Io {
            detail: format!("no connection attempts made for {addr}"),
        };
        for attempt in 0..attempts.max(1) {
            match Self::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) => last = e,
            }
            if attempt + 1 < attempts {
                std::thread::sleep(Duration::from_millis(delay_ms));
            }
        }
        Err(last)
    }

    /// The codec currently in effect on this connection.
    #[must_use]
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// Negotiate `codec` for the rest of this connection. The `Hello`
    /// goes out (and its acknowledgement comes back) in the *current*
    /// codec; both sides switch after the acknowledgement, so a
    /// negotiation that fails leaves the connection usable as-is.
    ///
    /// # Errors
    ///
    /// [`IrisError::InvalidInput`] if the server rejects the codec,
    /// [`IrisError::Decode`] on an unexpected reply, [`IrisError::Io`]
    /// on socket failure.
    pub fn hello(&mut self, codec: Codec) -> IrisResult<()> {
        let resp = self
            .call(&Request::Hello {
                codec: codec.name().to_owned(),
            })?
            .into_result()?;
        match resp {
            Response::HelloAck { codec: name } => {
                self.codec = Codec::from_name(&name).ok_or_else(|| IrisError::Decode {
                    detail: format!("server acknowledged unknown codec {name:?}"),
                })?;
                Ok(())
            }
            other => Err(IrisError::Decode {
                detail: format!("unexpected reply to Hello: {other:?}"),
            }),
        }
    }

    /// Dismantle the client into its socket and negotiated codec — for
    /// callers (the load generator's event loop) that switch the
    /// connection to non-blocking I/O after the blocking handshake.
    #[must_use]
    pub fn into_parts(self) -> (TcpStream, Codec) {
        (self.stream, self.codec)
    }

    /// Send one request and wait for its reply. `Error` replies are
    /// returned as `Ok(Response::Error(..))` — use
    /// [`Response::into_result`] or [`ServiceClient::call_retrying`] to
    /// surface them as typed errors.
    ///
    /// # Errors
    ///
    /// [`IrisError::Io`] on socket failure, [`IrisError::Decode`] on a
    /// malformed reply or server disconnect mid-reply.
    pub fn call(&mut self, req: &Request) -> IrisResult<Response> {
        // Propagate the caller's trace context (if any) so the server
        // logs the request under an id the caller can correlate. When
        // the local recorder is disabled no header is sent and the
        // frame bytes are identical to the pre-tracing protocol.
        let trace = if iris_telemetry::trace::enabled() {
            iris_telemetry::trace::current_trace().or_else(|| {
                if req.is_write() {
                    Some(iris_telemetry::trace::mint_trace_id())
                } else {
                    None
                }
            })
        } else {
            None
        };
        self.call_with_trace(req, trace)
    }

    /// [`ServiceClient::call`] with an explicit trace context: `Some`
    /// attaches the id as a frame header, `None` sends a legacy frame.
    ///
    /// # Errors
    ///
    /// Same as [`ServiceClient::call`].
    pub fn call_with_trace(&mut self, req: &Request, trace: Option<u64>) -> IrisResult<Response> {
        let payload = codec::encode_request(self.codec, req)?;
        write_frame_traced(&mut self.stream, &payload, trace)?;
        loop {
            match read_frame(&mut self.stream)? {
                FrameEvent::Frame(bytes) => return codec::decode_response(self.codec, &bytes),
                // Idle only fires when a socket read timeout is set:
                // with a deadline armed it is the typed per-call
                // timeout; without one it cannot occur (kept as a
                // defensive retry).
                FrameEvent::Idle => match self.deadline {
                    Some(d) => {
                        return Err(IrisError::Timeout {
                            what: format!("{} call", req.op()),
                            after_ms: d.as_millis() as u64,
                        })
                    }
                    None => continue,
                },
                FrameEvent::Eof => {
                    return Err(IrisError::Io {
                        detail: "server closed the connection before replying".to_owned(),
                    })
                }
            }
        }
    }

    /// [`ServiceClient::call`], backing off and retrying (up to
    /// `max_retries` times) when the server answers
    /// [`IrisError::Overloaded`]. Delays follow a decorrelated-jitter
    /// schedule ([`Backoff`]) seeded per call, anchored on the
    /// server-suggested `retry_after_ms` and capped at 16× it, so
    /// stampeding clients decorrelate. Other errors pass through.
    ///
    /// # Errors
    ///
    /// The final [`IrisError`] once retries are exhausted, or any
    /// non-backpressure error immediately.
    pub fn call_retrying(&mut self, req: &Request, max_retries: u32) -> IrisResult<Response> {
        let mut attempt = 0;
        let mut backoff: Option<Backoff> = None;
        loop {
            match self.call(req)?.into_result() {
                Ok(resp) => return Ok(resp),
                Err(IrisError::Overloaded { retry_after_ms }) if attempt < max_retries => {
                    attempt += 1;
                    let backoff = backoff.get_or_insert_with(|| {
                        // The vendored rand has no OS entropy source:
                        // seed from the wall clock so concurrent
                        // clients draw different jitter streams.
                        let seed = std::time::SystemTime::now()
                            .duration_since(std::time::UNIX_EPOCH)
                            .map_or(0x9E37_79B9_7F4A_7C15, |d| d.as_nanos() as u64);
                        let base = retry_after_ms.max(1);
                        Backoff::new(base, base.saturating_mul(16), seed)
                    });
                    std::thread::sleep(Duration::from_millis(backoff.next_delay_ms()));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// One region a [`RegionRouter`] can talk to. The order endpoints are
/// handed to the router is the client's preference order — nearest
/// first — so "nearest healthy" is simply the first healthy entry.
#[derive(Debug, Clone)]
pub struct RegionEndpoint {
    /// Region id (matches the server's `--region-id`).
    pub region: u64,
    /// Server address, `host:port`.
    pub addr: String,
}

/// How many consecutive `Overloaded` replies from one region a router
/// tolerates before failing over to the next healthy region.
pub const OVERLOADED_STREAK_LIMIT: u32 = 3;

/// A health-routed multi-region client: `Health` probes with per-call
/// deadlines, nearest-healthy read selection, failover on probe/call
/// timeouts, disconnects and [`IrisError::Overloaded`] streaks, write
/// routing to the probed primary (following [`IrisError::NotPrimary`]
/// redirects after a promotion), and read-your-writes via
/// [`Request::GetPlanAt`] epoch-waits that redirect to the primary when
/// a follower cannot catch up in time.
///
/// The router remembers every acknowledged demand write (absolute
/// per-pair targets, so re-applying is idempotent): after a primary
/// loss, [`RegionRouter::reassert_acked_writes`] replays them against
/// the newly promoted primary, which is what makes "zero lost
/// acknowledged writes" hold even when the old primary dies before
/// shipping its tail.
pub struct RegionRouter {
    endpoints: Vec<RegionEndpoint>,
    clients: Vec<Option<ServiceClient>>,
    healthy: Vec<bool>,
    primary_flag: Vec<bool>,
    epochs: Vec<u64>,
    streaks: Vec<u32>,
    deadline: Duration,
    current: usize,
    failovers: u64,
    stale_redirects: u64,
    write_epoch: u64,
    acked_writes: std::collections::BTreeMap<(usize, usize), u32>,
}

impl RegionRouter {
    /// A router over `endpoints` (preference order) with one per-call
    /// deadline for every probe and request.
    #[must_use]
    pub fn new(endpoints: Vec<RegionEndpoint>, deadline_ms: u64) -> Self {
        let n = endpoints.len();
        Self {
            endpoints,
            clients: (0..n).map(|_| None).collect(),
            healthy: vec![false; n],
            primary_flag: vec![false; n],
            epochs: vec![0; n],
            streaks: vec![0; n],
            deadline: Duration::from_millis(deadline_ms.max(1)),
            current: 0,
            failovers: 0,
            stale_redirects: 0,
            write_epoch: 0,
            acked_writes: std::collections::BTreeMap::new(),
        }
    }

    /// The configured endpoints, in preference order.
    #[must_use]
    pub fn endpoints(&self) -> &[RegionEndpoint] {
        &self.endpoints
    }

    /// Times the router switched away from a region it considered
    /// healthy (probe/call timeout, disconnect, or overload streak).
    #[must_use]
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Times an epoch-wait read timed out on a lagging follower and was
    /// redirected to the primary — the router's stale-read counter.
    #[must_use]
    pub fn stale_redirects(&self) -> u64 {
        self.stale_redirects
    }

    /// Highest commit epoch any acknowledged write of ours reported —
    /// the fence [`RegionRouter::read_at_own_writes`] waits for.
    #[must_use]
    pub fn write_epoch(&self) -> u64 {
        self.write_epoch
    }

    /// Region id of the current read target.
    #[must_use]
    pub fn current_region(&self) -> u64 {
        self.endpoints[self.current.min(self.endpoints.len() - 1)].region
    }

    /// Region id of the probed primary, if one is known and healthy.
    #[must_use]
    pub fn primary_region(&self) -> Option<u64> {
        self.primary_idx().map(|i| self.endpoints[i].region)
    }

    /// Probe every endpoint once; returns how many answered `Health`
    /// within the deadline.
    pub fn probe_all(&mut self) -> usize {
        (0..self.endpoints.len())
            .filter(|&idx| self.probe(idx))
            .count()
    }

    /// Probe one endpoint, refreshing its health, role and epoch.
    pub fn probe(&mut self, idx: usize) -> bool {
        match self.call_idx(idx, &Request::Health) {
            Ok(Response::Health(h)) => {
                self.healthy[idx] = true;
                self.primary_flag[idx] = h.role == "primary";
                self.epochs[idx] = h.epoch;
                true
            }
            _ => {
                self.mark_down(idx);
                false
            }
        }
    }

    /// Send `Promote` to the endpoint owning `region` and adopt it as
    /// the primary. The chaos harness drives failover with this.
    ///
    /// # Errors
    ///
    /// [`IrisError::InvalidInput`] for an unknown region id; transport
    /// errors from the promote call itself.
    pub fn promote_region(&mut self, region: u64) -> IrisResult<()> {
        let idx = self
            .endpoints
            .iter()
            .position(|e| e.region == region)
            .ok_or_else(|| IrisError::InvalidInput {
                detail: format!("unknown region {region}"),
            })?;
        // A cached connection may be stale (the region could have
        // restarted since the last probe): retry once on a fresh one.
        let resp = match self.call_idx(idx, &Request::Promote) {
            Ok(resp) => resp,
            Err(IrisError::Timeout { .. } | IrisError::Io { .. } | IrisError::Decode { .. }) => {
                self.mark_down(idx);
                self.call_idx(idx, &Request::Promote)?
            }
            Err(e) => return Err(e),
        };
        match resp.into_result()? {
            Response::Health(h) => {
                self.healthy[idx] = true;
                self.primary_flag[idx] = h.role == "primary";
                self.epochs[idx] = h.epoch;
                for (other, flag) in self.primary_flag.iter_mut().enumerate() {
                    if other != idx {
                        *flag = false;
                    }
                }
                Ok(())
            }
            other => Err(IrisError::Decode {
                detail: format!("unexpected reply to Promote: {other:?}"),
            }),
        }
    }

    /// Route one read to the nearest healthy region, failing over on
    /// transport errors and `Overloaded` streaks
    /// ([`OVERLOADED_STREAK_LIMIT`]).
    ///
    /// # Errors
    ///
    /// [`IrisError::Unreachable`] when no region stays healthy through
    /// a full probe cycle; any non-failover error verbatim.
    pub fn read(&mut self, req: &Request) -> IrisResult<Response> {
        let mut last = IrisError::Unreachable {
            what: "no healthy region".to_owned(),
        };
        for _ in 0..=self.endpoints.len() {
            let Some(idx) = self.pick_read() else { break };
            match self.call_idx(idx, req) {
                Ok(Response::Error(IrisError::Overloaded { retry_after_ms })) => {
                    self.streaks[idx] += 1;
                    if self.streaks[idx] >= OVERLOADED_STREAK_LIMIT {
                        self.fail_over(idx);
                        last = IrisError::Overloaded { retry_after_ms };
                        continue;
                    }
                    return Ok(Response::Error(IrisError::Overloaded { retry_after_ms }));
                }
                Ok(resp) => {
                    self.streaks[idx] = 0;
                    return Ok(resp);
                }
                Err(
                    e @ (IrisError::Timeout { .. }
                    | IrisError::Io { .. }
                    | IrisError::Decode { .. }),
                ) => {
                    self.fail_over(idx);
                    last = e;
                }
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }

    /// Route one absolute demand write to the primary, following
    /// `NotPrimary` redirects (a follower answered; re-probe for the
    /// newly promoted primary) and failing over on transport errors.
    /// On acknowledgement, records the write and its commit epoch for
    /// [`RegionRouter::reassert_acked_writes`] /
    /// [`RegionRouter::read_at_own_writes`].
    ///
    /// # Errors
    ///
    /// [`IrisError::Unreachable`] when no primary can be found; any
    /// non-routable error verbatim.
    pub fn update_demand(&mut self, a: usize, b: usize, circuits: u32) -> IrisResult<u64> {
        let req = Request::UpdateDemand { a, b, circuits };
        let mut last = IrisError::Unreachable {
            what: "no primary region".to_owned(),
        };
        for _ in 0..=self.endpoints.len() + 1 {
            let Some(idx) = self.pick_primary() else {
                break;
            };
            match self.call_idx(idx, &req) {
                Ok(resp) => match resp.into_result() {
                    Ok(Response::DemandAccepted { epoch, .. }) => {
                        self.write_epoch = self.write_epoch.max(epoch);
                        self.acked_writes.insert((a, b), circuits);
                        return Ok(epoch);
                    }
                    Ok(other) => {
                        return Err(IrisError::Decode {
                            detail: format!("unexpected reply to UpdateDemand: {other:?}"),
                        })
                    }
                    Err(IrisError::NotPrimary { region }) => {
                        self.primary_flag[idx] = false;
                        self.probe_all();
                        last = IrisError::NotPrimary { region };
                    }
                    Err(IrisError::Overloaded { retry_after_ms }) => {
                        std::thread::sleep(Duration::from_millis(retry_after_ms));
                        last = IrisError::Overloaded { retry_after_ms };
                    }
                    Err(e) => return Err(e),
                },
                Err(
                    e @ (IrisError::Timeout { .. }
                    | IrisError::Io { .. }
                    | IrisError::Decode { .. }),
                ) => {
                    self.fail_over(idx);
                    self.probe_all();
                    last = e;
                }
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }

    /// Read-your-writes: `GetPlanAt` against the nearest healthy
    /// region, waiting up to `wait_ms` for it to reach `min_epoch`. A
    /// follower that cannot catch up answers a typed `Timeout`; the
    /// router counts it as a stale-read redirect and retries against
    /// the primary, which trivially satisfies its own epochs.
    ///
    /// # Errors
    ///
    /// [`IrisError::Unreachable`] when every region fails; the final
    /// `Timeout` when even the primary cannot satisfy the fence.
    pub fn read_at(&mut self, min_epoch: u64, wait_ms: u64) -> IrisResult<Response> {
        let req = Request::GetPlanAt { min_epoch, wait_ms };
        let mut force: Option<usize> = None;
        let mut last = IrisError::Unreachable {
            what: "no healthy region".to_owned(),
        };
        for _ in 0..=self.endpoints.len() {
            let Some(idx) = force.take().or_else(|| self.pick_read()) else {
                break;
            };
            match self.call_idx(idx, &req) {
                Ok(resp) => match resp.into_result() {
                    Ok(plan) => return Ok(plan),
                    Err(IrisError::Timeout { what, after_ms }) => {
                        // The follower is lagging, not dead: redirect
                        // to the primary instead of failing the region.
                        self.stale_redirects += 1;
                        match self.pick_primary() {
                            Some(p) if p != idx => force = Some(p),
                            _ => return Err(IrisError::Timeout { what, after_ms }),
                        }
                        last = IrisError::Timeout {
                            what: "epoch wait".to_owned(),
                            after_ms,
                        };
                    }
                    Err(e) => return Err(e),
                },
                Err(
                    e @ (IrisError::Timeout { .. }
                    | IrisError::Io { .. }
                    | IrisError::Decode { .. }),
                ) => {
                    self.fail_over(idx);
                    last = e;
                }
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }

    /// [`RegionRouter::read_at`] anchored at the router's own highest
    /// acknowledged write epoch.
    ///
    /// # Errors
    ///
    /// Same as [`RegionRouter::read_at`].
    pub fn read_at_own_writes(&mut self, wait_ms: u64) -> IrisResult<Response> {
        self.read_at(self.write_epoch, wait_ms)
    }

    /// The acknowledged-write ledger: every pair the router got a
    /// `DemandAccepted` for, with its last acknowledged circuit count —
    /// the set [`RegionRouter::reassert_acked_writes`] replays and the
    /// chaos harness audits for lost writes.
    #[must_use]
    pub fn acked_pairs(&self) -> Vec<((usize, usize), u32)> {
        self.acked_writes
            .iter()
            .map(|(&pair, &circuits)| (pair, circuits))
            .collect()
    }

    /// Re-apply every acknowledged demand write against the current
    /// primary. Targets are absolute per-pair circuit counts, so
    /// replaying is idempotent; after a primary loss this guarantees
    /// the new primary reflects every write the old one acknowledged,
    /// even ones it never managed to ship. Returns how many writes were
    /// re-asserted.
    ///
    /// # Errors
    ///
    /// Any error from [`RegionRouter::update_demand`].
    pub fn reassert_acked_writes(&mut self) -> IrisResult<usize> {
        let writes: Vec<((usize, usize), u32)> = self
            .acked_writes
            .iter()
            .map(|(&pair, &circuits)| (pair, circuits))
            .collect();
        for ((a, b), circuits) in &writes {
            self.update_demand(*a, *b, *circuits)?;
        }
        Ok(writes.len())
    }

    /// First healthy endpoint in preference order, probing the fleet
    /// when none is currently marked healthy. Keeps `current` sticky so
    /// repeated reads reuse one connection until it fails.
    fn pick_read(&mut self) -> Option<usize> {
        if self.endpoints.is_empty() {
            return None;
        }
        if self.healthy[self.current] {
            return Some(self.current);
        }
        if let Some(idx) = self.healthy.iter().position(|&h| h) {
            self.current = idx;
            return Some(idx);
        }
        self.probe_all();
        let idx = self.healthy.iter().position(|&h| h)?;
        self.current = idx;
        Some(idx)
    }

    /// First healthy primary, probing the fleet when none is known.
    fn pick_primary(&mut self) -> Option<usize> {
        if self.primary_idx().is_none() {
            self.probe_all();
        }
        self.primary_idx()
    }

    fn primary_idx(&self) -> Option<usize> {
        (0..self.endpoints.len()).find(|&i| self.healthy[i] && self.primary_flag[i])
    }

    /// Mark an endpoint unusable and count the failover.
    fn fail_over(&mut self, idx: usize) {
        self.mark_down(idx);
        self.failovers += 1;
    }

    fn mark_down(&mut self, idx: usize) {
        self.healthy[idx] = false;
        self.clients[idx] = None;
        self.streaks[idx] = 0;
    }

    /// One call against endpoint `idx`, connecting (with the per-call
    /// deadline armed and the binary codec negotiated) on demand.
    fn call_idx(&mut self, idx: usize, req: &Request) -> IrisResult<Response> {
        if self.clients[idx].is_none() {
            let mut client = ServiceClient::connect(&self.endpoints[idx].addr)?;
            client.set_deadline(Some(self.deadline))?;
            let _ = client.hello(Codec::Binary);
            self.clients[idx] = Some(client);
        }
        let client = self.clients[idx]
            .as_mut()
            .expect("client was just connected");
        client.call(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_delays_stay_within_the_decorrelated_jitter_bounds() {
        let (base, cap) = (10u64, 400u64);
        let mut backoff = Backoff::new(base, cap, 7);
        let mut prev = base;
        for i in 0..200 {
            let hi = prev.saturating_mul(3).max(base + 1).min(cap);
            let d = backoff.next_delay_ms();
            assert!(d >= base, "delay {d} below base {base} at step {i}");
            assert!(d <= cap, "delay {d} above cap {cap} at step {i}");
            assert!(
                d <= hi,
                "delay {d} above decorrelated bound {hi} at step {i}"
            );
            prev = d;
        }
    }

    #[test]
    fn backoff_sequences_are_seed_deterministic_and_jittered() {
        let collect = |seed: u64| -> Vec<u64> {
            let mut b = Backoff::new(5, 1000, seed);
            (0..32).map(|_| b.next_delay_ms()).collect()
        };
        assert_eq!(collect(42), collect(42), "same seed, same schedule");
        assert_ne!(collect(1), collect(2), "different seeds decorrelate");
        let seq = collect(42);
        assert!(
            seq.iter().collect::<std::collections::BTreeSet<_>>().len() > 1,
            "the schedule must actually jitter: {seq:?}"
        );
    }

    #[test]
    fn backoff_degenerate_config_is_clamped_sane() {
        let mut b = Backoff::new(0, 0, 9);
        for _ in 0..16 {
            let d = b.next_delay_ms();
            assert!(d >= 1, "zero base clamps to 1ms");
            assert!(d <= 1, "cap clamps to the base");
        }
    }
}
