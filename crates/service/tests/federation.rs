//! Multi-region federation tests: real servers on loopback sockets,
//! WAL-shipping replication between them, health-routed clients, and
//! the replication edge cases the chaos sweep leans on — torn peer
//! streams resuming from the last acked epoch, partitions healing
//! without epoch-chain forks, and follower restarts re-syncing
//! byte-identically.

use iris_errors::IrisError;
use iris_fibermap::{synth, MetroParams, PlacementParams, Region};
use iris_service::api::{Request, Response};
use iris_service::{
    serve, RegionEndpoint, RegionRouter, ServiceClient, ServiceConfig, ServiceHandle,
};
use std::time::{Duration, Instant};

fn region(seed: u64, n_dcs: usize) -> Region {
    synth::place_dcs(
        synth::generate_metro(&MetroParams {
            seed,
            ..MetroParams::default()
        }),
        &PlacementParams {
            seed: seed.wrapping_add(17),
            n_dcs,
            ..PlacementParams::default()
        },
    )
}

fn config(region_id: u64, follower: bool, peers: Vec<String>) -> ServiceConfig {
    ServiceConfig {
        addr: "127.0.0.1:0".to_owned(),
        cuts: 1,
        coalesce_window_ms: 0,
        region_id,
        peers,
        follower,
        ..ServiceConfig::default()
    }
}

fn client_for(handle: &ServiceHandle) -> ServiceClient {
    ServiceClient::connect_retry(&handle.local_addr().to_string(), 20, 25).expect("connect")
}

/// Spin up a primary plus `followers` follower regions wired to it, all
/// on the same synthetic metro so replicated batches replay cleanly.
fn federation(seed: u64, followers: usize) -> (ServiceHandle, Vec<ServiceHandle>) {
    let topo = region(seed, 4);
    let mut follower_handles = Vec::new();
    for idx in 0..followers {
        let handle =
            serve(topo.clone(), &config(idx as u64 + 2, true, Vec::new())).expect("serve follower");
        follower_handles.push(handle);
    }
    let peer_addrs: Vec<String> = follower_handles
        .iter()
        .map(|h| h.local_addr().to_string())
        .collect();
    let primary = serve(topo, &config(1, false, peer_addrs)).expect("serve primary");
    (primary, follower_handles)
}

fn health(client: &mut ServiceClient) -> iris_service::api::HealthInfo {
    match client.call(&Request::Health).expect("health") {
        Response::Health(h) => h,
        other => panic!("expected Health, got {other:?}"),
    }
}

/// Block until `handle`'s published epoch reaches `min_epoch`.
fn wait_for_epoch(handle: &ServiceHandle, min_epoch: u64) -> u64 {
    let mut client = client_for(handle);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let h = health(&mut client);
        if h.epoch >= min_epoch {
            return h.epoch;
        }
        assert!(
            Instant::now() < deadline,
            "epoch {} never reached {min_epoch}",
            h.epoch
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn canonical_state(handle: &ServiceHandle) -> String {
    let mut client = client_for(handle);
    match client.call(&Request::GetTopology).expect("topology") {
        Response::Topology(t) => format!("{t:?}"),
        other => panic!("expected Topology, got {other:?}"),
    }
}

fn first_pair(handle: &ServiceHandle) -> (usize, usize) {
    let mut client = client_for(handle);
    match client.call(&Request::GetTopology).expect("topology") {
        Response::Topology(t) => (t.allocation[0].a, t.allocation[0].b),
        other => panic!("expected Topology, got {other:?}"),
    }
}

#[test]
fn followers_converge_to_the_primary_state() {
    let (primary, followers) = federation(31, 2);
    let (a, b) = first_pair(&primary);
    let mut client = client_for(&primary);
    for circuits in 1..=5u32 {
        let resp = client
            .call_retrying(&Request::UpdateDemand { a, b, circuits }, 50)
            .expect("write");
        assert!(matches!(resp, Response::DemandAccepted { .. }));
    }
    let primary_epoch = health(&mut client).epoch;
    for f in &followers {
        wait_for_epoch(f, primary_epoch);
        assert_eq!(
            canonical_state(f),
            canonical_state(&primary),
            "follower must mirror the primary byte-for-byte"
        );
    }
    for mut h in followers {
        h.shutdown();
    }
    let mut primary = primary;
    primary.shutdown();
}

#[test]
fn followers_reject_local_writes_with_not_primary() {
    let (primary, mut followers) = federation(32, 1);
    let (a, b) = first_pair(&primary);
    let mut client = client_for(&followers[0]);
    let resp = client
        .call(&Request::UpdateDemand { a, b, circuits: 3 })
        .expect("call");
    match resp {
        Response::Error(IrisError::NotPrimary { region }) => assert_eq!(region, 2),
        other => panic!("expected NotPrimary, got {other:?}"),
    }
    let h = health(&mut client);
    assert_eq!(h.role, "follower");
    followers[0].shutdown();
    let mut primary = primary;
    primary.shutdown();
}

#[test]
fn partition_heals_without_epoch_chain_forks() {
    let (primary, mut followers) = federation(33, 1);
    let follower_addr = followers[0].local_addr().to_string();
    let (a, b) = first_pair(&primary);
    let mut client = client_for(&primary);

    // Let the first write replicate, then partition the peer link.
    let resp = client
        .call_retrying(&Request::UpdateDemand { a, b, circuits: 1 }, 50)
        .expect("write");
    assert!(matches!(resp, Response::DemandAccepted { .. }));
    wait_for_epoch(&followers[0], 1);
    assert!(primary.set_peer_paused(&follower_addr, true), "known peer");

    // Writes land on the primary while the follower hears nothing.
    for circuits in 2..=6u32 {
        let resp = client
            .call_retrying(&Request::UpdateDemand { a, b, circuits }, 50)
            .expect("write");
        assert!(matches!(resp, Response::DemandAccepted { .. }));
    }
    let primary_epoch = health(&mut client).epoch;
    let mut fclient = client_for(&followers[0]);
    let stale = health(&mut fclient);
    assert!(
        stale.epoch < primary_epoch,
        "a partitioned follower must lag ({} vs {primary_epoch})",
        stale.epoch
    );

    // Heal: the replicator resumes from the follower's acked epoch and
    // the chains converge with no fork — same epoch, same bytes.
    assert!(primary.set_peer_paused(&follower_addr, false));
    wait_for_epoch(&followers[0], primary_epoch);
    assert_eq!(canonical_state(&followers[0]), canonical_state(&primary));

    followers[0].shutdown();
    let mut primary = primary;
    primary.shutdown();
}

#[test]
fn torn_peer_stream_resumes_from_last_acked_epoch() {
    // A follower that dies mid-stream and comes back empty-handed (no
    // WAL) looks like a torn peer stream: the primary's health probe
    // sees epoch 0 again, misses the replication window's tail, and
    // falls back to a full state sync before streaming resumes.
    let topo = region(34, 4);
    let follower = serve(topo.clone(), &config(2, true, Vec::new())).expect("serve follower");
    let follower_addr = follower.local_addr().to_string();
    let primary =
        serve(topo.clone(), &config(1, false, vec![follower_addr.clone()])).expect("serve primary");
    let (a, b) = first_pair(&primary);
    let mut client = client_for(&primary);
    for circuits in 1..=4u32 {
        let resp = client
            .call_retrying(&Request::UpdateDemand { a, b, circuits }, 50)
            .expect("write");
        assert!(matches!(resp, Response::DemandAccepted { .. }));
    }
    wait_for_epoch(&follower, 4);

    // Kill the follower mid-federation; the primary keeps writing.
    let mut follower = follower;
    follower.shutdown();
    for circuits in 5..=8u32 {
        let resp = client
            .call_retrying(&Request::UpdateDemand { a, b, circuits }, 50)
            .expect("write");
        assert!(matches!(resp, Response::DemandAccepted { .. }));
    }
    let primary_epoch = health(&mut client).epoch;

    // Restart a fresh follower on the same address.
    let addr_config = ServiceConfig {
        addr: follower_addr,
        ..config(2, true, Vec::new())
    };
    let follower = serve(topo, &addr_config).expect("restart follower");
    wait_for_epoch(&follower, primary_epoch);
    assert_eq!(
        canonical_state(&follower),
        canonical_state(&primary),
        "a resumed peer stream must converge byte-identically"
    );
    let mut follower = follower;
    follower.shutdown();
    let mut primary = primary;
    primary.shutdown();
}

#[test]
fn follower_restart_with_wal_resyncs_byte_identically() {
    let wal_dir =
        std::env::temp_dir().join(format!("iris-fed-wal-{}-{}", std::process::id(), 35u64));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let topo = region(35, 4);
    let follower_cfg = ServiceConfig {
        wal_dir: Some(wal_dir.to_string_lossy().into_owned()),
        ..config(2, true, Vec::new())
    };
    let follower = serve(topo.clone(), &follower_cfg).expect("serve follower");
    let follower_addr = follower.local_addr().to_string();
    let primary =
        serve(topo.clone(), &config(1, false, vec![follower_addr.clone()])).expect("serve primary");
    let (a, b) = first_pair(&primary);
    let mut client = client_for(&primary);
    for circuits in 1..=3u32 {
        let resp = client
            .call_retrying(&Request::UpdateDemand { a, b, circuits }, 50)
            .expect("write");
        assert!(matches!(resp, Response::DemandAccepted { .. }));
    }
    wait_for_epoch(&follower, 3);

    // Restart the follower from its own WAL: replicated batches were
    // appended there, so it recovers to the acked epoch and the
    // replicator resumes streaming from that point on.
    let mut follower = follower;
    follower.shutdown();
    for circuits in 4..=6u32 {
        let resp = client
            .call_retrying(&Request::UpdateDemand { a, b, circuits }, 50)
            .expect("write");
        assert!(matches!(resp, Response::DemandAccepted { .. }));
    }
    let follower = serve(
        topo,
        &ServiceConfig {
            addr: follower_addr,
            ..follower_cfg
        },
    )
    .expect("restart follower");
    let restarted = wait_for_epoch(&follower, 3);
    assert!(restarted >= 3, "WAL recovery must restore acked epochs");
    let primary_epoch = health(&mut client).epoch;
    wait_for_epoch(&follower, primary_epoch);
    assert_eq!(
        canonical_state(&follower),
        canonical_state(&primary),
        "a WAL-recovered follower must re-sync byte-identically"
    );
    let mut follower = follower;
    follower.shutdown();
    let mut primary = primary;
    primary.shutdown();
    let _ = std::fs::remove_dir_all(&wal_dir);
}

#[test]
fn promoted_follower_accepts_writes_and_router_fails_over() {
    let (primary, mut followers) = federation(36, 2);
    let (a, b) = first_pair(&primary);

    let endpoints = vec![
        RegionEndpoint {
            region: 1,
            addr: primary.local_addr().to_string(),
        },
        RegionEndpoint {
            region: 2,
            addr: followers[0].local_addr().to_string(),
        },
        RegionEndpoint {
            region: 3,
            addr: followers[1].local_addr().to_string(),
        },
    ];
    let mut router = RegionRouter::new(endpoints, 2_000);
    assert_eq!(router.probe_all(), 3, "all regions answer health");
    assert_eq!(router.primary_region(), Some(1));

    let epoch = router.update_demand(a, b, 4).expect("routed write");
    assert!(epoch >= 1);
    let plan = router.read_at_own_writes(2_000).expect("read own writes");
    assert!(matches!(plan, Response::Plan(_)));

    // Kill the primary mid-federation: reads fail over to a follower,
    // writes need a promotion, and re-asserted acked writes survive.
    let mut old_primary = primary;
    old_primary.shutdown();
    let resp = router.read(&Request::GetPlan).expect("read after loss");
    assert!(matches!(resp, Response::Plan(_)));
    assert!(router.failovers() >= 1, "the dead region was failed over");

    router.promote_region(2).expect("promote");
    assert_eq!(router.primary_region(), Some(2));
    let reasserted = router.reassert_acked_writes().expect("reassert");
    assert_eq!(reasserted, 1);
    let plan = router
        .read_at_own_writes(2_000)
        .expect("read after failover");
    assert!(matches!(plan, Response::Plan(_)));

    let mut fclient = client_for(&followers[0]);
    let h = health(&mut fclient);
    assert_eq!(h.role, "primary");
    for f in &mut followers {
        f.shutdown();
    }
}

#[test]
fn get_plan_at_blocks_until_the_epoch_arrives_and_times_out_typed() {
    let (primary, mut followers) = federation(37, 1);
    let mut fclient = client_for(&followers[0]);

    // Asking far beyond the chain with a tiny wait times out typed.
    let resp = fclient
        .call(&Request::GetPlanAt {
            min_epoch: 99,
            wait_ms: 50,
        })
        .expect("call");
    match resp {
        Response::Error(IrisError::Timeout { after_ms, .. }) => assert!(after_ms >= 50),
        other => panic!("expected a typed timeout, got {other:?}"),
    }

    // A write on the primary releases a parked epoch-wait on the
    // follower once replication catches it up.
    let (a, b) = first_pair(&primary);
    let primary_addr = primary.local_addr().to_string();
    let writer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(100));
        let mut client = ServiceClient::connect_retry(&primary_addr, 20, 25).expect("connect");
        let resp = client
            .call_retrying(&Request::UpdateDemand { a, b, circuits: 2 }, 50)
            .expect("write");
        assert!(matches!(resp, Response::DemandAccepted { .. }));
    });
    let resp = fclient
        .call(&Request::GetPlanAt {
            min_epoch: 1,
            wait_ms: 5_000,
        })
        .expect("call");
    assert!(
        matches!(resp, Response::Plan(_)),
        "the parked wait must fill once replication reaches epoch 1, got {resp:?}"
    );
    writer.join().expect("writer");
    followers[0].shutdown();
    let mut primary = primary;
    primary.shutdown();
}

#[test]
fn health_reports_peer_lag_and_roles() {
    let (primary, mut followers) = federation(38, 2);
    let (a, b) = first_pair(&primary);
    let mut client = client_for(&primary);
    let resp = client
        .call_retrying(&Request::UpdateDemand { a, b, circuits: 2 }, 50)
        .expect("write");
    assert!(matches!(resp, Response::DemandAccepted { .. }));

    // Wait until both peers acked the epoch, then check the ledger.
    let deadline = Instant::now() + Duration::from_secs(10);
    let h = loop {
        let h = health(&mut client);
        if h.peers.len() == 2 && h.peers.iter().all(|p| p.connected && p.acked_epoch >= 1) {
            break h;
        }
        assert!(
            Instant::now() < deadline,
            "peers never acked: {:?}",
            h.peers
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(h.role, "primary");
    assert_eq!(h.region, 1);
    for p in &h.peers {
        assert_eq!(p.lag_epochs, h.epoch - p.acked_epoch);
    }
    let regions: Vec<u64> = h.peers.iter().map(|p| p.region).collect();
    assert!(regions.contains(&2) && regions.contains(&3));

    for f in &mut followers {
        f.shutdown();
    }
    let mut primary = primary;
    primary.shutdown();
}
