//! Physical-layer models for regional data-center interconnects.
//!
//! Iris (SIGCOMM'20) keeps traffic entirely in the optical domain between
//! source and destination DCs, which makes the *physical* layer — optical
//! power and signal-to-noise budgets — a first-class planning constraint.
//! This crate models the components and budgets the paper measures on its
//! testbed (§3.2, §6.2, Appendix C):
//!
//! * [`db`] — decibel arithmetic (dB, dBm, mW);
//! * [`components`] — fiber spans, EDFAs, OSS/OXC/WSS switching elements
//!   and the 400ZR transceiver specification;
//! * [`osnr`] — the cascaded-amplifier OSNR penalty model validated by the
//!   paper's testbed (Fig. 9): the first amplifier costs its noise figure
//!   (~4.5 dB) and each doubling of the cascade costs ~3 dB more;
//! * [`budget`] — end-to-end link budget evaluation enforcing the
//!   technology constraints TC1–TC4;
//! * [`ber`] — a pre-FEC bit-error-rate model for DP-16QAM used to
//!   reproduce the reconfiguration transients of Fig. 14.
//!
//! All models are closed-form and deterministic; the constants are the
//! paper's measured/specified values and are exported as named constants
//! so experiments and tests can reference them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod ber;
pub mod budget;
pub mod components;
pub mod db;
pub mod osnr;
pub mod spectrum;

pub use budget::{evaluate_path, BudgetReport, BudgetViolation, PathElement};
pub use components::{Amplifier, FiberSpan, SwitchElement, Transceiver};
pub use osnr::{cascade_penalty_db, max_amplifiers_within_budget};

/// Fiber attenuation used throughout the paper: 0.25 dB/km (§3.2, TC1).
pub const FIBER_LOSS_DB_PER_KM: f64 = 0.25;

/// Typical EDFA gain: 20 dB (§3.2, TC1).
pub const AMPLIFIER_GAIN_DB: f64 = 20.0;

/// EDFA noise figure measured on the testbed: ~4.5 dB (§3.2, TC2).
pub const AMPLIFIER_NOISE_FIGURE_DB: f64 = 4.5;

/// Maximum unamplified DC-DC link distance (TC1): `gain / loss` = 80 km.
pub const MAX_UNAMPLIFIED_SPAN_KM: f64 = AMPLIFIER_GAIN_DB / FIBER_LOSS_DB_PER_KM;

/// Maximum DC-DC fiber distance permitted by the latency SLA (OC1): 120 km.
pub const MAX_PATH_KM: f64 = 120.0;

/// Tolerable end-to-end OSNR penalty for 400ZR between sites: 11 dB (§3.2).
pub const OSNR_PENALTY_TOLERANCE_DB: f64 = 11.0;

/// Margin reserved for transmission impairments and amplifier gain ripple
/// ("an additional couple of dBs", §3.2). 1.5 dB yields the paper's
/// amplifier budget of ~9 dB and a 3-amplifier end-to-end limit.
pub const IMPAIRMENT_MARGIN_DB: f64 = 1.5;

/// The amplifier OSNR budget after margin: ~9.5 dB, admitting at most
/// [`MAX_AMPLIFIERS_PER_PATH`] amplifiers end-to-end (Fig. 9).
pub const AMPLIFIER_OSNR_BUDGET_DB: f64 = OSNR_PENALTY_TOLERANCE_DB - IMPAIRMENT_MARGIN_DB;

/// Maximum amplifiers on any end-to-end path (TC2): two terminal
/// amplifiers plus at most one in-line.
pub const MAX_AMPLIFIERS_PER_PATH: usize = 3;

/// Maximum in-line (non-terminal) amplifiers on a path (TC2).
pub const MAX_INLINE_AMPLIFIERS: usize = 1;

/// Power budget available for optical reconfiguration elements on a
/// maximum-length path (TC4): 40 dB total minus 30 dB of fiber loss.
pub const RECONFIG_LOSS_BUDGET_DB: f64 = 10.0;

/// Insertion loss of an optical space switch traversal: 1.5 dB (TC4).
pub const OSS_LOSS_DB: f64 = 1.5;

/// Insertion loss of an optical cross-connect traversal: 9 dB (TC4).
pub const OXC_LOSS_DB: f64 = 9.0;

/// Maximum OSS traversals on a path (TC4): `10 dB / 1.5 dB` = 6.
pub const MAX_OSS_HOPS: usize = 6;

/// Maximum OXC traversals on a path (TC4): `10 dB / 9 dB` = 1.
pub const MAX_OXC_HOPS: usize = 1;

/// Soft-decision FEC pre-FEC BER threshold for 400ZR: 2e-2 (§6.2).
pub const SD_FEC_THRESHOLD: f64 = 2e-2;

/// Optical space switch reconfiguration time (state of the art, §5.2).
pub const OSS_SWITCH_TIME_MS: f64 = 20.0;

/// Tunable transceiver wavelength switch time (§5.2): < 1 ms.
pub const TRANSCEIVER_TUNE_TIME_MS: f64 = 1.0;

/// Amplifier gain settling for unused amplifiers (§5.2): < 2 ms.
pub const AMPLIFIER_SETTLE_TIME_MS: f64 = 2.0;

/// End-to-end signal recovery time measured on the testbed after a
/// single-hut reconfiguration (Fig. 14): 50 ms.
pub const RECOVERY_TIME_SINGLE_HUT_MS: f64 = 50.0;

/// Recovery time across two independent huts (§6.2): 70 ms.
pub const RECOVERY_TIME_TWO_HUT_MS: f64 = 70.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tc1_span_limit_is_80km() {
        assert!((MAX_UNAMPLIFIED_SPAN_KM - 80.0).abs() < 1e-12);
    }

    #[test]
    fn tc4_budgets_match_paper() {
        assert_eq!(
            MAX_OSS_HOPS,
            (RECONFIG_LOSS_BUDGET_DB / OSS_LOSS_DB) as usize
        );
        assert_eq!(
            MAX_OXC_HOPS,
            (RECONFIG_LOSS_BUDGET_DB / OXC_LOSS_DB) as usize
        );
    }

    #[test]
    fn amplifier_budget_is_roughly_9db() {
        assert!((AMPLIFIER_OSNR_BUDGET_DB - 9.5).abs() < 1e-12);
    }
}
