//! Deterministic fault injection for the control plane.
//!
//! The paper's promise (§4.1) is that planned capacity survives any `k`
//! simultaneous fiber cuts, and §5's controller is supposed to detect
//! device failures and re-actuate. This module supplies the adversary:
//! a seeded [`FaultSchedule`] of fiber cuts and device misbehaviors, and
//! a [`FaultInjector`] that perturbs device actuations as the controller
//! performs them. Everything is deterministic under the seed — no wall
//! clock, no global RNG — so CI can assert *exact* recovery behavior
//! (see the `chaos` harness in `iris-bench` and the `iris chaos`
//! subcommand).

use iris_netgraph::EdgeId;
use serde::{Deserialize, Serialize};

use crate::devices::SpaceSwitch;
use iris_errors::IrisError;

/// One kind of injected fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A backhoe takes out whole ducts (all fibers in them at once).
    FiberCut {
        /// Failed duct ids.
        ducts: Vec<EdgeId>,
    },
    /// An OSS port refuses to move: `connect` silently leaves the old
    /// cross-connect in place for the next `failures` actuations.
    OssPortStuck {
        /// Site whose switch is faulty.
        site: usize,
        /// How many actuations fail before the port frees up
        /// (`u32::MAX` = permanently stuck).
        failures: u32,
    },
    /// An OSS port lands on the wrong output: `connect` misroutes to a
    /// neighboring port for the next `failures` actuations. Detectable
    /// only by the post-actuation health check.
    OssMisroute {
        /// Site whose switch is faulty.
        site: usize,
        /// How many actuations misroute before behavior returns to
        /// normal (`u32::MAX` = permanent).
        failures: u32,
    },
    /// A receiver DSP fails to relock when light returns; each failed
    /// attempt costs another relock interval.
    TransceiverNoRelock {
        /// Affected site.
        site: usize,
        /// Extra relock attempts needed before lock is achieved.
        extra_attempts: u32,
    },
    /// An EDFA suffers a power excursion and needs an extended settle.
    EdfaExcursion {
        /// Affected site.
        site: usize,
        /// Excursion magnitude, dB (reported, not modeled further —
        /// TC3's limiters bound the damage).
        delta_db: f64,
        /// Reconfigurations affected before the excursion clears.
        failures: u32,
    },
    /// Controller-to-site messages vanish in flight; each loss costs the
    /// sender one step timeout before it retries.
    ControlMessageLoss {
        /// Number of consecutive lost messages.
        messages: u32,
    },
}

impl FaultKind {
    /// Short stable name for telemetry labels and reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::FiberCut { .. } => "fiber-cut",
            FaultKind::OssPortStuck { .. } => "oss-port-stuck",
            FaultKind::OssMisroute { .. } => "oss-misroute",
            FaultKind::TransceiverNoRelock { .. } => "transceiver-no-relock",
            FaultKind::EdfaExcursion { .. } => "edfa-excursion",
            FaultKind::ControlMessageLoss { .. } => "control-message-loss",
        }
    }
}

/// A fault and when it strikes (order index within a chaos scenario).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Position of this fault in the scenario's replay order.
    pub step: u32,
    /// What breaks.
    pub kind: FaultKind,
}

/// The shape of the system a schedule is generated against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultDomain {
    /// Number of sites (OSS devices) that can misbehave.
    pub sites: usize,
    /// Number of ducts that can be cut.
    pub ducts: usize,
    /// Maximum ducts destroyed by one fiber-cut event.
    pub max_cut_size: usize,
    /// Number of fault events to schedule.
    pub events: usize,
}

/// A deterministic, seed-reproducible sequence of faults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// The generating seed (recorded for reproducibility manifests).
    pub seed: u64,
    /// The faults, in replay order.
    pub events: Vec<FaultEvent>,
}

/// SplitMix64 — the workspace's standard deterministic generator. Kept
/// private so schedule generation cannot accidentally consume entropy
/// from anywhere else.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (n > 0).
    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

impl FaultSchedule {
    /// Generate `domain.events` faults deterministically from `seed`.
    ///
    /// The mix leans on fiber cuts (the paper's headline threat) but
    /// covers every device fault class; roughly one in four device
    /// faults is permanent (`failures == u32::MAX`), exercising the
    /// quarantine + rollback path.
    #[must_use]
    pub fn generate(seed: u64, domain: &FaultDomain) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0x1915_C0DE);
        let mut events = Vec::with_capacity(domain.events);
        for step in 0..domain.events {
            let kind = match rng.below(8) {
                // 3/8 fiber cuts.
                0..=2 if domain.ducts > 0 => {
                    let size = 1 + rng.below(domain.max_cut_size.max(1));
                    let mut ducts: Vec<EdgeId> = Vec::new();
                    for _ in 0..size {
                        let d = rng.below(domain.ducts);
                        if !ducts.contains(&d) {
                            ducts.push(d);
                        }
                    }
                    ducts.sort_unstable();
                    FaultKind::FiberCut { ducts }
                }
                3 => FaultKind::OssPortStuck {
                    site: rng.below(domain.sites),
                    failures: transient_or_permanent(&mut rng),
                },
                4 => FaultKind::OssMisroute {
                    site: rng.below(domain.sites),
                    failures: transient_or_permanent(&mut rng),
                },
                5 => FaultKind::TransceiverNoRelock {
                    site: rng.below(domain.sites),
                    extra_attempts: 1 + rng.below(3) as u32,
                },
                6 => FaultKind::EdfaExcursion {
                    site: rng.below(domain.sites),
                    delta_db: 1.0 + rng.below(5) as f64,
                    failures: 1 + rng.below(2) as u32,
                },
                _ => FaultKind::ControlMessageLoss {
                    messages: 1 + rng.below(3) as u32,
                },
            };
            events.push(FaultEvent {
                step: step as u32,
                kind,
            });
        }
        Self { seed, events }
    }

    /// The fiber-cut events, in order (the recovery-path workload).
    #[must_use]
    pub fn fiber_cuts(&self) -> Vec<&FaultEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::FiberCut { .. }))
            .collect()
    }
}

/// An armed device fault inside the injector.
#[derive(Debug, Clone)]
enum Armed {
    Stuck { site: usize, remaining: u32 },
    Misroute { site: usize, remaining: u32 },
    NoRelock { site: usize, remaining: u32 },
    Excursion { site: usize, remaining: u32 },
    MsgLoss { remaining: u32 },
}

fn transient_or_permanent(rng: &mut SplitMix64) -> u32 {
    if rng.below(4) == 0 {
        u32::MAX // permanent: survives every retry, forces quarantine
    } else {
        1 + rng.below(2) as u32 // cleared by the first or second retry
    }
}

/// Mediates every device actuation the controller performs, perturbing
/// it according to the armed faults. The controller never talks to a
/// [`SpaceSwitch`] directly during reconfiguration — it goes through
/// here, so the same code path runs faulted and unfaulted.
#[derive(Debug, Default)]
pub struct FaultInjector {
    armed: Vec<Armed>,
    /// Actuations perturbed so far (telemetry / assertions).
    pub perturbations: u64,
}

impl FaultInjector {
    /// An injector with no armed faults (production behavior).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Arm one fault. Fiber cuts are not armable here — they are
    /// topology events handled by `Controller::handle_fiber_cut`.
    pub fn arm(&mut self, kind: &FaultKind) {
        match *kind {
            FaultKind::OssPortStuck { site, failures } => self.armed.push(Armed::Stuck {
                site,
                remaining: failures,
            }),
            FaultKind::OssMisroute { site, failures } => self.armed.push(Armed::Misroute {
                site,
                remaining: failures,
            }),
            FaultKind::TransceiverNoRelock {
                site,
                extra_attempts,
            } => self.armed.push(Armed::NoRelock {
                site,
                remaining: extra_attempts,
            }),
            FaultKind::EdfaExcursion { site, failures, .. } => self.armed.push(Armed::Excursion {
                site,
                remaining: failures,
            }),
            FaultKind::ControlMessageLoss { messages } => self.armed.push(Armed::MsgLoss {
                remaining: messages,
            }),
            FaultKind::FiberCut { .. } => {}
        }
    }

    /// Whether any armed fault still has failures left to deliver.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.armed.iter().any(|a| match a {
            Armed::Stuck { remaining, .. }
            | Armed::Misroute { remaining, .. }
            | Armed::NoRelock { remaining, .. }
            | Armed::Excursion { remaining, .. }
            | Armed::MsgLoss { remaining } => *remaining > 0,
        })
    }

    /// Perform `input -> output` on `sw` at `site`, applying any armed
    /// OSS fault: a stuck port leaves the switch untouched, a misroute
    /// lands on the neighboring output port. Both *succeed* from the
    /// controller's point of view — only the verify step can tell.
    ///
    /// # Errors
    ///
    /// Propagates [`IrisError::PortOutOfRange`] from the device.
    pub fn connect(
        &mut self,
        site: usize,
        sw: &mut SpaceSwitch,
        input: usize,
        output: usize,
    ) -> Result<(), IrisError> {
        for a in &mut self.armed {
            match a {
                Armed::Stuck { site: s, remaining } if *s == site && *remaining > 0 => {
                    *remaining = remaining.saturating_sub(1);
                    self.perturbations += 1;
                    return Ok(()); // port never moved
                }
                Armed::Misroute { site: s, remaining } if *s == site && *remaining > 0 => {
                    *remaining = remaining.saturating_sub(1);
                    self.perturbations += 1;
                    let wrong = (output + 1) % sw.ports().max(1);
                    sw.connect(input, wrong)?;
                    return Ok(());
                }
                _ => {}
            }
        }
        sw.connect(input, output)?;
        Ok(())
    }

    /// Extra DSP relock attempts needed at `site` this reconfiguration
    /// (consumes the armed fault).
    pub fn relock_penalty(&mut self, sites: &[usize]) -> u32 {
        let mut extra = 0;
        for a in &mut self.armed {
            if let Armed::NoRelock { site, remaining } = a {
                if sites.contains(site) && *remaining > 0 {
                    extra += *remaining;
                    *remaining = 0;
                    self.perturbations += 1;
                }
            }
        }
        extra
    }

    /// Whether an EDFA excursion extends this reconfiguration's settle
    /// window (consumes one failure charge).
    pub fn excursion_active(&mut self, sites: &[usize]) -> bool {
        for a in &mut self.armed {
            if let Armed::Excursion { site, remaining } = a {
                if sites.contains(site) && *remaining > 0 {
                    *remaining = remaining.saturating_sub(1);
                    self.perturbations += 1;
                    return true;
                }
            }
        }
        false
    }

    /// Number of control messages lost before this batch goes through
    /// (each costs the caller one step timeout). Consumes the charges.
    pub fn take_lost_messages(&mut self) -> u32 {
        let mut lost = 0;
        for a in &mut self.armed {
            if let Armed::MsgLoss { remaining } = a {
                lost += *remaining;
                if *remaining > 0 {
                    self.perturbations += 1;
                }
                *remaining = 0;
            }
        }
        lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> FaultDomain {
        FaultDomain {
            sites: 12,
            ducts: 20,
            max_cut_size: 2,
            events: 16,
        }
    }

    #[test]
    fn schedule_is_deterministic_under_seed() {
        let a = FaultSchedule::generate(7, &domain());
        let b = FaultSchedule::generate(7, &domain());
        assert_eq!(a, b);
        let c = FaultSchedule::generate(8, &domain());
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn schedule_covers_multiple_fault_classes() {
        let s = FaultSchedule::generate(3, &domain());
        let names: std::collections::BTreeSet<&str> =
            s.events.iter().map(|e| e.kind.name()).collect();
        assert!(names.len() >= 3, "only {names:?}");
        assert!(!s.fiber_cuts().is_empty());
    }

    #[test]
    fn fiber_cut_ducts_are_sorted_unique_and_in_range() {
        let d = domain();
        let s = FaultSchedule::generate(11, &d);
        for e in s.fiber_cuts() {
            if let FaultKind::FiberCut { ducts } = &e.kind {
                assert!(!ducts.is_empty() && ducts.len() <= d.max_cut_size);
                assert!(ducts.windows(2).all(|w| w[0] < w[1]), "{ducts:?}");
                assert!(ducts.iter().all(|&x| x < d.ducts));
            }
        }
    }

    #[test]
    fn stuck_port_leaves_switch_untouched() {
        let mut sw = SpaceSwitch::new("OSS", 8);
        sw.connect(0, 3).unwrap();
        let mut inj = FaultInjector::none();
        inj.arm(&FaultKind::OssPortStuck {
            site: 4,
            failures: 1,
        });
        inj.connect(4, &mut sw, 0, 5).unwrap();
        assert_eq!(sw.output_of(0), Some(3), "stuck port must not move");
        // Second actuation succeeds: the fault was transient.
        inj.connect(4, &mut sw, 0, 5).unwrap();
        assert_eq!(sw.output_of(0), Some(5));
        assert_eq!(inj.perturbations, 1);
    }

    #[test]
    fn misroute_lands_on_neighboring_port() {
        let mut sw = SpaceSwitch::new("OSS", 8);
        let mut inj = FaultInjector::none();
        inj.arm(&FaultKind::OssMisroute {
            site: 0,
            failures: 1,
        });
        inj.connect(0, &mut sw, 2, 6).unwrap();
        assert_eq!(sw.output_of(2), Some(7), "misroute goes one port over");
    }

    #[test]
    fn faults_only_fire_at_their_site() {
        let mut sw = SpaceSwitch::new("OSS", 8);
        let mut inj = FaultInjector::none();
        inj.arm(&FaultKind::OssPortStuck {
            site: 9,
            failures: u32::MAX,
        });
        inj.connect(1, &mut sw, 0, 4).unwrap();
        assert_eq!(sw.output_of(0), Some(4), "other sites are unaffected");
    }

    #[test]
    fn message_loss_charges_are_consumed_once() {
        let mut inj = FaultInjector::none();
        inj.arm(&FaultKind::ControlMessageLoss { messages: 3 });
        assert_eq!(inj.take_lost_messages(), 3);
        assert_eq!(inj.take_lost_messages(), 0);
    }

    #[test]
    fn relock_and_excursion_penalties_target_sites() {
        let mut inj = FaultInjector::none();
        inj.arm(&FaultKind::TransceiverNoRelock {
            site: 2,
            extra_attempts: 2,
        });
        inj.arm(&FaultKind::EdfaExcursion {
            site: 5,
            delta_db: 3.0,
            failures: 1,
        });
        assert_eq!(inj.relock_penalty(&[0, 1]), 0);
        assert_eq!(inj.relock_penalty(&[2]), 2);
        assert_eq!(inj.relock_penalty(&[2]), 0, "consumed");
        assert!(!inj.excursion_active(&[2]));
        assert!(inj.excursion_active(&[5]));
        assert!(!inj.excursion_active(&[5]), "consumed");
    }
}
