//! A compact undirected multigraph with kilometre edge lengths.

use serde::{Deserialize, Serialize};

/// Index of a node (data center or fiber hut).
pub type NodeId = usize;

/// Index of an undirected edge (fiber duct).
pub type EdgeId = usize;

/// One undirected edge of the graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// One endpoint.
    pub u: NodeId,
    /// The other endpoint.
    pub v: NodeId,
    /// Length in kilometres.
    pub length_km: f64,
}

impl Edge {
    /// The endpoint of the edge that is not `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not an endpoint of this edge.
    #[must_use]
    pub fn other(&self, n: NodeId) -> NodeId {
        if n == self.u {
            self.v
        } else if n == self.v {
            self.u
        } else {
            panic!(
                "node {n} is not an endpoint of edge ({}, {})",
                self.u, self.v
            )
        }
    }
}

/// An undirected multigraph with `f64` kilometre edge lengths.
///
/// Nodes are dense indices `0..n`. Parallel edges and self-loops are
/// permitted (real fiber maps contain parallel ducts), though self-loops
/// never appear on shortest paths.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    n: usize,
    edges: Vec<Edge>,
    /// adjacency[u] = list of (edge id, neighbour) pairs.
    adjacency: Vec<Vec<(EdgeId, NodeId)>>,
}

impl Graph {
    /// Create a graph with `n` nodes and no edges.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            n,
            edges: Vec::new(),
            adjacency: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Append a node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adjacency.push(Vec::new());
        self.n += 1;
        self.n - 1
    }

    /// Add an undirected edge of `length_km` between `u` and `v`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or the length is negative
    /// or non-finite.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, length_km: f64) -> EdgeId {
        assert!(u < self.n && v < self.n, "edge endpoint out of range");
        assert!(
            length_km.is_finite() && length_km >= 0.0,
            "edge length must be finite and non-negative"
        );
        let id = self.edges.len();
        self.edges.push(Edge { u, v, length_km });
        self.adjacency[u].push((id, v));
        if u != v {
            self.adjacency[v].push((id, u));
        }
        id
    }

    /// The edge with id `e`.
    #[must_use]
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e]
    }

    /// All edges, indexed by [`EdgeId`].
    #[must_use]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Neighbours of `u` as `(edge id, neighbour)` pairs.
    #[must_use]
    pub fn neighbors(&self, u: NodeId) -> &[(EdgeId, NodeId)] {
        &self.adjacency[u]
    }

    /// Degree of `u` (counting parallel edges, self-loops once).
    #[must_use]
    pub fn degree(&self, u: NodeId) -> usize {
        self.adjacency[u].len()
    }

    /// Deterministic per-edge length perturbation that makes shortest paths
    /// unique without measurably changing any distance.
    ///
    /// §4.1 of the paper notes that when shortest paths are unique (as is
    /// typically true on real fiber maps), Algorithm 1 yields the *unique*
    /// optimal provisioning. Synthetic maps can contain exact ties; this
    /// breaks them reproducibly. The epsilon is proportional to `1 + e` so
    /// distinct edges always differ, and is scaled far below 1 metre.
    #[must_use]
    pub fn perturbed_length(&self, e: EdgeId) -> f64 {
        self.edges[e].length_km + (e as f64 + 1.0) * 1e-7
    }

    /// True if `u` and `v` are connected ignoring edges in `disabled`.
    #[must_use]
    pub fn connected_avoiding(&self, u: NodeId, v: NodeId, disabled: &[bool]) -> bool {
        if u == v {
            return true;
        }
        let mut seen = vec![false; self.n];
        let mut stack = vec![u];
        seen[u] = true;
        while let Some(x) = stack.pop() {
            for &(e, y) in &self.adjacency[x] {
                if disabled.get(e).copied().unwrap_or(false) || seen[y] {
                    continue;
                }
                if y == v {
                    return true;
                }
                seen[y] = true;
                stack.push(y);
            }
        }
        false
    }

    /// Minimum number of edge-disjoint cuts separating `u` from `v`,
    /// i.e. edge connectivity between the pair (via unit-capacity max-flow).
    ///
    /// Planning for `k` fiber-cut resilience (OC4) is only feasible for a
    /// DC pair if its edge connectivity exceeds `k`.
    #[must_use]
    pub fn edge_connectivity(&self, u: NodeId, v: NodeId) -> u64 {
        if u == v {
            return u64::MAX;
        }
        let mut flow = crate::maxflow::Dinic::new(self.n);
        for e in &self.edges {
            if e.u != e.v {
                flow.add_bidirectional_edge(e.u, e.v, 1);
            }
        }
        flow.max_flow(u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 0, 1.0);
        g
    }

    #[test]
    fn build_and_query() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.edge(0).other(0), 1);
        assert_eq!(g.edge(0).other(1), 0);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_panics_for_non_endpoint() {
        let g = triangle();
        let _ = g.edge(0).other(2);
    }

    #[test]
    fn add_node_grows_graph() {
        let mut g = triangle();
        let n = g.add_node();
        assert_eq!(n, 3);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.degree(n), 0);
    }

    #[test]
    fn parallel_edges_are_distinct() {
        let mut g = Graph::new(2);
        let e1 = g.add_edge(0, 1, 1.0);
        let e2 = g.add_edge(0, 1, 2.0);
        assert_ne!(e1, e2);
        assert_eq!(g.degree(0), 2);
        assert!(g.perturbed_length(e1) < g.perturbed_length(e2));
    }

    #[test]
    fn perturbation_breaks_exact_ties() {
        let mut g = Graph::new(2);
        let e1 = g.add_edge(0, 1, 5.0);
        let e2 = g.add_edge(0, 1, 5.0);
        assert_ne!(g.perturbed_length(e1), g.perturbed_length(e2));
        assert!((g.perturbed_length(e1) - 5.0).abs() < 1e-5);
    }

    #[test]
    fn connectivity_with_failures() {
        let g = triangle();
        assert!(g.connected_avoiding(0, 2, &[false, false, false]));
        assert!(g.connected_avoiding(0, 2, &[false, false, true]));
        assert!(!g.connected_avoiding(0, 2, &[true, false, true]));
    }

    #[test]
    fn edge_connectivity_of_triangle_is_two() {
        let g = triangle();
        assert_eq!(g.edge_connectivity(0, 2), 2);
    }

    #[test]
    fn edge_connectivity_of_path_is_one() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        assert_eq!(g.edge_connectivity(0, 2), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_endpoint_panics() {
        let mut g = Graph::new(2);
        g.add_edge(0, 5, 1.0);
    }
}
