//! Chaos sweep — seeded fault schedules against the self-healing
//! control loop.
//!
//! Replays deterministic fault schedules (fiber cuts, stuck/misrouted
//! OSS ports, transceivers that fail to relock, EDFA power excursions,
//! lost control messages) through the live controller and reports the
//! recovery-time, dark-time, and p99-FCT-impact distributions. Same
//! seed, byte-identical `results/chaos_sweep.json`.

use iris_bench::chaos::{run_chaos, ChaosConfig};

fn main() {
    let quick = iris_bench::quick_mode();
    let cfg = ChaosConfig {
        seed: 7,
        scenarios: if quick { 4 } else { 25 },
        n_dcs: 6,
        cuts: 1,
    };
    println!(
        "# chaos sweep: seed {}, {} scenarios, {} DCs, k={}",
        cfg.seed, cfg.scenarios, cfg.n_dcs, cfg.cuts
    );

    let report = match run_chaos(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: [{}] {e}", e.code());
            std::process::exit(2);
        }
    };

    println!("\n# scenario  cuts  recovered  shed  retries  rollbacks  quarantined");
    for o in &report.outcomes {
        println!(
            "{:>10}  {:>4}  {:>9}  {:>4}  {:>7}  {:>9}  {:>11}",
            o.scenario,
            o.recoveries,
            o.fully_recovered,
            o.shed_pairs,
            o.retries,
            o.rollbacks,
            o.quarantined
        );
    }

    let d = &report.recovery_ms;
    println!(
        "\n# recovery time (ms):  p50 {:.2}  p90 {:.2}  p99 {:.2}  max {:.2}  ({} recoveries)",
        d.p50, d.p90, d.p99, d.max, d.samples
    );
    let d = &report.dark_ms;
    println!(
        "# dark time (ms):      p50 {:.2}  p90 {:.2}  p99 {:.2}  max {:.2}",
        d.p50, d.p90, d.p99, d.max
    );
    let d = &report.fct_impact;
    println!(
        "# p99-FCT impact (x):  p50 {:.3}  p90 {:.3}  p99 {:.3}  max {:.3}",
        d.p50, d.p90, d.p99, d.max
    );
    println!(
        "# totals: {} retries, {} rollbacks, {} shed pairs; all <=k cuts recovered: {}",
        report.total_retries,
        report.total_rollbacks,
        report.total_shed_pairs,
        report.all_tolerated_cuts_recovered
    );

    iris_bench::write_results(
        "chaos_sweep",
        &serde_json::to_value(&report).expect("serializable"),
    );
}
