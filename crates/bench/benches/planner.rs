//! Criterion benches for the planning pipeline: Algorithm 1, amplifier
//! placement, cut-throughs, and the underlying graph algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iris_bench::{build_region, SweepPoint};
use iris_netgraph::{dijkstra, hose, Dinic};
use iris_planner::amplifiers::place_amplifiers;
use iris_planner::{plan_eps, plan_iris, provision, DesignGoals};
use std::hint::black_box;

fn bench_algorithm1(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1_provision");
    for n_dcs in [5usize, 10] {
        let region = build_region(&SweepPoint {
            map_seed: 1,
            n_dcs,
            f: 16,
            lambda: 40,
        });
        for cuts in [0usize, 1] {
            let goals = DesignGoals::with_cuts(cuts);
            group.bench_with_input(
                BenchmarkId::new(format!("{n_dcs}dc"), format!("{cuts}cuts")),
                &goals,
                |b, goals| b.iter(|| black_box(provision(&region, goals))),
            );
        }
    }
    group.finish();
}

fn bench_full_plans(c: &mut Criterion) {
    let region = build_region(&SweepPoint {
        map_seed: 2,
        n_dcs: 8,
        f: 16,
        lambda: 40,
    });
    let goals = DesignGoals::with_cuts(1);
    c.bench_function("plan_iris_8dc_1cut", |b| {
        b.iter(|| black_box(plan_iris(&region, &goals)))
    });
    c.bench_function("plan_eps_8dc_1cut", |b| {
        b.iter(|| black_box(plan_eps(&region, &goals)))
    });
    c.bench_function("amplifier_placement_8dc_1cut", |b| {
        b.iter(|| black_box(place_amplifiers(&region, &goals)))
    });
}

fn bench_graph_primitives(c: &mut Criterion) {
    let region = build_region(&SweepPoint {
        map_seed: 3,
        n_dcs: 10,
        f: 16,
        lambda: 40,
    });
    let g = region.map.graph();
    let disabled = vec![false; g.edge_count()];
    c.bench_function("dijkstra_region_graph", |b| {
        b.iter(|| black_box(dijkstra(g, region.dcs[0], &disabled)))
    });

    // Hose max-flow over a 10-DC clique of pairs.
    let caps: Vec<u64> = (0..10).map(|_| 640u64).collect();
    let pairs: Vec<(usize, usize)> = (0..10)
        .flat_map(|i| ((i + 1)..10).map(move |j| (i, j)))
        .collect();
    c.bench_function("hose_max_edge_load_45pairs", |b| {
        b.iter(|| black_box(hose::max_edge_load(&|d| caps[d], &pairs)))
    });

    c.bench_function("dinic_grid_maxflow", |b| {
        b.iter(|| {
            let side = 8;
            let mut d = Dinic::new(side * side);
            for y in 0..side {
                for x in 0..side {
                    let id = y * side + x;
                    if x + 1 < side {
                        d.add_bidirectional_edge(id, id + 1, 7);
                    }
                    if y + 1 < side {
                        d.add_bidirectional_edge(id, id + side, 7);
                    }
                }
            }
            black_box(d.max_flow(0, side * side - 1))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_algorithm1, bench_full_plans, bench_graph_primitives
}
criterion_main!(benches);
