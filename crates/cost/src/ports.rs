//! The §2.4 analytic port-count model behind Fig. 7.
//!
//! `N` DCs of capacity `P` ports each are organized into `G` balanced
//! groups; DCs in a group interconnect through a group-local hub, and
//! groups are connected all-pairs. Supporting *any* hose traffic matrix
//! means each group hub carries the full group capacity downstream plus
//! `(G-1)/G · N · P` upstream — a total of `N · P` ports per hub
//! regardless of group size — so the topology needs `(G+1) · N · P` ports
//! overall. `G = 1` is the centralized hub-and-spoke; `G = N` degenerates
//! to the fully distributed all-pairs mesh, where the "hub" role collapses
//! into the DC itself and each DC needs `(N-1) · P` ports to guarantee
//! any matrix.

use crate::prices::PriceBook;
use serde::{Deserialize, Serialize};

/// Port counts of the group model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupModelPorts {
    /// Ports on DC switches facing the DCI.
    pub dc_ports: u64,
    /// Ports at group hubs (or at DCs acting as their own hub for G = N).
    pub hub_ports: u64,
    /// Of the total, how many terminate group-internal (DC-hub) links —
    /// candidates for short-reach optics in the "with SR" variant.
    pub intra_group_ports: u64,
}

impl GroupModelPorts {
    /// All DCI ports.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.dc_ports + self.hub_ports
    }

    /// Ports terminating inter-group links.
    #[must_use]
    pub fn inter_group_ports(&self) -> u64 {
        self.total() - self.intra_group_ports
    }
}

/// Port counts for `n` DCs of `p` ports each in `g` groups.
///
/// # Panics
///
/// Panics unless `1 <= g <= n` and `n, p > 0`.
#[must_use]
pub fn group_model_ports(n: u64, p: u64, g: u64) -> GroupModelPorts {
    assert!(n > 0 && p > 0, "need at least one DC and one port");
    assert!((1..=n).contains(&g), "groups must satisfy 1 <= G <= N");
    if g == n {
        // Fully distributed: no hubs; each DC needs (N-1)·P ports to
        // support any matrix over direct all-pairs links.
        let dc_ports = n * (n - 1) * p;
        return GroupModelPorts {
            dc_ports,
            hub_ports: 0,
            intra_group_ports: 0,
        };
    }
    let dc_ports = n * p; // one DC port per unit of capacity
                          // Each hub carries (N/G)·P downstream plus (G-1)·(N/G)·P upstream,
                          // i.e. N·P ports per hub regardless of group size; over the G hubs
                          // that is G·N·P, for the paper's (G+1)·N·P total.
    let hub_ports = g * n * p;
    // Intra-group (DC-hub) links terminate N·P ports at the DCs and N·P
    // downstream ports at the hubs.
    let intra = 2 * n * p;
    GroupModelPorts {
        dc_ports,
        hub_ports,
        intra_group_ports: intra,
    }
}

/// Annual cost of the Fig. 7 design points, $/year.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig7Costs {
    /// All-electrical with DCI transceivers on every port.
    pub electrical: f64,
    /// Electrical, but group-internal links use short-reach transceivers.
    pub electrical_sr: f64,
    /// Optical: DC ports keep DCI transceivers; in-network ports are
    /// optical reconfigurable (OSS) ports.
    pub optical: f64,
}

/// Cost the three Fig. 7 variants for `n` DCs x `p` ports in `g` groups.
#[must_use]
pub fn fig7_costs(n: u64, p: u64, g: u64, book: &PriceBook) -> Fig7Costs {
    let ports = group_model_ports(n, p, g);
    let per_dci_port = book.transceiver + book.electrical_port;
    let per_sr_port = book.transceiver_sr + book.electrical_port;

    let electrical = ports.total() as f64 * per_dci_port;
    let electrical_sr = ports.intra_group_ports as f64 * per_sr_port
        + ports.inter_group_ports() as f64 * per_dci_port;
    // Optical: the DC's own capacity terminates in DCI transceivers; all
    // in-network (hub) ports become OSS ports with no transceivers.
    let dc_capacity_ports = n * p;
    let in_network = ports.total() - dc_capacity_ports.min(ports.total());
    let optical = dc_capacity_ports as f64 * per_dci_port + in_network as f64 * book.oss_port;
    Fig7Costs {
        electrical,
        electrical_sr,
        optical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centralized_needs_double_capacity_ports() {
        // G = 1: N·P at DCs plus N·P at the hub (§2.4).
        let ports = group_model_ports(16, 100, 1);
        assert_eq!(ports.dc_ports, 1600);
        assert_eq!(ports.hub_ports, 1600);
        assert_eq!(ports.total(), 2 * 16 * 100);
        // Everything is a DC-hub link.
        assert_eq!(ports.intra_group_ports, ports.total());
        assert_eq!(ports.inter_group_ports(), 0);
    }

    #[test]
    fn grouped_total_matches_formula() {
        // (G+1)·N·P for hubbed topologies.
        for g in [1u64, 2, 4, 8] {
            let ports = group_model_ports(16, 100, g);
            assert_eq!(ports.total(), (g + 1) * 16 * 100, "G = {g}");
        }
    }

    #[test]
    fn hub_capacity_is_group_size_independent() {
        // §2.4: each group hub needs N·P ports irrespective of G.
        for g in [2u64, 4, 8] {
            let ports = group_model_ports(16, 100, g);
            assert_eq!(ports.hub_ports / g, 16 * 100, "G = {g}");
        }
    }

    #[test]
    fn fully_distributed_blows_up_quadratically() {
        let ports = group_model_ports(16, 100, 16);
        assert_eq!(ports.total(), 16 * 15 * 100);
        assert_eq!(ports.hub_ports, 0);
    }

    #[test]
    fn fig7_distributed_electrical_is_about_7x_centralized() {
        // The paper's headline: "roughly 7x the cost of the centralized
        // topology" for N = 16.
        let book = PriceBook::paper_2020();
        let central = fig7_costs(16, 100, 1, &book);
        let distributed = fig7_costs(16, 100, 16, &book);
        let ratio = distributed.electrical / central.electrical;
        assert!((6.5..=8.0).contains(&ratio), "ratio {ratio:.2}");
    }

    #[test]
    fn fig7_sr_is_cheaper_but_still_above_centralized() {
        let book = PriceBook::paper_2020();
        let central = fig7_costs(16, 100, 1, &book);
        for g in [2u64, 4, 8] {
            let c = fig7_costs(16, 100, g, &book);
            assert!(c.electrical_sr < c.electrical, "G = {g}");
            assert!(
                c.electrical_sr > central.electrical_sr,
                "semi-distributed should cost more than centralized even with SR (G = {g})"
            );
        }
    }

    #[test]
    fn fig7_optical_flattens_the_curve() {
        // The optical variant's cost barely grows with distribution —
        // that is the whole point of Iris (Fig. 7's third bars).
        let book = PriceBook::paper_2020();
        let central = fig7_costs(16, 100, 1, &book);
        let distributed = fig7_costs(16, 100, 16, &book);
        let growth = distributed.optical / central.optical;
        let growth_electrical = distributed.electrical / central.electrical;
        assert!(growth < 2.5, "optical growth {growth:.2}");
        assert!(growth < growth_electrical / 2.0);
        // Optical always beats full-price electrical; it also beats the
        // SR variant once there are inter-group links (G >= 2). At G = 1
        // the SR variant optimistically prices *every* link short-reach,
        // which the paper itself calls unrealistic for DC-hub distances.
        for g in [1u64, 2, 4, 8, 16] {
            let c = fig7_costs(16, 100, g, &book);
            assert!(c.optical <= c.electrical + 1e-9, "G = {g}");
            if g >= 2 {
                assert!(c.optical <= c.electrical_sr + 1e-9, "G = {g}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "1 <= G <= N")]
    fn zero_groups_panics() {
        let _ = group_model_ports(16, 100, 0);
    }
}
