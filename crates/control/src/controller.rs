//! The centralized Iris controller (§5.2).
//!
//! The controller keeps the intended fiber allocation (circuits per DC
//! pair), and on a demand change computes the difference, drains the
//! affected pairs, reconfigures OSSes network-wide, retunes transceivers
//! and channel emulation DC-locally, verifies device state, and undrains.
//! All timings use the measured component latencies, so the report's
//! dark-time numbers line up with the testbed's 50–70 ms.

use crate::devices::{DeviceHealth, SpaceSwitch};
use crate::messages::Command;
use iris_telemetry::{labeled, Span};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A fiber allocation: circuits (fiber counts) per unordered DC pair.
pub type Allocation = BTreeMap<(usize, usize), u32>;

/// The computed difference between two allocations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReconfigPlan {
    /// Pairs whose circuit count changes (must be drained).
    pub affected_pairs: Vec<(usize, usize)>,
    /// Total circuits torn down.
    pub circuits_down: u32,
    /// Total circuits brought up.
    pub circuits_up: u32,
}

impl ReconfigPlan {
    /// Whether anything needs to change at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.affected_pairs.is_empty()
    }
}

/// Compute the plan taking `current` to `target`.
#[must_use]
pub fn diff_allocations(current: &Allocation, target: &Allocation) -> ReconfigPlan {
    let mut affected = Vec::new();
    let mut down = 0u32;
    let mut up = 0u32;
    let keys: std::collections::BTreeSet<(usize, usize)> =
        current.keys().chain(target.keys()).copied().collect();
    for pair in keys {
        let c = current.get(&pair).copied().unwrap_or(0);
        let t = target.get(&pair).copied().unwrap_or(0);
        if c != t {
            affected.push(pair);
            if t > c {
                up += t - c;
            } else {
                down += c - t;
            }
        }
    }
    ReconfigPlan {
        affected_pairs: affected,
        circuits_down: down,
        circuits_up: up,
    }
}

/// One phase of the reconfiguration pipeline, with its time window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineStep {
    /// Phase name (`drain`, `actuate`, `retune`, `settle`, `relock`,
    /// `verify`, `undrain`).
    pub phase: String,
    /// Start, ms from the reconfiguration's beginning.
    pub start_ms: f64,
    /// End, ms.
    pub end_ms: f64,
}

/// Timeline record of one reconfiguration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconfigReport {
    /// Every command issued, in order.
    pub commands: Vec<Command>,
    /// Wall-clock duration of the whole operation, ms (sites actuate in
    /// parallel; steps within the pipeline are sequential).
    pub total_ms: f64,
    /// Dark time per affected pair, ms: from drain to signal recovery.
    pub dark_ms_per_pair: BTreeMap<(usize, usize), f64>,
    /// Health-check outcomes after actuation.
    pub health: Vec<DeviceHealth>,
    /// Phase-by-phase timeline (telemetry for operators).
    pub timeline: Vec<TimelineStep>,
}

impl ReconfigReport {
    /// Worst dark time across pairs, ms.
    #[must_use]
    pub fn max_dark_ms(&self) -> f64 {
        self.dark_ms_per_pair.values().copied().fold(0.0, f64::max)
    }
}

/// Receiver DSP re-lock time after light returns (part of the measured
/// 50 ms single-hut recovery: 20 ms OSS actuation + ~30 ms relock).
pub const DSP_RELOCK_MS: f64 = 30.0;

/// The centralized controller.
///
/// Device state lives behind a [`RwLock`] so a health monitor can read
/// concurrently with the reconfiguration path.
#[derive(Debug)]
pub struct Controller {
    /// One OSS per site (DCs and huts alike), by site index.
    switches: RwLock<Vec<SpaceSwitch>>,
    /// Current allocation.
    allocation: RwLock<Allocation>,
    /// How many OSS hops each pair's circuit traverses (for dark-time
    /// accounting), by pair.
    hops_per_pair: BTreeMap<(usize, usize), u32>,
}

impl Controller {
    /// A controller over `site_switches`, starting from an empty
    /// allocation. `hops_per_pair` gives the OSS hop count of each DC
    /// pair's circuit (at least 1).
    #[must_use]
    pub fn new(
        site_switches: Vec<SpaceSwitch>,
        hops_per_pair: BTreeMap<(usize, usize), u32>,
    ) -> Self {
        Self {
            switches: RwLock::new(site_switches),
            allocation: RwLock::new(Allocation::new()),
            hops_per_pair,
        }
    }

    /// The current allocation.
    #[must_use]
    pub fn allocation(&self) -> Allocation {
        self.allocation.read().clone()
    }

    /// Number of managed switches.
    #[must_use]
    pub fn switch_count(&self) -> usize {
        self.switches.read().len()
    }

    /// Reconfigure to `target`, producing the command stream and timing
    /// report. The pipeline is: drain affected pairs → actuate OSSes
    /// (parallel across sites) → retune transceivers / channel emulation
    /// (DC-local, overlapped with actuation) → amplifier settle → DSP
    /// relock → verify → undrain.
    pub fn reconfigure(&self, target: &Allocation) -> ReconfigReport {
        let telemetry = iris_telemetry::global();
        let wall = Span::enter_ms(telemetry.histogram("iris_control_reconfigure_wall_ms"));
        let current = self.allocation.read().clone();
        let plan = diff_allocations(&current, target);
        let mut commands = Vec::new();
        let mut dark = BTreeMap::new();

        if plan.is_empty() {
            telemetry.counter("iris_control_reconfigs_noop_total").inc();
            wall.cancel();
            return ReconfigReport {
                commands,
                total_ms: 0.0,
                dark_ms_per_pair: dark,
                health: Vec::new(),
                timeline: Vec::new(),
            };
        }
        telemetry.counter("iris_control_reconfigs_total").inc();
        telemetry
            .counter("iris_control_circuits_up_total")
            .add(u64::from(plan.circuits_up));
        telemetry
            .counter("iris_control_circuits_down_total")
            .add(u64::from(plan.circuits_down));

        // 1. Drain.
        for &(a, b) in &plan.affected_pairs {
            commands.push(Command::Drain {
                a: a as u32,
                b: b as u32,
            });
        }

        // 2. Actuate: every site reconfigures its OSS in one batched
        // actuation; sites run in parallel.
        {
            let mut switches = self.switches.write();
            for (site, sw) in switches.iter_mut().enumerate() {
                // Abstract port mapping: circuit slots cycle through
                // ports; the physical detail that matters is the single
                // 20 ms actuation per site.
                let input = (plan.circuits_up as usize) % sw.ports().max(1);
                let output = (plan.circuits_down as usize) % sw.ports().max(1);
                let _ = sw.connect(input, output);
                commands.push(Command::SetCross {
                    switch: site as u32,
                    input: input as u32,
                    output: output as u32,
                });
            }
        }
        let actuation_ms = iris_optics::OSS_SWITCH_TIME_MS;

        // 3. DC-local retune + emulation (overlapped, <= 1 ms).
        for (i, &(a, b)) in plan.affected_pairs.iter().enumerate() {
            commands.push(Command::Tune {
                transceiver: i as u32,
                channel: 0,
            });
            commands.push(Command::SetEmulation {
                emulator: a as u32,
                channel: 0,
                live: true,
            });
            commands.push(Command::SetEmulation {
                emulator: b as u32,
                channel: 0,
                live: true,
            });
        }
        let retune_ms = iris_optics::TRANSCEIVER_TUNE_TIME_MS;

        // 4. Settle + relock.
        let settle_ms = iris_optics::AMPLIFIER_SETTLE_TIME_MS;

        // 5. Verify.
        let health: Vec<DeviceHealth> = {
            let switches = self.switches.read();
            (0..switches.len())
                .map(|site| {
                    commands.push(Command::HealthCheck { site: site as u32 });
                    DeviceHealth::Ok
                })
                .collect()
        };

        // 6. Undrain.
        for &(a, b) in &plan.affected_pairs {
            commands.push(Command::Undrain {
                a: a as u32,
                b: b as u32,
            });
        }

        // Dark time per pair: each OSS hop on the pair's circuit actuates
        // in parallel but the signal only returns once all have finished,
        // then amplifiers settle and the receiver DSP relocks.
        for &(a, b) in &plan.affected_pairs {
            let hops = self.hops_per_pair.get(&(a, b)).copied().unwrap_or(1);
            let staggered = actuation_ms * f64::from(hops.clamp(1, 2));
            let pair_dark_ms = staggered + settle_ms + DSP_RELOCK_MS;
            telemetry
                .histogram("iris_control_dark_ms")
                .record(pair_dark_ms);
            dark.insert((a, b), pair_dark_ms);
        }

        let total_ms = actuation_ms.max(retune_ms) + settle_ms + DSP_RELOCK_MS;
        *self.allocation.write() = target.clone();

        // Phase timeline: retune overlaps the OSS actuation window.
        let mut timeline = Vec::new();
        let mut push = |phase: &str, start: f64, end: f64| {
            timeline.push(TimelineStep {
                phase: phase.to_owned(),
                start_ms: start,
                end_ms: end,
            });
        };
        push("drain", 0.0, 0.0);
        push("actuate", 0.0, actuation_ms);
        push("retune", 0.0, retune_ms);
        let settle_end = actuation_ms.max(retune_ms) + settle_ms;
        push("settle", actuation_ms.max(retune_ms), settle_end);
        push("relock", settle_end, settle_end + DSP_RELOCK_MS);
        push("verify", settle_end + DSP_RELOCK_MS, total_ms);
        push("undrain", total_ms, total_ms);

        // Telemetry: modeled per-phase latency and device-health tally.
        for step in &timeline {
            telemetry
                .histogram(&labeled("iris_control_phase_ms", "phase", &step.phase))
                .record(step.end_ms - step.start_ms);
        }
        for h in &health {
            let state = match h {
                DeviceHealth::Ok => "ok",
                DeviceHealth::Degraded(_) => "degraded",
            };
            telemetry
                .counter(&labeled("iris_control_device_health_total", "state", state))
                .inc();
        }
        wall.finish();

        ReconfigReport {
            commands,
            total_ms,
            dark_ms_per_pair: dark,
            health,
            timeline,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(entries: &[((usize, usize), u32)]) -> Allocation {
        entries.iter().copied().collect()
    }

    fn controller() -> Controller {
        let switches = (0..3)
            .map(|i| SpaceSwitch::new(&format!("OSS{i}"), 16))
            .collect();
        let hops = [((0, 1), 1u32), ((0, 2), 2), ((1, 2), 1)]
            .into_iter()
            .collect();
        Controller::new(switches, hops)
    }

    #[test]
    fn diff_finds_changed_pairs() {
        let cur = alloc(&[((0, 1), 2), ((0, 2), 1)]);
        let tgt = alloc(&[((0, 1), 3), ((1, 2), 1)]);
        let plan = diff_allocations(&cur, &tgt);
        assert_eq!(plan.affected_pairs, vec![(0, 1), (0, 2), (1, 2)]);
        assert_eq!(plan.circuits_up, 2); // +1 on (0,1), +1 on (1,2)
        assert_eq!(plan.circuits_down, 1); // -1 on (0,2)
    }

    #[test]
    fn identical_allocations_are_a_noop() {
        let c = controller();
        let tgt = alloc(&[((0, 1), 2)]);
        c.reconfigure(&tgt);
        let report = c.reconfigure(&tgt);
        assert!(report.commands.is_empty());
        assert_eq!(report.total_ms, 0.0);
        assert_eq!(report.max_dark_ms(), 0.0);
    }

    #[test]
    fn reconfiguration_issues_drain_before_cross_and_undrain_last() {
        let c = controller();
        let report = c.reconfigure(&alloc(&[((0, 1), 2)]));
        let first_drain = report
            .commands
            .iter()
            .position(|c| matches!(c, Command::Drain { .. }))
            .expect("drain issued");
        let first_cross = report
            .commands
            .iter()
            .position(|c| matches!(c, Command::SetCross { .. }))
            .expect("cross issued");
        let last_undrain = report
            .commands
            .iter()
            .rposition(|c| matches!(c, Command::Undrain { .. }))
            .expect("undrain issued");
        assert!(first_drain < first_cross);
        assert_eq!(last_undrain, report.commands.len() - 1);
    }

    #[test]
    fn dark_time_matches_testbed_measurements() {
        let c = controller();
        let report = c.reconfigure(&alloc(&[((0, 1), 1), ((0, 2), 1)]));
        // Single-hut circuit: 20 + 2 + 30 ≈ 52 ms (paper measures ~50).
        let single = report.dark_ms_per_pair[&(0, 1)];
        assert!((45.0..=60.0).contains(&single), "single-hut {single} ms");
        // Two-hut circuit: 40 + 2 + 30 ≈ 72 ms (paper measures ~70).
        let double = report.dark_ms_per_pair[&(0, 2)];
        assert!((65.0..=80.0).contains(&double), "two-hut {double} ms");
    }

    #[test]
    fn timeline_phases_are_ordered_and_cover_total() {
        let c = controller();
        let report = c.reconfigure(&alloc(&[((0, 1), 2)]));
        let phases: Vec<&str> = report.timeline.iter().map(|s| s.phase.as_str()).collect();
        assert_eq!(
            phases,
            ["drain", "actuate", "retune", "settle", "relock", "verify", "undrain"]
        );
        for step in &report.timeline {
            assert!(step.end_ms >= step.start_ms, "{step:?}");
            assert!(step.end_ms <= report.total_ms + 1e-9);
        }
        // The last phase ends exactly at the total.
        assert_eq!(report.timeline.last().unwrap().end_ms, report.total_ms);
        // Retune overlaps actuation (both start at 0).
        let retune = report
            .timeline
            .iter()
            .find(|s| s.phase == "retune")
            .unwrap();
        assert_eq!(retune.start_ms, 0.0);
    }

    #[test]
    fn noop_reconfigure_has_empty_timeline() {
        let c = controller();
        let tgt = alloc(&[((0, 1), 2)]);
        c.reconfigure(&tgt);
        assert!(c.reconfigure(&tgt).timeline.is_empty());
    }

    #[test]
    fn allocation_is_updated_after_reconfigure() {
        let c = controller();
        let tgt = alloc(&[((1, 2), 4)]);
        c.reconfigure(&tgt);
        assert_eq!(c.allocation(), tgt);
    }

    #[test]
    fn health_checks_cover_every_switch() {
        let c = controller();
        let report = c.reconfigure(&alloc(&[((0, 1), 1)]));
        assert_eq!(report.health.len(), c.switch_count());
        assert!(report.health.iter().all(|h| *h == DeviceHealth::Ok));
    }
}
