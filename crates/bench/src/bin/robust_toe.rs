//! Hose provisioning vs robust traffic engineering (ToE) under surprise
//! traffic.
//!
//! For each workload-matrix family the planner provisions two ways: the
//! paper's hose model (traffic-oblivious worst case) and the robust mode
//! (min-cost capacity feasible for every *training* matrix of the
//! family). Both plans are then scored against the family's *held-out*
//! shock draws — "same network, different day" — by the fraction of
//! offered traffic they would shed, alongside the fiber-lease cost.
//!
//! The headline: robust ToE sheds less surprise traffic than hose
//! whenever the family escapes the hose envelope (bursts, hotspots), and
//! costs a fraction of hose when it does not (diurnal).

use iris_fibermap::Region;
use iris_planner::workload::{FamilyKind, FamilySpec, MatrixFamily};
use iris_planner::{provision, provision_robust, shed_fraction, DesignGoals, Provisioning};

/// Mean and max shed fraction of `prov` over every matrix in `family`.
fn shed_stats(
    region: &Region,
    goals: &DesignGoals,
    prov: &Provisioning,
    family: &MatrixFamily,
) -> (f64, f64) {
    let sheds: Vec<f64> = family
        .matrices()
        .iter()
        .map(|m| shed_fraction(region, goals, prov, m))
        .collect();
    let mean = sheds.iter().sum::<f64>() / sheds.len() as f64;
    let max = sheds.iter().copied().fold(0.0f64, f64::max);
    (mean, max)
}

fn main() {
    let region = iris_bench::simple_region(3, 8);
    let goals = DesignGoals::with_cuts(1);
    let lambda = region.wavelengths_per_fiber;

    // Burst runs hotter: at the default 0.6 target the small region's
    // hose envelope absorbs the 4-8x bursts and both plans shed zero.
    let specs = [
        FamilySpec::new(FamilyKind::Diurnal, 8, 42).with_target_load(0.6),
        FamilySpec::new(FamilyKind::Burst, 8, 42).with_target_load(0.9),
        FamilySpec::new(FamilyKind::Hotspot, 8, 42).with_target_load(0.6),
    ];

    let hose = provision(&region, &goals);
    let hose_fp = hose.total_fiber_pairs(lambda);

    println!("# hose plan: {hose_fp} fiber pairs (traffic-oblivious, shared across families)");
    println!(
        "# {:8} {:6} {:5} {:9} {:>10} {:>21} {:>21}",
        "family",
        "target",
        "peak",
        "scenarios",
        "robust_fp",
        "hose_shed(mean/max)",
        "robust_shed(mean/max)"
    );

    let mut rows = Vec::new();
    for spec in &specs {
        let training = MatrixFamily::build(&region, &goals, spec);
        let surprise = MatrixFamily::build(&region, &goals, &spec.held_out());
        let robust = provision_robust(&region, &goals, &training);
        assert!(
            robust.infeasible.is_empty(),
            "robust plan infeasible for {spec}"
        );
        let robust_fp = robust.total_fiber_pairs(lambda);
        let peak = training.peak_dc_load_ratio(&region);
        let (hose_mean, hose_max) = shed_stats(&region, &goals, &hose, &surprise);
        let (rob_mean, rob_max) = shed_stats(&region, &goals, &robust, &surprise);

        println!(
            "  {:8} {:6.2} {peak:5.2} {:9} {robust_fp:>10} {:>21} {:>21}",
            spec.kind.name(),
            spec.target_max_link_load,
            robust.scenarios_examined,
            format!("{hose_mean:.4}/{hose_max:.4}"),
            format!("{rob_mean:.4}/{rob_max:.4}"),
        );
        rows.push(serde_json::json!({
            "family": spec.to_string(),
            "target_max_link_load": spec.target_max_link_load,
            "peak_dc_load_ratio": peak,
            "scenarios_examined": robust.scenarios_examined,
            "hose_fiber_pairs": hose_fp,
            "robust_fiber_pairs": robust_fp,
            "hose_shed_mean": hose_mean,
            "hose_shed_max": hose_max,
            "robust_shed_mean": rob_mean,
            "robust_shed_max": rob_max,
        }));
    }

    println!("\nrobust ToE sheds less than hose under surprise traffic wherever the");
    println!("family escapes the hose envelope, at a fraction of the fiber cost.");

    iris_bench::write_results(
        "robust_toe",
        &serde_json::json!({
            "region": { "map_seed": 3, "n_dcs": 8, "f": 16, "lambda": lambda },
            "cuts": goals.max_cuts,
            "held_out": "same structural layer, rerolled shock draws",
            "rows": rows,
        }),
    );
}
