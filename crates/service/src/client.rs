//! A blocking client for the framed protocol (JSON by default, compact
//! binary after a [`Request::Hello`] negotiation).

use crate::api::{Request, Response};
use crate::codec::{self, Codec};
use crate::frame::{read_frame, write_frame_traced, FrameEvent};
use iris_errors::{IrisError, IrisResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::TcpStream;
use std::time::Duration;

/// Decorrelated-jitter backoff for retry loops: each delay is drawn
/// uniformly from `base..=prev * 3` (clamped to `cap`), so concurrent
/// clients hitting the same overloaded server spread out instead of
/// retrying in lockstep the way a fixed `retry_after` sleep would.
///
/// The sequence is a pure function of the seed, which makes the bound
/// behaviour unit-testable: every delay `d` satisfies
/// `base <= d <= min(cap, max(prev * 3, base + 1))`.
#[derive(Debug)]
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    prev_ms: u64,
    rng: StdRng,
}

impl Backoff {
    /// A backoff starting at `base_ms` and never sleeping longer than
    /// `cap_ms`, jittered by a deterministic stream seeded with `seed`.
    #[must_use]
    pub fn new(base_ms: u64, cap_ms: u64, seed: u64) -> Self {
        let base_ms = base_ms.max(1);
        Self {
            base_ms,
            cap_ms: cap_ms.max(base_ms),
            prev_ms: base_ms,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The next delay, in milliseconds.
    pub fn next_delay_ms(&mut self) -> u64 {
        let hi = self
            .prev_ms
            .saturating_mul(3)
            .max(self.base_ms + 1)
            .min(self.cap_ms);
        let span = hi - self.base_ms + 1;
        let delay = self.base_ms + self.rng.random_range(0..span);
        self.prev_ms = delay;
        delay
    }
}

/// One connection to a running service. Requests are strictly
/// request/reply on the connection, so a client carries no protocol
/// state beyond the socket and the negotiated wire codec.
///
/// # Example
///
/// Boot an in-process server on an ephemeral port, raise one pair's
/// demand, and read back the path its circuits ride:
///
/// ```
/// use iris_fibermap::{synth, MetroParams, PlacementParams};
/// use iris_service::{serve, Request, Response, ServiceClient, ServiceConfig};
///
/// let region = synth::place_dcs(
///     synth::generate_metro(&MetroParams { seed: 7, ..MetroParams::default() }),
///     &PlacementParams { seed: 24, n_dcs: 4, ..PlacementParams::default() },
/// );
/// let mut server = serve(region, &ServiceConfig {
///     addr: "127.0.0.1:0".to_owned(), // port 0 picks a free port
///     ..ServiceConfig::default()
/// })?;
/// let mut client = ServiceClient::connect(&server.local_addr().to_string())?;
///
/// // Pick a reachable DC pair off the topology, then write and read.
/// let Response::Topology(topo) = client.call(&Request::GetTopology)?.into_result()? else {
///     unreachable!("GetTopology answers Topology")
/// };
/// let (a, b) = (topo.allocation[0].a, topo.allocation[0].b);
///
/// let reply = client.call(&Request::UpdateDemand { a, b, circuits: 2 })?;
/// assert!(matches!(reply, Response::DemandAccepted { .. }));
///
/// let Response::Path(path) = client.call(&Request::QueryPath { a, b })?.into_result()? else {
///     unreachable!("allocated pairs have a path")
/// };
/// assert!(path.length_km > 0.0);
/// server.shutdown();
/// # Ok::<(), iris_errors::IrisError>(())
/// ```
#[derive(Debug)]
pub struct ServiceClient {
    stream: TcpStream,
    codec: Codec,
}

impl ServiceClient {
    /// Connect to `addr`. The connection speaks JSON until
    /// [`ServiceClient::hello`] negotiates another codec.
    ///
    /// # Errors
    ///
    /// [`IrisError::Io`] if the connection fails.
    pub fn connect(addr: &str) -> IrisResult<Self> {
        let stream = TcpStream::connect(addr).map_err(|e| IrisError::Io {
            detail: format!("cannot connect to {addr}: {e}"),
        })?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            stream,
            codec: Codec::Json,
        })
    }

    /// Connect, retrying `attempts` times with `delay_ms` between tries —
    /// for racing a server that is still planning its region at startup.
    ///
    /// # Errors
    ///
    /// The last [`IrisError::Io`] if every attempt fails.
    pub fn connect_retry(addr: &str, attempts: u32, delay_ms: u64) -> IrisResult<Self> {
        let mut last = IrisError::Io {
            detail: format!("no connection attempts made for {addr}"),
        };
        for attempt in 0..attempts.max(1) {
            match Self::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) => last = e,
            }
            if attempt + 1 < attempts {
                std::thread::sleep(Duration::from_millis(delay_ms));
            }
        }
        Err(last)
    }

    /// The codec currently in effect on this connection.
    #[must_use]
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// Negotiate `codec` for the rest of this connection. The `Hello`
    /// goes out (and its acknowledgement comes back) in the *current*
    /// codec; both sides switch after the acknowledgement, so a
    /// negotiation that fails leaves the connection usable as-is.
    ///
    /// # Errors
    ///
    /// [`IrisError::InvalidInput`] if the server rejects the codec,
    /// [`IrisError::Decode`] on an unexpected reply, [`IrisError::Io`]
    /// on socket failure.
    pub fn hello(&mut self, codec: Codec) -> IrisResult<()> {
        let resp = self
            .call(&Request::Hello {
                codec: codec.name().to_owned(),
            })?
            .into_result()?;
        match resp {
            Response::HelloAck { codec: name } => {
                self.codec = Codec::from_name(&name).ok_or_else(|| IrisError::Decode {
                    detail: format!("server acknowledged unknown codec {name:?}"),
                })?;
                Ok(())
            }
            other => Err(IrisError::Decode {
                detail: format!("unexpected reply to Hello: {other:?}"),
            }),
        }
    }

    /// Dismantle the client into its socket and negotiated codec — for
    /// callers (the load generator's event loop) that switch the
    /// connection to non-blocking I/O after the blocking handshake.
    #[must_use]
    pub fn into_parts(self) -> (TcpStream, Codec) {
        (self.stream, self.codec)
    }

    /// Send one request and wait for its reply. `Error` replies are
    /// returned as `Ok(Response::Error(..))` — use
    /// [`Response::into_result`] or [`ServiceClient::call_retrying`] to
    /// surface them as typed errors.
    ///
    /// # Errors
    ///
    /// [`IrisError::Io`] on socket failure, [`IrisError::Decode`] on a
    /// malformed reply or server disconnect mid-reply.
    pub fn call(&mut self, req: &Request) -> IrisResult<Response> {
        // Propagate the caller's trace context (if any) so the server
        // logs the request under an id the caller can correlate. When
        // the local recorder is disabled no header is sent and the
        // frame bytes are identical to the pre-tracing protocol.
        let trace = if iris_telemetry::trace::enabled() {
            iris_telemetry::trace::current_trace().or_else(|| {
                if req.is_write() {
                    Some(iris_telemetry::trace::mint_trace_id())
                } else {
                    None
                }
            })
        } else {
            None
        };
        self.call_with_trace(req, trace)
    }

    /// [`ServiceClient::call`] with an explicit trace context: `Some`
    /// attaches the id as a frame header, `None` sends a legacy frame.
    ///
    /// # Errors
    ///
    /// Same as [`ServiceClient::call`].
    pub fn call_with_trace(&mut self, req: &Request, trace: Option<u64>) -> IrisResult<Response> {
        let payload = codec::encode_request(self.codec, req)?;
        write_frame_traced(&mut self.stream, &payload, trace)?;
        loop {
            match read_frame(&mut self.stream)? {
                FrameEvent::Frame(bytes) => return codec::decode_response(self.codec, &bytes),
                FrameEvent::Idle => continue,
                FrameEvent::Eof => {
                    return Err(IrisError::Io {
                        detail: "server closed the connection before replying".to_owned(),
                    })
                }
            }
        }
    }

    /// [`ServiceClient::call`], backing off and retrying (up to
    /// `max_retries` times) when the server answers
    /// [`IrisError::Overloaded`]. Delays follow a decorrelated-jitter
    /// schedule ([`Backoff`]) seeded per call, anchored on the
    /// server-suggested `retry_after_ms` and capped at 16× it, so
    /// stampeding clients decorrelate. Other errors pass through.
    ///
    /// # Errors
    ///
    /// The final [`IrisError`] once retries are exhausted, or any
    /// non-backpressure error immediately.
    pub fn call_retrying(&mut self, req: &Request, max_retries: u32) -> IrisResult<Response> {
        let mut attempt = 0;
        let mut backoff: Option<Backoff> = None;
        loop {
            match self.call(req)?.into_result() {
                Ok(resp) => return Ok(resp),
                Err(IrisError::Overloaded { retry_after_ms }) if attempt < max_retries => {
                    attempt += 1;
                    let backoff = backoff.get_or_insert_with(|| {
                        // The vendored rand has no OS entropy source:
                        // seed from the wall clock so concurrent
                        // clients draw different jitter streams.
                        let seed = std::time::SystemTime::now()
                            .duration_since(std::time::UNIX_EPOCH)
                            .map_or(0x9E37_79B9_7F4A_7C15, |d| d.as_nanos() as u64);
                        let base = retry_after_ms.max(1);
                        Backoff::new(base, base.saturating_mul(16), seed)
                    });
                    std::thread::sleep(Duration::from_millis(backoff.next_delay_ms()));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_delays_stay_within_the_decorrelated_jitter_bounds() {
        let (base, cap) = (10u64, 400u64);
        let mut backoff = Backoff::new(base, cap, 7);
        let mut prev = base;
        for i in 0..200 {
            let hi = prev.saturating_mul(3).max(base + 1).min(cap);
            let d = backoff.next_delay_ms();
            assert!(d >= base, "delay {d} below base {base} at step {i}");
            assert!(d <= cap, "delay {d} above cap {cap} at step {i}");
            assert!(
                d <= hi,
                "delay {d} above decorrelated bound {hi} at step {i}"
            );
            prev = d;
        }
    }

    #[test]
    fn backoff_sequences_are_seed_deterministic_and_jittered() {
        let collect = |seed: u64| -> Vec<u64> {
            let mut b = Backoff::new(5, 1000, seed);
            (0..32).map(|_| b.next_delay_ms()).collect()
        };
        assert_eq!(collect(42), collect(42), "same seed, same schedule");
        assert_ne!(collect(1), collect(2), "different seeds decorrelate");
        let seq = collect(42);
        assert!(
            seq.iter().collect::<std::collections::BTreeSet<_>>().len() > 1,
            "the schedule must actually jitter: {seq:?}"
        );
    }

    #[test]
    fn backoff_degenerate_config_is_clamped_sane() {
        let mut b = Backoff::new(0, 0, 9);
        for _ in 0..16 {
            let d = b.next_delay_ms();
            assert!(d >= 1, "zero base clamps to 1ms");
            assert!(d <= 1, "cap clamps to the base");
        }
    }
}
