//! The crash-recovery chaos sweep behind `iris chaos --crash`.
//!
//! Each scenario drives the service's real durability machinery — a
//! [`ControlMachine`] over a real [`Wal`] on disk — through a seeded
//! batch workload, kills it at a seeded crash point (optionally tearing
//! or corrupting the log tail the way a real crash would), recovers with
//! [`iris_service::recover`], and diffs the recovered state against an
//! uninterrupted same-seed reference run using the canonical JSON
//! rendering of [`StateSnapshot`]. The sweep then replays the remaining
//! batches on the recovered machine and checks the *final* states match
//! byte-for-byte too: a crash must be invisible once replay catches up.
//!
//! Everything serialized into [`CrashReport`] is a pure function of the
//! seed — recovery *cost* is reported as the modeled
//! `replay_reconfig_ms`, never wall-clock — so the `crash` CI job can
//! diff two runs byte-for-byte.

use iris_control::Controller;
use iris_errors::{IrisError, IrisResult};
use iris_fibermap::Region;
use iris_planner::topology::{provision, Provisioning};
use iris_planner::DesignGoals;
use iris_service::wal::{DurableState, Wal, WAL_FILE};
use iris_service::{recover, ControlMachine, StateSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::chaos::Distribution;

/// Crash sweep parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashConfig {
    /// Master seed; scenario `s` derives its workload from `seed + s`.
    pub seed: u64,
    /// Number of crash scenarios.
    pub scenarios: usize,
    /// DCs in the synthetic region.
    pub n_dcs: usize,
    /// Planner cut tolerance `k`.
    pub cuts: usize,
    /// Write batches per scenario workload.
    pub batches: usize,
}

impl Default for CrashConfig {
    fn default() -> Self {
        Self {
            seed: 7,
            scenarios: 9,
            n_dcs: 5,
            cuts: 1,
            batches: 8,
        }
    }
}

/// How the process dies at the crash point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrashMode {
    /// The process is killed between batches: the log ends on a clean
    /// record boundary and recovery loses nothing.
    CleanKill,
    /// Killed mid-append: a partial record (header promising bytes that
    /// never hit the disk) is left on the tail. Salvage drops it.
    TornTail,
    /// The final record's payload is damaged on disk, so its CRC no
    /// longer matches. Salvage drops the whole record: recovery lands on
    /// the last *consistent* batch, one before the crash point.
    BadCrcTail,
}

impl CrashMode {
    fn for_scenario(s: usize) -> Self {
        match s % 3 {
            0 => CrashMode::CleanKill,
            1 => CrashMode::TornTail,
            _ => CrashMode::BadCrcTail,
        }
    }

    /// How many applied batches the mode destroys.
    fn batches_lost(self) -> usize {
        match self {
            CrashMode::CleanKill | CrashMode::TornTail => 0,
            CrashMode::BadCrcTail => 1,
        }
    }
}

/// What happened in one crash scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrashOutcome {
    /// Scenario index.
    pub scenario: usize,
    /// The scenario's workload seed.
    pub seed: u64,
    /// How the process died.
    pub mode: CrashMode,
    /// Batches applied before the crash.
    pub crash_after: usize,
    /// Batches the crash destroyed (0 except `BadCrcTail`).
    pub batches_lost: usize,
    /// WAL records salvage kept at recovery.
    pub salvaged_records: u64,
    /// Bytes salvage dropped from the log tail.
    pub truncated_bytes: u64,
    /// Epoch the recovered snapshot republished at.
    pub recovered_epoch: u64,
    /// Modeled reconfiguration cost of replay, ms (deterministic).
    pub replay_reconfig_ms: f64,
    /// Recovered state == reference state at the surviving batch count.
    pub recovered_identical: bool,
    /// After replaying the remaining batches, final state == the
    /// uninterrupted run's final state.
    pub final_identical: bool,
}

/// The sweep's aggregate result (what `results/crash_recovery.json`
/// holds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrashReport {
    /// The sweep configuration.
    pub config: CrashConfig,
    /// Ducts in the region the sweep ran on.
    pub ducts: usize,
    /// Per-scenario outcomes.
    pub outcomes: Vec<CrashOutcome>,
    /// Distribution of modeled replay costs, ms.
    pub replay_reconfig_ms: Distribution,
    /// Every scenario recovered byte-identically to its reference.
    pub all_recovered_identical: bool,
    /// Every scenario converged to the reference final state.
    pub all_final_identical: bool,
}

/// One scripted write batch: demand updates plus at most one fiber cut.
/// The cut duct is resolved at application time (the first duct of the
/// first allocated pair's *current* path), so it is a deterministic
/// function of the state — identical in reference, crashed, and
/// recovered runs.
#[derive(Debug, Clone)]
struct ScriptedBatch {
    /// `(pair_index, circuits)` — resolved against the boot allocation.
    updates: Vec<(usize, u32)>,
    cut: bool,
}

/// Seeded workload: every batch carries at least one update (so every
/// batch publishes and consumes an epoch), and exactly one mid-sequence
/// batch also cuts a fiber.
fn script(seed: u64, batches: usize, n_pairs: usize) -> Vec<ScriptedBatch> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut next = move || {
        // xorshift64*: small, seedable, good enough to scatter a script.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let cut_at = batches / 2;
    (0..batches)
        .map(|b| {
            let n_updates = 1 + (next() % 2) as usize;
            let updates = (0..n_updates)
                .map(|_| {
                    let pair = (next() % n_pairs as u64) as usize;
                    let circuits = 1 + (next() % 4) as u32;
                    (pair, circuits)
                })
                .collect();
            ScriptedBatch {
                updates,
                cut: b == cut_at,
            }
        })
        .collect()
}

/// A unique, throwaway WAL directory. Never serialized into the report.
fn scratch_dir(label: &str, scenario: usize) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("iris-crash-sweep")
        .join(format!("{}-{label}-s{scenario}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Boot a fresh controller + machine pair over `dir` (or memory-only
/// when `dir` is `None`) and return the boot snapshot too.
fn boot<'r>(
    region: &'r Region,
    goals: &'r DesignGoals,
    prov: &'r Provisioning,
    controller: &'r Controller,
    dir: Option<&Path>,
) -> IrisResult<(ControlMachine<'r>, StateSnapshot)> {
    let (wal, durable) = match dir {
        Some(d) => {
            let (wal, durable) = Wal::open(d)?;
            (Some(wal), durable)
        }
        None => (None, DurableState::empty()),
    };
    let (snap, active_cuts, _) = recover(region, goals, prov, controller, &durable)?;
    Ok((
        ControlMachine::new(region, goals, prov, controller, active_cuts, wal, 0),
        snap,
    ))
}

/// Apply one scripted batch; the workload guarantees it publishes.
fn apply(
    machine: &mut ControlMachine<'_>,
    prev: &StateSnapshot,
    batch: &ScriptedBatch,
    pairs: &[(usize, usize)],
) -> IrisResult<StateSnapshot> {
    let mut updates: BTreeMap<(usize, usize), u32> = BTreeMap::new();
    for &(pair, circuits) in &batch.updates {
        updates.insert(pairs[pair], circuits);
    }
    let cuts: Vec<Vec<usize>> = if batch.cut {
        let duct = prev
            .paths
            .values()
            .next()
            .and_then(|p| p.edges.first())
            .copied()
            .ok_or_else(|| IrisError::Unreachable {
                what: "no path to cut in scripted batch".to_owned(),
            })?;
        vec![vec![duct]]
    } else {
        Vec::new()
    };
    let result = machine.apply_batch(prev, &updates, 0, &cuts)?;
    result.snapshot.ok_or_else(|| IrisError::ReplayFailed {
        detail: "scripted batch unexpectedly applied nothing".to_owned(),
    })
}

/// Damage the log tail the way the scenario's crash mode would.
fn inflict(mode: CrashMode, log: &Path) -> IrisResult<()> {
    let io_err = |e: std::io::Error| IrisError::Io {
        detail: format!("crash harness cannot damage {}: {e}", log.display()),
    };
    match mode {
        CrashMode::CleanKill => Ok(()),
        CrashMode::TornTail => {
            let mut bytes = std::fs::read(log).map_err(io_err)?;
            bytes.extend_from_slice(&96u32.to_be_bytes());
            bytes.extend_from_slice(&0u32.to_be_bytes());
            bytes.extend_from_slice(b"torn");
            std::fs::write(log, &bytes).map_err(io_err)
        }
        CrashMode::BadCrcTail => {
            let mut bytes = std::fs::read(log).map_err(io_err)?;
            let n = bytes.len();
            if n < 16 {
                return Err(IrisError::Io {
                    detail: format!("log too short to corrupt ({n} bytes)"),
                });
            }
            // Flip one byte inside the final record's payload.
            bytes[n - 1] ^= 0xFF;
            std::fs::write(log, &bytes).map_err(io_err)
        }
    }
}

/// Run the crash sweep. Deterministic: same config, same report.
///
/// # Errors
///
/// [`IrisError::Infeasible`] if the synthetic region cannot be planned
/// at the requested tolerance; propagates any WAL, replay or controller
/// error (none are expected — an error here is a durability bug).
pub fn run_crash(cfg: &CrashConfig) -> IrisResult<CrashReport> {
    let region = crate::simple_region(cfg.seed, cfg.n_dcs);
    let goals = DesignGoals::with_cuts(cfg.cuts);
    let prov = provision(&region, &goals);
    if !prov.infeasible.is_empty() {
        return Err(IrisError::Infeasible {
            detail: format!(
                "region (seed {}, {} DCs) has {} infeasible (pair, scenario) combos at k={}",
                cfg.seed,
                cfg.n_dcs,
                prov.infeasible.len(),
                cfg.cuts
            ),
        });
    }
    let batches = cfg.batches.max(2);

    let mut outcomes = Vec::with_capacity(cfg.scenarios);
    for s in 0..cfg.scenarios {
        outcomes.push(run_scenario(s, cfg, batches, &region, &goals, &prov)?);
    }

    let replay: Vec<f64> = outcomes.iter().map(|o| o.replay_reconfig_ms).collect();
    Ok(CrashReport {
        config: *cfg,
        ducts: region.map.graph().edge_count(),
        replay_reconfig_ms: Distribution::from_samples(&replay),
        all_recovered_identical: outcomes.iter().all(|o| o.recovered_identical),
        all_final_identical: outcomes.iter().all(|o| o.final_identical),
        outcomes,
    })
}

fn run_scenario(
    s: usize,
    cfg: &CrashConfig,
    batches: usize,
    region: &Region,
    goals: &DesignGoals,
    prov: &Provisioning,
) -> IrisResult<CrashOutcome> {
    let seed = cfg.seed.wrapping_add(s as u64);
    let mode = CrashMode::for_scenario(s);

    // Reference: an uninterrupted run of the whole workload, memory-only
    // (the WAL cannot change what a batch computes). Keep the canonical
    // state after every prefix — the crash run is diffed against these.
    let ref_controller = Controller::for_region(region, goals);
    let (mut ref_machine, boot_snap) = boot(region, goals, prov, &ref_controller, None)?;
    let pairs: Vec<(usize, usize)> = boot_snap.allocation.keys().copied().collect();
    let workload = script(seed, batches, pairs.len());
    let mut canon = Vec::with_capacity(batches + 1);
    canon.push(boot_snap.canonical_json());
    let mut state = boot_snap;
    for batch in &workload {
        state = apply(&mut ref_machine, &state, batch, &pairs)?;
        canon.push(state.canonical_json());
    }

    // Crash run: same workload over a real WAL, died after `crash_after`
    // batches, tail damaged per the mode.
    let dir = scratch_dir("crash", s);
    let crash_after = 1 + (seed % (batches as u64 - 1)) as usize;
    {
        let controller = Controller::for_region(region, goals);
        let (mut machine, boot_snap) = boot(region, goals, prov, &controller, Some(&dir))?;
        let mut state = boot_snap;
        for batch in &workload[..crash_after] {
            state = apply(&mut machine, &state, batch, &pairs)?;
        }
        // `machine` (and the open Wal) drop here: the process is dead.
    }
    inflict(mode, &dir.join(WAL_FILE))?;

    // Recover, diff against the reference prefix, then replay the rest
    // of the workload and diff the finals.
    let survived = crash_after - mode.batches_lost();
    let controller = Controller::for_region(region, goals);
    let (wal, durable) = Wal::open(&dir)?;
    let salvaged_records = durable.salvage.records;
    let truncated_bytes = durable.salvage.truncated_bytes;
    let (recovered, active_cuts, stats) = recover(region, goals, prov, &controller, &durable)?;
    let recovered_identical = recovered.canonical_json() == canon[survived];

    let mut machine =
        ControlMachine::new(region, goals, prov, &controller, active_cuts, Some(wal), 0);
    let mut state = recovered;
    for batch in &workload[survived..] {
        state = apply(&mut machine, &state, batch, &pairs)?;
    }
    let final_identical = state.canonical_json() == canon[batches];
    drop(machine);
    let _ = std::fs::remove_dir_all(&dir);

    Ok(CrashOutcome {
        scenario: s,
        seed,
        mode,
        crash_after,
        batches_lost: mode.batches_lost(),
        salvaged_records,
        truncated_bytes,
        recovered_epoch: stats.recovered_epoch,
        replay_reconfig_ms: stats.replay_reconfig_ms,
        recovered_identical,
        final_identical,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CrashConfig {
        CrashConfig {
            seed: 7,
            scenarios: 3,
            n_dcs: 5,
            cuts: 1,
            batches: 5,
        }
    }

    #[test]
    fn crash_sweep_is_deterministic() {
        let a = run_crash(&tiny()).expect("plannable");
        let b = run_crash(&tiny()).expect("plannable");
        assert_eq!(a, b);
        let ja = serde_json::to_string(&a).unwrap();
        let jb = serde_json::to_string(&b).unwrap();
        assert_eq!(ja, jb, "byte-identical JSON under one seed");
    }

    #[test]
    fn every_mode_recovers_byte_identically() {
        // 3 scenarios = one of each crash mode.
        let report = run_crash(&tiny()).expect("plannable");
        assert_eq!(report.outcomes.len(), 3);
        let modes: Vec<CrashMode> = report.outcomes.iter().map(|o| o.mode).collect();
        assert_eq!(
            modes,
            vec![
                CrashMode::CleanKill,
                CrashMode::TornTail,
                CrashMode::BadCrcTail
            ]
        );
        assert!(report.all_recovered_identical, "{report:?}");
        assert!(report.all_final_identical, "{report:?}");
        for o in &report.outcomes {
            assert!(o.replay_reconfig_ms > 0.0, "{o:?}");
            match o.mode {
                CrashMode::CleanKill => {
                    assert_eq!(o.truncated_bytes, 0);
                    assert_eq!(o.salvaged_records as usize, o.crash_after);
                }
                CrashMode::TornTail => {
                    assert_eq!(o.truncated_bytes, 12, "the scripted torn tail");
                    assert_eq!(o.salvaged_records as usize, o.crash_after);
                }
                CrashMode::BadCrcTail => {
                    assert!(o.truncated_bytes > 12, "a whole record was dropped");
                    assert_eq!(o.salvaged_records as usize, o.crash_after - 1);
                    assert_eq!(o.batches_lost, 1);
                }
            }
            assert_eq!(o.recovered_epoch as usize, o.crash_after - o.batches_lost);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_crash(&tiny()).expect("plannable");
        let b = run_crash(&CrashConfig { seed: 8, ..tiny() }).expect("plannable");
        assert_ne!(a, b);
    }

    #[test]
    fn log_salvage_state_is_consistent_after_the_sweep() {
        // The sweep removes its scratch dirs; this mostly guards against
        // the harness accidentally serializing paths or wall-clock.
        let report = run_crash(&tiny()).expect("plannable");
        let text = serde_json::to_string(&report).unwrap();
        assert!(!text.contains("tmp"), "no scratch paths in the report");
    }
}
