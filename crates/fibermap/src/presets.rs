//! Named synthetic metro presets with distinct geographies.
//!
//! Real regions differ in shape — coastal corridors, ring roads around a
//! dense core, rivers splitting a metro into twin clusters — and the
//! shape changes duct sharing, hub placement and siting areas. These
//! presets give the evaluation geometric diversity beyond the uniform
//! scatter of [`crate::synth::generate_metro`]; all remain deterministic
//! in their seed.

use crate::map::{FiberMap, SiteKind};
use iris_geo::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A metro built around a ring road: huts on a ring with radial spurs
/// into the core and chords across it.
#[must_use]
pub fn ring_metro(seed: u64, n_ring_huts: usize, radius_km: f64) -> FiberMap {
    assert!(n_ring_huts >= 4, "a ring needs at least four huts");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut map = FiberMap::new();
    let core = map.add_site(SiteKind::Hut, Point::new(0.0, 0.0));
    let mut ring = Vec::with_capacity(n_ring_huts);
    for i in 0..n_ring_huts {
        let angle = i as f64 / n_ring_huts as f64 * std::f64::consts::TAU;
        let jitter = rng.random_range(0.9..1.1);
        let p = Point::new(
            radius_km * jitter * angle.cos(),
            radius_km * jitter * angle.sin(),
        );
        ring.push(map.add_site(SiteKind::Hut, p));
    }
    // The ring itself.
    for i in 0..n_ring_huts {
        map.add_duct_detour(ring[i], ring[(i + 1) % n_ring_huts], 1.15);
    }
    // Radials into the core (every other hut) and two cross-chords.
    for (i, &h) in ring.iter().enumerate() {
        if i % 2 == 0 {
            map.add_duct_detour(h, core, 1.25);
        }
    }
    map.add_duct_detour(ring[0], ring[n_ring_huts / 2], 1.3);
    map.add_duct_detour(ring[n_ring_huts / 4], ring[3 * n_ring_huts / 4], 1.3);
    map
}

/// A linear coastal corridor: huts strung along a line (the shoreline)
/// with a parallel inland backup route.
#[must_use]
pub fn corridor_metro(seed: u64, n_huts: usize, length_km: f64) -> FiberMap {
    assert!(
        n_huts >= 4 && n_huts.is_multiple_of(2),
        "corridor wants an even hut count >= 4"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut map = FiberMap::new();
    let per_row = n_huts / 2;
    let mut coast = Vec::new();
    let mut inland = Vec::new();
    for i in 0..per_row {
        let x = (i as f64 / (per_row - 1) as f64 - 0.5) * length_km;
        coast.push(map.add_site(SiteKind::Hut, Point::new(x, rng.random_range(-1.0..1.0))));
        inland.push(map.add_site(
            SiteKind::Hut,
            Point::new(
                x + rng.random_range(-2.0..2.0),
                8.0 + rng.random_range(-1.0..1.0),
            ),
        ));
    }
    for row in [&coast, &inland] {
        for w in row.windows(2) {
            map.add_duct_detour(w[0], w[1], 1.1);
        }
    }
    // Cross-ties every hop keep the two routes failover-capable.
    for i in 0..per_row {
        map.add_duct_detour(coast[i], inland[i], 1.2);
    }
    map
}

/// Twin clusters separated by a river: two dense hut meshes joined by
/// exactly `n_bridges` crossings — the classic correlated-cut hazard.
#[must_use]
pub fn twin_cluster_metro(seed: u64, huts_per_side: usize, n_bridges: usize) -> FiberMap {
    assert!(huts_per_side >= 3, "each bank needs at least three huts");
    assert!(n_bridges >= 1, "the banks must be connected");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut map = FiberMap::new();
    let bank = |x_center: f64, map: &mut FiberMap, rng: &mut StdRng| -> Vec<usize> {
        let sites: Vec<usize> = (0..huts_per_side)
            .map(|_| {
                map.add_site(
                    SiteKind::Hut,
                    Point::new(
                        x_center + rng.random_range(-8.0..8.0),
                        rng.random_range(-12.0..12.0),
                    ),
                )
            })
            .collect();
        // Chain plus one chord per bank.
        for w in sites.windows(2) {
            map.add_duct_detour(w[0], w[1], 1.2);
        }
        map.add_duct_detour(sites[0], sites[huts_per_side - 1], 1.3);
        sites
    };
    let west = bank(-20.0, &mut map, &mut rng);
    let east = bank(20.0, &mut map, &mut rng);
    for b in 0..n_bridges {
        let w = west[b * (huts_per_side - 1) / n_bridges.max(1)];
        let e = east[b * (huts_per_side - 1) / n_bridges.max(1)];
        map.add_duct_detour(w, e, 1.1);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{place_dcs, PlacementParams};

    fn is_connected(map: &FiberMap) -> bool {
        map.fiber_distances_from(0).iter().all(|d| d.is_finite())
    }

    #[test]
    fn ring_is_connected_and_round() {
        let map = ring_metro(1, 8, 15.0);
        assert!(is_connected(&map));
        assert_eq!(map.huts().len(), 9); // core + ring
                                         // Ring huts sit roughly at the radius.
        for &h in &map.huts()[1..] {
            let r = map.site(h).position.distance(&iris_geo::Point::ORIGIN);
            assert!((12.0..=18.0).contains(&r), "hut at {r} km");
        }
    }

    #[test]
    fn corridor_survives_single_cuts() {
        let map = corridor_metro(2, 12, 50.0);
        assert!(is_connected(&map));
        // Parallel routes: cutting any single duct keeps the ends joined.
        let g = map.graph();
        let ends = (0, map.huts().len() - 1);
        for e in 0..g.edge_count() {
            let mut mask = vec![false; g.edge_count()];
            mask[e] = true;
            assert!(
                g.connected_avoiding(ends.0, ends.1, &mask),
                "duct {e} is a single point of failure"
            );
        }
    }

    #[test]
    fn twin_cluster_bridge_count_controls_resilience() {
        let one = twin_cluster_metro(3, 5, 1);
        let two = twin_cluster_metro(3, 5, 2);
        assert!(is_connected(&one) && is_connected(&two));
        // With 1 bridge, west-east connectivity is 1; with 2 it is >= 2.
        let west = 0usize;
        let east = 5usize;
        assert_eq!(one.graph().edge_connectivity(west, east), 1);
        assert!(two.graph().edge_connectivity(west, east) >= 2);
    }

    #[test]
    fn presets_accept_dc_placement() {
        for map in [
            ring_metro(7, 10, 18.0),
            corridor_metro(7, 12, 45.0),
            twin_cluster_metro(7, 6, 2),
        ] {
            let region = place_dcs(
                map,
                &PlacementParams {
                    n_dcs: 4,
                    ..PlacementParams::default()
                },
            );
            region.validate();
            assert_eq!(region.dcs.len(), 4);
        }
    }

    #[test]
    fn presets_are_deterministic() {
        let a = ring_metro(9, 8, 15.0);
        let b = ring_metro(9, 8, 15.0);
        for i in 0..a.site_count() {
            assert_eq!(a.site(i).position, b.site(i).position);
        }
    }
}
