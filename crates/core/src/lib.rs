//! # Iris — networking multi-data-center regions
//!
//! A Rust implementation of the regional data-center-interconnect (DCI)
//! design system from *"Beyond the mega-data center: networking
//! multi-data center regions"* (SIGCOMM 2020): design-space analysis,
//! the Iris all-optical fiber-switched architecture, its planning
//! algorithms and control plane, cost models, and a flow-level simulator
//! for reconfiguration transience.
//!
//! ## Quickstart
//!
//! ```
//! use iris_core::prelude::*;
//!
//! // Generate a synthetic metro region with 6 DCs.
//! let map = synth::generate_metro(&MetroParams::default());
//! let region = synth::place_dcs(map, &PlacementParams {
//!     n_dcs: 6,
//!     ..PlacementParams::default()
//! });
//!
//! // Plan Iris and EPS realizations and compare their cost.
//! let goals = DesignGoals::with_cuts(0);
//! let study = DesignStudy::run(&region, &goals);
//! assert!(study.eps_iris_cost_ratio() > 1.0, "Iris should be cheaper");
//! ```
//!
//! The workspace crates are re-exported under their domain names:
//! [`geo`], [`netgraph`], [`optics`], [`fibermap`], [`planner`],
//! [`cost`], [`simnet`], [`control`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use iris_control as control;
pub use iris_cost as cost;
pub use iris_fibermap as fibermap;
pub use iris_geo as geo;
pub use iris_netgraph as netgraph;
pub use iris_optics as optics;
pub use iris_planner as planner;
pub use iris_simnet as simnet;

pub mod study;

pub use study::DesignStudy;

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::study::DesignStudy;
    pub use iris_control::{build_fabric, FabricLayout};
    pub use iris_cost::{eps_cost, hybrid_cost, iris_cost, PriceBook};
    pub use iris_fibermap::io::{load_region, save_region};
    pub use iris_fibermap::synth::{self, pick_hub_pair};
    pub use iris_fibermap::{FiberMap, MetroParams, PlacementParams, Region, SiteKind};
    pub use iris_planner::expansion::expand_with_dc;
    pub use iris_planner::{
        plan_centralized, plan_eps, plan_iris, CentralizedPlan, DesignGoals, EpsPlan, HubHoming,
        IrisPlan,
    };
    pub use iris_simnet::{run_comparison, ExperimentConfig, SimTopology};
}
