//! Cascaded-amplifier OSNR penalty (the model behind Fig. 9).
//!
//! The paper measures, and classical theory (Koch; Essiambre et al.)
//! predicts, that amplified spontaneous emission accumulates linearly with
//! the number of equal-gain amplifiers in a cascade: the first amplifier
//! degrades OSNR by its noise figure (~4.5 dB) and every *doubling* of the
//! cascade costs a further ~3 dB, i.e.
//!
//! ```text
//!   penalty(N) = NF + 10·log10(N)  dB
//! ```
//!
//! With 400ZR's 11 dB end-to-end tolerance and ~1.5 dB of impairment
//! margin, the usable amplifier budget is ~9.5 dB — at most **three**
//! amplifiers end-to-end, hence at most one in-line amplifier between the
//! two terminal ones (TC2).

/// OSNR penalty in dB of a cascade of `n` equal-gain amplifiers with noise
/// figure `noise_figure_db`. Zero amplifiers cost nothing.
#[must_use]
pub fn cascade_penalty_db(n: usize, noise_figure_db: f64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    noise_figure_db + 10.0 * (n as f64).log10()
}

/// OSNR penalty using the paper's measured noise figure.
#[must_use]
pub fn cascade_penalty_default_db(n: usize) -> f64 {
    cascade_penalty_db(n, crate::AMPLIFIER_NOISE_FIGURE_DB)
}

/// The largest amplifier cascade whose penalty fits within `budget_db`.
#[must_use]
pub fn max_amplifiers_within_budget(budget_db: f64, noise_figure_db: f64) -> usize {
    let mut n = 0usize;
    while cascade_penalty_db(n + 1, noise_figure_db) <= budget_db {
        n += 1;
        if n > 1_000 {
            break; // guard against absurd budgets
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AMPLIFIER_NOISE_FIGURE_DB, AMPLIFIER_OSNR_BUDGET_DB};

    #[test]
    fn zero_amplifiers_no_penalty() {
        assert_eq!(cascade_penalty_db(0, 4.5), 0.0);
    }

    #[test]
    fn first_amplifier_costs_noise_figure() {
        assert!((cascade_penalty_default_db(1) - AMPLIFIER_NOISE_FIGURE_DB).abs() < 1e-12);
    }

    #[test]
    fn doubling_costs_three_db() {
        // Fig. 9's headline observation.
        for &n in &[1usize, 2, 4] {
            let d = cascade_penalty_default_db(2 * n) - cascade_penalty_default_db(n);
            assert!((d - 3.0103).abs() < 1e-3, "doubling {n} cost {d}");
        }
    }

    #[test]
    fn penalty_is_monotone() {
        for n in 1..16 {
            assert!(cascade_penalty_default_db(n + 1) > cascade_penalty_default_db(n));
        }
    }

    #[test]
    fn budget_admits_exactly_three_amplifiers() {
        // §3.2: "a maximum amplifier-count of 3 end-to-end".
        let max = max_amplifiers_within_budget(AMPLIFIER_OSNR_BUDGET_DB, AMPLIFIER_NOISE_FIGURE_DB);
        assert_eq!(max, crate::MAX_AMPLIFIERS_PER_PATH);
    }

    #[test]
    fn eleven_db_budget_without_margin_admits_four() {
        let max = max_amplifiers_within_budget(11.0, 4.5);
        assert_eq!(max, 4);
    }

    #[test]
    fn tiny_budget_admits_none() {
        assert_eq!(max_amplifiers_within_budget(4.0, 4.5), 0);
    }

    #[test]
    fn fig9_series_shape() {
        // Reconstruct Fig. 9's x = 1..8 series and check endpoints.
        let series: Vec<f64> = (1..=8).map(cascade_penalty_default_db).collect();
        assert!((series[0] - 4.5).abs() < 1e-12);
        assert!((series[7] - (4.5 + 9.03)).abs() < 0.01); // 8 = 2^3 → +9 dB
    }
}
