//! Figure 14 — pre-FEC BER over time while the testbed reconfigures
//! every minute (simulated testbed of §6.2 / Fig. 13).
//!
//! Paper shape: BER always below the 2e-2 SD-FEC threshold while
//! carrying traffic; ~50 ms signal recovery after each reconfiguration.

use iris_control::testbed::{run_testbed, summarize, TestbedConfig};

fn main() {
    let config = TestbedConfig {
        duration_s: if iris_bench::quick_mode() {
            120.0
        } else {
            600.0
        },
        ..TestbedConfig::default()
    };
    let samples = run_testbed(&config);
    let summary = summarize(&samples, config.sample_period_ms);

    // Print one decimated trace per receiver around the first swap.
    println!("# t_ms  receiver  pre-FEC BER ('-' = path dark)");
    for s in samples
        .iter()
        .filter(|s| s.t_ms >= 59_800.0 && s.t_ms <= 60_400.0)
    {
        match s.ber {
            Some(b) => println!("{:8.0}  DC{}  {b:.3e}", s.t_ms, s.receiver + 2),
            None => println!("{:8.0}  DC{}  -", s.t_ms, s.receiver + 2),
        }
    }

    println!("\nduration:                 {:.0} s", config.duration_s);
    println!(
        "reconfig interval:        {:.0} s",
        config.reconfig_interval_s
    );
    println!(
        "max pre-FEC BER:          {:.3e} (SD-FEC threshold 2e-2)",
        summary.max_ber
    );
    println!(
        "samples below threshold:  {:.1}% (paper: all)",
        summary.below_threshold * 100.0
    );
    println!(
        "max recovery gap:         {:.0} ms (paper: ~50 ms)",
        summary.max_gap_ms
    );

    iris_bench::write_results(
        "fig14_ber_reconfig",
        &serde_json::json!({
            "duration_s": config.duration_s,
            "max_preFEC_ber": summary.max_ber,
            "fraction_below_threshold": summary.below_threshold,
            "max_recovery_gap_ms": summary.max_gap_ms,
            "paper_claim": "pre-FEC BER below 2e-2 throughout; 50 ms recovery after reconfiguration",
        }),
    );
}
