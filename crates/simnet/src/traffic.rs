//! Heavy-tailed DC-pair traffic matrices with controlled change (§6.3).
//!
//! "Based on experience, we use heavy-tailed traffic between DCs, with a
//! few pairs exchanging most of the traffic; unbounded changes in traffic
//! patterns occur when, e.g., a low-traffic DC-DC pair becomes a
//! high-traffic one. Otherwise, we bound the changes to a maximum %
//! value."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How much the matrix may change at each reconfiguration interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChangeModel {
    /// Each pair's weight moves by at most this fraction (0.01–1.0).
    Bounded(f64),
    /// Weights are redrawn from scratch: a cold pair may become the
    /// hottest (the paper's "unbounded" extreme).
    Unbounded,
}

/// A normalized traffic matrix over unordered DC pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficMatrix {
    n_dcs: usize,
    /// One weight per unordered pair (i < j), summing to 1.
    weights: Vec<f64>,
    rng: StdRngState,
}

/// Serializable RNG wrapper so matrices can evolve deterministically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct StdRngState {
    seed: u64,
    steps: u64,
}

impl StdRngState {
    fn rng(&mut self) -> StdRng {
        // Derive a fresh deterministic stream per step.
        let mut r = StdRng::seed_from_u64(self.seed.wrapping_add(self.steps.wrapping_mul(0x9E37)));
        self.steps += 1;
        r.random::<u64>(); // decorrelate adjacent seeds
        r
    }
}

/// Index of unordered pair `(i, j)`, `i < j`, in a triangular layout.
#[must_use]
pub fn pair_index(n: usize, i: usize, j: usize) -> usize {
    assert!(i < j && j < n, "need i < j < n");
    i * n - i * (i + 1) / 2 + (j - i - 1)
}

/// Number of unordered pairs.
#[must_use]
pub fn pair_count(n: usize) -> usize {
    n * (n - 1) / 2
}

impl TrafficMatrix {
    /// A heavy-tailed matrix over `n_dcs` DCs: pair weights are drawn
    /// from a Pareto-like distribution (`u^{-alpha}` with `alpha = 1.2`)
    /// so a few pairs dominate, then normalized.
    ///
    /// # Panics
    ///
    /// Panics if `n_dcs < 2`.
    #[must_use]
    pub fn heavy_tailed(n_dcs: usize, seed: u64) -> Self {
        assert!(n_dcs >= 2, "a traffic matrix needs at least two DCs");
        let mut state = StdRngState { seed, steps: 0 };
        let mut rng = state.rng();
        let mut weights: Vec<f64> = (0..pair_count(n_dcs))
            .map(|_| {
                let u: f64 = rng.random_range(0.001..1.0);
                u.powf(-1.2)
            })
            .collect();
        normalize(&mut weights);
        Self {
            n_dcs,
            weights,
            rng: state,
        }
    }

    /// A matrix from externally supplied pair weights (triangular
    /// `i < j` order), normalized to sum to 1 — the bridge from the
    /// planner's workload-family shapes ([`iris_planner::workload`])
    /// into the simulator. `seed` drives subsequent
    /// [`TrafficMatrix::change`] evolution exactly as in
    /// [`TrafficMatrix::heavy_tailed`].
    ///
    /// # Panics
    ///
    /// Panics if `n_dcs < 2`, if `weights.len() != pair_count(n_dcs)`,
    /// if any weight is negative or non-finite, or if all weights are
    /// zero.
    #[must_use]
    pub fn from_weights(n_dcs: usize, seed: u64, weights: &[f64]) -> Self {
        assert!(n_dcs >= 2, "a traffic matrix needs at least two DCs");
        assert_eq!(
            weights.len(),
            pair_count(n_dcs),
            "need one weight per unordered DC pair"
        );
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        let mut weights = weights.to_vec();
        normalize(&mut weights);
        Self {
            n_dcs,
            weights,
            rng: StdRngState { seed, steps: 0 },
        }
    }

    /// Number of DCs.
    #[must_use]
    pub fn n_dcs(&self) -> usize {
        self.n_dcs
    }

    /// Weight of pair `(i, j)` (fraction of total region traffic).
    #[must_use]
    pub fn weight(&self, i: usize, j: usize) -> f64 {
        self.weights[pair_index(self.n_dcs, i.min(j), i.max(j))]
    }

    /// All pair weights in triangular order.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Mutate the matrix per the change model and return the *change
    /// magnitude*: half the L1 distance between old and new weights
    /// (the fraction of total traffic that moved between pairs).
    pub fn change(&mut self, model: ChangeModel) -> f64 {
        let old = self.weights.clone();
        let mut rng = self.rng.rng();
        match model {
            ChangeModel::Bounded(max_frac) => {
                let max_frac = max_frac.clamp(0.0, 1.0);
                for w in &mut self.weights {
                    let delta: f64 = rng.random_range(-max_frac..=max_frac);
                    *w = (*w * (1.0 + delta)).max(1e-12);
                }
            }
            ChangeModel::Unbounded => {
                for w in &mut self.weights {
                    let u: f64 = rng.random_range(0.001..1.0);
                    *w = u.powf(-1.2);
                }
            }
        }
        normalize(&mut self.weights);
        0.5 * self
            .weights
            .iter()
            .zip(&old)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
    }

    /// Total weight. Starts at 1 and may drop below after
    /// [`TrafficMatrix::rescale`] (capacity clamping).
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Rescale each pair weight by `factor(pair_index, weight)` in
    /// `[0, 1]`, *without* renormalizing. Used by the simulator to clamp
    /// offered load to the provisioned capacity after a matrix change
    /// (§6.3 assumes provisioning is always sufficient).
    ///
    /// # Panics
    ///
    /// Panics if a factor is outside `[0, 1]`.
    pub fn rescale<F: Fn(usize, f64) -> f64>(&mut self, factor: F) {
        for (idx, w) in self.weights.iter_mut().enumerate() {
            let f = factor(idx, *w);
            assert!((0.0..=1.0).contains(&f), "rescale factor {f} out of range");
            *w *= f;
        }
    }

    /// Gini-style skew statistic: the fraction of traffic carried by the
    /// top 10% of pairs. Heavy-tailed matrices score well above uniform.
    #[must_use]
    pub fn top_decile_share(&self) -> f64 {
        let mut sorted = self.weights.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        let k = (sorted.len() / 10).max(1);
        sorted[..k].iter().sum()
    }
}

fn normalize(weights: &mut [f64]) {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must not all vanish");
    for w in weights {
        *w /= total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_indexing_is_bijective() {
        let n = 7;
        let mut seen = std::collections::HashSet::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let idx = pair_index(n, i, j);
                assert!(idx < pair_count(n));
                assert!(seen.insert(idx), "duplicate index for ({i},{j})");
            }
        }
        assert_eq!(seen.len(), pair_count(n));
    }

    #[test]
    fn weights_sum_to_one() {
        let m = TrafficMatrix::heavy_tailed(10, 42);
        let total: f64 = m.weights().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn matrix_is_heavy_tailed() {
        let m = TrafficMatrix::heavy_tailed(15, 42);
        // Top 10% of pairs should carry far more than 10% of traffic.
        assert!(
            m.top_decile_share() > 0.3,
            "top decile only {}",
            m.top_decile_share()
        );
    }

    #[test]
    fn weight_lookup_is_symmetric() {
        let m = TrafficMatrix::heavy_tailed(6, 7);
        assert_eq!(m.weight(2, 4), m.weight(4, 2));
    }

    #[test]
    fn bounded_change_is_bounded() {
        let mut m = TrafficMatrix::heavy_tailed(10, 1);
        for _ in 0..20 {
            let moved = m.change(ChangeModel::Bounded(0.1));
            // Each weight moves <= 10%, so at most ~10% of traffic moves.
            assert!(moved <= 0.11, "moved {moved}");
            let total: f64 = m.weights().iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn unbounded_change_can_move_a_lot() {
        let mut m = TrafficMatrix::heavy_tailed(10, 1);
        let mut max_moved = 0.0f64;
        for _ in 0..20 {
            max_moved = max_moved.max(m.change(ChangeModel::Unbounded));
        }
        assert!(max_moved > 0.3, "unbounded changes moved only {max_moved}");
    }

    #[test]
    fn evolution_is_deterministic() {
        let mut a = TrafficMatrix::heavy_tailed(8, 5);
        let mut b = TrafficMatrix::heavy_tailed(8, 5);
        for _ in 0..5 {
            a.change(ChangeModel::Bounded(0.5));
            b.change(ChangeModel::Bounded(0.5));
        }
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    #[should_panic(expected = "at least two DCs")]
    fn single_dc_panics() {
        let _ = TrafficMatrix::heavy_tailed(1, 0);
    }

    #[test]
    fn from_weights_normalizes_and_evolves_deterministically() {
        let raw = [3.0, 1.0, 0.0, 4.0, 0.5, 1.5];
        let mut a = TrafficMatrix::from_weights(4, 9, &raw);
        assert!((a.total_weight() - 1.0).abs() < 1e-9);
        assert!((a.weight(0, 1) - 0.3).abs() < 1e-9);
        let mut b = TrafficMatrix::from_weights(4, 9, &raw);
        a.change(ChangeModel::Bounded(0.3));
        b.change(ChangeModel::Bounded(0.3));
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    #[should_panic(expected = "one weight per unordered DC pair")]
    fn from_weights_rejects_wrong_length() {
        let _ = TrafficMatrix::from_weights(4, 0, &[1.0; 5]);
    }
}
