//! Region expansion (§2.3): what does adding one more DC cost?
//!
//! Centralized DCIs must pre-provision their hubs for the maximum
//! predicted region scale — "accommodating unanticipated growth in a
//! region is thus difficult" — whereas a distributed/Iris region grows
//! by adding equipment at the new site plus incremental fiber. This
//! module quantifies that: plan before, plan after, diff the bill of
//! materials.

use crate::goals::DesignGoals;
use crate::plan::{plan_iris, IrisPlan};
use iris_fibermap::{Region, SiteKind};
use iris_geo::Point;
use serde::{Deserialize, Serialize};

/// Equipment delta from adding one DC to a planned Iris region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExpansionDelta {
    /// Additional fiber-pair-spans leased.
    pub fiber_pair_spans: i64,
    /// Additional DC transceivers (all at the new DC under Iris).
    pub transceivers: i64,
    /// Additional OSS ports network-wide.
    pub oss_ports: i64,
    /// Additional in-line amplifiers.
    pub amplifiers: i64,
    /// Whether the expanded plan still meets every constraint.
    pub feasible: bool,
}

/// Grow `region` by one DC at `position` (attached to its `attach_huts`
/// nearest huts) and return the expanded region plus the incremental
/// equipment relative to `before`.
///
/// # Panics
///
/// Panics if the region has no huts to attach to.
#[must_use]
pub fn expand_with_dc(
    region: &Region,
    goals: &DesignGoals,
    before: &IrisPlan,
    position: Point,
    capacity_fibers: u32,
    attach_huts: usize,
) -> (Region, IrisPlan, ExpansionDelta) {
    let mut expanded = region.clone();
    let mut huts = expanded.map.huts();
    assert!(!huts.is_empty(), "cannot attach a DC to a hut-less map");
    huts.sort_by(|&x, &y| {
        expanded
            .map
            .site(x)
            .position
            .distance_sq(&position)
            .partial_cmp(&expanded.map.site(y).position.distance_sq(&position))
            .expect("finite")
    });
    huts.truncate(attach_huts.max(1));
    let dc = expanded.map.add_site(SiteKind::DataCenter, position);
    for h in huts {
        expanded.map.add_duct_detour(dc, h, 1.3);
    }
    expanded.dcs.push(dc);
    expanded.capacity_fibers.push(capacity_fibers);

    iris_telemetry::global()
        .counter("iris_planner_expansion_iterations_total")
        .inc();
    let after = plan_iris(&expanded, goals);
    let delta = ExpansionDelta {
        fiber_pair_spans: after.total_fiber_pair_spans() as i64
            - before.total_fiber_pair_spans() as i64,
        transceivers: after.dc_transceivers as i64 - before.dc_transceivers as i64,
        oss_ports: after.oss_ports() as i64 - before.oss_ports() as i64,
        amplifiers: after.total_amps() as i64 - before.total_amps() as i64,
        feasible: after.is_feasible(),
    };
    (expanded, after, delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iris_fibermap::synth::{generate_metro, place_dcs};
    use iris_fibermap::{MetroParams, PlacementParams};

    fn base() -> (Region, DesignGoals, IrisPlan) {
        let region = place_dcs(
            generate_metro(&MetroParams::default()),
            &PlacementParams {
                n_dcs: 4,
                ..PlacementParams::default()
            },
        );
        let goals = DesignGoals::with_cuts(0);
        let plan = plan_iris(&region, &goals);
        (region, goals, plan)
    }

    #[test]
    fn expansion_adds_only_incremental_equipment() {
        let (region, goals, before) = base();
        // Place the new DC near the region centroid.
        let huts = region.map.huts();
        let cx = huts
            .iter()
            .map(|&h| region.map.site(h).position.x)
            .sum::<f64>()
            / huts.len() as f64;
        let cy = huts
            .iter()
            .map(|&h| region.map.site(h).position.y)
            .sum::<f64>()
            / huts.len() as f64;
        let (expanded, after, delta) =
            expand_with_dc(&region, &goals, &before, Point::new(cx, cy), 16, 3);
        assert_eq!(expanded.dcs.len(), 5);
        assert!(delta.feasible, "expanded plan infeasible");
        // The new DC's transceivers: 16 fibers x 40 wavelengths.
        assert_eq!(delta.transceivers, 16 * 40);
        // Fiber and ports grow, but nothing is removed.
        assert!(delta.fiber_pair_spans > 0);
        assert!(delta.oss_ports > 0);
        assert!(after.dc_transceivers > before.dc_transceivers);
    }

    #[test]
    fn expansion_cost_is_sublinear_in_region_size() {
        // Adding the 5th DC to a 4-DC region must cost less fiber than
        // rebuilding from scratch.
        let (region, goals, before) = base();
        let (_, after, delta) =
            expand_with_dc(&region, &goals, &before, Point::new(0.0, 0.0), 16, 3);
        assert!(
            (delta.fiber_pair_spans as u64) < after.total_fiber_pair_spans(),
            "delta {} should be a fraction of total {}",
            delta.fiber_pair_spans,
            after.total_fiber_pair_spans()
        );
    }

    #[test]
    fn existing_dc_capacity_is_untouched() {
        let (region, goals, before) = base();
        let (expanded, after, _) =
            expand_with_dc(&region, &goals, &before, Point::new(5.0, 5.0), 8, 2);
        for i in 0..region.dcs.len() {
            assert_eq!(expanded.capacity_fibers[i], region.capacity_fibers[i]);
        }
        // Existing ducts only gain capacity, never lose it.
        for e in 0..region.map.duct_count() {
            assert!(
                after.base_fiber_pairs[e] + after.residual_fiber_pairs[e]
                    >= before.base_fiber_pairs[e],
                "duct {e} shrank"
            );
        }
    }
}
