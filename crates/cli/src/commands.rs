//! The CLI subcommands.
//!
//! Every subcommand returns [`IrisResult`]: `String` errors from option
//! parsing convert into [`IrisError::InvalidInput`] (exit code 2), and
//! typed errors from the crates below keep their own class — `main`
//! exits with [`IrisError::exit_code`], so scripts can tell a corrupt
//! WAL (5) from an unreachable server (8) without parsing stderr.

use crate::args::Options;
use iris_core::prelude::*;
use iris_core::DesignStudy;
use iris_errors::{IrisError, IrisResult};
use iris_fibermap::io::{load_region, save_region};
use iris_fibermap::siting::{centralized_service_area, distributed_service_area, region_grid};
use iris_planner::centralized::{plan_centralized, HubHoming};
use iris_planner::workload::{FamilySpec, MatrixFamily};
use iris_planner::{provision, provision_robust, shed_fraction};
use iris_simnet::traffic::ChangeModel;
use iris_simnet::workloads::FlowSizeDist;
use std::path::Path;

fn load(opts: &Options) -> IrisResult<Region> {
    load_region(Path::new(opts.required("region")?)).map_err(IrisError::from)
}

/// Apply `--threads T` as the planner's default sweep worker count.
/// `IRIS_THREADS` still wins ([`iris_planner::thread_count`]'s
/// resolution order); the planned output is bit-identical either way.
fn apply_threads(opts: &Options) -> IrisResult<()> {
    let threads: usize = opts.num("threads", 0)?;
    iris_planner::set_default_threads(threads);
    Ok(())
}

/// `iris gen` — generate a synthetic region.
pub fn generate(opts: &Options) -> IrisResult<()> {
    let seed: u64 = opts.num("seed", 1)?;
    let n_dcs: usize = opts.num("dcs", 8)?;
    let fibers: u32 = opts.num("fibers", 16)?;
    let lambda: u32 = opts.num("lambda", 40)?;
    let huts: usize = opts.num("huts", 16)?;
    let out = opts.required("out")?;

    let map = synth::generate_metro(&MetroParams {
        seed,
        n_huts: huts,
        ..MetroParams::default()
    });
    let region = synth::place_dcs(
        map,
        &PlacementParams {
            seed: seed.wrapping_add(1),
            n_dcs,
            capacity_fibers: fibers,
            wavelengths_per_fiber: lambda,
            ..PlacementParams::default()
        },
    );
    save_region(&region, Path::new(out))?;
    println!(
        "wrote {out}: {} DCs x {:.0} Tbps, {} huts, {} ducts",
        region.dcs.len(),
        region.capacity_gbps(0) / 1000.0,
        region.map.huts().len(),
        region.map.duct_count()
    );
    Ok(())
}

/// `iris plan` — plan Iris and print the bill of materials.
pub fn plan(opts: &Options) -> IrisResult<()> {
    let region = load(opts)?;
    let cuts: usize = opts.num("cuts", 2)?;
    apply_threads(opts)?;
    let goals = DesignGoals::with_cuts(cuts);
    if opts.flag("robust") {
        return plan_robust(&region, &goals, opts);
    }
    if opts.get("matrices").is_some() {
        return Err(IrisError::InvalidInput {
            detail: "--matrices only applies to robust planning; add --robust".to_owned(),
        });
    }
    let plan = plan_iris(&region, &goals);
    let cost = iris_cost(&plan, &PriceBook::paper_2020());

    println!(
        "Iris plan ({} DCs, {} cut tolerance)",
        region.dcs.len(),
        cuts
    );
    println!(
        "  scenarios examined:   {}",
        plan.provisioning.scenarios_examined
    );
    println!(
        "  ducts used:           {}/{}",
        plan.provisioning.used_edges().len(),
        region.map.duct_count()
    );
    println!(
        "  huts lit:             {}",
        plan.provisioning.used_huts(&region).len()
    );
    println!("  DC transceivers:      {}", plan.dc_transceivers);
    println!("  fiber pair-spans:     {}", plan.total_fiber_pair_spans());
    println!("  OSS ports:            {}", plan.oss_ports());
    println!("  in-line amplifiers:   {}", plan.total_amps());
    println!("  cut-through links:    {}", plan.cuts.cuts.len());
    println!("  annual cost:          ${:.0}", cost.total());
    if plan.is_feasible() {
        println!("  status: FEASIBLE — all OC/TC constraints met");
    } else {
        println!(
            "  status: {} SLA-infeasible (pair, scenario) combos, {} unresolved paths, {} optical violations",
            plan.provisioning.infeasible.len(),
            plan.cuts.unresolved.len(),
            plan.violations.len()
        );
    }
    Ok(())
}

/// `iris plan --robust` — provision min-cost capacity feasible for every
/// matrix in a seeded workload family and print the hose-vs-robust cost
/// and shed-under-surprise comparison. The output is a pure function of
/// the region, goals and family spec (CI byte-diffs it across thread
/// counts).
fn plan_robust(region: &Region, goals: &DesignGoals, opts: &Options) -> IrisResult<()> {
    let raw = opts.get("matrices").unwrap_or("burst:8@42");
    let spec: FamilySpec = raw
        .parse()
        .map_err(|detail| IrisError::InvalidInput { detail })?;
    let family = MatrixFamily::build(region, goals, &spec);
    let surprise = MatrixFamily::build(region, goals, &spec.held_out());
    let robust = provision_robust(region, goals, &family);
    let hose = provision(region, goals);
    let lambda = region.wavelengths_per_fiber;

    let shed = |prov: &iris_planner::Provisioning, fam: &MatrixFamily| {
        let sheds: Vec<f64> = fam
            .matrices()
            .iter()
            .map(|m| shed_fraction(region, goals, prov, m))
            .collect();
        let mean = sheds.iter().sum::<f64>() / sheds.len() as f64;
        let max = sheds.iter().fold(0.0f64, |a, &b| a.max(b));
        (mean, max)
    };
    let (robust_mean, robust_max) = shed(&robust, &surprise);
    let (hose_mean, hose_max) = shed(&hose, &surprise);

    println!(
        "Robust plan ({} DCs, {} cut tolerance, family {})",
        region.dcs.len(),
        goals.max_cuts,
        spec
    );
    println!(
        "  matrices:             {} training + {} held-out surprise",
        family.len(),
        surprise.len()
    );
    println!(
        "  peak DC load:         {:.3}x the hose envelope (surprise family)",
        surprise.peak_dc_load_ratio(region)
    );
    println!("  scenarios examined:   {}", robust.scenarios_examined);
    println!(
        "  ducts used:           {}/{} (hose plan: {})",
        robust.used_edges().len(),
        region.map.duct_count(),
        hose.used_edges().len()
    );
    println!(
        "  fiber pairs:          {} (hose plan: {})",
        robust.total_fiber_pairs(lambda),
        hose.total_fiber_pairs(lambda)
    );
    println!(
        "  surprise shed:        robust mean {robust_mean:.4} max {robust_max:.4} | \
         hose mean {hose_mean:.4} max {hose_max:.4}"
    );
    if robust.infeasible.is_empty() {
        println!("  status: FEASIBLE for every training matrix in every scenario");
    } else {
        println!(
            "  status: {} SLA-infeasible (pair, scenario) combos",
            robust.infeasible.len()
        );
    }
    Ok(())
}

/// `iris compare` — Iris vs EPS vs centralized.
pub fn compare(opts: &Options) -> IrisResult<()> {
    let region = load(opts)?;
    let cuts: usize = opts.num("cuts", 1)?;
    apply_threads(opts)?;
    let goals = DesignGoals::with_cuts(cuts);
    let study = DesignStudy::run(&region, &goals);
    let hubs = pick_hub_pair(&region.map, 4.0, 24.0);
    let central = plan_centralized(&region, &goals, hubs, HubHoming::Split)?;
    let book = PriceBook::paper_2020();
    // Centralized electrical cost: transceivers at both ends of every
    // access fiber, plus switch ports and fiber leases.
    let central_cost = central.total_transceivers() as f64
        * (book.transceiver + book.electrical_port)
        + central.total_fiber_pair_spans() as f64 * book.fiber_pair_span;

    println!(
        "{:<24} {:>14} {:>14} {:>14}",
        "", "centralized", "EPS (distr.)", "Iris (distr.)"
    );
    println!(
        "{:<24} {:>14} {:>14} {:>14}",
        "transceivers",
        central.total_transceivers(),
        study.eps.total_transceivers(),
        study.iris.dc_transceivers
    );
    println!(
        "{:<24} {:>14} {:>14} {:>14}",
        "fiber pair-spans",
        central.total_fiber_pair_spans(),
        study.eps.total_fiber_pair_spans(),
        study.iris.total_fiber_pair_spans()
    );
    println!(
        "{:<24} {:>14.0} {:>14.0} {:>14.0}",
        "annual cost ($)",
        central_cost,
        study.eps_cost.total(),
        study.iris_cost.total()
    );
    // Latency: worst DC-DC distance.
    let goals0 = DesignGoals::with_cuts(0);
    let paths = iris_planner::topology::nominal_paths(&region, &goals0);
    let direct_worst = paths.iter().map(|p| p.length_km).fold(0.0f64, f64::max);
    println!(
        "{:<24} {:>14.1} {:>14.1} {:>14.1}",
        "worst DC-DC fiber (km)",
        central.worst_pair_km(),
        direct_worst,
        direct_worst
    );
    println!(
        "{:<24} {:>14.2} {:>14.2} {:>14.2}",
        "worst DC-DC RTT (ms)",
        iris_geo::rtt_ms(central.worst_pair_km()),
        iris_geo::rtt_ms(direct_worst),
        iris_geo::rtt_ms(direct_worst)
    );
    println!(
        "\nIris / centralized cost: {:.2}x   EPS / Iris: {:.2}x",
        study.iris_cost.total() / central_cost,
        study.eps_iris_cost_ratio()
    );
    Ok(())
}

/// `iris siting` — service-area analysis.
pub fn siting(opts: &Options) -> IrisResult<()> {
    let region = load(opts)?;
    let hubs = pick_hub_pair(&region.map, 4.0, 7.0);
    let grid = region_grid(&region.map, 2.0, 30.0);
    let central = centralized_service_area(&region.map, &[hubs.0, hubs.1], &grid, 60.0);
    let distributed = distributed_service_area(&region.map, &region.dcs, &grid, 120.0);
    println!("service area for one new DC:");
    println!("  centralized (60 km of both hubs):   {central:8.0} km^2");
    println!("  distributed (120 km of every DC):   {distributed:8.0} km^2");
    println!(
        "  flexibility gain:                   {:8.2}x",
        distributed / central.max(1.0)
    );
    Ok(())
}

/// `iris simulate` — paired FCT comparison.
pub fn simulate(opts: &Options) -> IrisResult<()> {
    let region = load(opts)?;
    apply_threads(opts)?;
    let util: f64 = opts.num("util", 0.4)?;
    let interval: f64 = opts.num("interval", 5.0)?;
    let duration: f64 = opts.num("duration", 20.0)?;
    let workload = match opts.get("workload") {
        None | Some("web1") => FlowSizeDist::pfabric_web_search(),
        Some("web2") => FlowSizeDist::facebook_web(),
        Some("hadoop") => FlowSizeDist::facebook_hadoop(),
        Some("cache") => FlowSizeDist::facebook_cache(),
        Some(other) => return Err(format!("unknown workload '{other}'").into()),
    };
    let goals = DesignGoals::with_cuts(0);
    let prov = provision(&region, &goals);
    let raw = SimTopology::from_provisioning(&region, &goals, &prov, 1.0);
    let max_cap = raw
        .links
        .iter()
        .map(|l| l.capacity_gbps)
        .fold(0.0f64, f64::max);
    let topo = SimTopology::from_provisioning(&region, &goals, &prov, 2.0 / max_cap);
    let (result, manifest) = iris_simnet::experiment::run_comparison_recorded(
        &topo,
        &ExperimentConfig {
            duration_s: duration,
            utilization: util,
            change_interval_s: interval,
            change_model: ChangeModel::Bounded(0.5),
            workload,
            outage_s: 0.07,
            seed: 42,
        },
    );
    // Drive the control plane through the same reconfiguration cadence
    // the simulation modeled, so the dark time backing `outage_s` comes
    // from the orchestrator (and a --telemetry snapshot covers planner,
    // simulator and controller in one run).
    let dark_ms = replay_reconfigurations(&region, &goals, duration, interval);

    println!("paired simulation: {duration} s, util {util}, reconfig every {interval} s");
    println!("  seed:                        {}", manifest.seed);
    println!("  controller dark time:        {dark_ms:.0} ms worst pair");
    println!(
        "  flows completed (EPS/Iris):  {}/{}",
        result.eps_flows, result.iris_flows
    );
    println!(
        "  p99 FCT slowdown, all:       {:.3}",
        result.slowdown_p99_all
    );
    println!(
        "  p99 FCT slowdown, short:     {:.3}",
        result.slowdown_p99_short
    );
    println!(
        "  mean FCT slowdown:           {:.3}",
        result.slowdown_mean_all
    );
    if let Some(out) = opts.get("out") {
        // Results plus everything needed to reproduce them.
        let payload = serde_json::json!({
            "manifest": serde_json::to_value(&manifest).map_err(|e| e.to_string())?,
            "result": serde_json::to_value(result).map_err(|e| e.to_string())?,
        });
        let text = serde_json::to_string_pretty(&payload).map_err(|e| e.to_string())?;
        std::fs::write(out, text + "\n").map_err(|e| format!("--out: cannot write {out}: {e}"))?;
        println!("  results written to {out}");
    }
    Ok(())
}

/// `iris simd` — the fig17/18 reconfiguration-impact pipeline at 10⁶+
/// flows, via per-link decomposition ([`iris_flowsim`]) instead of the
/// exact global-waterfill engine.
///
/// The topology and experiment grid mirror `iris simulate` (a planned
/// region, Iris vs EPS fabrics, bounded 50% changes), but capacities are
/// scaled so the Poisson process offers `--flows` admitted flows over
/// the duration — two to three orders of magnitude beyond what the
/// exact engine sustains. A small-scale cell is also run through *both*
/// engines and their p50/p99 agreement is reported as validation.
///
/// The artifact written by `--out` contains no wall-clock or backend
/// detail: it is byte-identical across worker fleets, worker counts and
/// `IRIS_THREADS` (CI diffs it across those axes).
pub fn simd(opts: &Options) -> IrisResult<()> {
    use iris_flowsim::coord::{estimate_with_trace, Backend, EstimateConfig, FleetConfig};
    use iris_flowsim::proto::WorkSpec;
    use iris_simnet::engine::{FabricModel, FlowRecord, SimConfig, Simulator};
    use iris_simnet::experiment::fct_quantile;
    use iris_simnet::TrafficMatrix;

    apply_threads(opts)?;
    let dcs: usize = opts.num("dcs", 8)?;
    let util: f64 = opts.num("util", 0.4)?;
    let duration: f64 = opts.num("duration", 20.0)?;
    let flows_target: f64 = opts.num("flows", 1_000_000.0)?;
    let seed: u64 = opts.num("seed", 42)?;
    let epsilon: f64 = opts.num("epsilon", 0.02)?;
    let workload = match opts.get("workload") {
        None | Some("web1") => FlowSizeDist::pfabric_web_search(),
        Some("web2") => FlowSizeDist::facebook_web(),
        Some("hadoop") => FlowSizeDist::facebook_hadoop(),
        Some("cache") => FlowSizeDist::facebook_cache(),
        Some(other) => return Err(format!("unknown workload '{other}'").into()),
    };
    let matrices = match opts.get("matrices") {
        Some(raw) => Some(
            raw.parse::<FamilySpec>()
                .map_err(|detail| IrisError::InvalidInput { detail })?,
        ),
        None => None,
    };
    let backend = match opts.get("workers") {
        None => Backend::InProcess,
        Some(list) => {
            let endpoints: Vec<String> = list
                .split(',')
                .map(|s| s.trim().to_owned())
                .filter(|s| !s.is_empty())
                .collect();
            if endpoints.is_empty() {
                return Err("--workers: expected HOST:PORT[,HOST:PORT...]"
                    .to_owned()
                    .into());
            }
            Backend::Fleet(FleetConfig::new(endpoints))
        }
    };
    let cfg = EstimateConfig {
        cluster: !opts.flag("no-cluster"),
        epsilon,
        backend,
    };
    let intervals: Vec<f64> = match opts.get("interval") {
        Some(v) => vec![v
            .parse()
            .map_err(|_| format!("--interval: bad number '{v}'"))?],
        None => vec![1.0, 5.0],
    };

    // The fig17 topology: a planned region, largest link ~2 Gbps.
    let region = iris_bench::simple_region(3, dcs);
    let goals = DesignGoals::with_cuts(0);
    let prov = provision(&region, &goals);
    let raw = SimTopology::from_provisioning(&region, &goals, &prov, 1.0);
    let max_cap = raw
        .links
        .iter()
        .map(|l| l.capacity_gbps)
        .fold(0.0f64, f64::max);
    let base_scale = 2.0 / max_cap;
    let base = SimTopology::from_provisioning(&region, &goals, &prov, base_scale);

    let spec_for = |topo: &SimTopology, fabric: FabricModel, interval: f64| WorkSpec {
        topo: topo.clone(),
        // A workload family replaces the default heavy-tailed matrix
        // with its mean per-pair rates, so the simulated traffic matches
        // what `iris plan --robust` provisioned for.
        matrix: match &matrices {
            Some(spec) => {
                let shapes = spec.shapes(topo.n_dcs);
                let mean: Vec<f64> = (0..shapes[0].len())
                    .map(|i| shapes.iter().map(|m| m[i]).sum::<f64>() / shapes.len() as f64)
                    .collect();
                TrafficMatrix::from_weights(topo.n_dcs, seed, &mean)
            }
            None => TrafficMatrix::heavy_tailed(topo.n_dcs, seed),
        },
        config: SimConfig {
            duration_s: duration,
            utilization: util,
            flow_sizes: workload.clone(),
            change_interval_s: Some(interval),
            change_model: ChangeModel::Bounded(0.5),
            fabric,
            capacity_events: Vec::new(),
            seed,
        },
    };
    let iris = FabricModel::Iris { outage_s: 0.07 };

    // Probe the base-scale admitted flow count; the Poisson rate is
    // linear in capacity, so one division gives the capacity scale that
    // offers `--flows` admitted flows.
    let probe_spec = spec_for(&base, FabricModel::Eps, 5.0);
    let probe_sim = Simulator::new(
        probe_spec.topo.clone(),
        probe_spec.matrix.clone(),
        probe_spec.config.clone(),
    );
    let probe_trace = probe_spec.trace();
    let offered = probe_trace.arrivals.len() as f64;
    let admitted = probe_trace.flow_count() as f64;
    if offered == 0.0 || admitted == 0.0 {
        return Err("probe run admitted no flows; raise --util or --duration"
            .to_owned()
            .into());
    }
    let admitted_rate = probe_sim.arrival_rate() * (admitted / offered);
    let flow_scale = flows_target / (admitted_rate * duration);
    let topo = SimTopology::from_provisioning(&region, &goals, &prov, base_scale * flow_scale);

    // Validation: the hardest small cell (Iris fabric, 1 s interval) at
    // base scale through both the exact engine and the estimator.
    let vspec = spec_for(&base, iris, 1.0);
    let vtrace = vspec.trace();
    let exact = vtrace.replay(&vspec.topo);
    let vest = estimate_with_trace(&vspec, &vtrace, &cfg)?;
    let vq = |records: &[FlowRecord], q: f64| fct_quantile(records, q, false);
    let (val_p50, val_p99) = match (
        vq(&exact, 0.5).zip(vq(&vest.records, 0.5)),
        vq(&exact, 0.99).zip(vq(&vest.records, 0.99)),
    ) {
        (Some((e50, d50)), Some((e99, d99))) => (d50 / e50, d99 / e99),
        _ => return Err("validation cell completed no flows".to_owned().into()),
    };
    println!("validation (exact vs decomposed, {} flows):", exact.len());
    println!("  p50 ratio: {val_p50:.4}   p99 ratio: {val_p99:.4}");

    // The sweep itself, at the scaled topology.
    let mut sweep_rows = Vec::new();
    let mut total_flows = 0usize;
    let mut scale_stats = None;
    for &interval in &intervals {
        let started = std::time::Instant::now();
        let mut cells = Vec::new();
        for (name, fabric) in [("eps", FabricModel::Eps), ("iris", iris)] {
            let spec = spec_for(&topo, fabric, interval);
            let trace = spec.trace();
            let report = estimate_with_trace(&spec, &trace, &cfg)?;
            total_flows = total_flows.max(report.flows);
            scale_stats.get_or_insert((report.links_occupied, report.links_simulated));
            cells.push((name, report));
        }
        let q =
            |r: &[FlowRecord], qv: f64, short: bool| fct_quantile(r, qv, short).unwrap_or(f64::NAN);
        let mean = |r: &[FlowRecord]| {
            if r.is_empty() {
                f64::NAN
            } else {
                r.iter().map(|f| f.fct_s).sum::<f64>() / r.len() as f64
            }
        };
        let eps = &cells[0].1;
        let irs = &cells[1].1;
        let row = serde_json::json!({
            "interval_s": interval,
            "eps": {
                "flows": eps.records.len(),
                "p50_s": q(&eps.records, 0.5, false),
                "p99_s": q(&eps.records, 0.99, false),
                "p99_short_s": q(&eps.records, 0.99, true),
            },
            "iris": {
                "flows": irs.records.len(),
                "p50_s": q(&irs.records, 0.5, false),
                "p99_s": q(&irs.records, 0.99, false),
                "p99_short_s": q(&irs.records, 0.99, true),
            },
            "slowdown_p99_all": q(&irs.records, 0.99, false) / q(&eps.records, 0.99, false),
            "slowdown_p99_short": q(&irs.records, 0.99, true) / q(&eps.records, 0.99, true),
            "slowdown_mean_all": mean(&irs.records) / mean(&eps.records),
        });
        println!(
            "interval {interval:4.1} s: {} flows, p99 slowdown {:.3} (short {:.3}) \
             [{:.1} s wall]",
            irs.flows,
            row["slowdown_p99_all"].as_f64().unwrap_or(f64::NAN),
            row["slowdown_p99_short"].as_f64().unwrap_or(f64::NAN),
            started.elapsed().as_secs_f64()
        );
        sweep_rows.push(row);
    }
    let (links_occupied, links_simulated) = scale_stats.unwrap_or((0, 0));
    println!(
        "scale: {total_flows} flows; {links_simulated} of {links_occupied} occupied links \
         simulated ({})",
        if cfg.cluster {
            "clustered"
        } else {
            "exact per link"
        }
    );

    if let Some(out) = opts.get("out") {
        // Deterministic artifact: no wall-clock, no backend identity.
        let mut payload = serde_json::json!({
            "config": {
                "dcs": dcs,
                "utilization": util,
                "duration_s": duration,
                "flows_target": flows_target,
                "seed": seed,
                "cluster": cfg.cluster,
                "epsilon": epsilon,
            },
            "validation": {
                "flows_exact": exact.len(),
                "flows_estimated": vest.records.len(),
                "p50_ratio": val_p50,
                "p99_ratio": val_p99,
            },
            "scale": {
                "flows": total_flows,
                "links_occupied": links_occupied,
                "links_simulated": links_simulated,
            },
            "sweep": sweep_rows,
        });
        // Only stamp the family when one was requested, so the default
        // artifact (the one CI byte-diffs) keeps its exact shape.
        if let Some(spec) = &matrices {
            payload["config"]["matrices"] = serde_json::json!(spec.to_string());
        }
        let text = serde_json::to_string_pretty(&payload).map_err(|e| e.to_string())?;
        if let Some(dir) = Path::new(out).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("--out: cannot create {}: {e}", dir.display()))?;
            }
        }
        std::fs::write(out, text + "\n").map_err(|e| format!("--out: cannot write {out}: {e}"))?;
        println!("  results written to {out}");
    }
    Ok(())
}

/// Replay the simulation's reconfiguration schedule through the real
/// orchestrator: one [`iris_control::Controller::reconfigure`] per change
/// interval, alternating circuit counts so every DC pair is affected.
/// Returns the worst per-pair dark time (ms) across the replays.
fn replay_reconfigurations(
    region: &Region,
    goals: &DesignGoals,
    duration: f64,
    interval: f64,
) -> f64 {
    use iris_control::{Controller, SpaceSwitch};

    let paths = iris_planner::topology::nominal_paths(region, goals);
    let hops: std::collections::BTreeMap<(usize, usize), u32> = paths
        .iter()
        .map(|p| ((p.a, p.b), p.edges.len() as u32))
        .collect();
    let switches = (0..region.map.graph().node_count())
        .map(|i| SpaceSwitch::new(&format!("OSS{i}"), 32))
        .collect();
    let controller = Controller::new(switches, hops.clone());

    let reconfigs = ((duration / interval.max(1e-9)) as usize).max(1);
    let mut worst_dark_ms = 0.0f64;
    for r in 0..reconfigs {
        let circuits = 1 + (r as u32 % 2);
        let target: iris_control::controller::Allocation =
            hops.keys().map(|&pair| (pair, circuits)).collect();
        let report = controller.reconfigure(&target);
        worst_dark_ms = worst_dark_ms.max(report.max_dark_ms());
    }
    worst_dark_ms
}

/// `iris testbed` — Fig. 14 replay.
pub fn testbed(_opts: &Options) -> IrisResult<()> {
    use iris_control::testbed::{run_testbed, summarize, TestbedConfig};
    let config = TestbedConfig::default();
    let samples = run_testbed(&config);
    let summary = summarize(&samples, config.sample_period_ms);
    println!(
        "testbed replay ({} s, reconfig every {} s):",
        config.duration_s, config.reconfig_interval_s
    );
    println!(
        "  max pre-FEC BER:    {:.2e} (threshold 2e-2)",
        summary.max_ber
    );
    println!("  recovery gap:       {:.0} ms", summary.max_gap_ms);
    println!(
        "  below threshold:    {:.1}%",
        summary.below_threshold * 100.0
    );
    Ok(())
}

/// `iris chaos` — seeded fault-schedule sweep through the self-healing
/// control loop; with `--crash`, a crash-recovery sweep through the
/// durability layer instead. Deterministic: same seed, byte-identical
/// output.
pub fn chaos(opts: &Options) -> IrisResult<()> {
    use iris_bench::chaos::{run_chaos, ChaosConfig};
    if opts.flag("crash") {
        return chaos_crash(opts);
    }
    if opts.flag("federation") {
        return chaos_federation(opts);
    }
    apply_threads(opts)?;
    let cfg = ChaosConfig {
        seed: opts.num("seed", 7)?,
        scenarios: opts.num("scenarios", 10)?,
        n_dcs: opts.num("dcs", 6)?,
        cuts: opts.num("cuts", 1)?,
    };
    let report = run_chaos(&cfg)?;

    println!(
        "chaos sweep: seed {}, {} scenarios, {} DCs, k={} ({} ducts)",
        cfg.seed, cfg.scenarios, cfg.n_dcs, cfg.cuts, report.ducts
    );
    println!("\nscenario  cuts  recovered  shed  retries  rollbacks  quarantined");
    for o in &report.outcomes {
        println!(
            "{:>8}  {:>4}  {:>9}  {:>4}  {:>7}  {:>9}  {:>11}",
            o.scenario,
            o.recoveries,
            o.fully_recovered,
            o.shed_pairs,
            o.retries,
            o.rollbacks,
            o.quarantined
        );
    }
    let d = &report.recovery_ms;
    println!(
        "\nrecovery time (ms):  p50 {:.2}  p90 {:.2}  p99 {:.2}  max {:.2}  ({} recoveries)",
        d.p50, d.p90, d.p99, d.max, d.samples
    );
    let d = &report.dark_ms;
    println!(
        "dark time (ms):      p50 {:.2}  p90 {:.2}  p99 {:.2}  max {:.2}",
        d.p50, d.p90, d.p99, d.max
    );
    let d = &report.fct_impact;
    println!(
        "p99-FCT impact (x):  p50 {:.3}  p90 {:.3}  p99 {:.3}  max {:.3}",
        d.p50, d.p90, d.p99, d.max
    );
    println!(
        "totals: {} retries, {} rollbacks, {} shed pairs; all <=k cuts recovered: {}",
        report.total_retries,
        report.total_rollbacks,
        report.total_shed_pairs,
        report.all_tolerated_cuts_recovered
    );

    if let Some(path) = opts.get("out") {
        let mut json = serde_json::to_string_pretty(&report)
            .map_err(|e| format!("--out: cannot serialize report: {e}"))?;
        json.push('\n');
        std::fs::write(path, json).map_err(|e| format!("--out: cannot write {path}: {e}"))?;
        eprintln!("report written to {path}");
    }
    Ok(())
}

/// `iris chaos --crash` — controller crash-faults: kill the mutator at a
/// seeded point (clean, torn-tail, or bad-CRC), recover from the WAL,
/// and diff against an uninterrupted same-seed run, byte for byte.
fn chaos_crash(opts: &Options) -> IrisResult<()> {
    use iris_bench::crash::{run_crash, CrashConfig, CrashMode};
    apply_threads(opts)?;
    let cfg = CrashConfig {
        seed: opts.num("seed", 7)?,
        scenarios: opts.num("scenarios", 9)?,
        n_dcs: opts.num("dcs", 5)?,
        cuts: opts.num("cuts", 1)?,
        batches: opts.num("batches", 8)?,
    };
    let report = run_crash(&cfg)?;

    println!(
        "crash-recovery sweep: seed {}, {} scenarios x {} batches, {} DCs, k={} ({} ducts)",
        cfg.seed, cfg.scenarios, cfg.batches, cfg.n_dcs, cfg.cuts, report.ducts
    );
    println!("\nscenario  mode        crash@  lost  salvaged  torn-bytes  epoch  recovered  final");
    for o in &report.outcomes {
        let mode = match o.mode {
            CrashMode::CleanKill => "clean-kill",
            CrashMode::TornTail => "torn-tail",
            CrashMode::BadCrcTail => "bad-crc",
        };
        println!(
            "{:>8}  {:<10}  {:>6}  {:>4}  {:>8}  {:>10}  {:>5}  {:>9}  {:>5}",
            o.scenario,
            mode,
            o.crash_after,
            o.batches_lost,
            o.salvaged_records,
            o.truncated_bytes,
            o.recovered_epoch,
            o.recovered_identical,
            o.final_identical
        );
    }
    let d = &report.replay_reconfig_ms;
    println!(
        "\nmodeled replay cost (ms):  p50 {:.2}  p90 {:.2}  p99 {:.2}  max {:.2}",
        d.p50, d.p90, d.p99, d.max
    );
    println!(
        "all recovered byte-identical: {}   all finals byte-identical: {}",
        report.all_recovered_identical, report.all_final_identical
    );
    if !(report.all_recovered_identical && report.all_final_identical) {
        return Err(IrisError::ReplayFailed {
            detail: "a crash scenario diverged from its uninterrupted reference run".to_owned(),
        });
    }

    if let Some(path) = opts.get("out") {
        let mut json = serde_json::to_string_pretty(&report)
            .map_err(|e| format!("--out: cannot serialize report: {e}"))?;
        json.push('\n');
        std::fs::write(path, json).map_err(|e| format!("--out: cannot write {path}: {e}"))?;
        eprintln!("report written to {path}");
    }
    Ok(())
}

/// `iris chaos --federation` — region-level faults against a real
/// 3-region federation: partition, lagging replica, follower restart,
/// and a full primary kill-9 with client re-routing mid-run. Reports
/// replication lag, modeled failover time and the stale-read rate;
/// everything serialized is seed-deterministic, byte-identical across
/// runs and thread counts.
fn chaos_federation(opts: &Options) -> IrisResult<()> {
    use iris_bench::federation::{run_federation, FederationConfig};
    apply_threads(opts)?;
    let default = FederationConfig::default();
    let cfg = FederationConfig {
        seed: opts.num("seed", default.seed)?,
        n_dcs: opts.num("dcs", default.n_dcs)?,
        cuts: opts.num("cuts", default.cuts)?,
        users: opts.num("users", default.users)?,
        writes_per_phase: opts.num("writes", default.writes_per_phase)?,
    };
    let (report, measured) = run_federation(&cfg)?;

    println!(
        "federation chaos: seed {}, 3 regions, {} users, {} writes/phase, {} DCs, k={} ({} ducts)",
        cfg.seed, cfg.users, cfg.writes_per_phase, cfg.n_dcs, cfg.cuts, report.ducts
    );
    print!("population:");
    for r in &report.population {
        print!("  region {}: {} users", r.region, r.home_users);
    }
    println!();
    println!(
        "\n{:<14} {:>6} {:>6} {:>5} {:>9} {:>6} {:>5} {:>10} {:>9} {:>10}",
        "phase",
        "writes",
        "epoch",
        "lag",
        "lag-ms",
        "stale",
        "fail",
        "fail-ms",
        "converged",
        "state-crc"
    );
    for p in &report.phases {
        println!(
            "{:<14} {:>6} {:>6} {:>5} {:>9.1} {:>6} {:>5} {:>10} {:>9} {:>10}",
            p.phase,
            p.writes_acked,
            p.acked_epoch,
            p.lag_epochs,
            p.modeled_lag_ms,
            p.stale_redirects,
            p.failovers,
            p.modeled_failover_ms,
            p.converged,
            p.state_crc
        );
    }
    println!(
        "\ntotals: {} failovers, {} stale-read redirects, {} lost acked writes; all converged: {}",
        report.total_failovers,
        report.total_stale_redirects,
        report.lost_acked_writes,
        report.all_converged
    );
    print!("wall clock (not serialized):");
    for (phase, ms) in &measured.phase_ms {
        print!("  {phase} {ms:.0} ms");
    }
    println!();
    if report.lost_acked_writes > 0 || !report.all_converged {
        return Err(IrisError::ReplayFailed {
            detail: format!(
                "federation diverged: {} lost acked writes, all converged: {}",
                report.lost_acked_writes, report.all_converged
            ),
        });
    }

    if let Some(path) = opts.get("out") {
        let mut json = serde_json::to_string_pretty(&report)
            .map_err(|e| format!("--out: cannot serialize report: {e}"))?;
        json.push('\n');
        std::fs::write(path, json).map_err(|e| format!("--out: cannot write {path}: {e}"))?;
        eprintln!("report written to {path}");
    }
    Ok(())
}

/// `iris wal inspect` — dump and validate a write-ahead log directory
/// without touching it (no truncation, no repair).
pub fn wal_inspect(opts: &Options) -> IrisResult<()> {
    use iris_service::wal::{SNAPSHOT_FILE, WAL_FILE};

    let dir = Path::new(opts.required("dir")?);
    if !dir.is_dir() {
        return Err(IrisError::InvalidInput {
            detail: format!("--dir {}: not a directory", dir.display()),
        });
    }
    let snap = iris_service::read_snapshot(&dir.join(SNAPSHOT_FILE))?;
    match &snap {
        Some(s) => println!(
            "snapshot: epoch {}, {} pairs allocated, {} active cuts, {} writes applied",
            s.epoch,
            s.allocation.len(),
            s.active_cuts.len(),
            s.writes_applied
        ),
        None => println!("snapshot: none"),
    }

    let (batches, salvage) = iris_service::read_log(&dir.join(WAL_FILE))?;
    println!(
        "log: {} records, {} bytes good, {} bytes torn",
        salvage.records, salvage.good_bytes, salvage.truncated_bytes
    );
    let base_epoch = snap.as_ref().map_or(0, |s| s.epoch);
    for (i, b) in batches.iter().enumerate() {
        let stale = if b.epoch <= base_epoch && base_epoch > 0 {
            "  [pre-snapshot, skipped on replay]"
        } else {
            ""
        };
        println!(
            "  record {i}: epoch {}, {} updates, {} cuts, {} writes, {} coalesced{stale}",
            b.epoch,
            b.updates.len(),
            b.cuts.len(),
            b.writes_applied,
            b.coalesced
        );
    }
    match &salvage.torn {
        Some(why) => println!("torn tail: {why}"),
        None => println!("torn tail: none"),
    }

    // Validate the epoch chain the way recovery will.
    let mut epoch = base_epoch;
    for b in &batches {
        if b.epoch <= epoch {
            continue;
        }
        if b.epoch != epoch + 1 {
            return Err(IrisError::ReplayFailed {
                detail: format!("record epoch {} does not follow epoch {epoch}", b.epoch),
            });
        }
        epoch = b.epoch;
    }
    println!("replay would recover to epoch {epoch}");
    Ok(())
}

/// `iris serve` — run the long-lived control-plane server until killed.
pub fn serve(opts: &Options) -> IrisResult<()> {
    use std::io::Write;

    let region = load(opts)?;
    apply_threads(opts)?;
    let config = iris_service::ServiceConfig {
        addr: opts.get("addr").unwrap_or("127.0.0.1:7117").to_owned(),
        cuts: opts.num("cuts", 1)?,
        queue_capacity: opts.num("queue", 64)?,
        coalesce_window_ms: opts.num("window", 2)?,
        wal_dir: opts.get("wal-dir").map(str::to_owned),
        snapshot_every: opts.num("snapshot-every", 64)?,
        trace: parse_switch(opts.get("trace"), "trace", true)?,
        slow_ms: opts.num("slow-ms", 250.0)?,
        shards: opts.num("shards", 0)?,
        region_id: opts.num("region-id", 0)?,
        peers: match opts.get("peers") {
            Some(raw) => raw
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_owned)
                .collect(),
            None => Vec::new(),
        },
        follower: opts.flag("follower"),
        ..iris_service::ServiceConfig::default()
    };
    let handle = iris_service::serve(region, &config)?;
    // The bound address goes out first and flushed: with --addr ...:0 the
    // kernel picks the port, and scripts parse this line to find it.
    println!("iris-service listening on {}", handle.local_addr());
    println!(
        "  {} event-loop shards, write queue {} slots, coalesce window {} ms \
         (Overloaded suggests retry in {} ms)",
        config.effective_shards(),
        config.queue_capacity,
        config.coalesce_window_ms,
        config.retry_after_ms()
    );
    if let Some(stats) = handle.replay_stats() {
        let dir = config.wal_dir.as_deref().unwrap_or("?");
        println!(
            "  durable: WAL in {dir}, compacting every {} batches",
            config.snapshot_every
        );
        println!(
            "  recovered to epoch {} ({} batches replayed{}{}{})",
            stats.recovered_epoch,
            stats.replayed_batches,
            match stats.from_snapshot_epoch {
                Some(e) => format!(", snapshot at epoch {e}"),
                None => String::new(),
            },
            if stats.truncated_bytes > 0 {
                format!(", {} torn bytes salvaged", stats.truncated_bytes)
            } else {
                String::new()
            },
            if stats.skipped_records > 0 {
                format!(", {} pre-snapshot records skipped", stats.skipped_records)
            } else {
                String::new()
            },
        );
    }
    if config.region_id != 0 || !config.peers.is_empty() || config.follower {
        println!(
            "  region {} ({}){}",
            config.region_id,
            if config.follower {
                "follower: writes answered NotPrimary until promoted"
            } else {
                "primary"
            },
            if config.peers.is_empty() {
                String::new()
            } else {
                format!(", replicating to {}", config.peers.join(", "))
            }
        );
    }
    println!("  serving until killed (metrics via the MetricsSnapshot request)");
    std::io::stdout()
        .flush()
        .map_err(|e| format!("cannot flush stdout: {e}"))?;
    loop {
        std::thread::park();
        if handle.is_shutting_down() {
            return Ok(());
        }
    }
}

/// `iris rpc` — one ad-hoc request against a running server, reply
/// printed as JSON.
pub fn rpc(opts: &Options) -> IrisResult<()> {
    use iris_service::Request;

    let addr = opts.get("addr").unwrap_or("127.0.0.1:7117");
    let op = opts.required("op")?;
    let pair = |name: &str| -> Result<usize, String> {
        opts.required(name)?
            .parse()
            .map_err(|_| format!("--{name}: cannot parse as a DC index"))
    };
    let request = match op {
        "get_plan" | "plan" => Request::GetPlan,
        "get_plan_at" | "plan_at" => Request::GetPlanAt {
            min_epoch: opts.num("min-epoch", 0)?,
            wait_ms: opts.num("wait", 1_000)?,
        },
        "get_topology" | "topology" => Request::GetTopology,
        "query_path" | "path" => Request::QueryPath {
            a: pair("a")?,
            b: pair("b")?,
        },
        "update_demand" | "update" => Request::UpdateDemand {
            a: pair("a")?,
            b: pair("b")?,
            circuits: opts.num("circuits", 1)?,
        },
        "report_fiber_cut" | "cut" => Request::ReportFiberCut {
            cuts: parse_cut_list(opts.required("cuts")?)?,
        },
        "health" => Request::Health,
        "promote" => Request::Promote,
        "metrics_snapshot" | "metrics" => Request::MetricsSnapshot,
        "trace_dump" | "trace" => Request::TraceDump {
            max_events: opts.num("max", 0)?,
        },
        other => {
            return Err(format!(
                "unknown op '{other}' (try get_plan, get_plan_at, get_topology, query_path, \
                 update_demand, report_fiber_cut, health, promote, metrics_snapshot, trace_dump)"
            )
            .into())
        }
    };
    let mut client = iris_service::ServiceClient::connect(addr)?;
    let response = client.call(&request)?;
    let json =
        serde_json::to_string_pretty(&response).map_err(|e| format!("cannot render reply: {e}"))?;
    println!("{json}");
    Ok(())
}

/// `iris regions` — federation overview: probe every listed server and
/// print each region's role, epoch, and replication ledger (peer acked
/// epochs, lag in epochs and modeled ms, reconnect counts).
pub fn regions(opts: &Options) -> IrisResult<()> {
    use iris_service::{Request, Response};

    let addrs: Vec<&str> = opts
        .get("addr")
        .unwrap_or("127.0.0.1:7117")
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    let mut reached = 0usize;
    let mut last_err: Option<IrisError> = None;
    for addr in &addrs {
        let health = iris_service::ServiceClient::connect(addr).and_then(|mut client| {
            client.set_deadline(Some(std::time::Duration::from_millis(2_000)))?;
            match client.call(&Request::Health)?.into_result()? {
                Response::Health(h) => Ok(h),
                other => Err(IrisError::Decode {
                    detail: format!("Health answered {other:?}"),
                }),
            }
        });
        match health {
            Ok(h) => {
                reached += 1;
                println!(
                    "region {} ({}) at {addr} — epoch {}, queue {}, {} writes applied",
                    h.region, h.role, h.epoch, h.queue_depth, h.writes_applied
                );
                for p in &h.peers {
                    println!(
                        "  peer region {} at {}: {}, acked epoch {}, lag {} epochs (~{:.1} ms), \
                         {} reconnects",
                        p.region,
                        p.addr,
                        if p.connected { "connected" } else { "down" },
                        p.acked_epoch,
                        p.lag_epochs,
                        p.lag_ms,
                        p.reconnects
                    );
                }
            }
            Err(e) => {
                println!("region ? at {addr} — unreachable: {e}");
                last_err = Some(e);
            }
        }
    }
    if reached == 0 {
        if let Some(e) = last_err {
            return Err(e);
        }
    }
    Ok(())
}

/// `iris loadgen` — seeded event-loop load against a running server.
pub fn loadgen(opts: &Options) -> IrisResult<()> {
    let codec_name = opts.get("codec").unwrap_or("json");
    let codec =
        iris_service::Codec::from_name(codec_name).ok_or_else(|| IrisError::InvalidInput {
            detail: format!("--codec: unknown codec '{codec_name}' (expected json or binary)"),
        })?;
    let rate = match opts.get("rate") {
        Some(raw) => Some(raw.parse::<f64>().map_err(|_| IrisError::InvalidInput {
            detail: format!("--rate: cannot parse '{raw}' as requests/s"),
        })?),
        None => None,
    };
    let cfg = iris_service::LoadgenConfig {
        addr: opts.get("addr").unwrap_or("127.0.0.1:7117").to_owned(),
        seed: opts.num("seed", 7)?,
        requests: opts.num("requests", 2000)?,
        connections: opts.num("connections", 4)?,
        cuts: match opts.get("cut") {
            Some(list) => parse_cut_list(list)?,
            None => Vec::new(),
        },
        codec,
        pipeline: opts.num("pipeline", 1)?,
        rate,
        matrices: match opts.get("matrices") {
            Some(raw) => Some(
                raw.parse::<FamilySpec>()
                    .map_err(|detail| IrisError::InvalidInput { detail })?,
            ),
            None => None,
        },
        ..iris_service::LoadgenConfig::default()
    };
    let out = opts.get("out").unwrap_or("results/service_load.json");
    let report = iris_service::run_loadgen(&cfg)?;
    let r = &report.results;
    let m = &report.measured;

    println!(
        "loadgen: seed {}, {} requests over {} connections against {}",
        r.seed, r.requests, r.connections, cfg.addr
    );
    match cfg.rate {
        Some(rate) => println!(
            "  open loop at {rate} req/s (seeded exponential arrivals), {} codec",
            cfg.codec.name()
        ),
        None => println!(
            "  closed loop, pipeline {} per connection, {} codec",
            cfg.pipeline.max(1),
            cfg.codec.name()
        ),
    }
    println!("\ndeterministic results (written to {out}):");
    for oc in &r.op_counts {
        println!("  {:<18} {:>7}", oc.op, oc.count);
    }
    println!(
        "  {} update pairs, {} coalescable updates ({:.1}% of updates)",
        r.update_pairs,
        r.coalescable_updates,
        r.coalescable_ratio * 100.0
    );
    if let Some(cut) = &r.cut {
        println!(
            "  cut {:?} at request {}: recovered={} shed={} recovery {:.1} ms \
             (detect {:.0} + replan {:.0} + reconfig {:.0})",
            cut.cuts,
            cut.at_request,
            cut.recovery.fully_recovered,
            cut.recovery.shed_pairs,
            cut.recovery.recovery_ms,
            cut.recovery.detection_ms,
            cut.recovery.replan_ms,
            cut.recovery.reconfig_ms
        );
    }
    println!("  unexpected errors: {}", r.errors);

    println!("\nmeasured (wall clock, not serialized):");
    println!(
        "  {:.2} s wall, {:.0} req/s across {} connections",
        m.wall_s, m.throughput_rps, r.connections
    );
    for op in &m.per_op {
        println!(
            "  {:<18} {:>7}  p50 {:>8.3} ms  p99 {:>8.3} ms",
            op.op, op.count, op.p50_ms, op.p99_ms
        );
    }
    println!(
        "  idle-baseline read p99:     {:.3} ms",
        m.baseline_read_p99_ms
    );
    if r.cut.is_some() {
        println!(
            "  reads during recovery:      {} (p99 {:.3} ms)",
            m.reads_during_recovery, m.recovery_read_p99_ms
        );
        println!("  recovery wall time:         {:.1} ms", m.recovery_wall_ms);
    }
    println!(
        "  backpressure retries: {}   unreachable reads: {}   server coalesced: {}   \
         server overloaded: {}",
        m.retries, m.unreachable_reads, m.server_coalesced, m.server_overloaded
    );

    iris_service::loadgen::write_results(r, out)?;
    println!("\nresults written to {out}");
    Ok(())
}

/// `iris trace dump` — fetch the server's flight recorder and render
/// each trace as an indented span tree plus the slow-request log.
pub fn trace_dump(opts: &Options) -> IrisResult<()> {
    use iris_service::{Request, Response, TraceEventInfo};

    let addr = opts.get("addr").unwrap_or("127.0.0.1:7117");
    let max_events: u64 = opts.num("max", 0)?;
    let keep: usize = opts.num("traces", 10)?;
    let mut client = iris_service::ServiceClient::connect(addr)?;
    let Response::Trace(dump) = client
        .call(&Request::TraceDump { max_events })?
        .into_result()?
    else {
        return Err(IrisError::Decode {
            detail: "TraceDump answered a non-Trace response".to_owned(),
        });
    };
    println!(
        "flight recorder @ {addr}: enabled={}, {} events, {} overwritten",
        dump.enabled,
        dump.events.len(),
        dump.dropped
    );

    // Traces in order of their newest event, so the tail of the output
    // is the most recent activity.
    let mut order: Vec<u64> = Vec::new();
    for e in &dump.events {
        if let Some(pos) = order.iter().position(|&t| t == e.trace_id) {
            order.remove(pos);
        }
        order.push(e.trace_id);
    }
    let skip = if keep == 0 {
        0
    } else {
        order.len().saturating_sub(keep)
    };
    if skip > 0 {
        println!(
            "(showing the {} newest of {} traces; --traces 0 shows all)",
            order.len() - skip,
            order.len()
        );
    }
    for &tid in &order[skip..] {
        let events: Vec<&TraceEventInfo> =
            dump.events.iter().filter(|e| e.trace_id == tid).collect();
        // Offsets are rendered relative to the trace's earliest
        // measured span, so each tree starts near +0.
        let base_us = events
            .iter()
            .filter(|e| !e.modeled)
            .map(|e| e.start_us)
            .min()
            .unwrap_or(0);
        println!("\ntrace {tid:#018x}");
        let mut roots: Vec<&&TraceEventInfo> = events
            .iter()
            .filter(|e| e.parent_id == 0 || !events.iter().any(|p| p.span_id == e.parent_id))
            .collect();
        roots.sort_by_key(|e| e.start_us);
        for root in roots {
            print_span_tree(&events, root, 0, base_us);
        }
    }

    if dump.slow.is_empty() {
        println!("\nslow-request log: empty");
    } else {
        println!("\nslow-request log (oldest first):");
        for s in &dump.slow {
            println!(
                "  {:<14} {:>10.3} ms  trace {:#018x}  at +{:.3} s",
                s.op,
                s.total_ms,
                s.trace_id,
                s.at_us as f64 / 1e6
            );
        }
    }
    Ok(())
}

/// Print one span and, recursively, its children (indented).
fn print_span_tree(
    events: &[&iris_service::TraceEventInfo],
    node: &iris_service::TraceEventInfo,
    depth: usize,
    base_us: u64,
) {
    let indent = "  ".repeat(depth + 1);
    let width = 26usize.saturating_sub(depth * 2).max(8);
    if node.modeled {
        // Modeled steps carry parent-relative offsets from the
        // controller's deterministic timeline.
        println!(
            "{indent}~{:<width$} +{:>9.3} ms  {:>10.3} ms (modeled)",
            node.stage,
            node.start_us as f64 / 1e3,
            node.dur_us as f64 / 1e3,
        );
    } else {
        println!(
            "{indent}{:<width$}  +{:>9.3} ms  {:>10.3} ms",
            node.stage,
            node.start_us.saturating_sub(base_us) as f64 / 1e3,
            node.dur_us as f64 / 1e3,
        );
    }
    let mut kids: Vec<&&iris_service::TraceEventInfo> = events
        .iter()
        .filter(|e| e.parent_id == node.span_id && e.span_id != node.span_id)
        .collect();
    kids.sort_by_key(|e| (e.modeled, e.start_us));
    for kid in kids {
        print_span_tree(events, kid, depth + 1, base_us);
    }
}

/// `iris top` — one-shot (or `--watch` repeating) health and latency
/// view of a running server.
pub fn top(opts: &Options) -> IrisResult<()> {
    let addr = opts.get("addr").unwrap_or("127.0.0.1:7117");
    let watch: u64 = opts.num("watch", 0)?;
    let mut client = iris_service::ServiceClient::connect(addr)?;
    loop {
        let view = render_top(&mut client, addr)?;
        if watch > 0 {
            // Clear + home so the watch view repaints in place.
            print!("\x1b[2J\x1b[H");
        }
        print!("{view}");
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        if watch == 0 {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_secs(watch.max(1)));
    }
}

/// Build the `iris top` screen from Health + MetricsSnapshot replies.
fn render_top(client: &mut iris_service::ServiceClient, addr: &str) -> IrisResult<String> {
    use iris_service::{Request, Response};
    use std::fmt::Write as _;

    let Response::Health(h) = client.call(&Request::Health)?.into_result()? else {
        return Err(IrisError::Decode {
            detail: "Health answered a non-Health response".to_owned(),
        });
    };
    let Response::Metrics { prometheus } = client.call(&Request::MetricsSnapshot)?.into_result()?
    else {
        return Err(IrisError::Decode {
            detail: "MetricsSnapshot answered a non-Metrics response".to_owned(),
        });
    };

    let mut out = String::new();
    let _ = writeln!(out, "iris top — {addr}");
    let _ = writeln!(
        out,
        "uptime {:>8.1} s   epoch {}   queue {}   overload events {}",
        h.uptime_ms as f64 / 1e3,
        h.epoch,
        h.queue_depth,
        h.overloaded
    );
    let _ = writeln!(
        out,
        "writes applied {}   coalesced {}   active cuts {:?}   quarantined {}",
        h.writes_applied, h.coalesced, h.active_cuts, h.quarantined
    );
    let _ = writeln!(
        out,
        "wal: {} records, {} bytes, last fsync {:.3} ms",
        h.wal_records, h.wal_bytes, h.last_fsync_ms
    );
    if h.region != 0 || !h.peers.is_empty() || h.role != "primary" {
        let _ = writeln!(out, "region {} — role {}", h.region, h.role);
        for p in &h.peers {
            let _ = writeln!(
                out,
                "  peer region {:<4} {:<21} {:<9}  acked {:>6}  \
                 lag {:>4} epochs (~{:>7.1} ms)  reconnects {}",
                p.region,
                p.addr,
                if p.connected { "connected" } else { "down" },
                p.acked_epoch,
                p.lag_epochs,
                p.lag_ms,
                p.reconnects
            );
        }
    }
    let batches = prom_counter(&prometheus, "iris_service_group_commit_batches");
    let saved = prom_counter(&prometheus, "iris_service_fsyncs_saved");
    if batches.is_some() || saved.is_some() {
        let _ = writeln!(
            out,
            "group commit: {} batches committed, {} fsyncs saved",
            batches.unwrap_or(0),
            saved.unwrap_or(0)
        );
    }
    let shards = shard_rows(&prometheus);
    if !shards.is_empty() {
        let _ = write!(out, "shards:");
        for (shard, requests, connections) in &shards {
            let _ = write!(out, "  [{shard}] {requests} req / {connections} conn");
        }
        let _ = writeln!(out);
    }
    let table = latency_table(&prometheus);
    if !table.is_empty() {
        let _ = writeln!(
            out,
            "\n  {:<18} {:>9}  {:>10}  {:>10}",
            "op", "count", "p50 \u{2264}", "p99 \u{2264}"
        );
        for (op, count, p50, p99) in table {
            let _ = writeln!(
                out,
                "  {:<18} {:>9}  {:>7} ms  {:>7} ms",
                op,
                count,
                fmt_upper(p50),
                fmt_upper(p99)
            );
        }
    }
    Ok(out)
}

/// An unlabeled counter's value from Prometheus text (`name value`).
fn prom_counter(prom: &str, name: &str) -> Option<u64> {
    prom.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        rest.strip_prefix(' ')?.trim().parse::<u64>().ok()
    })
}

/// Per-shard `(shard, requests, connections)` rows parsed from the
/// `iris_service_shard_*_total{shard="N"}` counters, shard ascending.
fn shard_rows(prom: &str) -> Vec<(String, u64, u64)> {
    use std::collections::BTreeMap;

    let mut rows: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    for line in prom.lines() {
        let (field, rest) =
            if let Some(rest) = line.strip_prefix("iris_service_shard_requests_total{shard=\"") {
                (0, rest)
            } else if let Some(rest) =
                line.strip_prefix("iris_service_shard_connections_total{shard=\"")
            {
                (1, rest)
            } else {
                continue;
            };
        let Some((shard, value)) = rest.split_once("\"} ") else {
            continue;
        };
        let (Ok(shard), Ok(value)) = (shard.parse::<u64>(), value.trim().parse::<u64>()) else {
            continue;
        };
        let row = rows.entry(shard).or_insert((0, 0));
        if field == 0 {
            row.0 = value;
        } else {
            row.1 = value;
        }
    }
    rows.into_iter()
        .map(|(shard, (req, conn))| (shard.to_string(), req, conn))
        .collect()
}

/// Render a histogram upper bound: finite as a number, overflow as
/// `>max` (the sample fell past the last finite bucket).
fn fmt_upper(upper: f64) -> String {
    if upper.is_finite() {
        format!("{upper:.3}")
    } else {
        ">max".to_owned()
    }
}

/// Per-op `(op, count, p50_upper, p99_upper)` rows parsed from the
/// server's Prometheus text (`iris_service_latency_ms_bucket` series).
/// Quantiles are bucket upper bounds — conservative, not interpolated.
fn latency_table(prom: &str) -> Vec<(String, u64, f64, f64)> {
    use std::collections::BTreeMap;

    let mut per_op: BTreeMap<String, Vec<(f64, u64)>> = BTreeMap::new();
    for line in prom.lines() {
        let Some(rest) = line.strip_prefix("iris_service_latency_ms_bucket{") else {
            continue;
        };
        let Some((labels, value)) = rest.split_once("} ") else {
            continue;
        };
        let mut le = None;
        let mut op = None;
        for part in labels.split(',') {
            let Some((k, v)) = part.split_once('=') else {
                continue;
            };
            let v = v.trim_matches('"');
            match k {
                "le" => le = Some(v.to_owned()),
                "op" => op = Some(v.to_owned()),
                _ => {}
            }
        }
        let (Some(le), Some(op)) = (le, op) else {
            continue;
        };
        let Ok(cum) = value.trim().parse::<u64>() else {
            continue;
        };
        let upper = if le == "+Inf" {
            f64::INFINITY
        } else {
            le.parse().unwrap_or(f64::INFINITY)
        };
        per_op.entry(op).or_default().push((upper, cum));
    }
    per_op
        .into_iter()
        .map(|(op, mut buckets)| {
            buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            let count = buckets.last().map_or(0, |b| b.1);
            let p50 = bucket_quantile(&buckets, count, 0.50);
            let p99 = bucket_quantile(&buckets, count, 0.99);
            (op, count, p50, p99)
        })
        .collect()
}

/// The upper bound of the first cumulative bucket covering quantile `q`.
fn bucket_quantile(buckets: &[(f64, u64)], count: u64, q: f64) -> f64 {
    if count == 0 {
        return 0.0;
    }
    let rank = ((count as f64) * q).ceil().max(1.0) as u64;
    for &(upper, cum) in buckets {
        if cum >= rank {
            return upper;
        }
    }
    f64::INFINITY
}

/// Parse an `on|off` option value, defaulting when absent.
fn parse_switch(value: Option<&str>, name: &str, default: bool) -> Result<bool, String> {
    match value {
        None => Ok(default),
        Some("on" | "true" | "1") => Ok(true),
        Some("off" | "false" | "0") => Ok(false),
        Some(other) => Err(format!("--{name}: expected on or off, got '{other}'")),
    }
}

/// Parse a comma-separated duct-id list (`"4"`, `"4,17"`).
fn parse_cut_list(list: &str) -> Result<Vec<usize>, String> {
    list.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse()
                .map_err(|_| format!("cannot parse duct id '{s}' in cut list"))
        })
        .collect()
}
