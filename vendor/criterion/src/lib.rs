//! Offline stand-in for `criterion`, covering the subset this
//! workspace's benches use. Benchmarks really run and are really timed
//! (a short warm-up, then `sample_size` samples of an adaptively chosen
//! batch), but reporting is plain text on stdout — no statistics
//! machinery, no HTML reports, no comparison against saved baselines.

#![forbid(unsafe_code)]

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Benchmark driver: names benches and carries configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let mut b = Bencher {
            sample_size: self.sample_size,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        b.report(&id.into());
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.bench_function(full, f);
    }

    /// Run one parameterised benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let full = format!("{}/{}", self.name, id.0);
        self.criterion.bench_function(full, |b| f(b, input));
    }

    /// End the group (report output is already flushed per bench).
    pub fn finish(self) {}
}

/// A function-plus-parameter benchmark name.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Compose a `function/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", function.into()))
    }
}

/// Times a routine handed to [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine`: warm up briefly, pick a batch size targeting a
    /// few milliseconds per sample, then time `sample_size` batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and calibration: run until ~10ms or 50 iterations.
        let calib_start = Instant::now();
        let mut calib_iters: u64 = 0;
        while calib_iters < 50 && calib_start.elapsed() < Duration::from_millis(10) {
            black_box(routine());
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters as f64;
        // Aim for ~2ms per sample, capped to keep total runtime bounded.
        let batch = ((0.002 / per_iter.max(1e-9)) as u64).clamp(1, 100_000);

        let start = Instant::now();
        for _ in 0..self.sample_size {
            for _ in 0..batch {
                black_box(routine());
            }
        }
        self.elapsed = start.elapsed();
        self.iters = self.sample_size as u64 * batch;
    }

    fn report(&self, id: &str) {
        if self.iters == 0 {
            println!("bench {id}: no measurement");
            return;
        }
        let per_iter = self.elapsed.as_secs_f64() / self.iters as f64;
        println!(
            "bench {id}: {} / iter ({} iters)",
            format_seconds(per_iter),
            self.iters
        );
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Bundle benchmark functions with a shared configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
