//! The fiber map: an annotated duct graph over DCs and fiber huts.

use iris_geo::Point;
use iris_netgraph::{dijkstra, Graph, NodeId};
use serde::{Deserialize, Serialize};

/// Identifier of a site (node) on the fiber map.
pub type SiteId = NodeId;

/// What occupies a site on the fiber map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SiteKind {
    /// A data center: terminates transceivers, sources/sinks traffic.
    DataCenter,
    /// A fiber hut: houses switching/amplification equipment only.
    Hut,
}

/// Static description of one site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Site {
    /// Site kind.
    pub kind: SiteKind,
    /// Planar position, km.
    pub position: Point,
    /// Human-readable name (e.g. `DC3`, `HUT7`).
    pub name: String,
}

/// A regional fiber map: sites joined by fiber ducts.
///
/// Ducts are undirected and carry an effectively unlimited number of
/// leasable fibers (§2: "each fiber duct contains hundreds of individual
/// fibers, with typically only a fraction of those lit") — capacity is a
/// *cost*, not a constraint.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FiberMap {
    graph: Graph,
    sites: Vec<Site>,
}

impl FiberMap {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a site of `kind` at `position`; the name is auto-generated.
    pub fn add_site(&mut self, kind: SiteKind, position: Point) -> SiteId {
        let id = self.graph.add_node();
        let name = match kind {
            SiteKind::DataCenter => format!("DC{id}"),
            SiteKind::Hut => format!("HUT{id}"),
        };
        self.sites.push(Site {
            kind,
            position,
            name,
        });
        id
    }

    /// Add a duct between two sites with an explicit fiber length.
    ///
    /// # Panics
    ///
    /// Panics if the length is shorter than the straight-line distance
    /// (fiber cannot beat geometry) by more than 1 m.
    pub fn add_duct(&mut self, a: SiteId, b: SiteId, length_km: f64) -> usize {
        let straight = self.sites[a].position.distance(&self.sites[b].position);
        assert!(
            length_km + 1e-3 >= straight,
            "duct length {length_km} km shorter than straight-line {straight} km"
        );
        self.graph.add_edge(a, b, length_km)
    }

    /// Add a duct whose length is the straight-line distance times a
    /// street-routing detour factor (≥ 1).
    pub fn add_duct_detour(&mut self, a: SiteId, b: SiteId, detour: f64) -> usize {
        assert!(detour >= 1.0, "detour factor must be >= 1");
        let straight = self.sites[a].position.distance(&self.sites[b].position);
        self.graph.add_edge(a, b, straight * detour)
    }

    /// The underlying duct graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Site metadata by id.
    #[must_use]
    pub fn site(&self, id: SiteId) -> &Site {
        &self.sites[id]
    }

    /// Number of sites.
    #[must_use]
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Number of ducts.
    #[must_use]
    pub fn duct_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Ids of all data-center sites, ascending.
    #[must_use]
    pub fn dcs(&self) -> Vec<SiteId> {
        (0..self.sites.len())
            .filter(|&i| self.sites[i].kind == SiteKind::DataCenter)
            .collect()
    }

    /// Ids of all hut sites, ascending.
    #[must_use]
    pub fn huts(&self) -> Vec<SiteId> {
        (0..self.sites.len())
            .filter(|&i| self.sites[i].kind == SiteKind::Hut)
            .collect()
    }

    /// Shortest fiber distance (km) between two sites over the duct graph,
    /// or `None` if disconnected.
    #[must_use]
    pub fn fiber_distance(&self, a: SiteId, b: SiteId) -> Option<f64> {
        let disabled = vec![false; self.graph.edge_count()];
        let r = dijkstra(&self.graph, a, &disabled);
        r.dist[b].is_finite().then_some(r.dist[b])
    }

    /// Fiber distances (km) from `a` to every site (`f64::INFINITY` where
    /// disconnected). One Dijkstra, useful for sweeps.
    #[must_use]
    pub fn fiber_distances_from(&self, a: SiteId) -> Vec<f64> {
        let disabled = vec![false; self.graph.edge_count()];
        dijkstra(&self.graph, a, &disabled).dist
    }

    /// The site nearest to `p` by straight-line distance, if any.
    #[must_use]
    pub fn nearest_site(&self, p: &Point) -> Option<SiteId> {
        (0..self.sites.len()).min_by(|&a, &b| {
            self.sites[a]
                .position
                .distance_sq(p)
                .partial_cmp(&self.sites[b].position.distance_sq(p))
                .expect("positions are finite")
        })
    }

    /// The `k` sites nearest to `p`, closest first.
    #[must_use]
    pub fn nearest_sites(&self, p: &Point, k: usize) -> Vec<SiteId> {
        let mut ids: Vec<SiteId> = (0..self.sites.len()).collect();
        ids.sort_by(|&a, &b| {
            self.sites[a]
                .position
                .distance_sq(p)
                .partial_cmp(&self.sites[b].position.distance_sq(p))
                .expect("positions are finite")
        });
        ids.truncate(k);
        ids
    }

    /// Estimated fiber distance from an arbitrary point `p` (a *candidate*
    /// DC site not yet on the map) to site `b`.
    ///
    /// The candidate is assumed to trench a short lateral to each of its
    /// `attach_k` nearest existing sites at `detour` times the straight
    /// distance — the same procedure deployment teams use when assessing
    /// lots. Returns `None` if the map is empty or `b` unreachable.
    #[must_use]
    pub fn fiber_distance_from_point(
        &self,
        p: &Point,
        b: SiteId,
        attach_k: usize,
        detour: f64,
    ) -> Option<f64> {
        let attach = self.nearest_sites(p, attach_k.max(1));
        if attach.is_empty() {
            return None;
        }
        let mut best = f64::INFINITY;
        for a in attach {
            let lateral = p.distance(&self.sites[a].position) * detour;
            if let Some(d) = self.fiber_distance(a, b) {
                best = best.min(lateral + d);
            }
        }
        best.is_finite().then_some(best)
    }
}

/// A fully specified planning instance: the fiber map plus which sites are
/// the region's DCs and each DC's hose capacity in *fibers*.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Region {
    /// The fiber map (contains both DCs and huts).
    pub map: FiberMap,
    /// The DC sites, in capacity order.
    pub dcs: Vec<SiteId>,
    /// `capacity_fibers[i]` — hose capacity of `dcs[i]`, in fiber counts.
    pub capacity_fibers: Vec<u32>,
    /// Wavelengths multiplexed per fiber (λ, 40–64 per §6.1).
    pub wavelengths_per_fiber: u32,
    /// Bandwidth per wavelength, Gbps (400 for 400ZR).
    pub gbps_per_wavelength: f64,
}

impl Region {
    /// Capacity of DC index `i` in wavelengths.
    #[must_use]
    pub fn capacity_wavelengths(&self, i: usize) -> u64 {
        u64::from(self.capacity_fibers[i]) * u64::from(self.wavelengths_per_fiber)
    }

    /// Capacity of DC index `i` in Gbps.
    #[must_use]
    pub fn capacity_gbps(&self, i: usize) -> f64 {
        self.capacity_wavelengths(i) as f64 * self.gbps_per_wavelength
    }

    /// Index of a site in `dcs`, if it is a DC.
    #[must_use]
    pub fn dc_index(&self, site: SiteId) -> Option<usize> {
        self.dcs.iter().position(|&d| d == site)
    }

    /// Basic sanity invariants; used by tests and the planner entry point.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message if the instance is malformed.
    pub fn validate(&self) {
        assert_eq!(
            self.dcs.len(),
            self.capacity_fibers.len(),
            "one capacity per DC"
        );
        assert!(!self.dcs.is_empty(), "region must contain at least one DC");
        assert!(self.wavelengths_per_fiber > 0, "lambda must be positive");
        for &d in &self.dcs {
            assert_eq!(
                self.map.site(d).kind,
                SiteKind::DataCenter,
                "site {d} listed as DC but is a hut"
            );
        }
        for (i, &c) in self.capacity_fibers.iter().enumerate() {
            assert!(c > 0, "DC {i} has zero capacity");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two DCs and a hut in a line: DC0 --10km-- HUT --15km-- DC1,
    /// plus a 40 km direct duct.
    fn line_map() -> (FiberMap, SiteId, SiteId, SiteId) {
        let mut m = FiberMap::new();
        let d0 = m.add_site(SiteKind::DataCenter, Point::new(0.0, 0.0));
        let h = m.add_site(SiteKind::Hut, Point::new(8.0, 0.0));
        let d1 = m.add_site(SiteKind::DataCenter, Point::new(20.0, 0.0));
        m.add_duct(d0, h, 10.0);
        m.add_duct(h, d1, 15.0);
        m.add_duct(d0, d1, 40.0);
        (m, d0, h, d1)
    }

    #[test]
    fn site_classification() {
        let (m, d0, h, d1) = line_map();
        assert_eq!(m.dcs(), vec![d0, d1]);
        assert_eq!(m.huts(), vec![h]);
        assert_eq!(m.site(d0).name, "DC0");
        assert_eq!(m.site(h).name, "HUT1");
    }

    #[test]
    fn fiber_distance_takes_shortest_route() {
        let (m, d0, _, d1) = line_map();
        let d = m.fiber_distance(d0, d1).unwrap();
        assert!((d - 25.0).abs() < 1e-4, "got {d}");
    }

    #[test]
    fn fiber_distances_from_matches_pairwise() {
        let (m, d0, h, d1) = line_map();
        let all = m.fiber_distances_from(d0);
        assert!((all[h] - m.fiber_distance(d0, h).unwrap()).abs() < 1e-9);
        assert!((all[d1] - m.fiber_distance(d0, d1).unwrap()).abs() < 1e-9);
    }

    #[test]
    fn disconnected_distance_is_none() {
        let mut m = FiberMap::new();
        let a = m.add_site(SiteKind::DataCenter, Point::new(0.0, 0.0));
        let b = m.add_site(SiteKind::DataCenter, Point::new(5.0, 0.0));
        assert!(m.fiber_distance(a, b).is_none());
    }

    #[test]
    #[should_panic(expected = "shorter than straight-line")]
    fn duct_cannot_beat_geometry() {
        let mut m = FiberMap::new();
        let a = m.add_site(SiteKind::Hut, Point::new(0.0, 0.0));
        let b = m.add_site(SiteKind::Hut, Point::new(10.0, 0.0));
        m.add_duct(a, b, 5.0);
    }

    #[test]
    fn detour_duct_length() {
        let mut m = FiberMap::new();
        let a = m.add_site(SiteKind::Hut, Point::new(0.0, 0.0));
        let b = m.add_site(SiteKind::Hut, Point::new(10.0, 0.0));
        let e = m.add_duct_detour(a, b, 1.3);
        assert!((m.graph().edge(e).length_km - 13.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_site_queries() {
        let (m, d0, h, d1) = line_map();
        assert_eq!(m.nearest_site(&Point::new(1.0, 1.0)), Some(d0));
        assert_eq!(m.nearest_site(&Point::new(9.0, 0.0)), Some(h));
        assert_eq!(m.nearest_sites(&Point::new(19.0, 0.0), 2), vec![d1, h]);
    }

    #[test]
    fn candidate_point_distance() {
        let (m, _, _, d1) = line_map();
        // Candidate 1 km north of DC0; attaches via nearest sites.
        let p = Point::new(0.0, 1.0);
        let d = m.fiber_distance_from_point(&p, d1, 2, 1.4).unwrap();
        // Via DC0: 1.4 km lateral + 25 km = 26.4 km.
        assert!((d - 26.4).abs() < 0.2, "got {d}");
    }

    #[test]
    fn region_capacity_conversions() {
        let (map, d0, _, d1) = line_map();
        let r = Region {
            map,
            dcs: vec![d0, d1],
            capacity_fibers: vec![10, 8],
            wavelengths_per_fiber: 40,
            gbps_per_wavelength: 400.0,
        };
        r.validate();
        assert_eq!(r.capacity_wavelengths(0), 400);
        assert_eq!(r.capacity_gbps(0), 160_000.0); // 160 Tbps, §3.4's example
        assert_eq!(r.dc_index(d1), Some(1));
        assert!(r.dc_index(999).is_none());
    }

    #[test]
    #[should_panic(expected = "one capacity per DC")]
    fn region_validation_catches_mismatch() {
        let (map, d0, _, d1) = line_map();
        let r = Region {
            map,
            dcs: vec![d0, d1],
            capacity_fibers: vec![10],
            wavelengths_per_fiber: 40,
            gbps_per_wavelength: 400.0,
        };
        r.validate();
    }

    #[test]
    #[should_panic(expected = "listed as DC but is a hut")]
    fn region_validation_catches_hut_as_dc() {
        let (map, d0, h, _) = line_map();
        let r = Region {
            map,
            dcs: vec![d0, h],
            capacity_fibers: vec![10, 10],
            wavelengths_per_fiber: 40,
            gbps_per_wavelength: 400.0,
        };
        r.validate();
    }
}
