//! Per-connection wire codecs: JSON (default) and a compact binary
//! encoding.
//!
//! Both codecs produce the *payload* of a [`crate::frame`] frame — the
//! length prefix, size cap, and optional trace header are codec
//! independent, which is why a trace id survives the binary encoding
//! unchanged. JSON stays the default so `nc`-level debugging and every
//! pre-existing client keep working; a connection opts into binary by
//! sending [`crate::api::Request::Hello`] (see there for the switch
//! protocol).
//!
//! ## Binary format
//!
//! Little-endian, tag-prefixed, no self-description, built on the
//! value-level primitives shared through [`iris_wire::bin`]:
//!
//! * enum variant → one `u8` tag (the first payload byte, so a reader
//!   can classify a response — error or not — without decoding it)
//! * `u32`/`u64` → fixed-width little-endian; `usize` travels as `u64`
//! * `f64` → IEEE-754 bits, little-endian
//! * `bool` → one byte, `0`/`1` only
//! * `String` → `u32` byte length + UTF-8 bytes
//! * `Vec<T>` → `u32` element count + elements
//! * `Option<T>` → presence byte + value
//!
//! Every length/count is checked against the bytes actually remaining
//! in the payload *before* any allocation, so a hostile 4 GiB string
//! header inside a 1 MiB frame is rejected without reserving memory.
//! Decoding also demands the payload be fully consumed — trailing bytes
//! are a decode error, same as JSON garbage.

use crate::api::{
    AllocEntry, HealthInfo, PathInfo, PeerInfo, PlanSummary, RecoverySummary, Request, Response,
    SlowRequestInfo, TopologySummary, TraceDumpInfo, TraceEventInfo,
};
use iris_errors::{IrisError, IrisResult};

pub use iris_wire::Codec;

/// First payload byte of a binary-encoded error response. Public so the
/// client and loadgen can classify replies in O(1) on the hot path.
pub const BIN_RESPONSE_ERROR_TAG: u8 = 10;

fn decode_err(detail: impl Into<String>) -> IrisError {
    IrisError::Decode {
        detail: detail.into(),
    }
}

/// Serialize a request in `codec`.
///
/// # Errors
///
/// [`IrisError::Decode`] if serialization fails.
pub fn encode_request(codec: Codec, req: &Request) -> IrisResult<Vec<u8>> {
    match codec {
        Codec::Json => crate::api::encode_request(req),
        Codec::Binary => {
            let mut buf = Vec::with_capacity(16);
            bin::write_request(&mut buf, req);
            Ok(buf)
        }
    }
}

/// Parse a request payload in `codec`.
///
/// # Errors
///
/// [`IrisError::Decode`] for malformed payloads (bad tag, truncated
/// fields, over-long length headers, trailing bytes).
pub fn decode_request(codec: Codec, payload: &[u8]) -> IrisResult<Request> {
    match codec {
        Codec::Json => crate::api::decode_request(payload),
        Codec::Binary => {
            let mut rd = bin::Reader::new(payload);
            let req = bin::read_request(&mut rd)?;
            rd.finish("request")?;
            Ok(req)
        }
    }
}

/// Serialize a response in `codec`, appending to `buf` (the event
/// loop's per-connection write buffer) without an intermediate
/// allocation on the binary path.
///
/// # Errors
///
/// [`IrisError::Decode`] if serialization fails. `buf` may hold a
/// partial encoding after an error; callers truncate back to the length
/// they recorded before the call.
pub fn encode_response_into(codec: Codec, resp: &Response, buf: &mut Vec<u8>) -> IrisResult<()> {
    match codec {
        Codec::Json => {
            let bytes = crate::api::encode_response(resp)?;
            buf.extend_from_slice(&bytes);
            Ok(())
        }
        Codec::Binary => {
            bin::write_response(buf, resp);
            Ok(())
        }
    }
}

/// Serialize a response in `codec` into a fresh buffer.
///
/// # Errors
///
/// [`IrisError::Decode`] if serialization fails.
pub fn encode_response(codec: Codec, resp: &Response) -> IrisResult<Vec<u8>> {
    let mut buf = Vec::with_capacity(64);
    encode_response_into(codec, resp, &mut buf)?;
    Ok(buf)
}

/// Parse a response payload in `codec`.
///
/// # Errors
///
/// [`IrisError::Decode`] for malformed payloads.
pub fn decode_response(codec: Codec, payload: &[u8]) -> IrisResult<Response> {
    match codec {
        Codec::Json => crate::api::decode_response(payload),
        Codec::Binary => {
            let mut rd = bin::Reader::new(payload);
            let resp = bin::read_response(&mut rd)?;
            rd.finish("response")?;
            Ok(resp)
        }
    }
}

/// O(1) check whether a response payload is an `Error` reply, without
/// decoding it. Binary reads the tag byte; JSON checks the
/// externally-tagged prefix. Load generators use this to skip full
/// decoding on the (overwhelmingly common) success path.
#[must_use]
pub fn response_payload_is_error(codec: Codec, payload: &[u8]) -> bool {
    match codec {
        Codec::Json => payload.starts_with(b"{\"Error\""),
        Codec::Binary => payload.first() == Some(&BIN_RESPONSE_ERROR_TAG),
    }
}

mod bin {
    //! The binary encoder/decoder for the service API, built on the
    //! shared value-level primitives in [`iris_wire::bin`]. Encoding is
    //! infallible (every value the API can hold is representable); the
    //! bounds discipline lives in [`iris_wire::bin::Reader`].

    use super::decode_err;
    use super::{
        AllocEntry, HealthInfo, IrisError, IrisResult, PathInfo, PeerInfo, PlanSummary,
        RecoverySummary, Request, Response, SlowRequestInfo, TopologySummary, TraceDumpInfo,
        TraceEventInfo,
    };
    pub(super) use iris_wire::bin::Reader;
    use iris_wire::bin::{w_bool, w_count, w_f64, w_str, w_u32, w_u64, w_u8, w_usize, w_vec_usize};

    // ---- request tags ----
    const REQ_GET_PLAN: u8 = 0;
    const REQ_GET_TOPOLOGY: u8 = 1;
    const REQ_QUERY_PATH: u8 = 2;
    const REQ_UPDATE_DEMAND: u8 = 3;
    const REQ_REPORT_FIBER_CUT: u8 = 4;
    const REQ_HEALTH: u8 = 5;
    const REQ_METRICS_SNAPSHOT: u8 = 6;
    const REQ_TRACE_DUMP: u8 = 7;
    const REQ_HELLO: u8 = 8;
    const REQ_GET_PLAN_AT: u8 = 9;
    const REQ_REPLICATE: u8 = 10;
    const REQ_SYNC_STATE: u8 = 11;
    const REQ_PROMOTE: u8 = 12;

    // ---- response tags (Error is super::BIN_RESPONSE_ERROR_TAG) ----
    const RESP_PLAN: u8 = 0;
    const RESP_TOPOLOGY: u8 = 1;
    const RESP_PATH: u8 = 2;
    const RESP_DEMAND_ACCEPTED: u8 = 3;
    const RESP_RECOVERY: u8 = 4;
    const RESP_CUT_ALREADY_ACTIVE: u8 = 5;
    const RESP_HEALTH: u8 = 6;
    const RESP_METRICS: u8 = 7;
    const RESP_TRACE: u8 = 8;
    const RESP_HELLO_ACK: u8 = 9;
    const RESP_ERROR: u8 = super::BIN_RESPONSE_ERROR_TAG;
    const RESP_REPLICATE_ACK: u8 = 11;

    // ---- error sub-tags, in `IrisError` declaration order ----
    const ERR_PORT_OUT_OF_RANGE: u8 = 0;
    const ERR_CHANNEL_OUT_OF_RANGE: u8 = 1;
    const ERR_UNREACHABLE: u8 = 2;
    const ERR_DECODE: u8 = 3;
    const ERR_VERIFY_FAILED: u8 = 4;
    const ERR_RETRIES_EXHAUSTED: u8 = 5;
    const ERR_QUARANTINED: u8 = 6;
    const ERR_INFEASIBLE: u8 = 7;
    const ERR_OVERLOADED: u8 = 8;
    const ERR_INVALID_INPUT: u8 = 9;
    const ERR_IO: u8 = 10;
    const ERR_CORRUPT: u8 = 11;
    const ERR_REPLAY_FAILED: u8 = 12;
    const ERR_TIMEOUT: u8 = 13;
    const ERR_NOT_PRIMARY: u8 = 14;

    // Smallest possible encodings, used to reject element counts that
    // could not possibly fit the remaining payload before allocating.
    const MIN_ALLOC_ENTRY: usize = 8 + 8 + 4;
    const MIN_TRACE_EVENT: usize = 8 + 4 + 4 + 4 + 8 + 8 + 1;
    const MIN_SLOW_REQUEST: usize = 8 + 4 + 8 + 8;
    const MIN_PEER_INFO: usize = 8 + 4 + 1 + 8 + 8 + 8 + 8;

    pub(super) fn write_request(buf: &mut Vec<u8>, req: &Request) {
        match req {
            Request::GetPlan => w_u8(buf, REQ_GET_PLAN),
            Request::GetTopology => w_u8(buf, REQ_GET_TOPOLOGY),
            Request::QueryPath { a, b } => {
                w_u8(buf, REQ_QUERY_PATH);
                w_usize(buf, *a);
                w_usize(buf, *b);
            }
            Request::UpdateDemand { a, b, circuits } => {
                w_u8(buf, REQ_UPDATE_DEMAND);
                w_usize(buf, *a);
                w_usize(buf, *b);
                w_u32(buf, *circuits);
            }
            Request::ReportFiberCut { cuts } => {
                w_u8(buf, REQ_REPORT_FIBER_CUT);
                w_vec_usize(buf, cuts);
            }
            Request::Health => w_u8(buf, REQ_HEALTH),
            Request::MetricsSnapshot => w_u8(buf, REQ_METRICS_SNAPSHOT),
            Request::TraceDump { max_events } => {
                w_u8(buf, REQ_TRACE_DUMP);
                w_u64(buf, *max_events);
            }
            Request::Hello { codec } => {
                w_u8(buf, REQ_HELLO);
                w_str(buf, codec);
            }
            Request::GetPlanAt { min_epoch, wait_ms } => {
                w_u8(buf, REQ_GET_PLAN_AT);
                w_u64(buf, *min_epoch);
                w_u64(buf, *wait_ms);
            }
            Request::Replicate {
                source_region,
                batch,
            } => {
                w_u8(buf, REQ_REPLICATE);
                w_u64(buf, *source_region);
                w_str(buf, batch);
            }
            Request::SyncState {
                source_region,
                state,
            } => {
                w_u8(buf, REQ_SYNC_STATE);
                w_u64(buf, *source_region);
                w_str(buf, state);
            }
            Request::Promote => w_u8(buf, REQ_PROMOTE),
        }
    }

    fn write_plan(buf: &mut Vec<u8>, p: &PlanSummary) {
        w_u64(buf, p.epoch);
        w_usize(buf, p.dcs);
        w_usize(buf, p.ducts);
        w_usize(buf, p.used_ducts);
        w_usize(buf, p.cut_tolerance);
        w_u64(buf, p.scenarios_examined);
        w_u64(buf, p.dc_transceivers);
        w_u64(buf, p.fiber_pair_spans);
        w_u64(buf, p.oss_ports);
        w_bool(buf, p.feasible);
    }

    fn write_topology(buf: &mut Vec<u8>, t: &TopologySummary) {
        w_u64(buf, t.epoch);
        w_usize(buf, t.dcs);
        w_usize(buf, t.huts);
        w_usize(buf, t.ducts);
        w_vec_usize(buf, &t.active_cuts);
        w_count(buf, t.allocation.len());
        for e in &t.allocation {
            w_usize(buf, e.a);
            w_usize(buf, e.b);
            w_u32(buf, e.circuits);
        }
        w_vec_usize(buf, &t.quarantined);
    }

    fn write_path(buf: &mut Vec<u8>, p: &PathInfo) {
        w_usize(buf, p.a);
        w_usize(buf, p.b);
        w_vec_usize(buf, &p.nodes);
        w_vec_usize(buf, &p.edges);
        w_f64(buf, p.length_km);
        w_f64(buf, p.rtt_ms);
        w_u32(buf, p.circuits);
        w_u64(buf, p.epoch);
    }

    fn write_recovery(buf: &mut Vec<u8>, r: &RecoverySummary) {
        w_vec_usize(buf, &r.cuts);
        w_bool(buf, r.within_tolerance);
        w_bool(buf, r.fully_recovered);
        w_usize(buf, r.shed_pairs);
        w_f64(buf, r.detection_ms);
        w_f64(buf, r.replan_ms);
        w_f64(buf, r.reconfig_ms);
        w_f64(buf, r.recovery_ms);
    }

    fn write_peer(buf: &mut Vec<u8>, p: &PeerInfo) {
        w_u64(buf, p.region);
        w_str(buf, &p.addr);
        w_bool(buf, p.connected);
        w_u64(buf, p.acked_epoch);
        w_u64(buf, p.lag_epochs);
        w_f64(buf, p.lag_ms);
        w_u64(buf, p.reconnects);
    }

    fn write_health(buf: &mut Vec<u8>, h: &HealthInfo) {
        w_u64(buf, h.region);
        w_str(buf, &h.role);
        w_count(buf, h.peers.len());
        for p in &h.peers {
            write_peer(buf, p);
        }
        w_u64(buf, h.epoch);
        w_usize(buf, h.queue_depth);
        w_u64(buf, h.writes_applied);
        w_u64(buf, h.coalesced);
        w_u64(buf, h.overloaded);
        w_vec_usize(buf, &h.active_cuts);
        w_usize(buf, h.quarantined);
        match &h.last_recovery {
            None => w_bool(buf, false),
            Some(r) => {
                w_bool(buf, true);
                write_recovery(buf, r);
            }
        }
        w_u64(buf, h.uptime_ms);
        w_u64(buf, h.wal_records);
        w_u64(buf, h.wal_bytes);
        w_f64(buf, h.last_fsync_ms);
    }

    fn write_trace_dump(buf: &mut Vec<u8>, t: &TraceDumpInfo) {
        w_bool(buf, t.enabled);
        w_u64(buf, t.dropped);
        w_count(buf, t.events.len());
        for e in &t.events {
            w_u64(buf, e.trace_id);
            w_u32(buf, e.span_id);
            w_u32(buf, e.parent_id);
            w_str(buf, &e.stage);
            w_u64(buf, e.start_us);
            w_u64(buf, e.dur_us);
            w_bool(buf, e.modeled);
        }
        w_count(buf, t.slow.len());
        for s in &t.slow {
            w_u64(buf, s.trace_id);
            w_str(buf, &s.op);
            w_f64(buf, s.total_ms);
            w_u64(buf, s.at_us);
        }
    }

    fn write_error(buf: &mut Vec<u8>, e: &IrisError) {
        match e {
            IrisError::PortOutOfRange {
                device,
                input,
                output,
                ports,
            } => {
                w_u8(buf, ERR_PORT_OUT_OF_RANGE);
                w_str(buf, device);
                w_usize(buf, *input);
                w_usize(buf, *output);
                w_usize(buf, *ports);
            }
            IrisError::ChannelOutOfRange {
                device,
                channel,
                count,
            } => {
                w_u8(buf, ERR_CHANNEL_OUT_OF_RANGE);
                w_str(buf, device);
                w_u32(buf, *channel);
                w_u32(buf, *count);
            }
            IrisError::Unreachable { what } => {
                w_u8(buf, ERR_UNREACHABLE);
                w_str(buf, what);
            }
            IrisError::Decode { detail } => {
                w_u8(buf, ERR_DECODE);
                w_str(buf, detail);
            }
            IrisError::VerifyFailed { device, detail } => {
                w_u8(buf, ERR_VERIFY_FAILED);
                w_str(buf, device);
                w_str(buf, detail);
            }
            IrisError::RetriesExhausted {
                phase,
                attempts,
                last_error,
            } => {
                w_u8(buf, ERR_RETRIES_EXHAUSTED);
                w_str(buf, phase);
                w_u32(buf, *attempts);
                w_str(buf, last_error);
            }
            IrisError::Quarantined { device } => {
                w_u8(buf, ERR_QUARANTINED);
                w_str(buf, device);
            }
            IrisError::Infeasible { detail } => {
                w_u8(buf, ERR_INFEASIBLE);
                w_str(buf, detail);
            }
            IrisError::Overloaded { retry_after_ms } => {
                w_u8(buf, ERR_OVERLOADED);
                w_u64(buf, *retry_after_ms);
            }
            IrisError::InvalidInput { detail } => {
                w_u8(buf, ERR_INVALID_INPUT);
                w_str(buf, detail);
            }
            IrisError::Io { detail } => {
                w_u8(buf, ERR_IO);
                w_str(buf, detail);
            }
            IrisError::Corrupt { what, detail } => {
                w_u8(buf, ERR_CORRUPT);
                w_str(buf, what);
                w_str(buf, detail);
            }
            IrisError::ReplayFailed { detail } => {
                w_u8(buf, ERR_REPLAY_FAILED);
                w_str(buf, detail);
            }
            IrisError::Timeout { what, after_ms } => {
                w_u8(buf, ERR_TIMEOUT);
                w_str(buf, what);
                w_u64(buf, *after_ms);
            }
            IrisError::NotPrimary { region } => {
                w_u8(buf, ERR_NOT_PRIMARY);
                w_u64(buf, *region);
            }
        }
    }

    pub(super) fn write_response(buf: &mut Vec<u8>, resp: &Response) {
        match resp {
            Response::Plan(p) => {
                w_u8(buf, RESP_PLAN);
                write_plan(buf, p);
            }
            Response::Topology(t) => {
                w_u8(buf, RESP_TOPOLOGY);
                write_topology(buf, t);
            }
            Response::Path(p) => {
                w_u8(buf, RESP_PATH);
                write_path(buf, p);
            }
            Response::DemandAccepted { queue_depth, epoch } => {
                w_u8(buf, RESP_DEMAND_ACCEPTED);
                w_usize(buf, *queue_depth);
                w_u64(buf, *epoch);
            }
            Response::Recovery(r) => {
                w_u8(buf, RESP_RECOVERY);
                write_recovery(buf, r);
            }
            Response::CutAlreadyActive { active_cuts } => {
                w_u8(buf, RESP_CUT_ALREADY_ACTIVE);
                w_vec_usize(buf, active_cuts);
            }
            Response::Health(h) => {
                w_u8(buf, RESP_HEALTH);
                write_health(buf, h);
            }
            Response::Metrics { prometheus } => {
                w_u8(buf, RESP_METRICS);
                w_str(buf, prometheus);
            }
            Response::Trace(t) => {
                w_u8(buf, RESP_TRACE);
                write_trace_dump(buf, t);
            }
            Response::HelloAck { codec } => {
                w_u8(buf, RESP_HELLO_ACK);
                w_str(buf, codec);
            }
            Response::ReplicateAck { epoch, state_crc } => {
                w_u8(buf, RESP_REPLICATE_ACK);
                w_u64(buf, *epoch);
                w_u32(buf, *state_crc);
            }
            Response::Error(e) => {
                w_u8(buf, RESP_ERROR);
                write_error(buf, e);
            }
        }
    }

    pub(super) fn read_request(rd: &mut Reader<'_>) -> IrisResult<Request> {
        match rd.u8("request tag")? {
            REQ_GET_PLAN => Ok(Request::GetPlan),
            REQ_GET_TOPOLOGY => Ok(Request::GetTopology),
            REQ_QUERY_PATH => Ok(Request::QueryPath {
                a: rd.usize_("query_path.a")?,
                b: rd.usize_("query_path.b")?,
            }),
            REQ_UPDATE_DEMAND => Ok(Request::UpdateDemand {
                a: rd.usize_("update_demand.a")?,
                b: rd.usize_("update_demand.b")?,
                circuits: rd.u32("update_demand.circuits")?,
            }),
            REQ_REPORT_FIBER_CUT => Ok(Request::ReportFiberCut {
                cuts: rd.vec_usize("report_fiber_cut.cuts")?,
            }),
            REQ_HEALTH => Ok(Request::Health),
            REQ_METRICS_SNAPSHOT => Ok(Request::MetricsSnapshot),
            REQ_TRACE_DUMP => Ok(Request::TraceDump {
                max_events: rd.u64("trace_dump.max_events")?,
            }),
            REQ_HELLO => Ok(Request::Hello {
                codec: rd.string("hello.codec")?,
            }),
            REQ_GET_PLAN_AT => Ok(Request::GetPlanAt {
                min_epoch: rd.u64("get_plan_at.min_epoch")?,
                wait_ms: rd.u64("get_plan_at.wait_ms")?,
            }),
            REQ_REPLICATE => Ok(Request::Replicate {
                source_region: rd.u64("replicate.source_region")?,
                batch: rd.string("replicate.batch")?,
            }),
            REQ_SYNC_STATE => Ok(Request::SyncState {
                source_region: rd.u64("sync_state.source_region")?,
                state: rd.string("sync_state.state")?,
            }),
            REQ_PROMOTE => Ok(Request::Promote),
            other => Err(decode_err(format!("unknown binary request tag {other}"))),
        }
    }

    fn read_plan(rd: &mut Reader<'_>) -> IrisResult<PlanSummary> {
        Ok(PlanSummary {
            epoch: rd.u64("plan.epoch")?,
            dcs: rd.usize_("plan.dcs")?,
            ducts: rd.usize_("plan.ducts")?,
            used_ducts: rd.usize_("plan.used_ducts")?,
            cut_tolerance: rd.usize_("plan.cut_tolerance")?,
            scenarios_examined: rd.u64("plan.scenarios_examined")?,
            dc_transceivers: rd.u64("plan.dc_transceivers")?,
            fiber_pair_spans: rd.u64("plan.fiber_pair_spans")?,
            oss_ports: rd.u64("plan.oss_ports")?,
            feasible: rd.bool("plan.feasible")?,
        })
    }

    fn read_topology(rd: &mut Reader<'_>) -> IrisResult<TopologySummary> {
        let epoch = rd.u64("topology.epoch")?;
        let dcs = rd.usize_("topology.dcs")?;
        let huts = rd.usize_("topology.huts")?;
        let ducts = rd.usize_("topology.ducts")?;
        let active_cuts = rd.vec_usize("topology.active_cuts")?;
        let n = rd.count(MIN_ALLOC_ENTRY, "topology.allocation")?;
        let mut allocation = Vec::with_capacity(n);
        for _ in 0..n {
            allocation.push(AllocEntry {
                a: rd.usize_("allocation.a")?,
                b: rd.usize_("allocation.b")?,
                circuits: rd.u32("allocation.circuits")?,
            });
        }
        Ok(TopologySummary {
            epoch,
            dcs,
            huts,
            ducts,
            active_cuts,
            allocation,
            quarantined: rd.vec_usize("topology.quarantined")?,
        })
    }

    fn read_path(rd: &mut Reader<'_>) -> IrisResult<PathInfo> {
        Ok(PathInfo {
            a: rd.usize_("path.a")?,
            b: rd.usize_("path.b")?,
            nodes: rd.vec_usize("path.nodes")?,
            edges: rd.vec_usize("path.edges")?,
            length_km: rd.f64("path.length_km")?,
            rtt_ms: rd.f64("path.rtt_ms")?,
            circuits: rd.u32("path.circuits")?,
            epoch: rd.u64("path.epoch")?,
        })
    }

    fn read_recovery(rd: &mut Reader<'_>) -> IrisResult<RecoverySummary> {
        Ok(RecoverySummary {
            cuts: rd.vec_usize("recovery.cuts")?,
            within_tolerance: rd.bool("recovery.within_tolerance")?,
            fully_recovered: rd.bool("recovery.fully_recovered")?,
            shed_pairs: rd.usize_("recovery.shed_pairs")?,
            detection_ms: rd.f64("recovery.detection_ms")?,
            replan_ms: rd.f64("recovery.replan_ms")?,
            reconfig_ms: rd.f64("recovery.reconfig_ms")?,
            recovery_ms: rd.f64("recovery.recovery_ms")?,
        })
    }

    fn read_peer(rd: &mut Reader<'_>) -> IrisResult<PeerInfo> {
        Ok(PeerInfo {
            region: rd.u64("peer.region")?,
            addr: rd.string("peer.addr")?,
            connected: rd.bool("peer.connected")?,
            acked_epoch: rd.u64("peer.acked_epoch")?,
            lag_epochs: rd.u64("peer.lag_epochs")?,
            lag_ms: rd.f64("peer.lag_ms")?,
            reconnects: rd.u64("peer.reconnects")?,
        })
    }

    fn read_health(rd: &mut Reader<'_>) -> IrisResult<HealthInfo> {
        let region = rd.u64("health.region")?;
        let role = rd.string("health.role")?;
        let n = rd.count(MIN_PEER_INFO, "health.peers")?;
        let mut peers = Vec::with_capacity(n);
        for _ in 0..n {
            peers.push(read_peer(rd)?);
        }
        Ok(HealthInfo {
            region,
            role,
            peers,
            epoch: rd.u64("health.epoch")?,
            queue_depth: rd.usize_("health.queue_depth")?,
            writes_applied: rd.u64("health.writes_applied")?,
            coalesced: rd.u64("health.coalesced")?,
            overloaded: rd.u64("health.overloaded")?,
            active_cuts: rd.vec_usize("health.active_cuts")?,
            quarantined: rd.usize_("health.quarantined")?,
            last_recovery: if rd.bool("health.last_recovery")? {
                Some(read_recovery(rd)?)
            } else {
                None
            },
            uptime_ms: rd.u64("health.uptime_ms")?,
            wal_records: rd.u64("health.wal_records")?,
            wal_bytes: rd.u64("health.wal_bytes")?,
            last_fsync_ms: rd.f64("health.last_fsync_ms")?,
        })
    }

    fn read_trace_dump(rd: &mut Reader<'_>) -> IrisResult<TraceDumpInfo> {
        let enabled = rd.bool("trace.enabled")?;
        let dropped = rd.u64("trace.dropped")?;
        let n = rd.count(MIN_TRACE_EVENT, "trace.events")?;
        let mut events = Vec::with_capacity(n);
        for _ in 0..n {
            events.push(TraceEventInfo {
                trace_id: rd.u64("event.trace_id")?,
                span_id: rd.u32("event.span_id")?,
                parent_id: rd.u32("event.parent_id")?,
                stage: rd.string("event.stage")?,
                start_us: rd.u64("event.start_us")?,
                dur_us: rd.u64("event.dur_us")?,
                modeled: rd.bool("event.modeled")?,
            });
        }
        let n = rd.count(MIN_SLOW_REQUEST, "trace.slow")?;
        let mut slow = Vec::with_capacity(n);
        for _ in 0..n {
            slow.push(SlowRequestInfo {
                trace_id: rd.u64("slow.trace_id")?,
                op: rd.string("slow.op")?,
                total_ms: rd.f64("slow.total_ms")?,
                at_us: rd.u64("slow.at_us")?,
            });
        }
        Ok(TraceDumpInfo {
            enabled,
            dropped,
            events,
            slow,
        })
    }

    fn read_error(rd: &mut Reader<'_>) -> IrisResult<IrisError> {
        match rd.u8("error tag")? {
            ERR_PORT_OUT_OF_RANGE => Ok(IrisError::PortOutOfRange {
                device: rd.string("error.device")?,
                input: rd.usize_("error.input")?,
                output: rd.usize_("error.output")?,
                ports: rd.usize_("error.ports")?,
            }),
            ERR_CHANNEL_OUT_OF_RANGE => Ok(IrisError::ChannelOutOfRange {
                device: rd.string("error.device")?,
                channel: rd.u32("error.channel")?,
                count: rd.u32("error.count")?,
            }),
            ERR_UNREACHABLE => Ok(IrisError::Unreachable {
                what: rd.string("error.what")?,
            }),
            ERR_DECODE => Ok(IrisError::Decode {
                detail: rd.string("error.detail")?,
            }),
            ERR_VERIFY_FAILED => Ok(IrisError::VerifyFailed {
                device: rd.string("error.device")?,
                detail: rd.string("error.detail")?,
            }),
            ERR_RETRIES_EXHAUSTED => Ok(IrisError::RetriesExhausted {
                phase: rd.string("error.phase")?,
                attempts: rd.u32("error.attempts")?,
                last_error: rd.string("error.last_error")?,
            }),
            ERR_QUARANTINED => Ok(IrisError::Quarantined {
                device: rd.string("error.device")?,
            }),
            ERR_INFEASIBLE => Ok(IrisError::Infeasible {
                detail: rd.string("error.detail")?,
            }),
            ERR_OVERLOADED => Ok(IrisError::Overloaded {
                retry_after_ms: rd.u64("error.retry_after_ms")?,
            }),
            ERR_INVALID_INPUT => Ok(IrisError::InvalidInput {
                detail: rd.string("error.detail")?,
            }),
            ERR_IO => Ok(IrisError::Io {
                detail: rd.string("error.detail")?,
            }),
            ERR_CORRUPT => Ok(IrisError::Corrupt {
                what: rd.string("error.what")?,
                detail: rd.string("error.detail")?,
            }),
            ERR_REPLAY_FAILED => Ok(IrisError::ReplayFailed {
                detail: rd.string("error.detail")?,
            }),
            ERR_TIMEOUT => Ok(IrisError::Timeout {
                what: rd.string("error.what")?,
                after_ms: rd.u64("error.after_ms")?,
            }),
            ERR_NOT_PRIMARY => Ok(IrisError::NotPrimary {
                region: rd.u64("error.region")?,
            }),
            other => Err(decode_err(format!("unknown binary error tag {other}"))),
        }
    }

    pub(super) fn read_response(rd: &mut Reader<'_>) -> IrisResult<Response> {
        match rd.u8("response tag")? {
            RESP_PLAN => Ok(Response::Plan(read_plan(rd)?)),
            RESP_TOPOLOGY => Ok(Response::Topology(read_topology(rd)?)),
            RESP_PATH => Ok(Response::Path(read_path(rd)?)),
            RESP_DEMAND_ACCEPTED => Ok(Response::DemandAccepted {
                queue_depth: rd.usize_("demand_accepted.queue_depth")?,
                epoch: rd.u64("demand_accepted.epoch")?,
            }),
            RESP_RECOVERY => Ok(Response::Recovery(read_recovery(rd)?)),
            RESP_CUT_ALREADY_ACTIVE => Ok(Response::CutAlreadyActive {
                active_cuts: rd.vec_usize("cut_already_active.active_cuts")?,
            }),
            RESP_HEALTH => Ok(Response::Health(read_health(rd)?)),
            RESP_METRICS => Ok(Response::Metrics {
                prometheus: rd.string("metrics.prometheus")?,
            }),
            RESP_TRACE => Ok(Response::Trace(read_trace_dump(rd)?)),
            RESP_HELLO_ACK => Ok(Response::HelloAck {
                codec: rd.string("hello_ack.codec")?,
            }),
            RESP_REPLICATE_ACK => Ok(Response::ReplicateAck {
                epoch: rd.u64("replicate_ack.epoch")?,
                state_crc: rd.u32("replicate_ack.state_crc")?,
            }),
            RESP_ERROR => Ok(Response::Error(read_error(rd)?)),
            other => Err(decode_err(format!("unknown binary response tag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::GetPlan,
            Request::GetTopology,
            Request::QueryPath { a: 0, b: 3 },
            Request::UpdateDemand {
                a: 1,
                b: 2,
                circuits: 4,
            },
            Request::ReportFiberCut { cuts: vec![5, 9] },
            Request::ReportFiberCut { cuts: vec![] },
            Request::Health,
            Request::MetricsSnapshot,
            Request::TraceDump { max_events: 500 },
            Request::Hello {
                codec: "binary".into(),
            },
            Request::GetPlanAt {
                min_epoch: 8,
                wait_ms: 250,
            },
            Request::Replicate {
                source_region: 1,
                batch: "{\"epoch\":9,\"updates\":[]}".into(),
            },
            Request::SyncState {
                source_region: 1,
                state: "{\"epoch\":9}".into(),
            },
            Request::Promote,
        ]
    }

    fn sample_responses() -> Vec<Response> {
        use crate::api::*;
        vec![
            Response::Plan(PlanSummary {
                epoch: 3,
                dcs: 10,
                ducts: 40,
                used_ducts: 22,
                cut_tolerance: 2,
                scenarios_examined: 780,
                dc_transceivers: 5_000,
                fiber_pair_spans: 900,
                oss_ports: 1_200,
                feasible: true,
            }),
            Response::Topology(TopologySummary {
                epoch: 4,
                dcs: 3,
                huts: 5,
                ducts: 9,
                active_cuts: vec![1, 7],
                allocation: vec![
                    AllocEntry {
                        a: 0,
                        b: 1,
                        circuits: 3,
                    },
                    AllocEntry {
                        a: 0,
                        b: 2,
                        circuits: 1,
                    },
                ],
                quarantined: vec![2],
            }),
            Response::Path(PathInfo {
                a: 0,
                b: 2,
                nodes: vec![0, 4, 2],
                edges: vec![3, 8],
                length_km: 41.25,
                rtt_ms: 0.413,
                circuits: 2,
                epoch: 4,
            }),
            Response::DemandAccepted {
                queue_depth: 17,
                epoch: 5,
            },
            Response::ReplicateAck {
                epoch: 5,
                state_crc: 0x1234_5678,
            },
            Response::Recovery(RecoverySummary {
                cuts: vec![4],
                within_tolerance: true,
                fully_recovered: true,
                shed_pairs: 0,
                detection_ms: 10.0,
                replan_ms: 5.0,
                reconfig_ms: 52.0,
                recovery_ms: 67.0,
            }),
            Response::CutAlreadyActive {
                active_cuts: vec![2, 4],
            },
            Response::Health(HealthInfo {
                region: 2,
                role: "follower".into(),
                peers: vec![
                    PeerInfo {
                        region: 0,
                        addr: "127.0.0.1:4040".into(),
                        connected: true,
                        acked_epoch: 7,
                        lag_epochs: 0,
                        lag_ms: 0.0,
                        reconnects: 1,
                    },
                    PeerInfo {
                        region: 3,
                        addr: "127.0.0.1:4042".into(),
                        connected: false,
                        acked_epoch: 4,
                        lag_epochs: 3,
                        lag_ms: 9.0,
                        reconnects: 0,
                    },
                ],
                epoch: 7,
                queue_depth: 0,
                writes_applied: 12,
                coalesced: 3,
                overloaded: 1,
                active_cuts: vec![4],
                quarantined: 0,
                last_recovery: Some(RecoverySummary {
                    cuts: vec![4],
                    within_tolerance: true,
                    fully_recovered: true,
                    shed_pairs: 0,
                    detection_ms: 10.0,
                    replan_ms: 5.0,
                    reconfig_ms: 52.0,
                    recovery_ms: 67.0,
                }),
                uptime_ms: 81_000,
                wal_records: 42,
                wal_bytes: 13_337,
                last_fsync_ms: 0.42,
            }),
            Response::Metrics {
                prometheus: "# TYPE x counter\nx 1\n".into(),
            },
            Response::Trace(crate::api::TraceDumpInfo {
                enabled: true,
                dropped: 3,
                events: vec![TraceEventInfo {
                    trace_id: 0xAB,
                    span_id: 2,
                    parent_id: 1,
                    stage: "wal_fsync".into(),
                    start_us: 1_000,
                    dur_us: 420,
                    modeled: false,
                }],
                slow: vec![SlowRequestInfo {
                    trace_id: 0xAB,
                    op: "report_fiber_cut".into(),
                    total_ms: 61.5,
                    at_us: 2_000,
                }],
            }),
            Response::HelloAck {
                codec: "binary".into(),
            },
            Response::Error(IrisError::Overloaded { retry_after_ms: 25 }),
            Response::Error(IrisError::Unreachable {
                what: "DC 0 -> DC 2 after cuts [1, 7]".into(),
            }),
        ]
    }

    fn all_errors() -> Vec<IrisError> {
        vec![
            IrisError::PortOutOfRange {
                device: "OSS@HUT3".into(),
                input: 9,
                output: 1,
                ports: 4,
            },
            IrisError::ChannelOutOfRange {
                device: "TX".into(),
                channel: 41,
                count: 40,
            },
            IrisError::Unreachable { what: "x".into() },
            IrisError::Decode { detail: "x".into() },
            IrisError::VerifyFailed {
                device: "OSS".into(),
                detail: "y".into(),
            },
            IrisError::RetriesExhausted {
                phase: "actuate".into(),
                attempts: 3,
                last_error: "z".into(),
            },
            IrisError::Quarantined {
                device: "OSS".into(),
            },
            IrisError::Infeasible { detail: "x".into() },
            IrisError::Overloaded { retry_after_ms: 10 },
            IrisError::InvalidInput { detail: "x".into() },
            IrisError::Io { detail: "x".into() },
            IrisError::Corrupt {
                what: "iris.wal".into(),
                detail: "crc".into(),
            },
            IrisError::ReplayFailed { detail: "x".into() },
            IrisError::Timeout {
                what: "probe".into(),
                after_ms: 250,
            },
            IrisError::NotPrimary { region: 2 },
        ]
    }

    #[test]
    fn binary_requests_round_trip() {
        for req in &sample_requests() {
            let bytes = encode_request(Codec::Binary, req).unwrap();
            let back = decode_request(Codec::Binary, &bytes).unwrap();
            assert_eq!(&back, req);
        }
    }

    #[test]
    fn binary_responses_round_trip() {
        for resp in &sample_responses() {
            let bytes = encode_response(Codec::Binary, resp).unwrap();
            let back = decode_response(Codec::Binary, &bytes).unwrap();
            assert_eq!(&back, resp);
        }
    }

    #[test]
    fn every_error_variant_round_trips_in_binary() {
        for e in all_errors() {
            let resp = Response::Error(e);
            let bytes = encode_response(Codec::Binary, &resp).unwrap();
            assert_eq!(decode_response(Codec::Binary, &bytes).unwrap(), resp);
        }
    }

    #[test]
    fn json_paths_delegate_to_api_codec() {
        let req = Request::QueryPath { a: 1, b: 2 };
        let bytes = encode_request(Codec::Json, &req).unwrap();
        assert_eq!(crate::api::decode_request(&bytes).unwrap(), req);
        let resp = Response::DemandAccepted {
            queue_depth: 1,
            epoch: 2,
        };
        let bytes = encode_response(Codec::Json, &resp).unwrap();
        assert_eq!(crate::api::decode_response(&bytes).unwrap(), resp);
    }

    #[test]
    fn truncated_binary_payloads_are_decode_errors() {
        for resp in &sample_responses() {
            let bytes = encode_response(Codec::Binary, resp).unwrap();
            // Every proper prefix must fail cleanly, never panic.
            for cut in 0..bytes.len() {
                let err = decode_response(Codec::Binary, &bytes[..cut]).unwrap_err();
                assert_eq!(err.code(), "decode", "prefix len {cut} of {resp:?}");
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_request(Codec::Binary, &Request::GetPlan).unwrap();
        bytes.push(0);
        let err = decode_request(Codec::Binary, &bytes).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn hostile_length_headers_fail_before_allocation() {
        // A string header claiming u32::MAX bytes inside a tiny payload:
        // must fail on the bounds check, not attempt a 4 GiB reservation.
        let mut bytes = vec![8u8]; // Request::Hello tag
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(b"hi");
        let err = decode_request(Codec::Binary, &bytes).unwrap_err();
        assert_eq!(err.code(), "decode");

        // Same for a vec count: ReportFiberCut claiming 500M cuts.
        let mut bytes = vec![4u8];
        bytes.extend_from_slice(&500_000_000u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 16]);
        let err = decode_request(Codec::Binary, &bytes).unwrap_err();
        assert!(err.to_string().contains("cannot fit"), "{err}");
    }

    #[test]
    fn unknown_tags_and_bad_bools_are_rejected() {
        assert_eq!(
            decode_request(Codec::Binary, &[250u8]).unwrap_err().code(),
            "decode"
        );
        assert_eq!(
            decode_response(Codec::Binary, &[250u8]).unwrap_err().code(),
            "decode"
        );
        // Error response with an unknown error sub-tag.
        assert_eq!(
            decode_response(Codec::Binary, &[BIN_RESPONSE_ERROR_TAG, 200])
                .unwrap_err()
                .code(),
            "decode"
        );
        // Plan with a bool byte of 2.
        let resp = sample_responses().remove(0);
        let mut bytes = encode_response(Codec::Binary, &resp).unwrap();
        *bytes.last_mut().unwrap() = 2;
        assert!(decode_response(Codec::Binary, &bytes)
            .unwrap_err()
            .to_string()
            .contains("bool"));
    }

    #[test]
    fn error_classification_is_tag_based() {
        let err = Response::Error(IrisError::Overloaded { retry_after_ms: 5 });
        let ok = Response::DemandAccepted {
            queue_depth: 0,
            epoch: 0,
        };
        for codec in [Codec::Json, Codec::Binary] {
            let e = encode_response(codec, &err).unwrap();
            let o = encode_response(codec, &ok).unwrap();
            assert!(response_payload_is_error(codec, &e), "{codec:?}");
            assert!(!response_payload_is_error(codec, &o), "{codec:?}");
        }
    }

    #[test]
    fn codec_names_round_trip() {
        for codec in [Codec::Json, Codec::Binary] {
            assert_eq!(Codec::from_name(codec.name()), Some(codec));
        }
        assert_eq!(Codec::from_name("msgpack"), None);
        assert_eq!(Codec::default(), Codec::Json);
    }

    #[test]
    fn encode_into_appends_without_clobbering() {
        let mut buf = vec![0xAA, 0xBB];
        let resp = Response::DemandAccepted {
            queue_depth: 9,
            epoch: 3,
        };
        encode_response_into(Codec::Binary, &resp, &mut buf).unwrap();
        assert_eq!(&buf[..2], &[0xAA, 0xBB]);
        assert_eq!(decode_response(Codec::Binary, &buf[2..]).unwrap(), resp);
    }

    #[test]
    fn binary_is_denser_than_json_for_topology() {
        let resp = sample_responses().remove(1);
        let j = encode_response(Codec::Json, &resp).unwrap();
        let b = encode_response(Codec::Binary, &resp).unwrap();
        assert!(b.len() < j.len(), "binary {} >= json {}", b.len(), j.len());
    }
}
