//! Integration tests for iris-telemetry: histogram quantiles against a
//! sorted-vector oracle, counters under concurrent increments, and
//! snapshot JSON round-tripping.

use iris_telemetry::{labeled, Histogram, Registry, Snapshot, Span};
use std::sync::Arc;
use std::thread;

/// Deterministic pseudo-random stream for oracle inputs (SplitMix64).
struct Stream(u64);

impl Stream {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The oracle: exact quantile of a sorted sample vector (nearest-rank,
/// matching the histogram's ceil(q·n) convention).
fn oracle_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil().max(1.0) as usize).min(sorted.len());
    sorted[rank - 1]
}

#[test]
fn histogram_quantiles_match_sorted_vector_oracle() {
    // Log-uniform samples over six decades — the histogram's natural
    // worst case for absolute error, exercising many buckets.
    let mut stream = Stream(7);
    let h = Histogram::new();
    let mut samples: Vec<f64> = (0..10_000)
        .map(|_| 10f64.powf(stream.unit() * 6.0 - 3.0))
        .collect();
    for &s in &samples {
        h.record(s);
    }
    samples.sort_by(f64::total_cmp);

    let tolerance = Histogram::relative_error(); // one bucket width
    for q in [0.01, 0.10, 0.25, 0.50, 0.90, 0.99, 0.999] {
        let exact = oracle_quantile(&samples, q);
        let est = h.quantile(q).expect("non-empty");
        let rel = (est - exact).abs() / exact;
        assert!(
            rel <= tolerance,
            "q={q}: est={est} exact={exact} rel={rel} tol={tolerance}"
        );
    }
}

#[test]
fn histogram_count_sum_and_extremes_are_exact() {
    let h = Histogram::new();
    let values = [0.25, 1.0, 2.0, 4.0, 8.5];
    for v in values {
        h.record(v);
    }
    assert_eq!(h.count(), 5);
    assert!((h.sum() - values.iter().sum::<f64>()).abs() < 1e-9);
    assert_eq!(h.min(), Some(0.25));
    assert_eq!(h.max(), Some(8.5));
}

#[test]
fn counters_are_exact_under_concurrent_increments() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 50_000;

    let registry = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let registry = Arc::clone(&registry);
            thread::spawn(move || {
                // Every thread resolves the same name — exercises the
                // get-or-create race as well as the increment path.
                let c = registry.counter("iris_test_contended_total");
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("no panics");
    }
    assert_eq!(
        registry.snapshot().counters["iris_test_contended_total"],
        THREADS as u64 * PER_THREAD
    );
}

#[test]
fn histograms_lose_no_samples_under_concurrent_recording() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 20_000;

    let h = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&h);
            thread::spawn(move || {
                let mut stream = Stream(t as u64);
                for _ in 0..PER_THREAD {
                    h.record(stream.unit() + 0.5);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("no panics");
    }
    assert_eq!(h.count(), (THREADS * PER_THREAD) as u64);
    let mean = h.mean();
    assert!((0.9..1.1).contains(&mean), "mean={mean}");
}

#[test]
fn snapshot_round_trips_through_json() {
    let registry = Registry::new();
    registry.counter("iris_simnet_events_total").add(1234);
    registry.gauge("iris_simnet_active_flows_peak").set(-7);
    let h = registry.histogram(&labeled("iris_control_phase_ms", "phase", "drain"));
    let mut stream = Stream(3);
    for _ in 0..500 {
        h.record(stream.unit() * 30.0 + 1.0);
    }

    let snapshot = registry.snapshot();
    let json = snapshot.to_json();
    let text = serde_json::to_string_pretty(&json).expect("serializable");
    let parsed: serde_json::Value = serde_json::from_str(&text).expect("parseable");
    let rebuilt = Snapshot::from_json(&parsed).expect("well-formed snapshot");
    assert_eq!(rebuilt, snapshot);
}

#[test]
fn span_timing_lands_in_the_named_histogram() {
    let registry = Registry::new();
    {
        let _span = Span::enter_ms(registry.histogram("iris_test_span_ms"));
        std::hint::black_box(());
    }
    let snapshot = registry.snapshot();
    let summary = &snapshot.histograms["iris_test_span_ms"];
    assert_eq!(summary.count, 1);
    assert!(summary.p99 >= 0.0);
}
