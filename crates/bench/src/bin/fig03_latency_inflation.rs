//! Figure 3 — CDF of latency inflation: best DC-hub-DC path length over
//! direct DC-DC path length, across regions.
//!
//! Paper shape: inflation >= 1 everywhere (a hub detour can't be shorter
//! than the direct route); >2x for more than 20% of DC pairs; a long
//! tail out to ~10-30x for unluckily placed hubs.

use iris_fibermap::siting::{fraction_at_least, latency_inflation};
use iris_fibermap::synth::pick_hub_pair;

fn main() {
    let n_regions = if iris_bench::quick_mode() { 4 } else { 22 };
    let mut inflations = Vec::new();
    for seed in 0..n_regions {
        let region = iris_bench::simple_region(seed + 1, 6 + (seed as usize % 6));
        // Operators place hub pairs close together to maximize the
        // service area (§2.2) — 4-7 km apart, as in Fig. 5's top row.
        let (h1, h2) = pick_hub_pair(&region.map, 4.0, 7.0);
        inflations.extend(latency_inflation(&region.map, &region.dcs, &[h1, h2]));
    }

    iris_bench::print_cdf("latency inflation (DC-hub-DC / DC-DC)", &inflations, 30);
    let over_2x = fraction_at_least(&inflations, 2.0);
    let over_4x = fraction_at_least(&inflations, 4.0);
    let median = iris_bench::percentile(&inflations, 0.5);
    println!("\nregions analyzed:        {n_regions}");
    println!("DC pairs analyzed:       {}", inflations.len());
    println!("median inflation:        {median:.2}x");
    println!(
        "pairs with >=2x:         {:.1}% (paper: >20%)",
        over_2x * 100.0
    );
    println!("pairs with >=4x:         {:.1}%", over_4x * 100.0);

    iris_bench::write_results(
        "fig03_latency_inflation",
        &serde_json::json!({
            "regions": n_regions,
            "pairs": inflations.len(),
            "median_inflation": median,
            "fraction_ge_2x": over_2x,
            "fraction_ge_4x": over_4x,
            "paper_claim": "latency reduction >2x for more than 20% of DC pairs",
        }),
    );
}
