//! `iris-flowsim-worker` — a link-simulation worker for the flowsim
//! coordinator.
//!
//! ```text
//! iris-flowsim-worker --addr 127.0.0.1:7401 [--slow-ms 0]
//! ```
//!
//! Prints `listening <addr>` once bound (so scripts can wait for
//! readiness), then serves forever. `--slow-ms` injects an artificial
//! per-job delay — a fault-injection hook used by CI's kill-9 smoke.

use iris_flowsim::worker::{serve, WorkerConfig};
use std::net::TcpListener;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7401".to_owned();
    let mut cfg = WorkerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(v) => addr = v,
                None => return usage("--addr needs a value"),
            },
            "--slow-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.slow_ms = v,
                None => return usage("--slow-ms needs an integer value"),
            },
            "--help" | "-h" => {
                println!("usage: iris-flowsim-worker [--addr HOST:PORT] [--slow-ms N]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown option '{other}'")),
        }
    }
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("iris-flowsim-worker: bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match listener.local_addr() {
        Ok(bound) => println!("listening {bound}"),
        Err(_) => println!("listening {addr}"),
    }
    if let Err(e) = serve(listener, cfg) {
        eprintln!("iris-flowsim-worker: [{}] {e}", e.code());
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("iris-flowsim-worker: {msg}");
    eprintln!("usage: iris-flowsim-worker [--addr HOST:PORT] [--slow-ms N]");
    ExitCode::FAILURE
}
