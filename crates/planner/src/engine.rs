//! The shared scenario engine: incremental per-scenario path computation
//! for every planning stage that enumerates fiber-cut scenarios.
//!
//! Algorithm 1, amplifier placement, cut-through placement and residual
//! accounting all iterate `C(m, ≤k)` failure scenarios and need the
//! shortest DC-pair paths in each. Recomputing every pair from scratch —
//! `n` Dijkstras per scenario — dominates planning time. The engine
//! instead computes the baseline (no-failure) paths once and, for each
//! scenario, re-runs Dijkstra **only for sources whose cached path
//! crosses a failed duct**:
//!
//! * a pair whose baseline path avoids all failed ducts keeps that path —
//!   removing edges never shortens any route, and the baseline path's
//!   length is unchanged, so it remains the (unique, by deterministic
//!   perturbation) shortest path in the scenario subgraph;
//! * a pair that was already unreachable or SLA-violating at baseline
//!   stays so under any failure — distances only grow.
//!
//! With `k ≤ 2` (operational practice) the vast majority of pairs are
//! untouched per scenario, so a sweep costs `O(scenarios · invalidated)`
//! Dijkstras instead of `O(scenarios · n)`.
//!
//! Thread-count policy for the parallel sweeps lives here too:
//! `IRIS_THREADS` overrides everything, then a programmatic default (set
//! by drivers that parallelize at a coarser grain), then the machine's
//! available parallelism.

use crate::goals::DesignGoals;
use crate::paths::{scenario_mask, DcPath};
use iris_fibermap::Region;
use iris_netgraph::{DijkstraScratch, EdgeId, FailureScenarios};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Per-pair routing outcome in one scenario.
#[derive(Debug, Clone, PartialEq)]
enum PairState {
    /// The unique shortest path, within the SLA.
    Path(DcPath),
    /// Disconnected or SLA-violating.
    Infeasible,
}

#[derive(Debug, Clone)]
struct PairSlot {
    a: usize,
    b: usize,
    state: PairState,
}

/// A read-only view of all DC-pair routes in the current scenario,
/// handed to [`ScenarioEngine::for_each_scenario`] callbacks.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioView<'a> {
    slots: &'a [PairSlot],
}

impl<'a> ScenarioView<'a> {
    /// The feasible DC-pair paths, ordered by `(a, b)` ascending —
    /// exactly the order (and contents) of
    /// [`crate::paths::scenario_paths`]'s first return value.
    pub fn paths(&self) -> impl Iterator<Item = &'a DcPath> + 'a {
        self.slots.iter().filter_map(|s| match &s.state {
            PairState::Path(p) => Some(p),
            PairState::Infeasible => None,
        })
    }

    /// Feasible paths together with their dense pair index (the engine's
    /// stable identifier for the unordered pair `(a, b)`).
    pub fn indexed_paths(&self) -> impl Iterator<Item = (u32, &'a DcPath)> + 'a {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match &s.state {
                PairState::Path(p) => Some((i as u32, p)),
                PairState::Infeasible => None,
            })
    }

    /// DC index pairs that are unreachable or SLA-violating in this
    /// scenario, ordered by `(a, b)` ascending — exactly
    /// [`crate::paths::scenario_paths`]'s second return value.
    pub fn unreachable(&self) -> impl Iterator<Item = (usize, usize)> + 'a {
        self.slots.iter().filter_map(|s| match s.state {
            PairState::Infeasible => Some((s.a, s.b)),
            PairState::Path(_) => None,
        })
    }

    /// Number of DC pairs (feasible + infeasible).
    #[must_use]
    pub fn pair_count(&self) -> usize {
        self.slots.len()
    }

    /// The endpoints of pair `idx` (as returned by
    /// [`ScenarioView::indexed_paths`]).
    #[must_use]
    pub fn pair(&self, idx: u32) -> (usize, usize) {
        let s = &self.slots[idx as usize];
        (s.a, s.b)
    }
}

/// Incremental scenario-path cache over one region + goals.
#[derive(Debug)]
pub struct ScenarioEngine<'r> {
    region: &'r Region,
    goals: &'r DesignGoals,
    /// Disabled-edge mask: the span-limit baseline, with the current
    /// scenario's failed ducts toggled on during a recompute and toggled
    /// back off afterwards.
    mask: Vec<bool>,
    /// Current per-pair states, `(a, b)` ascending. Outside of a
    /// scenario callback this always holds the baseline.
    slots: Vec<PairSlot>,
    /// `edge_pairs[e]` — pair indices whose *baseline* path crosses `e`.
    edge_pairs: Vec<Vec<u32>>,
    /// Baseline states of pairs overlaid by the current scenario.
    stash: Vec<(u32, PairState)>,
    /// Scratch: pair indices invalidated by the current scenario.
    affected: Vec<u32>,
    affected_mark: Vec<bool>,
    dijkstra: DijkstraScratch,
    /// Pairs served from the baseline cache across all scenarios.
    pub cache_hits: u64,
    /// Pairs re-routed because a failed duct crossed their cached path.
    pub cache_invalidations: u64,
    /// Scenarios processed.
    pub scenarios_processed: u64,
}

impl<'r> ScenarioEngine<'r> {
    /// Build the engine: one Dijkstra per DC to establish the baseline
    /// paths and the edge→pairs invalidation index.
    #[must_use]
    pub fn new(region: &'r Region, goals: &'r DesignGoals) -> Self {
        let g = region.map.graph();
        let m = g.edge_count();
        let n = region.dcs.len();
        let base_mask = scenario_mask(region, goals, &[]);
        let mut dijkstra = DijkstraScratch::new();
        let mut slots = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        let mut edge_pairs: Vec<Vec<u32>> = vec![Vec::new(); m];
        for a in 0..n {
            dijkstra.run(g, region.dcs[a], &base_mask);
            for b in (a + 1)..n {
                let target = region.dcs[b];
                let state = match dijkstra.path_edges(g, target) {
                    Some(edges) => {
                        let nodes = dijkstra.path_nodes(g, target).expect("reachable");
                        let length_km = iris_netgraph::shortest::path_length_km(g, &edges);
                        if length_km > goals.sla_km + 1e-9 {
                            PairState::Infeasible
                        } else {
                            let idx = slots.len() as u32;
                            for &e in &edges {
                                edge_pairs[e].push(idx);
                            }
                            PairState::Path(DcPath {
                                a,
                                b,
                                nodes,
                                edges,
                                length_km,
                            })
                        }
                    }
                    None => PairState::Infeasible,
                };
                slots.push(PairSlot { a, b, state });
            }
        }
        let n_pairs = slots.len();
        Self {
            region,
            goals,
            mask: base_mask,
            slots,
            edge_pairs,
            stash: Vec::new(),
            affected: Vec::new(),
            affected_mark: vec![false; n_pairs],
            dijkstra,
            cache_hits: 0,
            cache_invalidations: 0,
            scenarios_processed: 0,
        }
    }

    /// Run `f` once per failure scenario of `goals.max_cuts`, in the
    /// deterministic [`FailureScenarios`] order.
    pub fn for_each_scenario(&mut self, mut f: impl FnMut(&[EdgeId], ScenarioView<'_>)) {
        let m = self.region.map.graph().edge_count();
        for scenario in FailureScenarios::new(m, self.goals.max_cuts) {
            self.apply(&scenario);
            f(&scenario, ScenarioView { slots: &self.slots });
            self.restore(&scenario);
        }
        self.flush_telemetry();
    }

    /// Run `f` for an explicit scenario list (a chunk of the full
    /// enumeration) — the parallel sweep's per-thread entry point.
    pub fn for_scenarios(
        &mut self,
        scenarios: &[Vec<EdgeId>],
        mut f: impl FnMut(&[EdgeId], ScenarioView<'_>),
    ) {
        for scenario in scenarios {
            self.apply(scenario);
            f(scenario, ScenarioView { slots: &self.slots });
            self.restore(scenario);
        }
        self.flush_telemetry();
    }

    /// Overlay the scenario: re-route every pair whose cached path
    /// crosses a failed duct, stashing the baseline states for
    /// [`ScenarioEngine::restore`].
    fn apply(&mut self, failed: &[EdgeId]) {
        self.scenarios_processed += 1;
        debug_assert!(self.affected.is_empty() && self.stash.is_empty());
        for &e in failed {
            for &p in &self.edge_pairs[e] {
                if !self.affected_mark[p as usize] {
                    self.affected_mark[p as usize] = true;
                    self.affected.push(p);
                }
            }
        }
        self.cache_hits += (self.slots.len() - self.affected.len()) as u64;
        self.cache_invalidations += self.affected.len() as u64;
        if self.affected.is_empty() {
            return;
        }
        // Pair indices ascend with (a, b), so sorting groups the
        // re-routes by source DC: one Dijkstra per affected source.
        self.affected.sort_unstable();
        for &e in failed {
            self.mask[e] = true;
        }
        let g = self.region.map.graph();
        let mut current_source = usize::MAX;
        for i in 0..self.affected.len() {
            let p = self.affected[i];
            let (a, b) = {
                let s = &self.slots[p as usize];
                (s.a, s.b)
            };
            if a != current_source {
                self.dijkstra.run(g, self.region.dcs[a], &self.mask);
                current_source = a;
            }
            let target = self.region.dcs[b];
            let state = match self.dijkstra.path_edges(g, target) {
                Some(edges) => {
                    let nodes = self.dijkstra.path_nodes(g, target).expect("reachable");
                    let length_km = iris_netgraph::shortest::path_length_km(g, &edges);
                    if length_km > self.goals.sla_km + 1e-9 {
                        PairState::Infeasible
                    } else {
                        PairState::Path(DcPath {
                            a,
                            b,
                            nodes,
                            edges,
                            length_km,
                        })
                    }
                }
                None => PairState::Infeasible,
            };
            let old = std::mem::replace(&mut self.slots[p as usize].state, state);
            self.stash.push((p, old));
        }
        for &e in failed {
            self.mask[e] = false;
        }
    }

    /// Undo [`ScenarioEngine::apply`]: swap the stashed baseline states
    /// back in. No clones — the overlay is moved out, the baseline moved
    /// back.
    fn restore(&mut self, _failed: &[EdgeId]) {
        for (p, old) in self.stash.drain(..) {
            self.slots[p as usize].state = old;
        }
        for p in self.affected.drain(..) {
            self.affected_mark[p as usize] = false;
        }
    }

    /// Pair indices whose *baseline* path crosses duct `e` — the
    /// engine's invalidation index. Exposed because it is also the
    /// crossing index a per-link flow decomposition needs: the set of
    /// DC pairs whose traffic a duct carries (`iris-simnet` mirrors it
    /// as `SimTopology::crossing_index` for simulated links).
    #[must_use]
    pub fn pairs_crossing(&self, e: EdgeId) -> &[u32] {
        &self.edge_pairs[e]
    }

    /// Publish the cache counters to the global telemetry registry and
    /// reset the local tallies.
    fn flush_telemetry(&mut self) {
        let t = iris_telemetry::global();
        t.counter("iris_planner_paircache_hits_total")
            .add(self.cache_hits);
        t.counter("iris_planner_paircache_invalidations_total")
            .add(self.cache_invalidations);
        self.cache_hits = 0;
        self.cache_invalidations = 0;
    }
}

/// Programmatic default thread count (0 = unset). Coarse-grained drivers
/// (the bench sweep harness) set this to 1 so nested planner sweeps stay
/// sequential while the outer fan-out uses every core.
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set while this thread is a worker of an outer parallel sweep.
    static SWEEP_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Run `f` with nested planner parallelism disabled on this thread: any
/// [`crate::topology::provision`] call inside runs single-threaded
/// regardless of `IRIS_THREADS`. Outer drivers (the bench sweep harness)
/// wrap per-item work in this so the thread budget controls one fan-out,
/// not the product of two.
pub fn with_nested_parallelism_disabled<R>(f: impl FnOnce() -> R) -> R {
    SWEEP_WORKER.with(|g| g.set(true));
    let out = f();
    SWEEP_WORKER.with(|g| g.set(false));
    out
}

/// Set the default sweep thread count used when `IRIS_THREADS` is unset.
/// Pass 0 to fall back to the machine's available parallelism.
pub fn set_default_threads(n: usize) {
    DEFAULT_THREADS.store(n, Ordering::Relaxed);
}

/// The thread count for parallel scenario sweeps: 1 inside
/// [`with_nested_parallelism_disabled`], else the `IRIS_THREADS`
/// environment variable if set (and a positive integer), else the
/// programmatic default from [`set_default_threads`], else the machine's
/// available parallelism.
#[must_use]
pub fn thread_count() -> usize {
    if SWEEP_WORKER.with(std::cell::Cell::get) {
        return 1;
    }
    if let Ok(v) = std::env::var("IRIS_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    let d = DEFAULT_THREADS.load(Ordering::Relaxed);
    if d > 0 {
        return d;
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::scenario_paths;
    use iris_fibermap::{synth, MetroParams, PlacementParams};

    fn region(seed: u64, n_dcs: usize) -> Region {
        synth::place_dcs(
            synth::generate_metro(&MetroParams {
                seed,
                ..MetroParams::default()
            }),
            &PlacementParams {
                seed: seed.wrapping_add(17),
                n_dcs,
                ..PlacementParams::default()
            },
        )
    }

    #[test]
    fn engine_matches_scenario_paths_on_every_scenario() {
        for seed in [1u64, 5, 9] {
            let r = region(seed, 5);
            let goals = DesignGoals::with_cuts(2);
            let mut engine = ScenarioEngine::new(&r, &goals);
            engine.for_each_scenario(|scenario, view| {
                let (paths, unreachable) = scenario_paths(&r, &goals, scenario);
                let got_paths: Vec<DcPath> = view.paths().cloned().collect();
                let got_unreachable: Vec<(usize, usize)> = view.unreachable().collect();
                assert_eq!(got_paths, paths, "seed {seed}, scenario {scenario:?}");
                assert_eq!(
                    got_unreachable, unreachable,
                    "seed {seed}, scenario {scenario:?}"
                );
            });
        }
    }

    #[test]
    fn unaffected_pairs_keep_their_baseline_path() {
        let r = region(3, 5);
        let goals = DesignGoals::with_cuts(1);
        let (baseline, _) = scenario_paths(&r, &goals, &[]);
        let mut engine = ScenarioEngine::new(&r, &goals);
        engine.for_each_scenario(|scenario, view| {
            if scenario.is_empty() {
                return;
            }
            for p in view.paths() {
                let base = baseline.iter().find(|bp| (bp.a, bp.b) == (p.a, p.b));
                if let Some(base) = base {
                    if !base.edges.iter().any(|e| scenario.contains(e)) {
                        // A pair whose baseline path avoids all failed
                        // ducts must serve that exact path from the cache.
                        assert_eq!(p, base, "scenario {scenario:?}");
                    }
                }
            }
        });
    }

    #[test]
    fn invalidation_counters_only_count_crossing_pairs() {
        let r = region(7, 4);
        let goals = DesignGoals::with_cuts(1);
        let (baseline, _) = scenario_paths(&r, &goals, &[]);
        let m = r.map.graph().edge_count();
        // Hits + invalidations must account for every pair (feasible or
        // not) in every scenario.
        let n_pairs = r.dcs.len() * (r.dcs.len() - 1) / 2;

        let mut expected_invalidations = 0u64;
        for scenario in FailureScenarios::new(m, goals.max_cuts) {
            expected_invalidations += baseline
                .iter()
                .filter(|p| p.edges.iter().any(|e| scenario.contains(e)))
                .count() as u64;
        }

        // Drive apply/restore manually so the counters can be read before
        // for_each_scenario's telemetry flush resets them.
        let mut engine = ScenarioEngine::new(&r, &goals);
        let mut scenarios = 0u64;
        for scenario in FailureScenarios::new(m, goals.max_cuts) {
            engine.apply(&scenario);
            engine.restore(&scenario);
            scenarios += 1;
        }
        assert_eq!(scenarios, FailureScenarios::count_scenarios(m, 1));
        assert_eq!(engine.cache_invalidations, expected_invalidations);
        assert_eq!(
            engine.cache_hits + engine.cache_invalidations,
            scenarios * n_pairs as u64
        );
    }

    #[test]
    fn crossing_index_matches_baseline_paths() {
        let r = region(7, 4);
        let goals = DesignGoals::with_cuts(0);
        let (baseline, _) = scenario_paths(&r, &goals, &[]);
        let engine = ScenarioEngine::new(&r, &goals);
        let m = r.map.graph().edge_count();
        for e in 0..m {
            let expected: Vec<(usize, usize)> = baseline
                .iter()
                .filter(|p| p.edges.contains(&e))
                .map(|p| (p.a, p.b))
                .collect();
            let got: Vec<(usize, usize)> = engine
                .pairs_crossing(e)
                .iter()
                .map(|&idx| {
                    let s = &engine.slots[idx as usize];
                    (s.a, s.b)
                })
                .collect();
            assert_eq!(got, expected, "duct {e}");
        }
    }

    #[test]
    fn no_failure_scenario_costs_no_recomputes() {
        let r = region(2, 4);
        let goals = DesignGoals::with_cuts(0);
        let mut engine = ScenarioEngine::new(&r, &goals);
        let mut calls = 0;
        engine.for_each_scenario(|scenario, view| {
            assert!(scenario.is_empty());
            assert!(view.pair_count() > 0);
            calls += 1;
        });
        assert_eq!(calls, 1);
        assert_eq!(engine.scenarios_processed, 1);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn nested_guard_forces_single_thread() {
        assert_eq!(with_nested_parallelism_disabled(thread_count), 1);
        assert!(thread_count() >= 1);
    }

    #[test]
    fn set_default_threads_overrides_when_env_unset() {
        // IRIS_THREADS may be set by an outer test harness; only assert
        // the programmatic path when the env override is absent.
        if std::env::var("IRIS_THREADS").is_err() {
            set_default_threads(3);
            assert_eq!(thread_count(), 3);
            set_default_threads(0);
            assert!(thread_count() >= 1);
        }
    }
}
