//! The C-band DWDM spectral grid.
//!
//! Iris fills each fiber's full C-band — 40 channels at 100 GHz spacing
//! or 64 at 75 GHz (§3.2: "40-64 optical signals at different
//! wavelengths... covering the C-band") — with live signals plus ASE
//! filler, so every amplifier sees the same total power regardless of
//! how many channels carry data (TC3). This module maps channel indices
//! to ITU-grid frequencies/wavelengths and audits spectrum occupancy.

use serde::{Deserialize, Serialize};

/// Speed of light, m/s.
const C_M_PER_S: f64 = 299_792_458.0;

/// The ITU C-band anchor frequency, THz (channel 0 of this grid).
pub const C_BAND_START_THZ: f64 = 191.35;

/// Upper edge of the C-band, THz.
pub const C_BAND_END_THZ: f64 = 196.10;

/// A fixed DWDM channel grid over the C-band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelGrid {
    /// Number of channels.
    pub channels: u32,
    /// Channel spacing, GHz.
    pub spacing_ghz: u32,
}

impl ChannelGrid {
    /// The 40-channel, 100 GHz grid (today's 100G deployments).
    pub const WIDE: ChannelGrid = ChannelGrid {
        channels: 40,
        spacing_ghz: 100,
    };

    /// The 64-channel, 75 GHz grid (400ZR-era).
    pub const DENSE: ChannelGrid = ChannelGrid {
        channels: 64,
        spacing_ghz: 75,
    };

    /// The grid matching a wavelengths-per-fiber figure, if standard.
    #[must_use]
    pub fn for_lambda(lambda: u32) -> Option<ChannelGrid> {
        match lambda {
            40 => Some(Self::WIDE),
            64 => Some(Self::DENSE),
            _ => None,
        }
    }

    /// Center frequency of `channel`, THz.
    ///
    /// # Panics
    ///
    /// Panics if the channel is out of range.
    #[must_use]
    pub fn frequency_thz(&self, channel: u32) -> f64 {
        assert!(channel < self.channels, "channel {channel} out of range");
        C_BAND_START_THZ + f64::from(channel) * f64::from(self.spacing_ghz) / 1000.0
    }

    /// Center wavelength of `channel`, nm.
    #[must_use]
    pub fn wavelength_nm(&self, channel: u32) -> f64 {
        C_M_PER_S / (self.frequency_thz(channel) * 1e12) * 1e9
    }

    /// Total occupied spectrum, GHz.
    #[must_use]
    pub fn occupied_ghz(&self) -> f64 {
        f64::from(self.channels) * f64::from(self.spacing_ghz)
    }

    /// Whether the whole grid fits inside the C-band.
    #[must_use]
    pub fn fits_c_band(&self) -> bool {
        self.frequency_thz(self.channels - 1) <= C_BAND_END_THZ + 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_grids_fit_the_c_band() {
        assert!(ChannelGrid::WIDE.fits_c_band());
        assert!(ChannelGrid::DENSE.fits_c_band());
        // 40 x 100 GHz = 4 THz; 64 x 75 GHz = 4.8 THz — the C-band's
        // ~4.75 THz of usable width with the last channel at the edge.
        assert_eq!(ChannelGrid::WIDE.occupied_ghz(), 4000.0);
        assert_eq!(ChannelGrid::DENSE.occupied_ghz(), 4800.0);
    }

    #[test]
    fn frequencies_ascend_by_spacing() {
        let g = ChannelGrid::DENSE;
        for c in 0..g.channels - 1 {
            let step = g.frequency_thz(c + 1) - g.frequency_thz(c);
            assert!((step - 0.075).abs() < 1e-12);
        }
    }

    #[test]
    fn wavelengths_are_around_1550nm() {
        for grid in [ChannelGrid::WIDE, ChannelGrid::DENSE] {
            for c in [0, grid.channels - 1] {
                let nm = grid.wavelength_nm(c);
                assert!((1520.0..=1570.0).contains(&nm), "{nm} nm");
            }
        }
        // Higher frequency = shorter wavelength.
        let g = ChannelGrid::WIDE;
        assert!(g.wavelength_nm(39) < g.wavelength_nm(0));
    }

    #[test]
    fn lambda_lookup() {
        assert_eq!(ChannelGrid::for_lambda(40), Some(ChannelGrid::WIDE));
        assert_eq!(ChannelGrid::for_lambda(64), Some(ChannelGrid::DENSE));
        assert_eq!(ChannelGrid::for_lambda(80), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_channel_panics() {
        let _ = ChannelGrid::WIDE.frequency_thz(40);
    }
}
