//! Regional fiber-map model and synthetic metro-region generator.
//!
//! The DCI network design problem of §2 of the paper takes three inputs:
//! DC site locations, DC capacities, and the region's *fiber map* — the
//! graph of fiber ducts connecting data centers and intermediate "fiber
//! huts". This crate provides:
//!
//! * [`FiberMap`] — the annotated graph (site kinds, planar positions,
//!   duct lengths) with fiber-distance queries;
//! * [`synth`] — a deterministic generator of synthetic metro fiber maps.
//!   Azure's real maps are proprietary; the generator reproduces their
//!   *stated statistics* (5–20 DC regions spanning tens of km, dense duct
//!   meshes with abundant dark fiber, hub pairs 4–24 km apart) so that all
//!   downstream algorithms exercise the same regime. The DC placement
//!   procedure is the paper's own randomized policy from §6.1;
//! * [`siting`] — service-area analyses for the centralized vs distributed
//!   comparison (Figs. 4–6) and the latency-inflation analysis (Fig. 3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod io;
pub mod map;
pub mod presets;
pub mod reliability;
pub mod siting;
pub mod synth;

pub use map::{FiberMap, Region, SiteId, SiteKind};
pub use synth::{MetroParams, PlacementParams};
