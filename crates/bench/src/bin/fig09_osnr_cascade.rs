//! Figure 9 — OSNR penalty vs. number of on-path amplifiers.
//!
//! Paper shape: the first amplifier costs its ~4.5 dB noise figure and
//! every doubling of the cascade costs ~3 dB more; the ~9 dB amplifier
//! budget admits at most 3 amplifiers end-to-end (TC2).

use iris_optics::osnr::{cascade_penalty_default_db, max_amplifiers_within_budget};
use iris_optics::{AMPLIFIER_NOISE_FIGURE_DB, AMPLIFIER_OSNR_BUDGET_DB};

fn main() {
    println!("# amplifiers  OSNR penalty (dB)");
    let mut rows = Vec::new();
    for n in 1..=8 {
        let p = cascade_penalty_default_db(n);
        println!("{n:>11}  {p:>6.2}");
        rows.push(serde_json::json!({ "amplifiers": n, "penalty_db": p }));
    }
    let max = max_amplifiers_within_budget(AMPLIFIER_OSNR_BUDGET_DB, AMPLIFIER_NOISE_FIGURE_DB);
    println!("\namplifier budget: {AMPLIFIER_OSNR_BUDGET_DB:.1} dB");
    println!("max amplifiers within budget: {max} (paper: 3 end-to-end)");
    println!(
        "doubling cost: {:.2} dB (paper: ~3 dB)",
        cascade_penalty_default_db(4) - cascade_penalty_default_db(2)
    );

    iris_bench::write_results(
        "fig09_osnr_cascade",
        &serde_json::json!({
            "rows": rows,
            "budget_db": AMPLIFIER_OSNR_BUDGET_DB,
            "max_amplifiers": max,
            "paper_claim": "first amp ~4.5 dB, +3 dB per doubling, max 3 amps end-to-end",
        }),
    );
}
