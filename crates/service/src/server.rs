//! The thread-per-connection TCP server.
//!
//! One listener thread accepts connections and hands each to its own
//! handler thread. Read requests are answered from the epoch-published
//! [`SnapshotCell`] without ever touching the write path; write requests
//! go through a bounded queue to a single mutator thread that owns the
//! [`Controller`], region and provisioning. The mutator gathers a short
//! batch (the coalesce window), keeps only the *last* `UpdateDemand` per
//! DC pair, applies the batch, and publishes one new snapshot per batch.
//! When the queue is full the connection thread answers immediately with
//! [`IrisError::Overloaded`] instead of blocking the socket.

use crate::api::{
    AllocEntry, HealthInfo, PathInfo, PlanSummary, Request, Response, TopologySummary,
};
use crate::frame::{read_frame, write_frame, FrameEvent};
use crate::recovery::{self, ControlMachine, CutReply, ReplayStats};
use crate::state::{SnapshotCell, StateSnapshot};
use crate::wal::{DurableState, Wal};
use iris_control::Controller;
use iris_errors::{IrisError, IrisResult};
use iris_fibermap::Region;
use iris_netgraph::EdgeId;
use iris_planner::{plan_iris, DesignGoals};
use iris_telemetry::labeled;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Listen address. Port 0 picks an ephemeral port (see
    /// [`ServiceHandle::local_addr`]).
    pub addr: String,
    /// Planner cut tolerance `k` the region is provisioned for.
    pub cuts: usize,
    /// Bounded mutator-queue capacity; a full queue answers writes with
    /// [`IrisError::Overloaded`].
    pub queue_capacity: usize,
    /// How long the mutator waits after the first write of a batch to
    /// gather (and coalesce) more, ms.
    pub coalesce_window_ms: u64,
    /// Per-connection socket read timeout, ms. Bounds how long a handler
    /// thread can go without noticing a shutdown.
    pub read_timeout_ms: u64,
    /// Durability directory. When set, every applied write batch is
    /// appended + fsync'd to a write-ahead log here before its snapshot
    /// is published, and a restarted server recovers the pre-crash state
    /// from it. `None` keeps the server memory-only.
    pub wal_dir: Option<String>,
    /// Compact the log into a snapshot every this many batches
    /// (0 = never compact). Ignored without `wal_dir`.
    pub snapshot_every: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7117".to_owned(),
            cuts: 1,
            queue_capacity: 64,
            coalesce_window_ms: 2,
            read_timeout_ms: 50,
            wal_dir: None,
            snapshot_every: 64,
        }
    }
}

impl ServiceConfig {
    /// The backoff suggested to clients hitting a full queue: long
    /// enough for at least one batch to drain.
    #[must_use]
    pub fn retry_after_ms(&self) -> u64 {
        10 + 2 * self.coalesce_window_ms
    }
}

/// One queued write.
enum WriteOp {
    Update {
        a: usize,
        b: usize,
        circuits: u32,
    },
    Cut {
        cuts: Vec<EdgeId>,
        reply: mpsc::Sender<CutReply>,
    },
}

/// State shared by the listener, handler threads and the mutator.
struct Shared {
    cell: SnapshotCell,
    /// Static plan summary; `epoch` is patched per read.
    plan: PlanSummary,
    huts: usize,
    dc_count: usize,
    edge_count: usize,
    retry_after_ms: u64,
    read_timeout_ms: u64,
    shutdown: AtomicBool,
    queue_depth: AtomicUsize,
    overloaded: AtomicU64,
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServiceHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    replay: Option<ReplayStats>,
    accept: Option<JoinHandle<()>>,
    mutator: Option<JoinHandle<()>>,
}

impl ServiceHandle {
    /// The bound listen address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The currently published state snapshot (what readers see).
    #[must_use]
    pub fn current_snapshot(&self) -> Arc<StateSnapshot> {
        self.shared.cell.load()
    }

    /// What WAL recovery replayed at startup. `None` when the server
    /// runs without a `wal_dir`.
    #[must_use]
    pub fn replay_stats(&self) -> Option<&ReplayStats> {
        self.replay.as_ref()
    }

    /// Stop accepting, stop the mutator, and join both threads. Handler
    /// threads exit on their next read timeout or client disconnect.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        if let Ok(mut s) = TcpStream::connect(self.local_addr) {
            let _ = s.flush();
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.mutator.take() {
            let _ = h.join();
        }
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Plan the region, boot the controller — from the `wal_dir`'s durable
/// state when there is one (replaying WAL-after-snapshot), else seeded
/// with one circuit per reachable DC pair — bind the listener and start
/// serving.
///
/// # Errors
///
/// [`IrisError::Io`] if the address cannot be bound or the WAL cannot be
/// opened; [`IrisError::Corrupt`] / [`IrisError::ReplayFailed`] if the
/// durable state cannot be recovered (see [`crate::recovery`]).
pub fn serve(region: Region, config: &ServiceConfig) -> IrisResult<ServiceHandle> {
    let goals = DesignGoals::with_cuts(config.cuts);
    let plan = plan_iris(&region, &goals);
    let controller = Controller::for_region(&region, &goals);

    // Boot via the recovery path in both cases: with an empty durable
    // state it reproduces the fresh-boot seed (one circuit per reachable
    // pair at epoch 0), so a recovered server and a new one share one
    // code path by construction.
    let (wal, durable) = match &config.wal_dir {
        Some(dir) => {
            let (wal, durable) = Wal::open(Path::new(dir))?;
            (Some(wal), durable)
        }
        None => (None, DurableState::empty()),
    };
    let (boot, active_cuts, stats) =
        recovery::recover(&region, &goals, &plan.provisioning, &controller, &durable)?;
    let replay = config.wal_dir.as_ref().map(|_| stats);

    let plan_summary = PlanSummary {
        epoch: 0,
        dcs: region.dcs.len(),
        ducts: region.map.duct_count(),
        used_ducts: plan.provisioning.used_edges().len(),
        cut_tolerance: goals.max_cuts,
        scenarios_examined: plan.provisioning.scenarios_examined,
        dc_transceivers: plan.dc_transceivers,
        fiber_pair_spans: plan.total_fiber_pair_spans(),
        oss_ports: plan.oss_ports(),
        feasible: plan.is_feasible(),
    };

    let listener = TcpListener::bind(&config.addr).map_err(|e| IrisError::Io {
        detail: format!("cannot bind {}: {e}", config.addr),
    })?;
    let local_addr = listener.local_addr().map_err(|e| IrisError::Io {
        detail: format!("cannot resolve listen address: {e}"),
    })?;

    let shared = Arc::new(Shared {
        cell: SnapshotCell::new(boot),
        plan: plan_summary,
        huts: region.map.huts().len(),
        dc_count: region.dcs.len(),
        edge_count: region.map.duct_count(),
        retry_after_ms: config.retry_after_ms(),
        read_timeout_ms: config.read_timeout_ms,
        shutdown: AtomicBool::new(false),
        queue_depth: AtomicUsize::new(0),
        overloaded: AtomicU64::new(0),
    });

    let (tx, rx) = mpsc::sync_channel::<WriteOp>(config.queue_capacity.max(1));

    let mutator = {
        let shared = Arc::clone(&shared);
        let provisioning = plan.provisioning.clone();
        let window = Duration::from_millis(config.coalesce_window_ms);
        let snapshot_every = config.snapshot_every;
        std::thread::spawn(move || {
            let machine = ControlMachine::new(
                &region,
                &goals,
                &provisioning,
                &controller,
                active_cuts,
                wal,
                snapshot_every,
            );
            mutator_loop(machine, &rx, &shared, window);
        })
    };

    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let shared = Arc::clone(&shared);
                let tx = tx.clone();
                std::thread::spawn(move || handle_connection(&stream, &shared, &tx));
            }
        })
    };

    Ok(ServiceHandle {
        local_addr,
        shared,
        replay,
        accept: Some(accept),
        mutator: Some(mutator),
    })
}

/// The single writer: pop a write, gather the coalesce window, apply the
/// batch through the [`ControlMachine`] (which logs it to the WAL before
/// handing the snapshot back), publish one new snapshot.
fn mutator_loop(
    mut machine: ControlMachine<'_>,
    rx: &Receiver<WriteOp>,
    shared: &Shared,
    window: Duration,
) {
    let telemetry = iris_telemetry::global();

    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let first = match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(op) => op,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        };
        let mut batch = vec![first];
        if !window.is_zero() {
            std::thread::sleep(window);
        }
        while let Ok(op) = rx.try_recv() {
            batch.push(op);
        }
        shared.queue_depth.fetch_sub(batch.len(), Ordering::SeqCst);
        telemetry
            .gauge("iris_service_queue_depth")
            .set(shared.queue_depth.load(Ordering::SeqCst) as i64);

        // Coalesce: only the last UpdateDemand per pair survives.
        let mut updates: BTreeMap<(usize, usize), u32> = BTreeMap::new();
        let mut cuts_ops: Vec<(Vec<EdgeId>, mpsc::Sender<CutReply>)> = Vec::new();
        let mut coalesced_now = 0u64;
        for op in batch {
            match op {
                WriteOp::Update { a, b, circuits } => {
                    if updates.insert((a, b), circuits).is_some() {
                        coalesced_now += 1;
                    }
                }
                WriteOp::Cut { cuts, reply } => cuts_ops.push((cuts, reply)),
            }
        }

        let prev = shared.cell.load();
        let only_cuts: Vec<Vec<EdgeId>> = cuts_ops.iter().map(|(c, _)| c.clone()).collect();
        match machine.apply_batch(&prev, &updates, coalesced_now, &only_cuts) {
            Ok(result) => {
                for ((_, reply), outcome) in cuts_ops.into_iter().zip(result.cut_replies) {
                    let _ = reply.send(outcome);
                }
                let Some(next) = result.snapshot else {
                    continue; // all no-ops: no epoch consumed, nothing published
                };
                let applied = next.writes_applied - prev.writes_applied;
                telemetry.gauge("iris_service_epoch").set(next.epoch as i64);
                telemetry
                    .counter("iris_service_writes_applied_total")
                    .add(applied);
                telemetry
                    .counter("iris_service_coalesced_total")
                    .add(coalesced_now);
                shared.cell.store(Arc::new(next));
            }
            Err(e) => {
                // The WAL could not be written: accepting more writes
                // would let acknowledged state evaporate on the next
                // crash, so fail loudly and stop the server.
                for (_, reply) in cuts_ops {
                    let _ = reply.send(CutReply::Failed(e.clone()));
                }
                telemetry.counter("iris_service_wal_errors_total").inc();
                shared.shutdown.store(true, Ordering::SeqCst);
                return;
            }
        }
    }
}

/// Serve one connection until EOF, a framing error, or shutdown.
fn handle_connection(stream: &TcpStream, shared: &Shared, tx: &SyncSender<WriteOp>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(shared.read_timeout_ms.max(1))));
    // Replies are small frames on a request/reply socket: without
    // NODELAY they sit out Nagle + delayed-ACK (~40 ms per call).
    let _ = stream.set_nodelay(true);
    let telemetry = iris_telemetry::global();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match read_frame(&mut &*stream) {
            Ok(FrameEvent::Idle) => continue,
            Ok(FrameEvent::Eof) => return,
            Ok(FrameEvent::Frame(payload)) => {
                let start = Instant::now();
                let (op, response) = match crate::api::decode_request(&payload) {
                    Ok(req) => {
                        let op = req.op();
                        (op, handle_request(req, shared, tx))
                    }
                    Err(e) => ("invalid", Response::Error(e)),
                };
                telemetry
                    .counter(&labeled("iris_service_requests_total", "op", op))
                    .inc();
                telemetry
                    .histogram(&labeled("iris_service_latency_ms", "op", op))
                    .record(start.elapsed().as_secs_f64() * 1e3);
                if send_response(stream, &response).is_err() {
                    return;
                }
            }
            Err(e) => {
                // The stream state is unknown after a framing error:
                // answer best-effort, then close.
                let _ = send_response(stream, &Response::Error(e));
                return;
            }
        }
    }
}

fn send_response(stream: &TcpStream, response: &Response) -> IrisResult<()> {
    let bytes = crate::api::encode_response(response)?;
    write_frame(&mut &*stream, &bytes)
}

/// Dispatch one decoded request.
fn handle_request(req: Request, shared: &Shared, tx: &SyncSender<WriteOp>) -> Response {
    match req {
        Request::GetPlan => {
            let snap = shared.cell.load();
            let mut plan = shared.plan.clone();
            plan.epoch = snap.epoch;
            Response::Plan(plan)
        }
        Request::GetTopology => {
            let snap = shared.cell.load();
            Response::Topology(TopologySummary {
                epoch: snap.epoch,
                dcs: shared.dc_count,
                huts: shared.huts,
                ducts: shared.edge_count,
                active_cuts: snap.active_cuts.clone(),
                allocation: snap
                    .allocation
                    .iter()
                    .map(|(&(a, b), &circuits)| AllocEntry { a, b, circuits })
                    .collect(),
                quarantined: snap.quarantined.clone(),
            })
        }
        Request::QueryPath { a, b } => match normalize_pair(a, b, shared.dc_count) {
            Err(e) => Response::Error(e),
            Ok((a, b)) => {
                let snap = shared.cell.load();
                match snap.paths.get(&(a, b)) {
                    Some(p) => Response::Path(PathInfo {
                        a,
                        b,
                        nodes: p.nodes.clone(),
                        edges: p.edges.clone(),
                        length_km: p.length_km,
                        rtt_ms: iris_geo::rtt_ms(p.length_km),
                        circuits: snap.allocation.get(&(a, b)).copied().unwrap_or(0),
                        epoch: snap.epoch,
                    }),
                    None => Response::Error(IrisError::Unreachable {
                        what: format!("DC {a} -> DC {b} with cuts {:?}", snap.active_cuts),
                    }),
                }
            }
        },
        Request::UpdateDemand { a, b, circuits } => match normalize_pair(a, b, shared.dc_count) {
            Err(e) => Response::Error(e),
            Ok((a, b)) => enqueue(shared, tx, WriteOp::Update { a, b, circuits })
                .map_or_else(Response::Error, |depth| Response::DemandAccepted {
                    queue_depth: depth,
                }),
        },
        Request::ReportFiberCut { cuts } => {
            if cuts.is_empty() {
                return Response::Error(IrisError::InvalidInput {
                    detail: "ReportFiberCut needs at least one duct id".to_owned(),
                });
            }
            if let Some(&bad) = cuts.iter().find(|&&c| c >= shared.edge_count) {
                return Response::Error(IrisError::InvalidInput {
                    detail: format!(
                        "cut duct {bad} out of range (region has {} ducts)",
                        shared.edge_count
                    ),
                });
            }
            let (reply_tx, reply_rx) = mpsc::channel();
            if let Err(e) = enqueue(
                shared,
                tx,
                WriteOp::Cut {
                    cuts,
                    reply: reply_tx,
                },
            ) {
                return Response::Error(e);
            }
            match reply_rx.recv() {
                Ok(CutReply::Applied(summary)) => Response::Recovery(summary),
                Ok(CutReply::AlreadySevered { active_cuts }) => {
                    Response::CutAlreadyActive { active_cuts }
                }
                Ok(CutReply::Failed(e)) => Response::Error(e),
                Err(_) => Response::Error(IrisError::Io {
                    detail: "mutator exited before recovery completed".to_owned(),
                }),
            }
        }
        Request::Health => {
            let snap = shared.cell.load();
            Response::Health(HealthInfo {
                epoch: snap.epoch,
                queue_depth: shared.queue_depth.load(Ordering::SeqCst),
                writes_applied: snap.writes_applied,
                coalesced: snap.coalesced,
                overloaded: shared.overloaded.load(Ordering::SeqCst),
                active_cuts: snap.active_cuts.clone(),
                quarantined: snap.quarantined.len(),
                last_recovery: snap.last_recovery.clone(),
            })
        }
        Request::MetricsSnapshot => Response::Metrics {
            prometheus: iris_telemetry::global().snapshot().to_prometheus_text(),
        },
    }
}

/// Try to enqueue a write; a full queue is typed backpressure.
fn enqueue(shared: &Shared, tx: &SyncSender<WriteOp>, op: WriteOp) -> IrisResult<usize> {
    match tx.try_send(op) {
        Ok(()) => {
            let depth = shared.queue_depth.fetch_add(1, Ordering::SeqCst) + 1;
            iris_telemetry::global()
                .gauge("iris_service_queue_depth")
                .set(depth as i64);
            Ok(depth)
        }
        Err(TrySendError::Full(_)) => {
            shared.overloaded.fetch_add(1, Ordering::SeqCst);
            iris_telemetry::global()
                .counter("iris_service_overloaded_total")
                .inc();
            Err(IrisError::Overloaded {
                retry_after_ms: shared.retry_after_ms,
            })
        }
        Err(TrySendError::Disconnected(_)) => Err(IrisError::Io {
            detail: "mutator queue is closed".to_owned(),
        }),
    }
}

/// Validate and order a DC pair as `(min, max)`.
fn normalize_pair(a: usize, b: usize, dc_count: usize) -> IrisResult<(usize, usize)> {
    if a == b {
        return Err(IrisError::InvalidInput {
            detail: format!("pair endpoints must differ (got {a}, {b})"),
        });
    }
    let hi = a.max(b);
    if hi >= dc_count {
        return Err(IrisError::InvalidInput {
            detail: format!("DC {hi} out of range (region has {dc_count} DCs)"),
        });
    }
    Ok((a.min(b), a.max(b)))
}
