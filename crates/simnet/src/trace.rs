//! Recorded workloads: the arrival/change sequence of a simulation,
//! decoupled from its dynamics.
//!
//! A [`FlowTrace`] is everything about a [`crate::Simulator`] run that
//! does *not* depend on how fast flows drain: when flows arrive, which
//! DC pair and size each one drew (or that the capacity clamp thinned
//! the arrival away), and how much traffic each matrix change moved.
//! [`crate::Simulator::trace`] materializes one in O(flows) without
//! running any water-filling; [`FlowTrace::replay`] feeds it back
//! through the exact event loop and reproduces
//! [`crate::Simulator::run`] float-for-float.
//!
//! The split is what makes decomposed (per-link) flow simulation
//! honest: `iris-flowsim` estimates FCTs from the *same trace* the
//! exact simulator would consume, so a validation run compares two
//! estimators over one workload rather than two workloads.

use crate::engine::{drive, CapacityEvent, EventSource, FabricModel, FlowRecord};
use crate::topology::SimTopology;
use serde::{Deserialize, Serialize};

/// One admitted flow in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceFlow {
    /// Unordered DC pair (i < j).
    pub pair: (usize, usize),
    /// Flow size, bytes.
    pub size_bytes: f64,
}

/// One arrival *tick* of the Poisson process. `flow` is `None` when the
/// capacity clamp thinned the arrival away — the tick still advanced
/// simulated time and consumed RNG draws, so replay must observe it to
/// stay float-identical to the live run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceArrival {
    /// Arrival time, s.
    pub start_s: f64,
    /// The admitted flow, or `None` for a thinned arrival.
    pub flow: Option<TraceFlow>,
}

/// A fully materialized simulation workload: every arrival tick, every
/// matrix-change magnitude, and the scheduling constants needed to
/// replay them. Serializable — this is the unit a distributed
/// flow-simulation job regenerates from a [`crate::SimConfig`] recipe
/// (shipping the recipe, not the trace, keeps jobs under the wire
/// frame cap at 10⁶⁺ flows).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowTrace {
    /// Data centers in the topology the trace was generated against.
    pub n_dcs: usize,
    /// Simulated seconds.
    pub duration_s: f64,
    /// Seconds between matrix changes (`None` = static traffic).
    pub change_interval_s: Option<f64>,
    /// Fabric behaviour (reconfiguration outages or EPS).
    pub fabric: FabricModel,
    /// Scheduled capacity disturbances.
    pub capacity_events: Vec<CapacityEvent>,
    /// Every arrival tick, in time order.
    pub arrivals: Vec<TraceArrival>,
    /// Moved-traffic fraction of each matrix change, in time order.
    pub change_fractions: Vec<f64>,
}

impl FlowTrace {
    /// Number of admitted flows (thinned arrivals excluded).
    #[must_use]
    pub fn flow_count(&self) -> usize {
        self.arrivals.iter().filter(|a| a.flow.is_some()).count()
    }

    /// Total admitted bytes.
    #[must_use]
    pub fn total_bytes(&self) -> f64 {
        self.arrivals
            .iter()
            .filter_map(|a| a.flow)
            .map(|f| f.size_bytes)
            .sum()
    }

    /// Run the exact fluid simulation over this trace. Produces the
    /// same records, in the same order, with bit-identical floats, as
    /// the [`crate::Simulator::run`] call that would have generated the
    /// trace — both feed the engine's single event loop; only the
    /// source of arrivals differs.
    ///
    /// # Panics
    ///
    /// Panics if `topo` does not have the DC count the trace was
    /// generated against.
    #[must_use]
    pub fn replay(&self, topo: &SimTopology) -> Vec<FlowRecord> {
        assert_eq!(
            topo.n_dcs, self.n_dcs,
            "trace was generated for a {}-DC topology",
            self.n_dcs
        );
        let mut src = TraceSource {
            trace: self,
            arrival_idx: 0,
            change_idx: 0,
            next_change: self.change_interval_s.unwrap_or(f64::INFINITY),
        };
        drive(
            topo,
            self.duration_s,
            self.fabric,
            &self.capacity_events,
            &mut src,
        )
    }
}

/// List-backed [`EventSource`]: replays a recorded trace through the
/// shared event loop.
struct TraceSource<'a> {
    trace: &'a FlowTrace,
    arrival_idx: usize,
    change_idx: usize,
    next_change: f64,
}

impl EventSource for TraceSource<'_> {
    fn next_arrival(&self) -> f64 {
        self.trace
            .arrivals
            .get(self.arrival_idx)
            .map_or(f64::INFINITY, |a| a.start_s)
    }

    fn next_change(&self) -> f64 {
        self.next_change
    }

    fn pop_arrival(&mut self, _now: f64) -> Option<((usize, usize), f64)> {
        let arrival = &self.trace.arrivals[self.arrival_idx];
        self.arrival_idx += 1;
        arrival.flow.map(|f| (f.pair, f.size_bytes))
    }

    fn pop_change(&mut self, now: f64) -> f64 {
        let moved = self
            .trace
            .change_fractions
            .get(self.change_idx)
            .copied()
            .unwrap_or(0.0);
        self.change_idx += 1;
        self.next_change = now + self.change_interval_s();
        moved
    }
}

impl TraceSource<'_> {
    fn change_interval_s(&self) -> f64 {
        self.trace.change_interval_s.expect("change scheduled")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{FabricModel, SimConfig, Simulator};
    use crate::traffic::{ChangeModel, TrafficMatrix};
    use crate::workloads::FlowSizeDist;

    fn config(fabric: FabricModel, seed: u64) -> SimConfig {
        SimConfig {
            duration_s: 4.0,
            utilization: 0.6,
            flow_sizes: FlowSizeDist::facebook_web(),
            change_interval_s: Some(0.8),
            change_model: ChangeModel::Unbounded,
            fabric,
            capacity_events: Vec::new(),
            seed,
        }
    }

    #[test]
    fn replay_is_bit_identical_to_run() {
        for fabric in [FabricModel::Eps, FabricModel::Iris { outage_s: 0.07 }] {
            for seed in [7, 1234] {
                let topo = SimTopology::hub_and_spoke(5, 1.0);
                let matrix = TrafficMatrix::heavy_tailed(5, 11);
                let cfg = config(fabric, seed);
                let live = Simulator::new(topo.clone(), matrix.clone(), cfg.clone()).run();
                let trace = Simulator::new(topo.clone(), matrix, cfg).trace();
                let replayed = trace.replay(&topo);
                assert_eq!(live.len(), replayed.len());
                for (a, b) in live.iter().zip(&replayed) {
                    assert_eq!(a.pair, b.pair);
                    assert!(a.size_bytes == b.size_bytes, "{a:?} vs {b:?}");
                    assert!(a.start_s == b.start_s, "{a:?} vs {b:?}");
                    assert!(a.fct_s == b.fct_s, "{a:?} vs {b:?}");
                }
            }
        }
    }

    #[test]
    fn trace_survives_serde_round_trip() {
        let topo = SimTopology::hub_and_spoke(4, 1.0);
        let matrix = TrafficMatrix::heavy_tailed(4, 3);
        let trace = Simulator::new(topo.clone(), matrix, config(FabricModel::Eps, 9)).trace();
        let json = serde_json::to_string(&trace).expect("serialize");
        let back: FlowTrace = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(trace, back);
        assert_eq!(trace.replay(&topo), back.replay(&topo));
    }

    #[test]
    fn trace_counts_changes_and_flows() {
        let topo = SimTopology::hub_and_spoke(4, 1.0);
        let matrix = TrafficMatrix::heavy_tailed(4, 3);
        let trace = Simulator::new(topo, matrix, config(FabricModel::Eps, 9)).trace();
        // duration 4.0, interval 0.8 → changes at 0.8,1.6,2.4,3.2.
        assert_eq!(trace.change_fractions.len(), 4);
        assert!(trace.flow_count() > 100);
        assert!(trace.total_bytes() > 0.0);
        for pair in trace.arrivals.windows(2) {
            assert!(pair[0].start_s <= pair[1].start_s, "arrivals out of order");
        }
    }
}
