//! Seeded workload engine: families of DC-pair traffic matrices for
//! robust topology engineering.
//!
//! The hose model ([`crate::topology::provision`]) plans for the *worst*
//! matrix consistent with per-DC aggregate capacities. Operators instead
//! often plan one topology robust to a *set* of concrete matrices —
//! forecast snapshots, observed shifts, stress cases (METTEOR, COUDER).
//! This module generates such sets and provisions for them:
//!
//! * a flow-level base demand in the parsimon-eval flowgen idiom: per
//!   DC pair, flow sizes are inverse-transform sampled from a
//!   piecewise-linear [`Ecdf`] and inter-arrival gaps are lognormal
//!   ([`FlowGen`]), which yields a heavy-tailed offered-rate matrix;
//! * three seeded *families* of matrices derived from that base
//!   ([`FamilyKind`]): `diurnal` phase-shifts every pair over the family,
//!   `burst` multiplies a seeded subset of pairs far past their steady
//!   rate, and `hotspot` concentrates traffic on one hot DC per matrix;
//! * a calibration step ([`MatrixFamily::build`]) that scales the base
//!   matrix so its maximum link load is a target fraction of the
//!   hose-provisioned capacity, making families comparable across
//!   regions;
//! * [`provision_robust`] — Algorithm 1 with the hose max-flow replaced
//!   by the family maximum: every duct is provisioned for the worst load
//!   any family matrix places on it in any failure scenario. Like the
//!   hose sweep it reuses the [`ScenarioEngine`]'s incremental-Dijkstra
//!   path cache and is bit-identical for every thread count.
//!
//! Everything here is a pure function of its seed: the same
//! [`FamilySpec`] always produces the same matrices, so the robust
//! experiment artifacts are byte-reproducible.

use crate::engine::{self, ScenarioEngine, ScenarioView};
use crate::goals::DesignGoals;
use crate::paths::scenario_paths;
use crate::topology::{provision_with_threads, InfeasiblePair, Provisioning};
use iris_fibermap::Region;
use iris_netgraph::{EdgeId, FailureScenarios};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

/// A piecewise-linear empirical CDF over flow sizes in bytes.
///
/// Anchors are `(size_bytes, cumulative_probability)` points; sampling
/// interpolates between them in the log-size domain, which matches how
/// flow-size distributions are usually published (points on a log-x CDF
/// plot). The planner carries its own copy rather than reusing the
/// simulator's because `iris-simnet` depends on this crate, not the
/// other way around.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    /// `(size_bytes, cum_prob)`, sizes and probabilities both strictly
    /// increasing, last probability 1.0.
    anchors: Vec<(f64, f64)>,
}

impl Ecdf {
    /// Build an ECDF from `(size_bytes, cum_prob)` anchors.
    ///
    /// # Panics
    ///
    /// Panics unless sizes are positive and strictly increasing,
    /// probabilities are in `(0, 1]` and strictly increasing, and the
    /// last probability is 1.0.
    #[must_use]
    pub fn from_anchors(anchors: &[(f64, f64)]) -> Self {
        assert!(!anchors.is_empty(), "an ECDF needs at least one anchor");
        for w in anchors.windows(2) {
            assert!(
                w[0].0 < w[1].0 && w[0].1 < w[1].1,
                "ECDF anchors must be strictly increasing"
            );
        }
        assert!(anchors[0].0 > 0.0, "flow sizes must be positive");
        assert!(
            anchors[0].1 > 0.0 && (anchors[anchors.len() - 1].1 - 1.0).abs() < 1e-9,
            "cumulative probabilities must lie in (0, 1] and end at 1"
        );
        Self {
            anchors: anchors.to_vec(),
        }
    }

    /// The default DC-interconnect mix: mostly small RPC-sized flows by
    /// count, with replication and bulk-copy elephants carrying most of
    /// the bytes.
    #[must_use]
    pub fn dc_interconnect() -> Self {
        Self::from_anchors(&[
            (500.0, 0.15),
            (2_000.0, 0.40),
            (10_000.0, 0.60),
            (100_000.0, 0.78),
            (1_000_000.0, 0.90),
            (10_000_000.0, 0.97),
            (100_000_000.0, 1.0),
        ])
    }

    /// Inverse CDF: the flow size at cumulative probability `u` (clamped
    /// to `[0, 1]`), interpolating between anchors in the log-size
    /// domain.
    #[must_use]
    pub fn quantile(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        let first = self.anchors[0];
        if u <= first.1 {
            return first.0;
        }
        let last = self.anchors[self.anchors.len() - 1];
        if u >= last.1 {
            return last.0;
        }
        for w in self.anchors.windows(2) {
            let ((s0, p0), (s1, p1)) = (w[0], w[1]);
            if u <= p1 {
                let t = (u - p0) / (p1 - p0);
                return (s0.ln() + t * (s1.ln() - s0.ln())).exp();
            }
        }
        self.anchors[self.anchors.len() - 1].0
    }

    /// Draw one flow size.
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        self.quantile(rng.random::<f64>())
    }

    /// Mean flow size in bytes, by midpoint integration of the quantile
    /// function.
    #[must_use]
    pub fn mean_bytes(&self) -> f64 {
        const STEPS: usize = 1024;
        (0..STEPS)
            .map(|i| self.quantile((i as f64 + 0.5) / STEPS as f64))
            .sum::<f64>()
            / STEPS as f64
    }
}

/// A seeded flow generator for one DC pair: ECDF-sampled sizes,
/// lognormal inter-arrival gaps.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowGen {
    /// Flow-size distribution.
    pub sizes: Ecdf,
    /// Mean of the log of the inter-arrival gap (log-seconds).
    pub gap_mu: f64,
    /// Standard deviation of the log of the inter-arrival gap.
    pub gap_sigma: f64,
}

/// One standard-normal draw via Box–Muller (the vendored `rand` stub has
/// no normal distribution).
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1 = 1.0 - rng.random::<f64>(); // (0, 1]: ln never sees 0
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl FlowGen {
    /// Offered rate in Gbps: sample `flows` sizes and gaps and divide
    /// total bits by total time. A pure function of the seed.
    #[must_use]
    pub fn offered_gbps(&self, seed: u64, flows: usize) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bytes = 0.0f64;
        let mut seconds = 0.0f64;
        for _ in 0..flows.max(1) {
            bytes += self.sizes.sample(&mut rng);
            seconds += (self.gap_mu + self.gap_sigma * standard_normal(&mut rng)).exp();
        }
        bytes * 8.0 / seconds.max(1e-12) / 1e9
    }
}

/// The three seeded matrix-family shapes.
///
/// Each kind has a *structural* layer that depends only on the spec's
/// `seed` (which pairs are burst-prone, each pair's diurnal phase, the
/// hotspot rotation order — properties of the workload that are stable
/// day to day) and a *shock* layer drawn per matrix (which prone pair
/// bursts today, today's amplitude, today's boost). [`FamilySpec::held_out`]
/// re-rolls only the shock layer, modeling "same network, different
/// day" surprise traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FamilyKind {
    /// Time-of-day shift: every pair's rate follows a triangle wave over
    /// the family with a structural per-pair phase, so different
    /// matrices peak on different pairs. Stays inside the hose envelope.
    Diurnal,
    /// Transient bursts: a structural ~25% of pairs are burst-prone;
    /// each matrix multiplies each prone pair, with probability ½, by
    /// 4–8x its steady rate — surprise traffic that can exceed the
    /// per-DC aggregates the hose model plans for.
    Burst,
    /// Skewed hotspot: each matrix concentrates traffic on one hot DC
    /// (boosting every pair that touches it, damping the rest), cycling
    /// through DCs in a structural order.
    Hotspot,
}

impl FamilyKind {
    /// The CLI/JSON name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FamilyKind::Diurnal => "diurnal",
            FamilyKind::Burst => "burst",
            FamilyKind::Hotspot => "hotspot",
        }
    }

    /// All kinds, in the canonical (CLI listing) order.
    #[must_use]
    pub fn all() -> [FamilyKind; 3] {
        [FamilyKind::Diurnal, FamilyKind::Burst, FamilyKind::Hotspot]
    }
}

impl FromStr for FamilyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "diurnal" => Ok(FamilyKind::Diurnal),
            "burst" => Ok(FamilyKind::Burst),
            "hotspot" => Ok(FamilyKind::Hotspot),
            other => Err(format!(
                "unknown matrix family '{other}' (expected diurnal, burst or hotspot)"
            )),
        }
    }
}

/// XOR-folded into a spec's shock salt to derive its held-out
/// (surprise) twin.
const HELD_OUT_SALT: u64 = 0x5EED_0F57_0B57_AC1E;

/// A matrix-family specification: which shape, how many matrices, which
/// seed, and the calibration target.
///
/// The builder API round-trips through the CLI spec syntax
/// `KIND[:COUNT][@SEED]`:
///
/// ```
/// use iris_planner::workload::{FamilyKind, FamilySpec};
///
/// let spec = FamilySpec::new(FamilyKind::Burst, 6, 42).with_target_load(0.5);
/// assert_eq!(spec.to_string(), "burst:6@42");
/// assert_eq!(spec.target_max_link_load, 0.5);
///
/// let parsed: FamilySpec = "burst:6@42".parse().unwrap();
/// assert_eq!(parsed.kind, FamilyKind::Burst);
/// assert_eq!((parsed.count, parsed.seed), (6, 42));
///
/// // Shapes are a pure function of the spec: 6 matrices over 4 DCs,
/// // one rate per unordered pair.
/// let shapes = parsed.shapes(4);
/// assert_eq!(shapes.len(), 6);
/// assert!(shapes.iter().all(|m| m.len() == 6));
/// assert_eq!(shapes, parsed.shapes(4));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilySpec {
    /// Family shape.
    pub kind: FamilyKind,
    /// Matrices in the family.
    pub count: usize,
    /// Seed for the structural layer (base rates, burst-prone pairs,
    /// diurnal phases, hotspot order). The whole family is a pure
    /// function of `(seed, shock)`.
    pub seed: u64,
    /// Calibration target: the base matrix is scaled so its maximum
    /// nominal-route link load is this fraction of the hose-provisioned
    /// capacity on that link.
    pub target_max_link_load: f64,
    /// Salt mixed into the per-matrix *shock* draws only (which prone
    /// pair bursts, today's amplitude/boost). 0 by default; not part of
    /// the CLI spec syntax. [`FamilySpec::held_out`] flips it to produce
    /// surprise matrices with the same structure but fresh shocks.
    pub shock: u64,
}

impl FamilySpec {
    /// A spec with the default calibration target (0.6).
    #[must_use]
    pub fn new(kind: FamilyKind, count: usize, seed: u64) -> Self {
        Self {
            kind,
            count,
            seed,
            target_max_link_load: 0.6,
            shock: 0,
        }
    }

    /// Replace the calibration target (fraction of hose capacity the
    /// base matrix's hottest link is driven to).
    ///
    /// # Panics
    ///
    /// Panics unless `target` is positive and finite.
    #[must_use]
    pub fn with_target_load(mut self, target: f64) -> Self {
        assert!(
            target > 0.0 && target.is_finite(),
            "target max-link-load must be positive"
        );
        self.target_max_link_load = target;
        self
    }

    /// The held-out twin: same structural layer (same base rates,
    /// burst-prone pairs, phases, hotspot order — the workload's stable
    /// shape), fresh shock draws — the "surprise" matrices the robust
    /// experiment evaluates shed against. An involution: calling it
    /// twice returns the original spec.
    #[must_use]
    pub fn held_out(&self) -> Self {
        Self {
            shock: self.shock ^ HELD_OUT_SALT,
            ..self.clone()
        }
    }

    /// The un-calibrated family shapes over `n_dcs` DCs: one rate per
    /// unordered pair (triangular `(a, b)` ascending order, matching
    /// [`iris_fibermap::Region::dcs`] indices), per matrix. Units are
    /// relative offered Gbps from the flowgen base; [`MatrixFamily`]
    /// scales them, and the service load generator / flow simulator
    /// normalize them into pair-selection weights. Pure function of
    /// `(self, n_dcs)`.
    ///
    /// # Panics
    ///
    /// Panics if `n_dcs < 2` or `self.count == 0`.
    #[must_use]
    pub fn shapes(&self, n_dcs: usize) -> Vec<Vec<f64>> {
        assert!(n_dcs >= 2, "a matrix family needs at least two DCs");
        assert!(self.count > 0, "a matrix family needs at least one matrix");
        let base = self.base_gbps(n_dcs);
        let n_pairs = base.len();
        (0..self.count)
            .map(|m| {
                // Shock layer: today's draws. Salted so `held_out()`
                // re-rolls them while the structural layer stands still.
                let mut shock_rng = StdRng::seed_from_u64(
                    self.seed
                        .wrapping_mul(0xA076_1D64_78BD_642F)
                        .wrapping_add((m as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                        ^ self.shock,
                );
                match self.kind {
                    FamilyKind::Diurnal => {
                        // Triangle wave (piecewise linear — no libm sin,
                        // so artifacts stay byte-stable): structural
                        // per-pair phase, matrix index = time of day,
                        // today's amplitude drawn per matrix.
                        let mut phase_rng = StdRng::seed_from_u64(self.seed ^ 0xD1A1);
                        let amplitude = shock_rng.random_range(0.35..0.45);
                        let t = m as f64 / self.count as f64;
                        base.iter()
                            .map(|&b| {
                                let phase: f64 = phase_rng.random();
                                let x = (t + phase).fract();
                                let wave = if x < 0.5 {
                                    4.0 * x - 1.0
                                } else {
                                    3.0 - 4.0 * x
                                };
                                b * (1.0 + amplitude * wave)
                            })
                            .collect()
                    }
                    FamilyKind::Burst => {
                        // Structural burst-prone set; per-matrix coin
                        // and magnitude per prone pair. The factor is
                        // drawn unconditionally to keep rng consumption
                        // independent of the outcomes.
                        let mut prone_rng = StdRng::seed_from_u64(self.seed ^ 0xB0_B5);
                        base.iter()
                            .map(|&b| {
                                let prone = prone_rng.random::<f64>() < 0.25;
                                let bursting = shock_rng.random_bool(0.5);
                                let factor = shock_rng.random_range(4.0..8.0);
                                if prone && bursting {
                                    b * factor
                                } else {
                                    b
                                }
                            })
                            .collect()
                    }
                    FamilyKind::Hotspot => {
                        // Structural DC order shared by the whole family,
                        // so `count >= n_dcs` covers every DC as a
                        // hotspot; today's boost drawn per matrix.
                        let mut order: Vec<usize> = (0..n_dcs).collect();
                        let mut order_rng = StdRng::seed_from_u64(self.seed ^ 0x07_5B07);
                        for i in (1..n_dcs).rev() {
                            order.swap(i, order_rng.random_range(0..i + 1));
                        }
                        let hot = order[m % n_dcs];
                        let boost = shock_rng.random_range(4.0..6.0);
                        let mut shaped = Vec::with_capacity(n_pairs);
                        let mut p = 0;
                        for a in 0..n_dcs {
                            for b in (a + 1)..n_dcs {
                                let f = if a == hot || b == hot { boost } else { 0.5 };
                                shaped.push(base[p] * f);
                                p += 1;
                            }
                        }
                        shaped
                    }
                }
            })
            .collect()
    }

    /// The flowgen base matrix: per pair, an offered rate in Gbps from
    /// ECDF-sampled flow sizes and lognormal inter-arrivals, with a
    /// seeded per-pair log-rate so a few pairs dominate (heavy tail).
    fn base_gbps(&self, n_dcs: usize) -> Vec<f64> {
        let sizes = Ecdf::dc_interconnect();
        let n_pairs = n_dcs * (n_dcs - 1) / 2;
        (0..n_pairs)
            .map(|p| {
                let mut rng = StdRng::seed_from_u64(
                    self.seed
                        .rotate_left(23)
                        .wrapping_add((p as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB)),
                );
                // Per-pair mean log-gap spans ~e^6 in rate: heavy tail.
                let gen = FlowGen {
                    sizes: sizes.clone(),
                    gap_mu: rng.random_range(-9.0..-3.0),
                    gap_sigma: 1.0,
                };
                gen.offered_gbps(rng.random::<u64>(), 64)
            })
            .collect()
    }
}

impl fmt::Display for FamilySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}@{}", self.kind.name(), self.count, self.seed)
    }
}

impl FromStr for FamilySpec {
    type Err = String;

    /// Parse `KIND[:COUNT][@SEED]`, e.g. `burst`, `diurnal:8`,
    /// `hotspot:8@42`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (head, seed) = match s.split_once('@') {
            Some((head, seed)) => (
                head,
                seed.parse::<u64>()
                    .map_err(|_| format!("matrix family '{s}': bad seed '{seed}'"))?,
            ),
            None => (s, 42),
        };
        let (kind, count) = match head.split_once(':') {
            Some((kind, count)) => (
                kind,
                count
                    .parse::<usize>()
                    .map_err(|_| format!("matrix family '{s}': bad count '{count}'"))?,
            ),
            None => (head, 8),
        };
        if count == 0 {
            return Err(format!("matrix family '{s}': count must be positive"));
        }
        Ok(FamilySpec::new(kind.parse()?, count, seed))
    }
}

/// A calibrated family of concrete traffic matrices over one region, in
/// wavelengths.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixFamily {
    /// The spec this family was built from.
    pub spec: FamilySpec,
    n_dcs: usize,
    /// `matrices[m][i][j]` — demand of DC pair `(i, j)` in wavelengths;
    /// only `i < j` entries are populated.
    matrices: Vec<Vec<Vec<f64>>>,
}

impl MatrixFamily {
    /// Build the family for a region: generate the seeded shapes, then
    /// scale them so the *base* matrix's maximum nominal-route link load
    /// is `spec.target_max_link_load` of the hose-provisioned (cut
    /// tolerance 0) capacity on that link. Family modulation rides on
    /// top, so burst and hotspot matrices can exceed the hose envelope —
    /// that is the point.
    ///
    /// # Panics
    ///
    /// Panics if the region has fewer than two DCs or no feasible DC
    /// pair routes any traffic.
    #[must_use]
    pub fn build(region: &Region, goals: &DesignGoals, spec: &FamilySpec) -> Self {
        let n = region.dcs.len();
        let shapes = spec.shapes(n);
        let base = spec.base_gbps(n);

        // Calibration reference: nominal routes + hose capacities.
        let goals0 = DesignGoals {
            max_cuts: 0,
            ..goals.clone()
        };
        let prov0 = provision_with_threads(region, &goals0, 1);
        let (paths, _) = scenario_paths(region, &goals0, &[]);
        let m_edges = region.map.graph().edge_count();
        let mut load = vec![0.0f64; m_edges];
        for p in &paths {
            let d = base[pair_index(n, p.a, p.b)];
            for &e in &p.edges {
                load[e] += d;
            }
        }
        let ratio = load
            .iter()
            .zip(&prov0.edge_capacity_wl)
            .filter(|&(_, &c)| c > 0.0)
            .map(|(&l, &c)| l / c)
            .fold(0.0f64, f64::max);
        assert!(
            ratio > 0.0,
            "matrix family calibration: no feasible DC pair carries traffic"
        );
        let scale = spec.target_max_link_load / ratio;

        let matrices = shapes
            .iter()
            .map(|shape| {
                let mut demands = vec![vec![0.0f64; n]; n];
                let mut p = 0;
                for (i, row) in demands.iter_mut().enumerate() {
                    for cell in row.iter_mut().skip(i + 1) {
                        *cell = shape[p] * scale;
                        p += 1;
                    }
                }
                demands
            })
            .collect();
        Self {
            spec: spec.clone(),
            n_dcs: n,
            matrices,
        }
    }

    /// The matrices, as `demands[i][j]` wavelength grids (`i < j`
    /// populated) — the shape [`crate::topology::supports_matrix`]
    /// takes.
    #[must_use]
    pub fn matrices(&self) -> &[Vec<Vec<f64>>] {
        &self.matrices
    }

    /// Number of matrices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.matrices.len()
    }

    /// Whether the family is empty (it never is, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.matrices.is_empty()
    }

    /// Number of DCs the matrices cover.
    #[must_use]
    pub fn n_dcs(&self) -> usize {
        self.n_dcs
    }

    /// The worst per-DC aggregate demand across the family, as a
    /// fraction of that DC's hose capacity. Values above 1 mean the
    /// family escapes the hose envelope — hose provisioning will shed
    /// such matrices.
    #[must_use]
    pub fn peak_dc_load_ratio(&self, region: &Region) -> f64 {
        let n = self.n_dcs;
        let mut worst = 0.0f64;
        for demands in &self.matrices {
            for dc in 0..n {
                let total: f64 = (0..n)
                    .filter(|&o| o != dc)
                    .map(|o| demands[dc.min(o)][dc.max(o)])
                    .sum();
                let cap = region.capacity_wavelengths(dc) as f64;
                if cap > 0.0 {
                    worst = worst.max(total / cap);
                }
            }
        }
        worst
    }
}

/// Triangular index of unordered pair `(i, j)`, `i < j` — the same dense
/// pair order the [`ScenarioEngine`] assigns slot indices in.
fn pair_index(n: usize, i: usize, j: usize) -> usize {
    debug_assert!(i < j && j < n);
    i * n - i * (i + 1) / 2 + (j - i - 1)
}

/// Per-chunk accumulator of the robust sweep, merged by
/// [`provision_robust_with_threads`] exactly like the hose sweep's.
struct RobustChunk {
    capacity: Vec<f64>,
    infeasible: Vec<InfeasiblePair>,
    scenarios_examined: u64,
    maxload_lookups: u64,
    maxload_evals: u64,
}

/// Robust-provision one contiguous slice of the scenario enumeration.
///
/// `demands_by_pair[m][idx]` is matrix `m`'s demand for engine pair
/// `idx` (triangular order). Per scenario, pairs are grouped by duct via
/// the engine's paths; each duct's load is the *family maximum* of the
/// per-matrix demand sums over its crossing pairs, memoized by pair set
/// just like the hose max-flow (equal pair sets load equally, and across
/// thousands of scenarios the same sets recur constantly).
fn robust_chunk(
    region: &Region,
    goals: &DesignGoals,
    demands_by_pair: &[Vec<f64>],
    chunk: &[Vec<EdgeId>],
) -> RobustChunk {
    let m = region.map.graph().edge_count();
    let mut engine = ScenarioEngine::new(region, goals);
    let mut capacity = vec![0.0f64; m];
    let mut infeasible = Vec::new();
    let mut memo: HashMap<Box<[u32]>, f64> = HashMap::new();
    let mut pairs_on_edge: Vec<Vec<u32>> = vec![Vec::new(); m];
    let mut touched: Vec<EdgeId> = Vec::new();
    let mut maxload_lookups = 0u64;
    let mut maxload_evals = 0u64;

    engine.for_scenarios(chunk, |scenario, view: ScenarioView<'_>| {
        for pair in view.unreachable() {
            infeasible.push(InfeasiblePair {
                pair,
                scenario: scenario.to_vec(),
            });
        }
        for (idx, p) in view.indexed_paths() {
            for &e in &p.edges {
                if pairs_on_edge[e].is_empty() {
                    touched.push(e);
                }
                pairs_on_edge[e].push(idx);
            }
        }
        for &e in &touched {
            let pairs = &pairs_on_edge[e];
            maxload_lookups += 1;
            let load = if let Some(&l) = memo.get(pairs.as_slice()) {
                l
            } else {
                maxload_evals += 1;
                // Ascending pair-index sum per matrix: a fixed f64
                // addition order, so the result (and therefore the whole
                // sweep) is bit-identical however scenarios are chunked.
                let l = demands_by_pair
                    .iter()
                    .map(|d| pairs.iter().map(|&i| d[i as usize]).sum::<f64>())
                    .fold(0.0f64, f64::max);
                memo.insert(pairs.clone().into_boxed_slice(), l);
                l
            };
            if load > capacity[e] {
                capacity[e] = load;
            }
        }
        for e in touched.drain(..) {
            pairs_on_edge[e].clear();
        }
    });

    RobustChunk {
        capacity,
        infeasible,
        scenarios_examined: chunk.len() as u64,
        maxload_lookups,
        maxload_evals,
    }
}

/// Robust Algorithm 1 with the default thread count
/// ([`engine::thread_count`]).
///
/// Instead of the hose worst case, every duct is provisioned for the
/// worst load any matrix in `family` places on it across all failure
/// scenarios — min-cost capacity feasible for *every* family matrix.
///
/// # Panics
///
/// Panics if `family` was built for a different DC count than `region`.
#[must_use]
pub fn provision_robust(
    region: &Region,
    goals: &DesignGoals,
    family: &MatrixFamily,
) -> Provisioning {
    provision_robust_with_threads(region, goals, family, engine::thread_count())
}

/// Robust Algorithm 1 with an explicit thread count.
///
/// The scenario enumeration is split into contiguous chunks exactly like
/// [`provision_with_threads`]; duct capacities merge by elementwise max
/// and infeasible pairs concatenate in chunk (= global scenario) order,
/// so the output is **bit-identical for every thread count**.
///
/// # Panics
///
/// Panics if `family` was built for a different DC count than `region`,
/// or if a worker thread panics.
#[must_use]
pub fn provision_robust_with_threads(
    region: &Region,
    goals: &DesignGoals,
    family: &MatrixFamily,
    threads: usize,
) -> Provisioning {
    let telemetry = iris_telemetry::global();
    let wall = iris_telemetry::Span::enter_ms(telemetry.histogram("iris_planner_robust_wall_ms"));
    region.validate();
    let n = region.dcs.len();
    assert_eq!(
        family.n_dcs, n,
        "matrix family covers {} DCs but the region has {n}",
        family.n_dcs
    );
    let g = region.map.graph();
    let m = g.edge_count();

    // Flatten each matrix into engine pair-index order once, shared by
    // every worker.
    let demands_by_pair: Vec<Vec<f64>> = family
        .matrices
        .iter()
        .map(|demands| {
            let mut flat = Vec::with_capacity(n * n.saturating_sub(1) / 2);
            for (i, row) in demands.iter().enumerate() {
                flat.extend_from_slice(&row[i + 1..]);
            }
            flat
        })
        .collect();

    let scenarios: Vec<Vec<EdgeId>> = FailureScenarios::new(m, goals.max_cuts).collect();
    let threads = threads.max(1).min(scenarios.len().max(1));

    let results: Vec<RobustChunk> = if threads == 1 {
        vec![robust_chunk(region, goals, &demands_by_pair, &scenarios)]
    } else {
        let chunk_size = scenarios.len().div_ceil(threads);
        let chunks: Vec<&[Vec<EdgeId>]> = scenarios.chunks(chunk_size).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| {
                    let demands = &demands_by_pair;
                    s.spawn(move || robust_chunk(region, goals, demands, chunk))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("robust provision worker panicked"))
                .collect()
        })
    };

    let mut capacity = vec![0.0f64; m];
    let mut infeasible = Vec::new();
    let mut scenarios_examined = 0u64;
    let mut maxload_lookups = 0u64;
    let mut maxload_evals = 0u64;
    for r in results {
        for (c, rc) in capacity.iter_mut().zip(&r.capacity) {
            if *rc > *c {
                *c = *rc;
            }
        }
        infeasible.extend(r.infeasible);
        scenarios_examined += r.scenarios_examined;
        maxload_lookups += r.maxload_lookups;
        maxload_evals += r.maxload_evals;
    }

    telemetry
        .counter("iris_planner_robust_scenarios_total")
        .add(scenarios_examined);
    telemetry
        .counter("iris_planner_robust_maxload_total")
        .add(maxload_evals);
    telemetry
        .counter("iris_planner_robust_memo_hits_total")
        .add(maxload_lookups - maxload_evals);
    wall.finish();

    Provisioning {
        edge_capacity_wl: capacity,
        infeasible,
        scenarios_examined,
    }
}

/// The fraction of offered traffic a provisioning sheds under a specific
/// matrix, routed over nominal shortest paths.
///
/// Every overloaded duct scales the pairs crossing it down to fit; a
/// pair's delivered share is the worst scale along its path, and demand
/// on unreachable pairs is shed outright. 0 means the matrix fits
/// entirely; the hose-vs-robust experiment reports this for held-out
/// (surprise) matrices.
///
/// `demands[i][j]` is in wavelengths; only `i < j` entries are read.
#[must_use]
pub fn shed_fraction(
    region: &Region,
    goals: &DesignGoals,
    prov: &Provisioning,
    demands: &[Vec<f64>],
) -> f64 {
    let (paths, _) = scenario_paths(region, goals, &[]);
    let m = region.map.graph().edge_count();
    let mut load = vec![0.0f64; m];
    for p in &paths {
        let d = demands[p.a][p.b];
        for &e in &p.edges {
            load[e] += d;
        }
    }
    let scale: Vec<f64> = load
        .iter()
        .zip(&prov.edge_capacity_wl)
        .map(|(&l, &c)| if l > c { c / l } else { 1.0 })
        .collect();
    let mut delivered = 0.0f64;
    for p in &paths {
        let worst = p.edges.iter().map(|&e| scale[e]).fold(1.0f64, f64::min);
        delivered += demands[p.a][p.b] * worst;
    }
    let n = region.dcs.len();
    let offered: f64 = (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
        .map(|(i, j)| demands[i][j])
        .sum();
    if offered <= 0.0 {
        0.0
    } else {
        1.0 - delivered / offered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{provision, supports_matrix};
    use iris_fibermap::{synth, MetroParams, PlacementParams};

    fn small_region(n_dcs: usize) -> Region {
        synth::place_dcs(
            synth::generate_metro(&MetroParams {
                n_huts: 10,
                ..MetroParams::default()
            }),
            &PlacementParams {
                n_dcs,
                ..PlacementParams::default()
            },
        )
    }

    #[test]
    fn ecdf_quantile_is_monotone_and_bounded() {
        let e = Ecdf::dc_interconnect();
        let mut last = 0.0;
        for i in 0..=100 {
            let q = e.quantile(i as f64 / 100.0);
            assert!(q >= last, "quantile must be monotone");
            last = q;
        }
        assert_eq!(e.quantile(0.0), 500.0);
        assert_eq!(e.quantile(1.0), 100_000_000.0);
        let mean = e.mean_bytes();
        assert!(mean > 500.0 && mean < 100_000_000.0, "mean {mean}");
    }

    #[test]
    fn flowgen_rate_is_seeded_and_scales_with_gap() {
        let fast = FlowGen {
            sizes: Ecdf::dc_interconnect(),
            gap_mu: -6.0,
            gap_sigma: 1.0,
        };
        let slow = FlowGen {
            gap_mu: -3.0,
            ..fast.clone()
        };
        assert_eq!(fast.offered_gbps(7, 256), fast.offered_gbps(7, 256));
        assert_ne!(fast.offered_gbps(7, 256), fast.offered_gbps(8, 256));
        assert!(fast.offered_gbps(7, 256) > slow.offered_gbps(7, 256));
    }

    #[test]
    fn each_family_is_a_pure_function_of_its_seed() {
        for kind in FamilyKind::all() {
            let spec = FamilySpec::new(kind, 6, 42);
            assert_eq!(
                spec.shapes(5),
                spec.shapes(5),
                "{} shapes must be deterministic",
                kind.name()
            );
            let reseeded = FamilySpec::new(kind, 6, 43);
            assert_ne!(
                spec.shapes(5),
                reseeded.shapes(5),
                "{} shapes must depend on the seed",
                kind.name()
            );
            // And the calibrated matrices inherit both properties.
            let region = small_region(4);
            let goals = DesignGoals::with_cuts(0);
            let a = MatrixFamily::build(&region, &goals, &spec);
            let b = MatrixFamily::build(&region, &goals, &spec);
            assert_eq!(a, b, "{} family must be deterministic", kind.name());
            assert_ne!(
                a,
                MatrixFamily::build(&region, &goals, &reseeded),
                "{} family must depend on the seed",
                kind.name()
            );
        }
    }

    #[test]
    fn held_out_spec_rerolls_shocks_but_keeps_structure() {
        let spec = FamilySpec::new(FamilyKind::Burst, 8, 42);
        let held = spec.held_out();
        assert_eq!(held.kind, spec.kind);
        assert_eq!(held.count, spec.count);
        assert_eq!(held.seed, spec.seed, "structural seed is shared");
        assert_ne!(held.shock, spec.shock);
        assert_eq!(held.held_out(), spec, "held-out is an involution");
        assert_ne!(held.shapes(5), spec.shapes(5), "shocks must re-roll");
        // Diurnal phases are structural: with the amplitude the only
        // shock, held-out diurnal matrices stay close to the training
        // ones (same peaks, different heights).
        let diurnal = FamilySpec::new(FamilyKind::Diurnal, 4, 42);
        let a = diurnal.shapes(5);
        let b = diurnal.held_out().shapes(5);
        for (ma, mb) in a.iter().zip(&b) {
            for (&x, &y) in ma.iter().zip(mb) {
                assert!((x - y).abs() / x < 0.2, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn spec_parsing_round_trips_and_rejects_junk() {
        for s in ["diurnal:8@42", "burst:6@7", "hotspot:1@0"] {
            let spec: FamilySpec = s.parse().unwrap();
            assert_eq!(spec.to_string(), s);
        }
        let defaulted: FamilySpec = "burst".parse().unwrap();
        assert_eq!((defaulted.count, defaulted.seed), (8, 42));
        assert!("ripple:4@1".parse::<FamilySpec>().is_err());
        assert!("burst:zero".parse::<FamilySpec>().is_err());
        assert!("burst:0".parse::<FamilySpec>().is_err());
        assert!("burst:4@soon".parse::<FamilySpec>().is_err());
    }

    #[test]
    fn calibration_hits_the_target_max_link_load() {
        let region = small_region(5);
        let goals = DesignGoals::with_cuts(0);
        let spec = FamilySpec::new(FamilyKind::Diurnal, 4, 42).with_target_load(0.5);
        let family = MatrixFamily::build(&region, &goals, &spec);

        // Re-derive the base matrix's max link-load ratio: it must be
        // exactly the target (the family shapes then modulate around it).
        let base = spec.base_gbps(5);
        let shapes = spec.shapes(5);
        let scale_probe = family.matrices()[0][0][1] / shapes[0][0];
        let prov0 = provision(&region, &goals);
        let (paths, _) = scenario_paths(&region, &goals, &[]);
        let mut load = vec![0.0f64; region.map.graph().edge_count()];
        for p in &paths {
            let d = base[pair_index(5, p.a, p.b)] * scale_probe;
            for &e in &p.edges {
                load[e] += d;
            }
        }
        let ratio = load
            .iter()
            .zip(&prov0.edge_capacity_wl)
            .filter(|&(_, &c)| c > 0.0)
            .map(|(&l, &c)| l / c)
            .fold(0.0f64, f64::max);
        assert!((ratio - 0.5).abs() < 1e-9, "calibrated ratio {ratio}");
    }

    #[test]
    fn burst_family_escapes_the_hose_envelope() {
        let region = small_region(5);
        let goals = DesignGoals::with_cuts(0);
        let burst =
            MatrixFamily::build(&region, &goals, &FamilySpec::new(FamilyKind::Burst, 8, 42));
        let diurnal = MatrixFamily::build(
            &region,
            &goals,
            &FamilySpec::new(FamilyKind::Diurnal, 8, 42),
        );
        assert!(
            burst.peak_dc_load_ratio(&region) > diurnal.peak_dc_load_ratio(&region),
            "bursts must push DC aggregates harder than diurnal shifts"
        );
    }

    #[test]
    fn robust_provisioning_supports_every_training_matrix() {
        let region = small_region(5);
        for kind in FamilyKind::all() {
            let goals = DesignGoals::with_cuts(1);
            let spec = FamilySpec::new(kind, 5, 42);
            let family = MatrixFamily::build(&region, &goals, &spec);
            let prov = provision_robust(&region, &goals, &family);
            for (m, demands) in family.matrices().iter().enumerate() {
                assert!(
                    supports_matrix(&region, &goals, &prov, demands),
                    "{} matrix {m} not supported by its own robust plan",
                    kind.name()
                );
                assert!(
                    (shed_fraction(&region, &goals, &prov, demands) - 0.0).abs() < 1e-12,
                    "{} matrix {m} sheds under its own robust plan",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn robust_provision_is_bit_identical_across_threads() {
        let region = small_region(4);
        let goals = DesignGoals::with_cuts(1);
        let family =
            MatrixFamily::build(&region, &goals, &FamilySpec::new(FamilyKind::Hotspot, 6, 7));
        let seq = provision_robust_with_threads(&region, &goals, &family, 1);
        for threads in [2, 3, 7] {
            let par = provision_robust_with_threads(&region, &goals, &family, threads);
            let seq_bits: Vec<u64> = seq.edge_capacity_wl.iter().map(|c| c.to_bits()).collect();
            let par_bits: Vec<u64> = par.edge_capacity_wl.iter().map(|c| c.to_bits()).collect();
            assert_eq!(seq_bits, par_bits, "{threads} threads");
            assert_eq!(seq.infeasible, par.infeasible, "{threads} threads");
            assert_eq!(
                seq.scenarios_examined, par.scenarios_examined,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn hose_sheds_surprise_bursts_robust_sheds_less() {
        let region = small_region(5);
        let goals = DesignGoals::with_cuts(1);
        // At 0.9 the burst multipliers push DC aggregates past the hose
        // envelope (at the default 0.6 this region absorbs them).
        let spec = FamilySpec::new(FamilyKind::Burst, 8, 42).with_target_load(0.9);
        let family = MatrixFamily::build(&region, &goals, &spec);
        let surprise = MatrixFamily::build(&region, &goals, &spec.held_out());

        let hose = provision(&region, &goals);
        let robust = provision_robust(&region, &goals, &family);
        let mean_shed = |prov: &Provisioning| {
            surprise
                .matrices()
                .iter()
                .map(|m| shed_fraction(&region, &goals, prov, m))
                .sum::<f64>()
                / surprise.len() as f64
        };
        let (hose_shed, robust_shed) = (mean_shed(&hose), mean_shed(&robust));
        assert!(
            hose_shed > 0.0,
            "surprise bursts must escape the hose envelope (shed {hose_shed})"
        );
        assert!(
            robust_shed < hose_shed,
            "robust plan must shed less than hose under surprise bursts \
             ({robust_shed} vs {hose_shed})"
        );
    }

    #[test]
    fn shed_fraction_is_zero_within_capacity_and_positive_beyond() {
        let region = small_region(4);
        let goals = DesignGoals::with_cuts(0);
        let prov = provision(&region, &goals);
        let n = region.dcs.len();
        let mut small = vec![vec![0.0; n]; n];
        small[0][1] = 1.0;
        assert_eq!(shed_fraction(&region, &goals, &prov, &small), 0.0);
        let mut huge = vec![vec![0.0; n]; n];
        huge[0][1] = 1e9;
        assert!(shed_fraction(&region, &goals, &prov, &huge) > 0.9);
        let empty = vec![vec![0.0; n]; n];
        assert_eq!(shed_fraction(&region, &goals, &prov, &empty), 0.0);
    }
}
