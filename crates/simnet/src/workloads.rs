//! Flow-size distributions (§6.3 / Fig. 18).
//!
//! The paper stress-tests Iris with intra-DC-style workloads dominated by
//! short flows: the pFabric web-search distribution (Alizadeh et al.,
//! SIGCOMM'13) and the Facebook web / hadoop / cache distributions (Roy
//! et al., SIGCOMM'15). We encode each as a piecewise-linear empirical
//! CDF over log-spaced anchor points digitized from the published curves,
//! sampled by inverse transform.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// An empirical flow-size distribution: a piecewise-linear CDF over
/// `(size_bytes, cumulative_probability)` anchors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowSizeDist {
    /// Human-readable name (figure label).
    pub name: String,
    /// CDF anchors: strictly increasing sizes, non-decreasing probs,
    /// first prob > 0, last prob == 1.
    anchors: Vec<(f64, f64)>,
}

impl FlowSizeDist {
    /// Build a distribution from CDF anchors.
    ///
    /// # Panics
    ///
    /// Panics if the anchors are not a valid CDF.
    #[must_use]
    pub fn from_anchors(name: &str, anchors: &[(f64, f64)]) -> Self {
        assert!(anchors.len() >= 2, "need at least two CDF anchors");
        for w in anchors.windows(2) {
            assert!(w[0].0 < w[1].0, "sizes must be strictly increasing");
            assert!(w[0].1 <= w[1].1, "CDF must be non-decreasing");
        }
        assert!(anchors[0].0 > 0.0, "sizes must be positive");
        assert!(
            (anchors.last().expect("non-empty").1 - 1.0).abs() < 1e-9,
            "CDF must end at 1"
        );
        Self {
            name: name.to_owned(),
            anchors: anchors.to_vec(),
        }
    }

    /// The pFabric web-search workload ("web1" in Fig. 18).
    #[must_use]
    pub fn pfabric_web_search() -> Self {
        Self::from_anchors(
            "web1",
            &[
                (6.0e3, 0.15),
                (13.0e3, 0.30),
                (19.0e3, 0.45),
                (33.0e3, 0.60),
                (53.0e3, 0.70),
                (133.0e3, 0.80),
                (667.0e3, 0.90),
                (1.3e6, 0.95),
                (6.6e6, 0.98),
                (20.0e6, 1.00),
            ],
        )
    }

    /// The Facebook frontend web-server workload ("web2").
    #[must_use]
    pub fn facebook_web() -> Self {
        Self::from_anchors(
            "web2",
            &[
                (0.1e3, 0.10),
                (0.3e3, 0.25),
                (1.0e3, 0.50),
                (2.0e3, 0.62),
                (10.0e3, 0.80),
                (100.0e3, 0.92),
                (1.0e6, 0.99),
                (10.0e6, 1.00),
            ],
        )
    }

    /// The Facebook Hadoop workload.
    #[must_use]
    pub fn facebook_hadoop() -> Self {
        Self::from_anchors(
            "hadoop",
            &[
                (0.1e3, 0.05),
                (1.0e3, 0.30),
                (10.0e3, 0.55),
                (100.0e3, 0.75),
                (1.0e6, 0.90),
                (10.0e6, 0.97),
                (100.0e6, 1.00),
            ],
        )
    }

    /// The Facebook cache-follower workload.
    #[must_use]
    pub fn facebook_cache() -> Self {
        Self::from_anchors(
            "cache",
            &[
                (0.1e3, 0.20),
                (1.0e3, 0.50),
                (10.0e3, 0.70),
                (100.0e3, 0.85),
                (1.0e6, 0.95),
                (10.0e6, 1.00),
            ],
        )
    }

    /// All four Fig. 18 workloads.
    #[must_use]
    pub fn all_paper_workloads() -> Vec<Self> {
        vec![
            Self::pfabric_web_search(),
            Self::facebook_web(),
            Self::facebook_hadoop(),
            Self::facebook_cache(),
        ]
    }

    /// Inverse-transform sample of a flow size in bytes.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random_range(0.0..1.0);
        self.quantile(u)
    }

    /// The size at cumulative probability `u` (log-linear interpolation
    /// between anchors; sizes below the first anchor interpolate from an
    /// implicit tiny minimum).
    #[must_use]
    pub fn quantile(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        let (first_size, first_p) = self.anchors[0];
        if u <= first_p {
            // Interpolate from a 64-byte implicit floor to the first anchor.
            let t = if first_p == 0.0 { 0.0 } else { u / first_p };
            return interp_log(64.0_f64.min(first_size), first_size, t);
        }
        for w in self.anchors.windows(2) {
            let (s0, p0) = w[0];
            let (s1, p1) = w[1];
            if u <= p1 {
                let t = if (p1 - p0).abs() < 1e-12 {
                    1.0
                } else {
                    (u - p0) / (p1 - p0)
                };
                return interp_log(s0, s1, t);
            }
        }
        self.anchors.last().expect("non-empty").0
    }

    /// Mean flow size (bytes) via numeric integration of the quantile.
    #[must_use]
    pub fn mean_bytes(&self) -> f64 {
        const STEPS: usize = 10_000;
        (0..STEPS)
            .map(|i| self.quantile((i as f64 + 0.5) / STEPS as f64))
            .sum::<f64>()
            / STEPS as f64
    }

    /// The paper's short-flow threshold: < 50 KB (§6.3).
    pub const SHORT_FLOW_BYTES: f64 = 50.0e3;
}

/// Geometric (log-domain) interpolation — natural for size scales.
fn interp_log(a: f64, b: f64, t: f64) -> f64 {
    (a.ln() + (b.ln() - a.ln()) * t).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn quantiles_are_monotone() {
        for dist in FlowSizeDist::all_paper_workloads() {
            let mut prev = 0.0;
            for i in 0..=100 {
                let q = dist.quantile(i as f64 / 100.0);
                assert!(q >= prev, "{}: q({}) = {q} < {prev}", dist.name, i);
                prev = q;
            }
        }
    }

    #[test]
    fn quantile_hits_anchors() {
        let d = FlowSizeDist::pfabric_web_search();
        assert!((d.quantile(0.15) - 6.0e3).abs() / 6.0e3 < 1e-6);
        assert!((d.quantile(1.0) - 20.0e6).abs() / 20.0e6 < 1e-6);
    }

    #[test]
    fn samples_within_support() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for dist in FlowSizeDist::all_paper_workloads() {
            for _ in 0..1000 {
                let s = dist.sample(&mut rng);
                assert!((64.0..=100.0e6 + 1.0).contains(&s), "{}: {s}", dist.name);
            }
        }
    }

    #[test]
    fn web_workloads_are_short_flow_dominated() {
        // The paper picks these as a stress test *because* they are
        // dominated by short flows.
        for dist in [FlowSizeDist::facebook_web(), FlowSizeDist::facebook_cache()] {
            let median = dist.quantile(0.5);
            assert!(
                median <= FlowSizeDist::SHORT_FLOW_BYTES,
                "{}: median {median}",
                dist.name
            );
        }
    }

    #[test]
    fn hadoop_has_heavier_tail_than_web() {
        let hadoop = FlowSizeDist::facebook_hadoop();
        let web = FlowSizeDist::facebook_web();
        assert!(hadoop.quantile(0.99) > web.quantile(0.99));
    }

    #[test]
    fn mean_is_between_median_and_max() {
        for dist in FlowSizeDist::all_paper_workloads() {
            let mean = dist.mean_bytes();
            assert!(
                mean > dist.quantile(0.5),
                "{}: heavy tail pulls mean up",
                dist.name
            );
            assert!(mean < dist.quantile(1.0));
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_anchors_panic() {
        let _ = FlowSizeDist::from_anchors("bad", &[(10.0, 0.5), (5.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "end at 1")]
    fn incomplete_cdf_panics() {
        let _ = FlowSizeDist::from_anchors("bad", &[(10.0, 0.5), (20.0, 0.9)]);
    }
}
