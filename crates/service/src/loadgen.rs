//! Seeded load generator driving every connection from one event loop.
//!
//! `connections` client connections each replay a deterministic, seeded
//! mix of reads (`GetPlan`, `GetTopology`, `QueryPath`, `Health`) and
//! writes (`UpdateDemand`); connection 0 optionally injects a
//! `ReportFiberCut` halfway through its sequence so read tail latency
//! can be observed *while a recovery is in flight*. All connections are
//! multiplexed onto a single non-blocking poller thread, so scaling
//! `--connections` costs sockets, not OS threads, and `--pipeline`
//! keeps several requests in flight per connection. Closed loop is the
//! default; `--rate` switches to an open loop where arrivals follow a
//! seeded exponential schedule and latency includes queueing delay.
//!
//! Each DC pair is owned by exactly one connection (updates for a pair
//! are totally ordered), which makes the final allocation — and
//! everything else in [`LoadResults`] — a pure function of the seed and
//! the region. When the server sheds an `UpdateDemand` with
//! `Overloaded`, the driver re-sends it only while it is still the
//! *latest* update sent for its pair; a superseded retry is dropped, so
//! pipelined retries can never reorder a pair's final value. Wall-clock
//! measurements (latency percentiles, throughput, realized coalescing)
//! are split into [`MeasuredStats`], which is printed but never
//! serialized, so `results/service_load.json` is byte-identical across
//! runs, machines, codecs, pipeline depths and worker-thread counts.

use crate::api::{AllocEntry, RecoverySummary, Request, Response};
use crate::client::ServiceClient;
use crate::codec::{self, Codec};
use crate::frame::{append_frame, parse_frame};
use iris_errors::{IrisError, IrisResult};
use iris_poll::{Event, Interest, Poller};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

/// Socket read granularity for the reply buffers.
const READ_CHUNK: usize = 64 * 1024;

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address.
    pub addr: String,
    /// Seed for the request mix (and the open-loop arrival schedule).
    pub seed: u64,
    /// Total request budget, split evenly across connections (the split
    /// is exact: the effective total is `requests / connections *
    /// connections`).
    pub requests: u64,
    /// Concurrent client connections (all driven by one event loop).
    pub connections: usize,
    /// Ducts connection 0 cuts halfway through its sequence; empty for a
    /// pure read/write run.
    pub cuts: Vec<usize>,
    /// `UpdateDemand` circuit counts are drawn from `1..=max_circuits`
    /// (never 0, so no pair ever loses its path state).
    pub max_circuits: u32,
    /// Idle-baseline reads issued before the load phase, to calibrate
    /// read tail latency on an unloaded server.
    pub baseline_requests: u64,
    /// Wire codec every connection negotiates before the run (JSON is
    /// the protocol default and needs no `Hello`).
    pub codec: Codec,
    /// Requests kept in flight per connection in closed-loop mode
    /// (clamped to at least 1). Ignored by open-loop runs.
    pub pipeline: usize,
    /// Open-loop target arrival rate in requests/s across all
    /// connections, with seeded exponential inter-arrivals; `None` runs
    /// the default closed loop.
    pub rate: Option<f64>,
    /// Planner workload family biasing pair selection: when set,
    /// `QueryPath` and `UpdateDemand` draw pairs proportionally to the
    /// family's mean per-pair rate instead of uniformly, so serving load
    /// mirrors the traffic matrices the planner provisioned for. `None`
    /// (the default) keeps the historical uniform mix — and the
    /// committed `results/service_load.json` — byte-identical.
    pub matrices: Option<iris_planner::FamilySpec>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7117".to_owned(),
            seed: 7,
            requests: 2000,
            connections: 4,
            cuts: Vec::new(),
            max_circuits: 4,
            baseline_requests: 200,
            codec: Codec::Json,
            pipeline: 1,
            rate: None,
            matrices: None,
        }
    }
}

/// One operation's share of the generated mix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCount {
    /// Operation name ([`Request::op`]).
    pub op: String,
    /// Requests generated.
    pub count: u64,
}

/// The injected cut and its (modeled, deterministic) recovery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CutOutcome {
    /// Ducts cut.
    pub cuts: Vec<usize>,
    /// Position in connection 0's sequence where the cut was injected.
    pub at_request: u64,
    /// The recovery as reported by the server. All times are modeled
    /// (detection + re-plan + reconfiguration pipeline), so they are
    /// identical across runs.
    pub recovery: RecoverySummary,
}

/// The seed-deterministic portion of a load run — everything serialized
/// to `results/service_load.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadResults {
    /// The seed.
    pub seed: u64,
    /// Client connections.
    pub connections: usize,
    /// Requests actually issued (after even split, excluding the cut and
    /// baseline reads).
    pub requests: u64,
    /// Generated mix per operation, op name ascending.
    pub op_counts: Vec<OpCount>,
    /// Distinct DC pairs that received at least one update.
    pub update_pairs: usize,
    /// Updates superseded by a later update to the same pair — the upper
    /// bound on server-side coalescing (the realized count depends on
    /// batch timing and is reported in [`MeasuredStats`]).
    pub coalescable_updates: u64,
    /// `coalescable_updates / total updates` (0 when no updates).
    pub coalescable_ratio: f64,
    /// The injected cut, if one was configured.
    pub cut: Option<CutOutcome>,
    /// The allocation after every write drained, `(a, b)` ascending —
    /// per-pair this is exactly the last generated update (or the seed
    /// value 1), because each pair is owned by one connection and
    /// superseded retries are never re-sent out of order.
    pub final_allocation: Vec<AllocEntry>,
    /// Unexpected request failures (anything besides backpressure
    /// retries and post-cut unreachable reads). Always 0 on a healthy
    /// run.
    pub errors: u64,
}

/// Per-operation wall-clock latency summary.
#[derive(Debug, Clone)]
pub struct OpLatency {
    /// Operation name.
    pub op: String,
    /// Completed requests.
    pub count: u64,
    /// Median latency, ms.
    pub p50_ms: f64,
    /// 99th-percentile latency, ms.
    pub p99_ms: f64,
}

/// Wall-clock observations — printed, never serialized (they differ run
/// to run).
#[derive(Debug, Clone)]
pub struct MeasuredStats {
    /// Load-phase duration, s.
    pub wall_s: f64,
    /// Completed requests per second across all connections.
    pub throughput_rps: f64,
    /// Latency per op, op name ascending. Open-loop latencies include
    /// queueing delay, closed-loop latencies are pure service time.
    pub per_op: Vec<OpLatency>,
    /// p99 of baseline reads on the idle server, ms.
    pub baseline_read_p99_ms: f64,
    /// p99 of reads completed while the recovery was in flight, ms (0 if
    /// no cut or no overlapping reads).
    pub recovery_read_p99_ms: f64,
    /// Reads that overlapped the in-flight recovery.
    pub reads_during_recovery: u64,
    /// Wall time connection 0 waited for the recovery reply, ms.
    pub recovery_wall_ms: f64,
    /// Backpressure retries performed by clients.
    pub retries: u64,
    /// Reads answered `Unreachable` (possible only for cut sets beyond
    /// the planner's tolerance).
    pub unreachable_reads: u64,
    /// `UpdateDemand`s the server actually absorbed by coalescing.
    pub server_coalesced: u64,
    /// Writes the server rejected with `Overloaded`.
    pub server_overloaded: u64,
}

/// Everything a load run produces.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Seed-deterministic results (serialize these).
    pub results: LoadResults,
    /// Wall-clock observations (print these).
    pub measured: MeasuredStats,
}

/// A seeded geo-distributed user population for federation runs: every
/// simulated user gets a home region (drawn from per-region weights)
/// plus an affinity-ordered region preference — home first, then the
/// remaining regions in a deterministic rotation — which is exactly the
/// "nearest first" endpoint order a [`crate::client::RegionRouter`]
/// wants. A pure function of the seed, so the federation chaos sweep
/// inherits its determinism.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GeoPopulation {
    /// Region count.
    pub regions: usize,
    /// Each user's home region index, `0..regions`.
    pub homes: Vec<usize>,
}

impl GeoPopulation {
    /// Draw `users` home regions from `weights` (one non-negative
    /// weight per region; uniform when they sum to zero) with the given
    /// seed.
    #[must_use]
    pub fn new(seed: u64, users: usize, weights: &[f64]) -> Self {
        let regions = weights.len().max(1);
        let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6E07_A11D);
        let homes = (0..users)
            .map(|_| {
                if total <= 0.0 {
                    return rng.random_range(0..regions);
                }
                let mut roll: f64 = rng.random_range(0.0..total);
                for (idx, w) in weights.iter().enumerate() {
                    roll -= w.max(0.0);
                    if roll < 0.0 {
                        return idx;
                    }
                }
                regions - 1
            })
            .collect();
        Self { regions, homes }
    }

    /// User `user`'s region preference order: home first, then the
    /// remaining regions rotated from the home — the deterministic
    /// stand-in for geographic proximity.
    #[must_use]
    pub fn preference(&self, user: usize) -> Vec<usize> {
        let home = self.homes.get(user).copied().unwrap_or(0);
        (0..self.regions)
            .map(|step| (home + step) % self.regions)
            .collect()
    }

    /// Users homed per region.
    #[must_use]
    pub fn counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.regions];
        for &home in &self.homes {
            counts[home] += 1;
        }
        counts
    }
}

/// One completed request's measurement.
struct Sample {
    op: &'static str,
    ms: f64,
    read_during_recovery: bool,
}

/// Mean per-pair weight of a workload family over the loadgen's pair
/// universe (the same `(a, b)` indices the server serves); `None` when
/// the weights degenerate to zero.
fn family_weights(spec: &iris_planner::FamilySpec, pairs: &[(usize, usize)]) -> Option<Vec<f64>> {
    let n = pairs.iter().map(|&(a, b)| a.max(b)).max()? + 1;
    let shapes = spec.shapes(n);
    // Triangular index of pair (a, b), a < b — the shapes' layout.
    let idx = |a: usize, b: usize| a * n - a * (a + 1) / 2 + (b - a - 1);
    let weights: Vec<f64> = pairs
        .iter()
        .map(|&(a, b)| {
            let i = idx(a.min(b), a.max(b));
            shapes.iter().map(|m| m[i]).sum::<f64>() / shapes.len() as f64
        })
        .collect();
    (weights.iter().sum::<f64>() > 0.0).then_some(weights)
}

/// Draw an index in `0..weights.len()` proportionally to `weights`
/// (which must sum to a positive total).
fn weighted_pick(rng: &mut StdRng, weights: &[f64], total: f64) -> usize {
    let mut roll: f64 = rng.random_range(0.0..total);
    for (idx, w) in weights.iter().enumerate() {
        roll -= w;
        if roll < 0.0 {
            return idx;
        }
    }
    weights.len() - 1
}

/// Generate connection `conn`'s request sequence. Reads draw from every
/// pair; updates draw only from the connection's owned pairs. With
/// [`LoadgenConfig::matrices`] set, both draws are weighted by the
/// family's mean rates; otherwise they are uniform (and bit-for-bit
/// what they always were).
fn generate_sequence(
    cfg: &LoadgenConfig,
    conn: usize,
    per_conn: u64,
    pairs: &[(usize, usize)],
) -> Vec<Request> {
    let mut rng =
        StdRng::seed_from_u64(cfg.seed ^ (conn as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let owned: Vec<(usize, usize)> = pairs
        .iter()
        .enumerate()
        .filter(|(i, _)| i % cfg.connections == conn)
        .map(|(_, &p)| p)
        .collect();
    let weights = cfg
        .matrices
        .as_ref()
        .and_then(|spec| family_weights(spec, pairs));
    let weighted = weights.as_ref().map(|w| {
        let owned_w: Vec<f64> = w
            .iter()
            .enumerate()
            .filter(|(i, _)| i % cfg.connections == conn)
            .map(|(_, &x)| x)
            .collect();
        let owned_total: f64 = owned_w.iter().sum();
        (w.clone(), w.iter().sum::<f64>(), owned_w, owned_total)
    });
    let mut seq = Vec::with_capacity(per_conn as usize);
    for _ in 0..per_conn {
        let roll: u32 = rng.random_range(0..100);
        let req = if roll < 10 {
            Request::GetPlan
        } else if roll < 20 {
            Request::GetTopology
        } else if roll < 60 {
            let (a, b) = match &weighted {
                Some((w, total, _, _)) => pairs[weighted_pick(&mut rng, w, *total)],
                None => pairs[rng.random_range(0..pairs.len())],
            };
            Request::QueryPath { a, b }
        } else if roll < 95 && !owned.is_empty() {
            let (a, b) = match &weighted {
                Some((_, _, ow, ot)) if *ot > 0.0 => owned[weighted_pick(&mut rng, ow, *ot)],
                _ => owned[rng.random_range(0..owned.len())],
            };
            let circuits = rng.random_range(1..=cfg.max_circuits.max(1));
            Request::UpdateDemand { a, b, circuits }
        } else {
            Request::Health
        };
        seq.push(req);
    }
    seq
}

/// Generate connection `conn`'s open-loop arrival offsets: `per_conn`
/// seeded exponential inter-arrival gaps at `rate / connections`
/// requests per second. Seeded independently of the request mix so the
/// same mix can be replayed at different rates.
fn generate_arrivals(cfg: &LoadgenConfig, conn: usize, per_conn: u64, rate: f64) -> Vec<Duration> {
    let lambda = (rate / cfg.connections as f64).max(1e-9);
    let mut rng = StdRng::seed_from_u64(
        cfg.seed.wrapping_mul(0xA076_1D64_78BD_642F).rotate_left(17)
            ^ (conn as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB),
    );
    let mut t = 0.0f64;
    (0..per_conn)
        .map(|_| {
            let u: f64 = rng.random();
            t += -(1.0 - u).ln() / lambda;
            Duration::from_secs_f64(t)
        })
        .collect()
}

/// Why a request was sent — drives reply handling and retry policy.
#[derive(Debug, Clone)]
enum ReqKind {
    /// A read (or `Health`): never retried, never reordered.
    Plain,
    /// An `UpdateDemand`: on `Overloaded`, re-sent only while it is
    /// still the latest update sent for its pair.
    Update {
        seq_idx: usize,
        pair: (usize, usize),
    },
    /// The injected `ReportFiberCut`: always retried on `Overloaded`.
    Cut,
}

/// One request awaiting its reply (replies are strictly FIFO per
/// connection).
struct Inflight {
    op: &'static str,
    kind: ReqKind,
    /// The request bytes' source, kept only for writes so an
    /// `Overloaded` reply can re-send it.
    req: Option<Request>,
    first_sent: Instant,
    during_recovery: bool,
}

/// A backpressured write waiting out its server-suggested delay.
struct RetryEntry {
    due: Instant,
    req: Request,
    op: &'static str,
    kind: ReqKind,
    first_sent: Instant,
    during_recovery: bool,
}

/// Driver-global (cross-connection) run state.
struct DriverState {
    samples: Vec<Sample>,
    retries: u64,
    unreachable: u64,
    errors: u64,
    recovery: Option<(RecoverySummary, f64)>,
    recovery_in_flight: bool,
}

/// One multiplexed load connection.
struct LoadConn {
    stream: TcpStream,
    codec: Codec,
    seq: Vec<Request>,
    next_idx: usize,
    /// Pending cut injection: `(position, ducts)`; taken when sent.
    cut: Option<(u64, Vec<usize>)>,
    /// Open-loop arrival offsets from the load start; empty = closed loop.
    arrivals: Vec<Duration>,
    inflight: VecDeque<Inflight>,
    retries: Vec<RetryEntry>,
    /// Latest sequence index sent per owned pair — the supersede fence.
    last_sent_update: BTreeMap<(usize, usize), usize>,
    wbuf: Vec<u8>,
    wpos: usize,
    rbuf: Vec<u8>,
    rlen: usize,
    want_write: bool,
}

impl LoadConn {
    fn done(&self) -> bool {
        self.next_idx >= self.seq.len()
            && self.cut.is_none()
            && self.inflight.is_empty()
            && self.retries.is_empty()
    }

    /// Encode + frame `req` onto the write buffer and track its reply.
    fn send(
        &mut self,
        req: &Request,
        op: &'static str,
        kind: ReqKind,
        first_sent: Instant,
        during_recovery: bool,
    ) -> IrisResult<()> {
        let payload = codec::encode_request(self.codec, req)?;
        append_frame(&mut self.wbuf, &payload)?;
        self.inflight.push_back(Inflight {
            op,
            req: req.is_write().then(|| req.clone()),
            kind,
            first_sent,
            during_recovery,
        });
        Ok(())
    }

    /// Write buffered bytes until the socket would block.
    fn flush(&mut self) -> IrisResult<()> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    return Err(IrisError::Io {
                        detail: "server closed the connection during load".to_owned(),
                    })
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    return Err(IrisError::Io {
                        detail: format!("loadgen socket write failed: {e}"),
                    })
                }
            }
        }
        if self.wpos >= self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        } else if self.wpos > READ_CHUNK {
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
        self.want_write = !self.wbuf.is_empty();
        Ok(())
    }
}

/// Fold `due` into the running next-timer estimate.
fn earlier(next: &mut Option<Instant>, due: Instant) {
    *next = Some(next.map_or(due, |n| n.min(due)));
}

/// Send everything currently eligible on `conn`: due retries first,
/// then the cut at its position, then new sequence entries while the
/// pipeline (closed loop) or arrival schedule (open loop) allows.
fn pump(
    conn: &mut LoadConn,
    state: &mut DriverState,
    start: Instant,
    pipeline: usize,
    next_due: &mut Option<Instant>,
) -> IrisResult<()> {
    let now = Instant::now();
    // Due retries: re-send unless a later update to the same pair is
    // already on the wire (then the retry is superseded — dropping it
    // is what keeps the pair's final value equal to its last generated
    // update even under deep pipelining).
    let mut i = 0;
    while i < conn.retries.len() {
        if conn.retries[i].due > now {
            earlier(next_due, conn.retries[i].due);
            i += 1;
            continue;
        }
        let r = conn.retries.remove(i);
        let superseded = match &r.kind {
            ReqKind::Update { seq_idx, pair } => conn.last_sent_update.get(pair) != Some(seq_idx),
            _ => false,
        };
        if superseded {
            state.samples.push(Sample {
                op: r.op,
                ms: r.first_sent.elapsed().as_secs_f64() * 1e3,
                read_during_recovery: r.during_recovery,
            });
        } else {
            conn.send(&r.req, r.op, r.kind, r.first_sent, r.during_recovery)?;
        }
    }
    let open_loop = !conn.arrivals.is_empty();
    loop {
        let now = Instant::now();
        // The injected cut rides immediately before its sequence slot.
        if let Some((pos, _)) = &conn.cut {
            if conn.next_idx as u64 == *pos {
                if open_loop {
                    let due = start + conn.arrivals[conn.next_idx];
                    if now < due {
                        earlier(next_due, due);
                        break;
                    }
                } else if conn.inflight.len() >= pipeline {
                    break;
                }
                let (_, ducts) = conn.cut.take().expect("checked above");
                state.recovery_in_flight = true;
                conn.send(
                    &Request::ReportFiberCut { cuts: ducts },
                    "report_fiber_cut",
                    ReqKind::Cut,
                    now,
                    false,
                )?;
                continue;
            }
        }
        if conn.next_idx >= conn.seq.len() {
            break;
        }
        if open_loop {
            let due = start + conn.arrivals[conn.next_idx];
            if now < due {
                earlier(next_due, due);
                break;
            }
        } else if conn.inflight.len() >= pipeline {
            break;
        }
        let req = conn.seq[conn.next_idx].clone();
        let during = !req.is_write() && state.recovery_in_flight;
        let kind = match &req {
            Request::UpdateDemand { a, b, .. } => {
                conn.last_sent_update.insert((*a, *b), conn.next_idx);
                ReqKind::Update {
                    seq_idx: conn.next_idx,
                    pair: (*a, *b),
                }
            }
            _ => ReqKind::Plain,
        };
        conn.send(&req, req.op(), kind, now, during)?;
        conn.next_idx += 1;
    }
    conn.flush()
}

/// Consume one reply off the connection's FIFO.
fn handle_reply(conn: &mut LoadConn, state: &mut DriverState, resp: Response) -> IrisResult<()> {
    let inf = conn.inflight.pop_front().ok_or_else(|| IrisError::Decode {
        detail: "server sent a reply with no request outstanding".to_owned(),
    })?;
    let ms = inf.first_sent.elapsed().as_secs_f64() * 1e3;
    let mut sample = true;
    match resp {
        Response::Error(IrisError::Overloaded { retry_after_ms }) => {
            state.retries += 1;
            let superseded = match &inf.kind {
                ReqKind::Update { seq_idx, pair } => {
                    conn.last_sent_update.get(pair) != Some(seq_idx)
                }
                ReqKind::Cut | ReqKind::Plain => false,
            };
            match inf.req {
                Some(req) if !superseded => {
                    conn.retries.push(RetryEntry {
                        due: Instant::now() + Duration::from_millis(retry_after_ms.max(1)),
                        req,
                        op: inf.op,
                        kind: inf.kind,
                        first_sent: inf.first_sent,
                        during_recovery: inf.during_recovery,
                    });
                    sample = false;
                }
                // Superseded (or, impossibly, a backpressured read):
                // the request's story ends here.
                _ => {}
            }
        }
        Response::Error(IrisError::Unreachable { .. }) => state.unreachable += 1,
        Response::Error(e) => {
            if matches!(inf.kind, ReqKind::Cut) {
                return Err(e);
            }
            state.errors += 1;
        }
        Response::Recovery(summary) if matches!(inf.kind, ReqKind::Cut) => {
            state.recovery = Some((summary, ms));
            state.recovery_in_flight = false;
        }
        other => {
            if matches!(inf.kind, ReqKind::Cut) {
                return Err(IrisError::Decode {
                    detail: format!("unexpected reply to ReportFiberCut: {other:?}"),
                });
            }
        }
    }
    if sample {
        state.samples.push(Sample {
            op: inf.op,
            ms,
            read_during_recovery: inf.during_recovery,
        });
    }
    Ok(())
}

/// Read replies until the socket would block, parsing every complete
/// frame.
fn read_replies(conn: &mut LoadConn, state: &mut DriverState) -> IrisResult<()> {
    loop {
        if conn.rbuf.len() < conn.rlen + READ_CHUNK {
            conn.rbuf.resize(conn.rlen + READ_CHUNK, 0);
        }
        match conn.stream.read(&mut conn.rbuf[conn.rlen..]) {
            Ok(0) => {
                return Err(IrisError::Io {
                    detail: "server closed the connection during load".to_owned(),
                })
            }
            Ok(n) => conn.rlen += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => {
                return Err(IrisError::Io {
                    detail: format!("loadgen socket read failed: {e}"),
                })
            }
        }
    }
    let mut off = 0;
    while let Some(frame) = parse_frame(&conn.rbuf[off..conn.rlen])? {
        off += frame.consumed;
        let resp = codec::decode_response(conn.codec, &frame.payload)?;
        handle_reply(conn, state, resp)?;
    }
    if off > 0 {
        conn.rbuf.copy_within(off..conn.rlen, 0);
        conn.rlen -= off;
    }
    Ok(())
}

/// Drive every connection's sequence to completion on one poller.
fn run_driver(
    cfg: &LoadgenConfig,
    sequences: Vec<Vec<Request>>,
    cut_at: Option<(u64, Vec<usize>)>,
) -> IrisResult<(DriverState, f64)> {
    let pipeline = cfg.pipeline.max(1);
    let per_conn = sequences.first().map_or(0, Vec::len) as u64;
    let mut conns: Vec<LoadConn> = Vec::with_capacity(sequences.len());
    for seq in sequences {
        let mut client = ServiceClient::connect_retry(&cfg.addr, 20, 50)?;
        if cfg.codec != Codec::Json {
            client.hello(cfg.codec)?;
        }
        let (stream, codec) = client.into_parts();
        stream.set_nonblocking(true).map_err(|e| IrisError::Io {
            detail: format!("cannot switch loadgen socket to non-blocking: {e}"),
        })?;
        let conn_idx = conns.len();
        conns.push(LoadConn {
            stream,
            codec,
            arrivals: cfg
                .rate
                .map(|r| generate_arrivals(cfg, conn_idx, per_conn, r))
                .unwrap_or_default(),
            seq,
            next_idx: 0,
            cut: None,
            inflight: VecDeque::new(),
            retries: Vec::new(),
            last_sent_update: BTreeMap::new(),
            wbuf: Vec::new(),
            wpos: 0,
            rbuf: Vec::new(),
            rlen: 0,
            want_write: false,
        });
    }
    if let Some(first) = conns.first_mut() {
        first.cut = cut_at;
    }

    let poller = Poller::new().map_err(|e| IrisError::Io {
        detail: format!("cannot create loadgen poller: {e}"),
    })?;
    for (token, conn) in conns.iter().enumerate() {
        poller
            .register(conn.stream.as_raw_fd(), token, Interest::READ)
            .map_err(|e| IrisError::Io {
                detail: format!("cannot register loadgen socket: {e}"),
            })?;
    }

    let mut state = DriverState {
        samples: Vec::new(),
        retries: 0,
        unreachable: 0,
        errors: 0,
        recovery: None,
        recovery_in_flight: false,
    };
    let start = Instant::now();
    let mut events: Vec<Event> = Vec::new();
    let mut registered_write = vec![false; conns.len()];
    loop {
        let mut next_due: Option<Instant> = None;
        let mut all_done = true;
        for (token, conn) in conns.iter_mut().enumerate() {
            pump(conn, &mut state, start, pipeline, &mut next_due)?;
            if conn.want_write != registered_write[token] {
                let interest = if conn.want_write {
                    Interest::READ_WRITE
                } else {
                    Interest::READ
                };
                poller
                    .modify(conn.stream.as_raw_fd(), token, interest)
                    .map_err(|e| IrisError::Io {
                        detail: format!("cannot update loadgen socket interest: {e}"),
                    })?;
                registered_write[token] = conn.want_write;
            }
            if !conn.done() {
                all_done = false;
            }
        }
        if all_done {
            break;
        }
        let timeout = next_due
            .map(|due| due.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(100))
            .clamp(Duration::from_millis(1), Duration::from_millis(100));
        poller
            .wait(&mut events, Some(timeout))
            .map_err(|e| IrisError::Io {
                detail: format!("loadgen poll failed: {e}"),
            })?;
        for ev in &events {
            let conn = &mut conns[ev.token];
            if ev.error {
                return Err(IrisError::Io {
                    detail: "loadgen socket error during load".to_owned(),
                });
            }
            if ev.readable {
                read_replies(conn, &mut state)?;
            }
            if ev.writable {
                conn.flush()?;
            }
        }
    }
    Ok((state, start.elapsed().as_secs_f64()))
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Poll `Health` until the write queue is empty twice in a row — with
/// group commit, `queue_depth` counts writes not yet visible in a
/// published snapshot, so an empty queue means the final topology read
/// observes every applied write.
fn quiesce(client: &mut ServiceClient) -> IrisResult<()> {
    let mut empty_polls = 0;
    for _ in 0..2000 {
        match client.call(&Request::Health)?.into_result()? {
            Response::Health(h) if h.queue_depth == 0 => {
                empty_polls += 1;
                if empty_polls >= 2 {
                    return Ok(());
                }
            }
            _ => empty_polls = 0,
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    Err(IrisError::Io {
        detail: "mutator queue never drained".to_owned(),
    })
}

/// Run the full load: baseline reads, the seeded multi-connection mix
/// (with the optional mid-run cut), quiesce, and the final consistency
/// reads.
///
/// # Errors
///
/// [`IrisError::Io`] if the server is unreachable or the driver fails.
pub fn run_loadgen(cfg: &LoadgenConfig) -> IrisResult<LoadReport> {
    if cfg.connections == 0 {
        return Err(IrisError::InvalidInput {
            detail: "loadgen needs at least one connection".to_owned(),
        });
    }
    let mut control = ServiceClient::connect_retry(&cfg.addr, 40, 100)?;
    if cfg.codec != Codec::Json {
        control.hello(cfg.codec)?;
    }

    // The pair universe: every reachable pair in the server's seed
    // allocation, (a, b) ascending — deterministic for a given region.
    let topology = match control.call(&Request::GetTopology)?.into_result()? {
        Response::Topology(t) => t,
        other => {
            return Err(IrisError::Decode {
                detail: format!("unexpected reply to GetTopology: {other:?}"),
            })
        }
    };
    let pairs: Vec<(usize, usize)> = topology.allocation.iter().map(|e| (e.a, e.b)).collect();
    if pairs.is_empty() {
        return Err(IrisError::InvalidInput {
            detail: "server has no reachable DC pairs to load".to_owned(),
        });
    }

    // Idle baseline: alternate the two read paths before any writes.
    let mut baseline: Vec<f64> = Vec::with_capacity(cfg.baseline_requests as usize);
    for i in 0..cfg.baseline_requests {
        let (a, b) = pairs[(i as usize) % pairs.len()];
        let req = if i % 2 == 0 {
            Request::GetPlan
        } else {
            Request::QueryPath { a, b }
        };
        let start = Instant::now();
        control.call(&req)?.into_result()?;
        baseline.push(start.elapsed().as_secs_f64() * 1e3);
    }
    baseline.sort_by(f64::total_cmp);

    // Generate every sequence up front: the mix (and everything derived
    // from it) is fixed before a single load request is sent.
    let per_conn = cfg.requests / cfg.connections as u64;
    let sequences: Vec<Vec<Request>> = (0..cfg.connections)
        .map(|c| generate_sequence(cfg, c, per_conn, &pairs))
        .collect();

    // Deterministic mix accounting.
    let mut op_counts: std::collections::BTreeMap<&'static str, u64> =
        std::collections::BTreeMap::new();
    let mut updates_per_pair: std::collections::BTreeMap<(usize, usize), u64> =
        std::collections::BTreeMap::new();
    for seq in &sequences {
        for req in seq {
            *op_counts.entry(req.op()).or_insert(0) += 1;
            if let Request::UpdateDemand { a, b, .. } = req {
                *updates_per_pair.entry((*a, *b)).or_insert(0) += 1;
            }
        }
    }
    let total_updates: u64 = updates_per_pair.values().sum();
    let coalescable: u64 = updates_per_pair.values().map(|&n| n - 1).sum();
    let cut_at = (!cfg.cuts.is_empty() && per_conn > 0).then(|| (per_conn / 2, cfg.cuts.clone()));
    if cut_at.is_some() {
        *op_counts.entry("report_fiber_cut").or_insert(0) += 1;
    }

    // The load phase: every connection multiplexed on one event loop.
    let (state, wall_s) = run_driver(cfg, sequences, cut_at)?;
    let DriverState {
        samples,
        retries,
        unreachable,
        errors,
        recovery,
        ..
    } = state;

    // Drain the write queue, then read the final state.
    quiesce(&mut control)?;
    let final_topology = match control.call(&Request::GetTopology)?.into_result()? {
        Response::Topology(t) => t,
        other => {
            return Err(IrisError::Decode {
                detail: format!("unexpected reply to GetTopology: {other:?}"),
            })
        }
    };
    let health = match control.call(&Request::Health)?.into_result()? {
        Response::Health(h) => h,
        other => {
            return Err(IrisError::Decode {
                detail: format!("unexpected reply to Health: {other:?}"),
            })
        }
    };

    // Wall-clock summaries.
    let mut per_op: Vec<OpLatency> = Vec::new();
    for &op in op_counts.keys() {
        let mut ms: Vec<f64> = samples
            .iter()
            .filter(|s| s.op == op)
            .map(|s| s.ms)
            .collect();
        ms.sort_by(f64::total_cmp);
        per_op.push(OpLatency {
            op: op.to_owned(),
            count: ms.len() as u64,
            p50_ms: percentile(&ms, 50.0),
            p99_ms: percentile(&ms, 99.0),
        });
    }
    let mut during: Vec<f64> = samples
        .iter()
        .filter(|s| s.read_during_recovery)
        .map(|s| s.ms)
        .collect();
    during.sort_by(f64::total_cmp);

    let results = LoadResults {
        seed: cfg.seed,
        connections: cfg.connections,
        requests: per_conn * cfg.connections as u64,
        op_counts: op_counts
            .iter()
            .map(|(&op, &count)| OpCount {
                op: op.to_owned(),
                count,
            })
            .collect(),
        update_pairs: updates_per_pair.len(),
        coalescable_updates: coalescable,
        coalescable_ratio: if total_updates == 0 {
            0.0
        } else {
            coalescable as f64 / total_updates as f64
        },
        cut: recovery.as_ref().map(|(summary, _)| CutOutcome {
            cuts: cfg.cuts.clone(),
            at_request: per_conn / 2,
            recovery: summary.clone(),
        }),
        final_allocation: final_topology.allocation,
        errors,
    };
    let measured = MeasuredStats {
        wall_s,
        throughput_rps: if wall_s > 0.0 {
            samples.len() as f64 / wall_s
        } else {
            0.0
        },
        per_op,
        baseline_read_p99_ms: percentile(&baseline, 99.0),
        recovery_read_p99_ms: percentile(&during, 99.0),
        reads_during_recovery: during.len() as u64,
        recovery_wall_ms: recovery.as_ref().map_or(0.0, |&(_, wall)| wall),
        retries,
        unreachable_reads: unreachable,
        server_coalesced: health.coalesced,
        server_overloaded: health.overloaded,
    };
    Ok(LoadReport { results, measured })
}

/// Serialize the deterministic results to `path` (creating parent
/// directories), with a trailing newline — the artifact CI byte-diffs.
///
/// # Errors
///
/// [`IrisError::Io`] on serialization or filesystem failure.
pub fn write_results(results: &LoadResults, path: &str) -> IrisResult<()> {
    let mut text = serde_json::to_string_pretty(results).map_err(|e| IrisError::Io {
        detail: format!("cannot serialize load results: {e}"),
    })?;
    text.push('\n');
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| IrisError::Io {
                detail: format!("cannot create {}: {e}", parent.display()),
            })?;
        }
    }
    std::fs::write(path, text).map_err(|e| IrisError::Io {
        detail: format!("cannot write {path}: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_population_is_seeded_and_weighted() {
        let weights = [5.0, 3.0, 2.0];
        let a = GeoPopulation::new(42, 1000, &weights);
        let b = GeoPopulation::new(42, 1000, &weights);
        assert_eq!(a, b, "same seed, same homes");
        assert_ne!(
            a,
            GeoPopulation::new(43, 1000, &weights),
            "different seed, different homes"
        );
        let counts = a.counts();
        assert_eq!(counts.iter().sum::<u64>(), 1000);
        assert!(
            counts[0] > counts[2],
            "the heaviest region must attract the most users: {counts:?}"
        );
    }

    #[test]
    fn geo_preference_is_a_home_first_rotation() {
        let pop = GeoPopulation::new(7, 20, &[1.0, 1.0, 1.0, 1.0]);
        for user in 0..20 {
            let pref = pop.preference(user);
            assert_eq!(pref[0], pop.homes[user], "home region comes first");
            let mut sorted = pref.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3], "preference covers every region");
        }
        // Out-of-range users still get a usable order.
        assert_eq!(pop.preference(999)[0], 0);
    }

    #[test]
    fn geo_population_handles_degenerate_weights() {
        let uniform = GeoPopulation::new(9, 300, &[0.0, 0.0]);
        assert_eq!(uniform.counts().iter().sum::<u64>(), 300);
        let single = GeoPopulation::new(9, 10, &[1.0]);
        assert_eq!(single.counts(), vec![10]);
    }

    #[test]
    fn sequences_are_seed_deterministic_and_partition_updates() {
        let cfg = LoadgenConfig {
            requests: 400,
            connections: 3,
            ..LoadgenConfig::default()
        };
        let pairs: Vec<(usize, usize)> = vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        let a: Vec<Vec<Request>> = (0..3)
            .map(|c| generate_sequence(&cfg, c, 100, &pairs))
            .collect();
        let b: Vec<Vec<Request>> = (0..3)
            .map(|c| generate_sequence(&cfg, c, 100, &pairs))
            .collect();
        assert_eq!(a, b, "same seed must generate the same mix");

        // No pair is updated by two connections.
        let mut owner: std::collections::BTreeMap<(usize, usize), usize> =
            std::collections::BTreeMap::new();
        for (c, seq) in a.iter().enumerate() {
            for req in seq {
                if let Request::UpdateDemand { a, b, circuits } = req {
                    assert!(*circuits >= 1, "updates never drop a pair to 0 circuits");
                    let prev = owner.insert((*a, *b), c);
                    assert!(
                        prev.is_none() || prev == Some(c),
                        "pair ({a}, {b}) updated by connections {prev:?} and {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn different_seeds_generate_different_mixes() {
        let pairs = vec![(0, 1), (0, 2), (1, 2)];
        let a = generate_sequence(
            &LoadgenConfig {
                seed: 1,
                ..LoadgenConfig::default()
            },
            0,
            200,
            &pairs,
        );
        let b = generate_sequence(
            &LoadgenConfig {
                seed: 2,
                ..LoadgenConfig::default()
            },
            0,
            200,
            &pairs,
        );
        assert_ne!(a, b);
    }

    #[test]
    fn family_weighting_skews_the_mix_and_stays_deterministic() {
        let pairs: Vec<(usize, usize)> = vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        let spec = iris_planner::FamilySpec::new(iris_planner::FamilyKind::Hotspot, 4, 42);
        let cfg = LoadgenConfig {
            matrices: Some(spec.clone()),
            connections: 1,
            ..LoadgenConfig::default()
        };
        let a = generate_sequence(&cfg, 0, 2000, &pairs);
        assert_eq!(a, generate_sequence(&cfg, 0, 2000, &pairs), "seeded");
        let uniform = generate_sequence(
            &LoadgenConfig {
                matrices: None,
                ..cfg.clone()
            },
            0,
            2000,
            &pairs,
        );
        assert_ne!(a, uniform, "weighting must change the mix");

        // QueryPath draws should concentrate on the family's heavy pairs.
        let weights = family_weights(&spec, &pairs).expect("weights");
        let hottest = weights
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.total_cmp(y.1))
            .map(|(i, _)| pairs[i])
            .expect("non-empty");
        let mut counts: std::collections::BTreeMap<(usize, usize), u64> =
            std::collections::BTreeMap::new();
        for req in &a {
            if let Request::QueryPath { a, b } = req {
                *counts.entry((*a, *b)).or_insert(0) += 1;
            }
        }
        let total: u64 = counts.values().sum();
        let hot = counts.get(&hottest).copied().unwrap_or(0);
        assert!(
            hot as f64 > total as f64 / pairs.len() as f64,
            "hottest pair {hottest:?} drew {hot}/{total}, not above uniform share"
        );
    }

    #[test]
    fn percentile_handles_edges() {
        assert_eq!(percentile(&[], 99.0), 0.0);
        assert_eq!(percentile(&[5.0], 50.0), 5.0);
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        // Nearest-rank on 100 samples: p50 rounds to index 50 (value 51).
        assert_eq!(percentile(&v, 50.0), 51.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
    }

    #[test]
    fn results_serialize_deterministically() {
        let results = LoadResults {
            seed: 7,
            connections: 2,
            requests: 10,
            op_counts: vec![OpCount {
                op: "get_plan".into(),
                count: 10,
            }],
            update_pairs: 0,
            coalescable_updates: 0,
            coalescable_ratio: 0.0,
            cut: None,
            final_allocation: vec![AllocEntry {
                a: 0,
                b: 1,
                circuits: 1,
            }],
            errors: 0,
        };
        let a = serde_json::to_string_pretty(&results).unwrap();
        let b = serde_json::to_string_pretty(&results).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("\"seed\": 7"), "{a}");
    }

    #[test]
    fn open_loop_arrivals_are_seeded_monotonic_and_rate_shaped() {
        let cfg = LoadgenConfig {
            connections: 2,
            ..LoadgenConfig::default()
        };
        let a = generate_arrivals(&cfg, 0, 500, 1000.0);
        let b = generate_arrivals(&cfg, 0, 500, 1000.0);
        assert_eq!(a, b, "arrival schedules are seed-deterministic");
        assert_ne!(
            a,
            generate_arrivals(&cfg, 1, 500, 1000.0),
            "connections draw independent schedules"
        );
        assert!(
            a.windows(2).all(|w| w[0] <= w[1]),
            "arrival offsets are monotonic"
        );
        // 500 arrivals at 500/s per connection should land near 1s.
        let last = a.last().unwrap().as_secs_f64();
        assert!(
            (0.5..2.0).contains(&last),
            "500 arrivals at 500/s should span roughly 1s, got {last}"
        );
    }
}
