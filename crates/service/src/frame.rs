//! Length-prefixed frame codec for the service's TCP protocol.
//!
//! Every message on the wire is one frame: a 4-byte big-endian length
//! followed by that many bytes of UTF-8 JSON. Frames are bounded by
//! [`MAX_FRAME_LEN`]; the reader checks the prefix *before* allocating,
//! so a hostile or corrupted length cannot drive an allocation. All
//! fault paths are typed [`IrisError`]s — a truncated prefix, an
//! oversized frame and a payload cut off mid-frame each name exactly
//! what was wrong.

use iris_errors::{IrisError, IrisResult};
use std::io::{ErrorKind, Read, Write};

/// Largest accepted frame payload, bytes. Far above any real request or
/// response (a full metrics snapshot is a few KiB) while keeping a
/// malicious length prefix from allocating gigabytes.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// One read attempt's outcome on a framed stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameEvent {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// The peer closed the stream cleanly between frames.
    Eof,
    /// A read timeout elapsed before any byte of the next frame arrived
    /// (only with a socket read timeout set; callers poll a shutdown
    /// flag and retry).
    Idle,
}

/// Write `payload` as one frame and flush.
///
/// # Errors
///
/// [`IrisError::InvalidInput`] if the payload exceeds [`MAX_FRAME_LEN`];
/// [`IrisError::Io`] on socket failure.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> IrisResult<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(IrisError::InvalidInput {
            detail: format!(
                "frame payload of {} bytes exceeds the {MAX_FRAME_LEN}-byte maximum",
                payload.len()
            ),
        });
    }
    let len = u32::try_from(payload.len()).expect("bounded by MAX_FRAME_LEN");
    let io_err = |e: std::io::Error| IrisError::Io {
        detail: format!("frame write failed: {e}"),
    };
    w.write_all(&len.to_be_bytes()).map_err(io_err)?;
    w.write_all(payload).map_err(io_err)?;
    w.flush().map_err(io_err)
}

/// Read the next frame. A clean EOF between frames is [`FrameEvent::Eof`];
/// a read timeout before the first byte is [`FrameEvent::Idle`]. Once a
/// frame has started, timeouts keep reading (the peer is mid-send) and a
/// disconnect mid-frame is a typed decode error.
///
/// # Errors
///
/// [`IrisError::Decode`] for a truncated length prefix, an oversized
/// announced length (checked before allocating) or a payload cut off
/// mid-frame; [`IrisError::Io`] for other socket failures.
pub fn read_frame<R: Read>(r: &mut R) -> IrisResult<FrameEvent> {
    let mut prefix = [0u8; 4];
    match read_fill(r, &mut prefix, true)? {
        Fill::Complete => {}
        Fill::Empty => return Ok(FrameEvent::Eof),
        Fill::Idle => return Ok(FrameEvent::Idle),
        Fill::Partial(got) => {
            return Err(IrisError::Decode {
                detail: format!("truncated length prefix: wanted 4 bytes, got {got}"),
            })
        }
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME_LEN {
        // Reject before allocating: the announced length is attacker- or
        // corruption-controlled.
        return Err(IrisError::Decode {
            detail: format!("frame length {len} exceeds the {MAX_FRAME_LEN}-byte maximum"),
        });
    }
    let mut payload = vec![0u8; len];
    match read_fill(r, &mut payload, false)? {
        Fill::Complete => Ok(FrameEvent::Frame(payload)),
        Fill::Empty | Fill::Idle | Fill::Partial(_) => unreachable!("eof_ok is false"),
    }
}

enum Fill {
    Complete,
    /// EOF before the first byte (only when `eof_ok`).
    Empty,
    /// Timeout before the first byte (only when `eof_ok`).
    Idle,
    /// EOF after `n` bytes (only when `eof_ok`; mid-payload EOF errors).
    Partial(usize),
}

/// Fill `buf`, tolerating interrupted and timed-out reads. With `eof_ok`
/// (the length prefix), a clean EOF or timeout at offset 0 is reported
/// instead of erroring; without it (the payload), any shortfall is a
/// decode error naming the byte counts.
fn read_fill<R: Read>(r: &mut R, buf: &mut [u8], eof_ok: bool) -> IrisResult<Fill> {
    let mut got = 0usize;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                if eof_ok {
                    return Ok(if got == 0 {
                        Fill::Empty
                    } else {
                        Fill::Partial(got)
                    });
                }
                return Err(IrisError::Decode {
                    detail: format!(
                        "truncated frame payload: wanted {} bytes, got {got}",
                        buf.len()
                    ),
                });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if eof_ok && got == 0 {
                    return Ok(Fill::Idle);
                }
                // Mid-frame: the peer has started sending; keep waiting.
            }
            Err(e) => {
                return Err(IrisError::Io {
                    detail: format!("frame read failed: {e}"),
                })
            }
        }
    }
    Ok(Fill::Complete)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frame_bytes(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, payload).expect("in-memory write");
        out
    }

    #[test]
    fn round_trips_a_payload() {
        let bytes = frame_bytes(b"{\"Health\":null}");
        let mut r = Cursor::new(bytes);
        assert_eq!(
            read_frame(&mut r).unwrap(),
            FrameEvent::Frame(b"{\"Health\":null}".to_vec())
        );
        assert_eq!(read_frame(&mut r).unwrap(), FrameEvent::Eof);
    }

    #[test]
    fn empty_stream_is_clean_eof() {
        let mut r = Cursor::new(Vec::<u8>::new());
        assert_eq!(read_frame(&mut r).unwrap(), FrameEvent::Eof);
    }

    #[test]
    fn malformed_length_prefix_is_a_decode_error() {
        // Two of the four prefix bytes, then EOF.
        let mut r = Cursor::new(vec![0u8, 1]);
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.code(), "decode");
        assert!(err.to_string().contains("length prefix"), "{err}");
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        // Announce 4 GiB-ish; only the 4 prefix bytes are on the wire,
        // so if the reader tried to allocate it would also hang waiting
        // for a payload that never comes.
        let mut bytes = (u32::MAX).to_be_bytes().to_vec();
        bytes.extend_from_slice(b"junk");
        let mut r = Cursor::new(bytes);
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.code(), "decode");
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    #[test]
    fn oversized_write_is_rejected() {
        let mut out = Vec::new();
        let err = write_frame(&mut out, &vec![0u8; MAX_FRAME_LEN + 1]).unwrap_err();
        assert_eq!(err.code(), "invalid-input");
        assert!(out.is_empty(), "nothing written for a rejected frame");
    }

    #[test]
    fn truncated_payload_is_a_decode_error() {
        let mut bytes = frame_bytes(b"hello world");
        bytes.truncate(4 + 5); // prefix + 5 of 11 payload bytes
        let mut r = Cursor::new(bytes);
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.code(), "decode");
        let msg = err.to_string();
        assert!(msg.contains("wanted 11"), "{msg}");
        assert!(msg.contains("got 5"), "{msg}");
    }

    #[test]
    fn back_to_back_frames_parse_in_order() {
        let mut bytes = frame_bytes(b"one");
        bytes.extend(frame_bytes(b""));
        bytes.extend(frame_bytes(b"three"));
        let mut r = Cursor::new(bytes);
        assert_eq!(
            read_frame(&mut r).unwrap(),
            FrameEvent::Frame(b"one".to_vec())
        );
        assert_eq!(read_frame(&mut r).unwrap(), FrameEvent::Frame(Vec::new()));
        assert_eq!(
            read_frame(&mut r).unwrap(),
            FrameEvent::Frame(b"three".to_vec())
        );
        assert_eq!(read_frame(&mut r).unwrap(), FrameEvent::Eof);
    }
}
