//! Figure 17 — 99th-percentile FCT slowdown of Iris vs EPS as a function
//! of the reconfiguration (traffic-change) interval, across utilizations
//! and change magnitudes.
//!
//! Paper shape: with bounded (<= 50%) changes the slowdown is within ~2%
//! at every interval; only unbounded changes at 1 s intervals and high
//! utilization produce visible slowdowns (up to ~2x at the tail).

use iris_planner::{provision, DesignGoals};
use iris_simnet::traffic::ChangeModel;
use iris_simnet::workloads::FlowSizeDist;
use iris_simnet::{run_comparison, ExperimentConfig, SimTopology};

fn main() {
    let quick = iris_bench::quick_mode();
    // Topology: a planned 8-DC region, capacities scaled so the largest
    // link is ~2 Gbps (FCT ratios are scale-invariant; see DESIGN.md).
    let region = iris_bench::simple_region(3, 8);
    let goals = DesignGoals::with_cuts(0);
    let prov = provision(&region, &goals);
    let raw = SimTopology::from_provisioning(&region, &goals, &prov, 1.0);
    let max_cap = raw
        .links
        .iter()
        .map(|l| l.capacity_gbps)
        .fold(0.0f64, f64::max);
    let topo = SimTopology::from_provisioning(&region, &goals, &prov, 2.0 / max_cap);

    let utils: &[f64] = if quick { &[0.4] } else { &[0.1, 0.4, 0.7] };
    let intervals: &[f64] = if quick {
        &[1.0, 10.0]
    } else {
        &[1.0, 2.0, 5.0, 10.0, 20.0, 30.0]
    };
    let changes = [
        ("50% bounded", ChangeModel::Bounded(0.5)),
        ("unbounded", ChangeModel::Unbounded),
    ];

    println!("# util  change      interval_s  p99_all  p99_short  mean_all");
    let mut rows = Vec::new();
    for &util in utils {
        for (change_name, change) in changes {
            for &interval in intervals {
                let duration = (6.0 * interval).clamp(20.0, 60.0);
                let r = run_comparison(
                    &topo,
                    &ExperimentConfig {
                        duration_s: duration,
                        utilization: util,
                        change_interval_s: interval,
                        change_model: change,
                        workload: FlowSizeDist::pfabric_web_search(),
                        outage_s: 0.07,
                        seed: 42,
                    },
                );
                println!(
                    "{util:5.1}  {change_name:<10}  {interval:9.0}  {:7.3}  {:9.3}  {:8.3}",
                    r.slowdown_p99_all, r.slowdown_p99_short, r.slowdown_mean_all
                );
                rows.push(serde_json::json!({
                    "utilization": util,
                    "change": change_name,
                    "interval_s": interval,
                    "slowdown_p99_all": r.slowdown_p99_all,
                    "slowdown_p99_short": r.slowdown_p99_short,
                    "slowdown_mean_all": r.slowdown_mean_all,
                    "flows": r.eps_flows,
                }));
            }
        }
    }

    println!("\npaper shape: <=2% slowdown for bounded changes at intervals >= 10 s;");
    println!("only unbounded changes at 1 s + high utilization show large tails.");

    iris_bench::write_results(
        "fig17_fct_slowdown",
        &serde_json::json!({
            "rows": rows,
            "paper_claim": "99th-pct slowdown <= 2% except unbounded changes at 1 s / 70% util",
        }),
    );
}
