//! JSON import/export of regions.
//!
//! Operators keep fiber maps in GIS exports; downstream tooling wants a
//! stable interchange format. A [`Region`] serializes to a single JSON
//! document containing sites (kind, position, name), ducts (endpoints,
//! length), the DC list and capacities — everything the planner needs.

use crate::map::Region;

/// Serialize a region to pretty-printed JSON.
///
/// # Errors
///
/// Returns the serializer's error message (should not happen for valid
/// regions).
pub fn region_to_json(region: &Region) -> Result<String, String> {
    serde_json::to_string_pretty(region).map_err(|e| e.to_string())
}

/// Deserialize a region from JSON and validate it.
///
/// # Errors
///
/// Returns a message for malformed JSON or a region failing validation.
pub fn region_from_json(json: &str) -> Result<Region, String> {
    let region: Region = serde_json::from_str(json).map_err(|e| e.to_string())?;
    // Re-run the structural invariants; `validate` panics, so catch it
    // into an error for file-sourced input.
    std::panic::catch_unwind(|| region.validate())
        .map_err(|_| "region failed validation (see panic message)".to_owned())?;
    Ok(region)
}

/// Write a region to a file.
///
/// # Errors
///
/// Propagates serialization and I/O errors as strings.
pub fn save_region(region: &Region, path: &std::path::Path) -> Result<(), String> {
    let json = region_to_json(region)?;
    std::fs::write(path, json).map_err(|e| format!("write {}: {e}", path.display()))
}

/// Read a region from a file.
///
/// # Errors
///
/// Propagates I/O, parse and validation errors as strings.
pub fn load_region(path: &std::path::Path) -> Result<Region, String> {
    let json =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    region_from_json(&json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate_metro, place_dcs};
    use crate::{MetroParams, PlacementParams};

    fn region() -> Region {
        place_dcs(
            generate_metro(&MetroParams::default()),
            &PlacementParams {
                n_dcs: 4,
                ..PlacementParams::default()
            },
        )
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let r = region();
        let json = region_to_json(&r).unwrap();
        let back = region_from_json(&json).unwrap();
        assert_eq!(back.dcs, r.dcs);
        assert_eq!(back.capacity_fibers, r.capacity_fibers);
        assert_eq!(back.wavelengths_per_fiber, r.wavelengths_per_fiber);
        assert_eq!(back.map.site_count(), r.map.site_count());
        assert_eq!(back.map.duct_count(), r.map.duct_count());
        for i in 0..r.map.site_count() {
            // JSON float formatting may drop the last ULP.
            let d = back.map.site(i).position.distance(&r.map.site(i).position);
            assert!(d < 1e-9, "site {i} moved by {d} km");
            assert_eq!(back.map.site(i).kind, r.map.site(i).kind);
        }
        // Planner-visible behaviour identical (within float formatting).
        let da = back.map.fiber_distance(r.dcs[0], r.dcs[1]).unwrap();
        let db = r.map.fiber_distance(r.dcs[0], r.dcs[1]).unwrap();
        assert!((da - db).abs() < 1e-9);
    }

    #[test]
    fn file_round_trip() {
        let r = region();
        let dir = std::env::temp_dir().join("iris-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("region.json");
        save_region(&r, &path).unwrap();
        let back = load_region(&path).unwrap();
        assert_eq!(back.dcs, r.dcs);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(region_from_json("{not json").is_err());
        assert!(region_from_json("{}").is_err());
    }

    #[test]
    fn invalid_region_is_rejected() {
        let r = region();
        let mut json: serde_json::Value =
            serde_json::from_str(&region_to_json(&r).unwrap()).unwrap();
        // Break the invariant: drop one capacity entry.
        json["capacity_fibers"] = serde_json::json!([16]);
        let err = region_from_json(&json.to_string());
        assert!(err.is_err());
    }

    #[test]
    fn missing_file_is_an_error() {
        let err = load_region(std::path::Path::new("/nonexistent/region.json"));
        assert!(err.is_err());
    }
}
