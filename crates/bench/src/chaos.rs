//! The chaos harness: sweep seeded fault schedules through the live
//! control plane and measure how the self-healing loop holds up.
//!
//! Each chaos scenario generates a deterministic [`FaultSchedule`] from
//! its seed, stands up a fresh controller on a planned region, and
//! replays the schedule: fiber cuts go through
//! [`Controller::handle_fiber_cut_with_faults`] (cut → detect → re-plan
//! → reconfigure → repair), device faults are armed into the injector
//! and exercised by a demand-change reconfiguration. The harness also
//! quantifies FCT impact by replaying the first fiber cut of each
//! scenario as a [`CapacityEvent`] in a paired flow-level simulation.
//!
//! Everything is a pure function of the seed: same seed, byte-identical
//! [`ChaosReport`] — the `chaos` CI job diffs two runs to prove it.

use iris_control::controller::Allocation;
use iris_control::{Controller, FaultDomain, FaultInjector, FaultKind, FaultSchedule};
use iris_errors::{IrisError, IrisResult};
use iris_fibermap::Region;
use iris_planner::topology::{nominal_paths, provision, Provisioning};
use iris_planner::DesignGoals;
use iris_simnet::engine::{CapacityEvent, FabricModel, SimConfig};
use iris_simnet::experiment::fct_quantile;
use iris_simnet::traffic::ChangeModel;
use iris_simnet::workloads::FlowSizeDist;
use iris_simnet::{SimTopology, Simulator, TrafficMatrix};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Chaos sweep parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Master seed; scenario `s` uses `seed + s`.
    pub seed: u64,
    /// Number of fault scenarios to replay.
    pub scenarios: usize,
    /// DCs in the synthetic region.
    pub n_dcs: usize,
    /// Planner cut tolerance `k` (also the largest single cut event).
    pub cuts: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            seed: 7,
            scenarios: 10,
            n_dcs: 6,
            cuts: 1,
        }
    }
}

/// p50/p90/p99/max of a sample set (empty set = all zeros).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Distribution {
    /// Sample count.
    pub samples: usize,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Distribution {
    /// Summarize `values` (nearest-rank percentiles).
    #[must_use]
    pub fn from_samples(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self {
                samples: 0,
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
                max: 0.0,
            };
        }
        Self {
            samples: values.len(),
            p50: crate::percentile(values, 0.50),
            p90: crate::percentile(values, 0.90),
            p99: crate::percentile(values, 0.99),
            max: values.iter().copied().fold(0.0, f64::max),
        }
    }
}

/// What happened in one chaos scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// Scenario index.
    pub scenario: usize,
    /// The scenario's fault-schedule seed.
    pub seed: u64,
    /// Fault events replayed, by kind name.
    pub fault_counts: BTreeMap<String, u32>,
    /// Fiber-cut recoveries attempted.
    pub recoveries: u32,
    /// Recoveries that kept every demand (no shed, no overload,
    /// converged).
    pub fully_recovered: u32,
    /// DC pairs shed across all recoveries (0 for `<= k` cuts on a
    /// feasible plan).
    pub shed_pairs: u32,
    /// Verification retry rounds across all reconfigurations.
    pub retries: u32,
    /// Reconfigurations that ended in rollback.
    pub rollbacks: u32,
    /// Sites quarantined by the end of the scenario.
    pub quarantined: u32,
    /// Recovery times of the fiber-cut recoveries, ms.
    pub recovery_ms: Vec<f64>,
    /// Worst per-pair dark times of every reconfiguration, ms.
    pub dark_ms: Vec<f64>,
    /// p99 FCT with the first fiber cut replayed as a capacity event, s
    /// (absent if the scenario had no fiber cut or no flows finished).
    pub fct_p99_faulted_s: Option<f64>,
    /// p99 FCT of the paired fault-free run, s.
    pub fct_p99_baseline_s: Option<f64>,
    /// `faulted / baseline` p99 FCT ratio (1.0 = no impact).
    pub fct_impact: Option<f64>,
}

/// The sweep's aggregate result (what `results/chaos_sweep.json` holds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosReport {
    /// The sweep configuration.
    pub config: ChaosConfig,
    /// Region shape the sweep ran on.
    pub ducts: usize,
    /// Per-scenario outcomes.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Distribution of fiber-cut recovery times, ms.
    pub recovery_ms: Distribution,
    /// Distribution of worst per-pair dark times, ms.
    pub dark_ms: Distribution,
    /// Distribution of p99-FCT impact ratios.
    pub fct_impact: Distribution,
    /// Total verification retries across the sweep.
    pub total_retries: u32,
    /// Total rollbacks across the sweep.
    pub total_rollbacks: u32,
    /// Total shed pairs across the sweep.
    pub total_shed_pairs: u32,
    /// Whether every `<= k` fiber-cut recovery kept all demands.
    pub all_tolerated_cuts_recovered: bool,
}

/// Modeled per-scenario fault-event count.
const EVENTS_PER_SCENARIO: usize = 6;

/// Short paired simulation used for FCT impact.
const FCT_SIM_DURATION_S: f64 = 3.0;
const FCT_SIM_UTILIZATION: f64 = 0.35;

/// Run the chaos sweep. Deterministic: same config, same report.
///
/// # Errors
///
/// Returns [`IrisError::Infeasible`] if the synthetic region cannot be
/// planned at the requested cut tolerance (pick another seed or fewer
/// cuts), and propagates any recovery error.
pub fn run_chaos(cfg: &ChaosConfig) -> IrisResult<ChaosReport> {
    let region = crate::simple_region(cfg.seed, cfg.n_dcs);
    let goals = DesignGoals::with_cuts(cfg.cuts);
    let prov = provision(&region, &goals);
    if !prov.infeasible.is_empty() {
        return Err(IrisError::Infeasible {
            detail: format!(
                "region (seed {}, {} DCs) has {} infeasible (pair, scenario) combos at k={}",
                cfg.seed,
                cfg.n_dcs,
                prov.infeasible.len(),
                cfg.cuts
            ),
        });
    }
    let base = base_allocation(&region, &goals);
    let topo = scaled_topology(&region, &goals, &prov);
    let domain = FaultDomain {
        sites: region.map.graph().node_count(),
        ducts: region.map.graph().edge_count(),
        max_cut_size: cfg.cuts.max(1),
        events: EVENTS_PER_SCENARIO,
    };

    let mut outcomes = Vec::with_capacity(cfg.scenarios);
    for s in 0..cfg.scenarios {
        let seed = cfg.seed.wrapping_add(s as u64);
        let schedule = FaultSchedule::generate(seed, &domain);
        outcomes.push(run_scenario(
            s, seed, &schedule, &region, &goals, &prov, &base, &topo, cfg,
        )?);
    }

    let recovery: Vec<f64> = outcomes
        .iter()
        .flat_map(|o| o.recovery_ms.clone())
        .collect();
    let dark: Vec<f64> = outcomes.iter().flat_map(|o| o.dark_ms.clone()).collect();
    let impact: Vec<f64> = outcomes.iter().filter_map(|o| o.fct_impact).collect();
    let all_recovered = outcomes.iter().all(|o| o.fully_recovered == o.recoveries);
    Ok(ChaosReport {
        config: *cfg,
        ducts: region.map.graph().edge_count(),
        recovery_ms: Distribution::from_samples(&recovery),
        dark_ms: Distribution::from_samples(&dark),
        fct_impact: Distribution::from_samples(&impact),
        total_retries: outcomes.iter().map(|o| o.retries).sum(),
        total_rollbacks: outcomes.iter().map(|o| o.rollbacks).sum(),
        total_shed_pairs: outcomes.iter().map(|o| o.shed_pairs).sum(),
        all_tolerated_cuts_recovered: all_recovered,
        outcomes,
    })
}

/// One circuit on every planned DC pair.
fn base_allocation(region: &Region, goals: &DesignGoals) -> Allocation {
    nominal_paths(region, goals)
        .iter()
        .map(|p| ((p.a, p.b), 1))
        .collect()
}

/// The paired-simulation topology, scaled the way `iris simulate` scales
/// it (bottleneck link ≈ 2 Gbps so short sims produce contention).
fn scaled_topology(region: &Region, goals: &DesignGoals, prov: &Provisioning) -> SimTopology {
    let raw = SimTopology::from_provisioning(region, goals, prov, 1.0);
    let max_cap = raw
        .links
        .iter()
        .map(|l| l.capacity_gbps)
        .fold(0.0f64, f64::max);
    SimTopology::from_provisioning(region, goals, prov, 2.0 / max_cap)
}

#[allow(clippy::too_many_arguments)]
fn run_scenario(
    scenario: usize,
    seed: u64,
    schedule: &FaultSchedule,
    region: &Region,
    goals: &DesignGoals,
    prov: &Provisioning,
    base: &Allocation,
    topo: &SimTopology,
    cfg: &ChaosConfig,
) -> IrisResult<ScenarioOutcome> {
    let controller = Controller::for_region(region, goals);
    let setup = controller.reconfigure(base);
    debug_assert!(setup.converged());

    let mut inj = FaultInjector::none();
    let mut fault_counts: BTreeMap<String, u32> = BTreeMap::new();
    let mut recoveries = 0u32;
    let mut fully_recovered = 0u32;
    let mut shed_pairs = 0u32;
    let mut retries = 0u32;
    let mut rollbacks = 0u32;
    let mut recovery_ms = Vec::new();
    let mut dark_ms = Vec::new();
    let mut first_cut: Option<(Vec<usize>, f64)> = None;
    let mut toggle = 2u32;

    for event in &schedule.events {
        *fault_counts
            .entry(event.kind.name().to_owned())
            .or_insert(0) += 1;
        match &event.kind {
            FaultKind::FiberCut { ducts } => {
                let rec = controller
                    .handle_fiber_cut_with_faults(region, goals, prov, ducts, &mut inj)?;
                recoveries += 1;
                if rec.fully_recovered() {
                    fully_recovered += 1;
                }
                shed_pairs += rec.shed_pairs.len() as u32;
                retries += rec.reconfig.retries;
                if !rec.reconfig.converged() {
                    rollbacks += 1;
                }
                recovery_ms.push(rec.recovery_ms);
                if rec.reconfig.total_ms > 0.0 {
                    dark_ms.push(rec.reconfig.max_dark_ms());
                }
                // Keep the first cut that hits a duct some nominal route
                // rides: cuts on unused or backup-only ducts carry no
                // live traffic, so they have no FCT story to tell.
                if first_cut.is_none() {
                    let links = links_of_ducts(prov, ducts);
                    if !affected_pairs(topo, &links).is_empty() {
                        first_cut = Some((ducts.clone(), rec.recovery_ms));
                    }
                }
                // The duct is repaired before the next event: restore the
                // full allocation (maintenance, not counted as dark time).
                controller.reconfigure(base);
            }
            other => {
                // Arm the device fault, then exercise it with a routine
                // demand-change reconfiguration.
                inj.arm(other);
                let target: Allocation = base.keys().map(|&pair| (pair, toggle)).collect();
                toggle = if toggle == 2 { 1 } else { 2 };
                let report = controller.reconfigure_with_faults(&target, &mut inj);
                retries += report.retries;
                if !report.converged() {
                    rollbacks += 1;
                }
                if report.total_ms > 0.0 {
                    dark_ms.push(report.max_dark_ms());
                }
            }
        }
    }

    // FCT impact of the first fiber cut, as a paired simulation: same
    // seed and arrivals, with and without the cut's capacity event.
    let (fct_faulted, fct_baseline, fct_impact) = match &first_cut {
        None => (None, None, None),
        Some((ducts, rec_ms)) => {
            let links = links_of_ducts(prov, ducts);
            let event = CapacityEvent {
                start_s: FCT_SIM_DURATION_S / 3.0,
                duration_s: rec_ms / 1000.0,
                capacity_factor: 0.0,
                links: Some(links),
            };
            let window = (event.start_s - 0.1, event.start_s + event.duration_s + 0.5);
            let affected = affected_pairs(topo, event.links.as_deref().unwrap_or(&[]));
            let faulted = fct_p99(topo, vec![event], seed, window, &affected);
            let baseline = fct_p99(topo, Vec::new(), seed, window, &affected);
            let impact = match (faulted, baseline) {
                (Some(f), Some(b)) if b > 0.0 => Some(f / b),
                _ => None,
            };
            (faulted, baseline, impact)
        }
    };
    let _ = cfg;

    Ok(ScenarioOutcome {
        scenario,
        seed,
        fault_counts,
        recoveries,
        fully_recovered,
        shed_pairs,
        retries,
        rollbacks,
        quarantined: controller.quarantined().len() as u32,
        recovery_ms,
        dark_ms,
        fct_p99_faulted_s: fct_faulted,
        fct_p99_baseline_s: fct_baseline,
        fct_impact,
    })
}

/// Map cut duct ids onto the simulation's dense link ids (unused ducts
/// have no link and are dropped).
fn links_of_ducts(prov: &Provisioning, ducts: &[usize]) -> Vec<usize> {
    let used = prov.used_edges();
    ducts
        .iter()
        .filter_map(|d| used.iter().position(|u| u == d))
        .collect()
}

/// The DC pairs whose route crosses any of `links`.
fn affected_pairs(topo: &SimTopology, links: &[usize]) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    for i in 0..topo.n_dcs {
        for j in (i + 1)..topo.n_dcs {
            if topo.route(i, j).iter().any(|l| links.contains(l)) {
                pairs.push((i, j));
            }
        }
    }
    pairs
}

/// p99 FCT of a short seeded run on `topo` with the given capacity
/// events (EPS fabric, static traffic — isolates the cut's effect),
/// restricted to flows on the `affected` pairs arriving inside
/// `window`, so a tens-of-ms outage is not diluted across unaffected
/// traffic. Paired same-seed runs see identical arrivals, so the
/// restricted flow sets are comparable.
fn fct_p99(
    topo: &SimTopology,
    capacity_events: Vec<CapacityEvent>,
    seed: u64,
    window: (f64, f64),
    affected: &[(usize, usize)],
) -> Option<f64> {
    let matrix = TrafficMatrix::heavy_tailed(topo.n_dcs, seed);
    let sim = Simulator::new(
        topo.clone(),
        matrix,
        SimConfig {
            duration_s: FCT_SIM_DURATION_S,
            utilization: FCT_SIM_UTILIZATION,
            flow_sizes: FlowSizeDist::pfabric_web_search(),
            change_interval_s: None,
            change_model: ChangeModel::Bounded(0.5),
            fabric: FabricModel::Eps,
            capacity_events,
            seed,
        },
    );
    let records = sim.run();
    let windowed: Vec<_> = records
        .into_iter()
        .filter(|r| r.start_s >= window.0 && r.start_s <= window.1 && affected.contains(&r.pair))
        .collect();
    fct_quantile(&windowed, 0.99, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ChaosConfig {
        ChaosConfig {
            seed: 7,
            scenarios: 2,
            n_dcs: 5,
            cuts: 1,
        }
    }

    #[test]
    fn chaos_sweep_is_deterministic() {
        let a = run_chaos(&tiny()).expect("plannable");
        let b = run_chaos(&tiny()).expect("plannable");
        assert_eq!(a, b);
        let ja = serde_json::to_string(&a).unwrap();
        let jb = serde_json::to_string(&b).unwrap();
        assert_eq!(ja, jb, "byte-identical JSON under one seed");
    }

    #[test]
    fn tolerated_cuts_always_recover() {
        let report = run_chaos(&tiny()).expect("plannable");
        assert!(
            report.all_tolerated_cuts_recovered,
            "a <= k cut must never lose demands: {report:?}"
        );
        assert_eq!(report.total_shed_pairs, 0);
    }

    #[test]
    fn sweep_exercises_recoveries_and_reports_distributions() {
        let report = run_chaos(&ChaosConfig {
            scenarios: 4,
            ..tiny()
        })
        .expect("plannable");
        assert_eq!(report.outcomes.len(), 4);
        let recoveries: u32 = report.outcomes.iter().map(|o| o.recoveries).sum();
        assert!(recoveries > 0, "schedules lean on fiber cuts");
        assert!(report.recovery_ms.samples as u32 == recoveries);
        assert!(report.recovery_ms.p50 > 0.0);
        assert!(report.dark_ms.max >= report.dark_ms.p50);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_chaos(&tiny()).expect("plannable");
        let b = run_chaos(&ChaosConfig { seed: 8, ..tiny() }).expect("plannable");
        assert_ne!(a, b);
    }
}
