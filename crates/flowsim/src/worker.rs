//! The link-simulation worker: a small TCP server any machine can run.
//!
//! One worker serves any number of coordinator connections (a thread
//! per connection). Per connection the protocol is strictly
//! request/reply except that a `RunLink` answer is a *stream* of
//! [`WorkerResponse::LinkChunk`] frames. Workers are stateless across
//! restarts; the only state is a cache of the last installed
//! [`WorkSpec`]'s decomposition, keyed by content fingerprint, shared
//! by all connections — reconnecting after a crash re-ships the spec
//! and rebuilds it.

use crate::decompose::Decomposition;
use crate::proto::{
    decode_request, encode_response, WorkSpec, WorkerRequest, WorkerResponse, CHUNK_FLOWS,
};
use iris_errors::{IrisError, IrisResult};
use iris_simnet::SimTopology;
use iris_wire::frame::{read_frame, write_frame, FrameEvent};
use iris_wire::Codec;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};

/// Worker tuning knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerConfig {
    /// Artificial per-job delay, ms — a test hook that widens the
    /// window for kill-mid-job fault injection (CI's kill-9 smoke).
    pub slow_ms: u64,
}

/// The decomposition built from the last installed spec, shared across
/// connections.
#[derive(Debug, Default)]
struct SpecCache {
    entry: Option<(u64, Arc<(SimTopology, Decomposition)>)>,
}

impl SpecCache {
    fn load(&mut self, spec: &WorkSpec) -> (Arc<(SimTopology, Decomposition)>, bool) {
        let fp = spec.fingerprint();
        if let Some((cached_fp, run)) = &self.entry {
            if *cached_fp == fp {
                return (Arc::clone(run), true);
            }
        }
        let trace = spec.trace();
        let dec = Decomposition::build(&spec.topo, &trace);
        let run = Arc::new((spec.topo.clone(), dec));
        self.entry = Some((fp, Arc::clone(&run)));
        (run, false)
    }
}

/// Serve forever on `listener`. Each accepted connection gets its own
/// thread; the spec cache is shared.
///
/// # Errors
///
/// Returns an error only if `accept` itself fails fatally.
pub fn serve(listener: TcpListener, cfg: WorkerConfig) -> IrisResult<()> {
    let cache = Arc::new(Mutex::new(SpecCache::default()));
    loop {
        let (stream, peer) = listener.accept().map_err(|e| IrisError::Io {
            detail: format!("flowsim worker accept: {e}"),
        })?;
        let cache = Arc::clone(&cache);
        std::thread::spawn(move || {
            if let Err(e) = serve_connection(stream, &cache, cfg) {
                eprintln!("flowsim worker: connection {peer}: [{}] {e}", e.code());
            }
        });
    }
}

/// Bind `127.0.0.1:0`, spawn a detached serving thread, and return the
/// bound address — the in-test worker entry point.
///
/// # Errors
///
/// Returns an error if the bind fails.
pub fn spawn_ephemeral(cfg: WorkerConfig) -> IrisResult<SocketAddr> {
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| IrisError::Io {
        detail: format!("flowsim worker bind: {e}"),
    })?;
    let addr = listener.local_addr().map_err(|e| IrisError::Io {
        detail: format!("flowsim worker local_addr: {e}"),
    })?;
    std::thread::spawn(move || {
        let _ = serve(listener, cfg);
    });
    Ok(addr)
}

fn serve_connection(
    mut stream: TcpStream,
    cache: &Mutex<SpecCache>,
    cfg: WorkerConfig,
) -> IrisResult<()> {
    let telemetry = iris_telemetry::global();
    let mut codec = Codec::Json;
    let mut run: Option<Arc<(SimTopology, Decomposition)>> = None;
    loop {
        let payload = match read_frame(&mut stream)? {
            FrameEvent::Frame(p) => p,
            FrameEvent::Eof | FrameEvent::Idle => return Ok(()),
        };
        let request = match decode_request(codec, &payload) {
            Ok(r) => r,
            Err(error) => {
                // Frame boundaries survived; answer typed and continue.
                reply(&mut stream, codec, &WorkerResponse::Error { error })?;
                continue;
            }
        };
        match request {
            WorkerRequest::Hello { codec: name } => match Codec::from_name(&name) {
                Some(next) => {
                    // Ack in the *old* codec, then switch — mirror of
                    // the service's negotiation.
                    reply(&mut stream, codec, &WorkerResponse::HelloOk { codec: name })?;
                    codec = next;
                }
                None => reply(
                    &mut stream,
                    codec,
                    &WorkerResponse::Error {
                        error: IrisError::InvalidInput {
                            detail: format!("unknown codec '{name}'"),
                        },
                    },
                )?,
            },
            WorkerRequest::LoadSpec { spec } => {
                let (installed, cache_hit) = cache.lock().expect("cache lock").load(&spec);
                telemetry
                    .counter("iris_flowsim_worker_spec_loads_total")
                    .add(1);
                if cache_hit {
                    telemetry
                        .counter("iris_flowsim_worker_spec_cache_hits_total")
                        .add(1);
                }
                let resp = WorkerResponse::SpecLoaded {
                    flows: installed.1.flows.len(),
                    links: installed.1.occupied_links().len(),
                };
                run = Some(installed);
                reply(&mut stream, codec, &resp)?;
            }
            WorkerRequest::RunLink { link } => {
                let Some(run) = run.as_ref() else {
                    reply(
                        &mut stream,
                        codec,
                        &WorkerResponse::Error {
                            error: IrisError::InvalidInput {
                                detail: "RunLink before LoadSpec".to_owned(),
                            },
                        },
                    )?;
                    continue;
                };
                let (topo, dec) = run.as_ref();
                if link >= dec.link_flows.len() {
                    reply(
                        &mut stream,
                        codec,
                        &WorkerResponse::Error {
                            error: IrisError::InvalidInput {
                                detail: format!(
                                    "link {link} out of range ({} links)",
                                    dec.link_flows.len()
                                ),
                            },
                        },
                    )?;
                    continue;
                }
                if cfg.slow_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(cfg.slow_ms));
                }
                let finishes = dec.simulate(topo, link);
                telemetry.counter("iris_flowsim_worker_jobs_total").add(1);
                stream_chunks(&mut stream, codec, link, &finishes)?;
            }
        }
    }
}

/// Stream a link result as `LinkChunk` frames (always at least one, so
/// an empty link still yields a `done` frame).
fn stream_chunks(
    stream: &mut TcpStream,
    codec: Codec,
    link: usize,
    finishes: &[f64],
) -> IrisResult<()> {
    let mut offset = 0;
    loop {
        let end = (offset + CHUNK_FLOWS).min(finishes.len());
        let done = end == finishes.len();
        reply(
            stream,
            codec,
            &WorkerResponse::LinkChunk {
                link,
                offset,
                finish_s: finishes[offset..end].to_vec(),
                done,
            },
        )?;
        if done {
            return Ok(());
        }
        offset = end;
    }
}

fn reply(stream: &mut TcpStream, codec: Codec, resp: &WorkerResponse) -> IrisResult<()> {
    write_frame(stream, &encode_response(codec, resp)?)
}
