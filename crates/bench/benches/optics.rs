//! Criterion benches for the physical-layer models and the control
//! plane's hot paths.

use criterion::{criterion_group, criterion_main, Criterion};
use iris_control::controller::{Allocation, Controller};
use iris_control::messages::Command;
use iris_control::SpaceSwitch;
use iris_optics::{ber, evaluate_path, osnr, PathElement, SwitchElement};
use std::hint::black_box;

fn bench_budget_evaluation(c: &mut Criterion) {
    let path = vec![
        PathElement::default_amp(),
        PathElement::fiber_km(40.0),
        PathElement::Switch(SwitchElement::Oss),
        PathElement::fiber_km(30.0),
        PathElement::Switch(SwitchElement::Oss),
        PathElement::default_amp(),
        PathElement::fiber_km(45.0),
        PathElement::default_amp(),
    ];
    c.bench_function("evaluate_path_6_elements", |b| {
        b.iter(|| black_box(evaluate_path(&path)))
    });
}

fn bench_ber_and_osnr(c: &mut Criterion) {
    c.bench_function("ber_16qam", |b| {
        b.iter(|| black_box(ber::ber_16qam(black_box(28.3))))
    });
    c.bench_function("osnr_cascade_penalty", |b| {
        b.iter(|| black_box(osnr::cascade_penalty_default_db(black_box(3))))
    });
}

fn bench_controller_reconfigure(c: &mut Criterion) {
    c.bench_function("controller_reconfigure_20_sites", |b| {
        b.iter(|| {
            let switches = (0..20)
                .map(|i| SpaceSwitch::new(&format!("S{i}"), 128))
                .collect();
            let hops = (0..10)
                .flat_map(|i| ((i + 1)..10).map(move |j| ((i, j), 2u32)))
                .collect();
            let controller = Controller::new(switches, hops);
            let target: Allocation = (0..10)
                .flat_map(|i| ((i + 1)..10).map(move |j| ((i, j), 3u32)))
                .collect();
            black_box(controller.reconfigure(&target))
        })
    });
}

fn bench_message_codec(c: &mut Criterion) {
    let cmd = Command::SetCross {
        switch: 7,
        input: 12,
        output: 40,
    };
    c.bench_function("command_encode_decode", |b| {
        b.iter(|| {
            let mut buf = black_box(&cmd).encode();
            black_box(Command::decode(&mut buf).unwrap())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_budget_evaluation, bench_ber_and_osnr, bench_controller_reconfigure, bench_message_codec
}
criterion_main!(benches);
