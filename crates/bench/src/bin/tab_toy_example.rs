//! §3.4's motivating toy example (Fig. 10): the semi-distributed 4-DC
//! topology implemented electrically vs. all-optically.
//!
//! Paper numbers: EPS needs 60 fiber pairs and 4800 transceivers; Iris
//! needs 1600 transceivers, 78 fiber pairs (we compute 76 — shortest-
//! path residual routing; see DESIGN.md) and 312 OSS ports (we get 304),
//! for a ~2.7x electrical/optical cost ratio.

use iris_core::prelude::*;
use iris_cost::{eps_cost, iris_cost, PriceBook};
use iris_geo::Point;

fn toy_region() -> Region {
    let mut map = FiberMap::new();
    let ha = map.add_site(SiteKind::Hut, Point::new(-10.0, 0.0));
    let hb = map.add_site(SiteKind::Hut, Point::new(10.0, 0.0));
    let d1 = map.add_site(SiteKind::DataCenter, Point::new(-18.0, 6.0));
    let d2 = map.add_site(SiteKind::DataCenter, Point::new(-18.0, -6.0));
    let d3 = map.add_site(SiteKind::DataCenter, Point::new(18.0, 6.0));
    let d4 = map.add_site(SiteKind::DataCenter, Point::new(18.0, -6.0));
    map.add_duct(d1, ha, 12.0);
    map.add_duct(d2, ha, 12.0);
    map.add_duct(d3, hb, 12.0);
    map.add_duct(d4, hb, 12.0);
    map.add_duct(ha, hb, 24.0);
    Region {
        map,
        dcs: vec![d1, d2, d3, d4],
        capacity_fibers: vec![10; 4], // 160 Tbps at 40 x 400G
        wavelengths_per_fiber: 40,
        gbps_per_wavelength: 400.0,
    }
}

fn main() {
    let region = toy_region();
    let goals = DesignGoals::with_cuts(0);
    let eps = plan_eps(&region, &goals);
    let iris = plan_iris(&region, &goals);
    let book = PriceBook::paper_2020();
    let ce = eps_cost(&eps, &book);
    let co = iris_cost(&iris, &book);

    println!("§3.4 toy example (4 DCs x 160 Tbps, Fig. 10 topology)");
    println!(
        "{:<28} {:>12} {:>12} {:>8}",
        "", "electrical", "Iris", "paper"
    );
    println!(
        "{:<28} {:>12} {:>12} {:>8}",
        "transceivers",
        eps.total_transceivers(),
        iris.dc_transceivers,
        "4800/1600"
    );
    println!(
        "{:<28} {:>12} {:>12} {:>8}",
        "fiber pairs",
        eps.total_fiber_pair_spans(),
        iris.total_fiber_pair_spans(),
        "60/78"
    );
    println!(
        "{:<28} {:>12} {:>12} {:>8}",
        "OSS ports",
        0,
        iris.oss_ports(),
        "0/312"
    );
    println!(
        "{:<28} {:>12.0} {:>12.0}",
        "annual cost ($)",
        ce.total(),
        co.total()
    );
    let ratio = ce.total() / co.total();
    println!("\nelectrical / optical cost ratio: {ratio:.2}x (paper: 2.7x)");

    iris_bench::write_results(
        "tab_toy_example",
        &serde_json::json!({
            "eps_transceivers": eps.total_transceivers(),
            "iris_transceivers": iris.dc_transceivers,
            "eps_fiber_pairs": eps.total_fiber_pair_spans(),
            "iris_fiber_pairs": iris.total_fiber_pair_spans(),
            "iris_oss_ports": iris.oss_ports(),
            "cost_ratio": ratio,
            "paper_claim": "electrical design costs 2.7x the optical one",
        }),
    );
}
