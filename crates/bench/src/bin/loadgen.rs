//! Standalone load-generator binary — a thin wrapper over
//! [`iris_service::run_loadgen`] for driving a server started elsewhere
//! (`iris serve`, a container, another machine).
//!
//! ```text
//! cargo run -p iris-bench --bin loadgen -- \
//!     --addr 127.0.0.1:7117 --seed 7 --requests 2000 --cut 4 \
//!     --codec binary --pipeline 8 --out results/service_load.json
//! ```
//!
//! The JSON written to `--out` is the seed-deterministic half of the
//! report (byte-identical across runs, codecs, pipeline depths and
//! worker-thread counts); the
//! wall-clock half is printed to stdout. `iris loadgen` is the same
//! engine with the full CLI around it.

use iris_service::{run_loadgen, Codec, LoadgenConfig};

fn main() {
    iris_telemetry::trace::init_from_env();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

fn run(argv: &[String]) -> Result<(), String> {
    let mut cfg = LoadgenConfig::default();
    let mut out = "results/service_load.json".to_owned();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .ok_or_else(|| format!("{flag} requires a value"))?;
        match flag.as_str() {
            "--addr" => cfg.addr = value.clone(),
            "--seed" => cfg.seed = parse(flag, value)?,
            "--requests" => cfg.requests = parse(flag, value)?,
            "--connections" => cfg.connections = parse(flag, value)?,
            "--cut" => {
                cfg.cuts = value
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(|s| parse(flag, s))
                    .collect::<Result<_, _>>()?;
            }
            "--codec" => {
                cfg.codec = Codec::from_name(value)
                    .ok_or_else(|| format!("--codec: unknown codec '{value}'"))?;
            }
            "--pipeline" => cfg.pipeline = parse(flag, value)?,
            "--rate" => cfg.rate = Some(parse(flag, value)?),
            "--out" => out = value.clone(),
            other => {
                return Err(format!(
                    "unknown flag {other} (accepted: --addr, --seed, --requests, \
                     --connections, --cut, --codec, --pipeline, --rate, --out)"
                ))
            }
        }
    }

    let report = run_loadgen(&cfg).map_err(|e| format!("[{}] {e}", e.code()))?;
    let m = &report.measured;
    println!(
        "loadgen: seed {}, {} requests, {} connections: {:.2} s wall, {:.0} req/s",
        report.results.seed,
        report.results.requests,
        report.results.connections,
        m.wall_s,
        m.throughput_rps
    );
    println!(
        "baseline read p99 {:.3} ms; during-recovery read p99 {:.3} ms over {} reads",
        m.baseline_read_p99_ms, m.recovery_read_p99_ms, m.reads_during_recovery
    );
    println!(
        "retries {}  unreachable {}  server coalesced {}  server overloaded {}  errors {}",
        m.retries,
        m.unreachable_reads,
        m.server_coalesced,
        m.server_overloaded,
        report.results.errors
    );
    iris_service::loadgen::write_results(&report.results, &out)
        .map_err(|e| format!("[{}] {e}", e.code()))?;
    println!("results written to {out}");
    Ok(())
}

fn parse<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag}: cannot parse '{value}' as a number"))
}
