//! Per-link decomposition of a recorded flow trace.
//!
//! The Parsimon observation: a flow's completion time under max-min
//! sharing is governed by its *bottleneck*, so simulating every link
//! independently (each under exact processor sharing) and charging each
//! flow the **worst** of its links' transfer estimates — plus its
//! route's propagation RTT, charged analytically — approximates the
//! coupled network simulation at a tiny fraction of the cost, and the
//! per-link problems are embarrassingly parallel.
//!
//! [`Decomposition::build`] inverts the topology's routes through
//! [`SimTopology::crossing_index`] (the simulated mirror of the
//! planner's `ScenarioEngine::pairs_crossing` invalidation index) to
//! assign every admitted flow of a [`FlowTrace`] to the links it
//! loads, and converts the trace's reconfiguration outages + scheduled
//! capacity events into each link's piecewise-constant capacity
//! timeline.

use crate::link::{simulate_link, LinkFlow, ScaleSegment, INCOMPLETE};
use iris_simnet::engine::FabricModel;
use iris_simnet::trace::FlowTrace;
use iris_simnet::traffic::pair_index;
use iris_simnet::{FlowRecord, SimTopology};

/// One admitted flow of the trace, in arrival order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecFlow {
    /// Unordered DC pair (i < j).
    pub pair: (usize, usize),
    /// Arrival time, s.
    pub start_s: f64,
    /// Flow size, bytes.
    pub size_bytes: f64,
}

/// A trace decomposed into independent per-link workloads. Built
/// deterministically from `(topo, trace)` — the coordinator and every
/// worker derive the *same* decomposition from the same spec, so a job
/// can name a link by id alone and results align by construction.
#[derive(Debug)]
pub struct Decomposition {
    /// Admitted flows, trace order (flow id = index).
    pub flows: Vec<DecFlow>,
    /// `link_flows[link]` — flow ids crossing the link, ascending.
    pub link_flows: Vec<Vec<u32>>,
    /// `segments[link]` — the link's capacity-scale timeline.
    pub segments: Vec<Vec<ScaleSegment>>,
    /// Simulated duration, s.
    pub duration_s: f64,
}

impl Decomposition {
    /// Decompose `trace` over `topo`.
    ///
    /// # Panics
    ///
    /// Panics if the trace's DC count does not match the topology.
    #[must_use]
    pub fn build(topo: &SimTopology, trace: &FlowTrace) -> Self {
        assert_eq!(topo.n_dcs, trace.n_dcs, "trace/topology DC mismatch");
        let flows: Vec<DecFlow> = trace
            .arrivals
            .iter()
            .filter_map(|a| {
                a.flow.map(|f| DecFlow {
                    pair: f.pair,
                    start_s: a.start_s,
                    size_bytes: f.size_bytes,
                })
            })
            .collect();
        // Invert pair routes to links once, then walk flows in order so
        // every per-link list stays sorted by arrival (and flow id).
        let crossing = topo.crossing_index();
        let mut flows_of_pair: Vec<Vec<u32>> =
            vec![Vec::new(); iris_simnet::traffic::pair_count(topo.n_dcs)];
        for (id, f) in flows.iter().enumerate() {
            flows_of_pair[pair_index(topo.n_dcs, f.pair.0, f.pair.1)].push(id as u32);
        }
        let mut link_flows: Vec<Vec<u32>> = vec![Vec::new(); topo.links.len()];
        for (link, pairs) in crossing.iter().enumerate() {
            let total: usize = pairs.iter().map(|&p| flows_of_pair[p as usize].len()).sum();
            let mut ids: Vec<u32> = Vec::with_capacity(total);
            for &p in pairs {
                ids.extend_from_slice(&flows_of_pair[p as usize]);
            }
            ids.sort_unstable();
            link_flows[link] = ids;
        }
        let segments = (0..topo.links.len())
            .map(|l| link_segments(trace, l))
            .collect();
        Self {
            flows,
            link_flows,
            segments,
            duration_s: trace.duration_s,
        }
    }

    /// Links carrying at least one flow, ascending — the job list.
    #[must_use]
    pub fn occupied_links(&self) -> Vec<usize> {
        (0..self.link_flows.len())
            .filter(|&l| !self.link_flows[l].is_empty())
            .collect()
    }

    /// Run the exact single-link simulation for `link`, returning one
    /// finish time (or [`INCOMPLETE`]) per entry of
    /// `link_flows[link]`.
    #[must_use]
    pub fn simulate(&self, topo: &SimTopology, link: usize) -> Vec<f64> {
        let flows: Vec<LinkFlow> = self.link_flows[link]
            .iter()
            .map(|&id| {
                let f = &self.flows[id as usize];
                LinkFlow {
                    start_s: f.start_s,
                    size_bytes: f.size_bytes,
                }
            })
            .collect();
        simulate_link(
            topo.links[link].capacity_gbps,
            &self.segments[link],
            &flows,
            self.duration_s,
        )
    }
}

/// Build link `l`'s capacity-scale timeline from the trace's
/// reconfiguration outages (global: every link loses the moved
/// fraction) and scheduled capacity events (possibly targeted).
/// Segments are emitted sorted, deduplicated, and merged.
fn link_segments(trace: &FlowTrace, link: usize) -> Vec<ScaleSegment> {
    let mut breaks: Vec<f64> = vec![0.0];
    let mut outages: Vec<(f64, f64)> = Vec::new(); // (change time, fraction)
    if let (FabricModel::Iris { outage_s }, Some(interval)) =
        (trace.fabric, trace.change_interval_s)
    {
        for (k, &moved) in trace.change_fractions.iter().enumerate() {
            let t = (k + 1) as f64 * interval;
            outages.push((t, moved.clamp(0.0, 0.9)));
            breaks.push(t);
            breaks.push(t + outage_s);
        }
    }
    for ev in &trace.capacity_events {
        let applies = ev.links.as_ref().is_none_or(|ids| ids.contains(&link));
        if applies {
            breaks.push(ev.start_s);
            breaks.push(ev.start_s + ev.duration_s);
        }
    }
    breaks.retain(|&b| b < trace.duration_s);
    breaks.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    breaks.dedup();
    let outage_s = match trace.fabric {
        FabricModel::Iris { outage_s } => outage_s,
        FabricModel::Eps => 0.0,
    };
    let mut segments: Vec<ScaleSegment> = Vec::new();
    for &t in &breaks {
        // Outage component: the engine keeps only the *latest* change's
        // fraction (a newer change overwrites an active outage).
        let outage_scale = match outages.iter().rev().find(|&&(ct, _)| ct <= t) {
            Some(&(ct, f)) if f > 0.0 && t < ct + outage_s => 1.0 - f,
            _ => 1.0,
        };
        let mut scale = outage_scale;
        for ev in &trace.capacity_events {
            let applies = ev.links.as_ref().is_none_or(|ids| ids.contains(&link));
            if applies && t >= ev.start_s && t < ev.start_s + ev.duration_s {
                scale *= ev.capacity_factor;
            }
        }
        if segments.last().map(|s| s.scale) != Some(scale) {
            segments.push(ScaleSegment { start_s: t, scale });
        }
    }
    segments
}

/// Fold independent per-link results into flow records.
///
/// `results` yields `(link, finishes)` pairs where `finishes` aligns
/// with `dec.link_flows[link]`; order is irrelevant — the per-flow
/// transfer estimate is a commutative `f64::max` across links, which is
/// what makes the distributed artifact byte-identical regardless of
/// worker count or completion order. A flow completes iff *every* link
/// on its route finished it within the duration; its FCT is the worst
/// link's transfer time plus the route's propagation RTT (charged
/// analytically, as the exact engine does). Records come back in flow
/// arrival order.
#[must_use]
pub fn combine(
    topo: &SimTopology,
    dec: &Decomposition,
    results: impl IntoIterator<Item = (usize, Vec<f64>)>,
) -> Vec<FlowRecord> {
    let mut max_transfer = vec![0.0f64; dec.flows.len()];
    let mut links_left: Vec<u32> = dec
        .flows
        .iter()
        .map(|f| topo.route(f.pair.0, f.pair.1).len() as u32)
        .collect();
    let mut dead = vec![false; dec.flows.len()];
    for (link, finishes) in results {
        let ids = &dec.link_flows[link];
        assert_eq!(ids.len(), finishes.len(), "link {link} result misaligned");
        for (&id, &fin) in ids.iter().zip(&finishes) {
            let id = id as usize;
            if fin == INCOMPLETE || fin < 0.0 {
                dead[id] = true;
            } else {
                let transfer = fin - dec.flows[id].start_s;
                max_transfer[id] = max_transfer[id].max(transfer);
                links_left[id] -= 1;
            }
        }
    }
    let mut records = Vec::new();
    for (id, f) in dec.flows.iter().enumerate() {
        let route_len = topo.route(f.pair.0, f.pair.1).len();
        if route_len == 0 || dead[id] || links_left[id] != 0 {
            continue;
        }
        let rtt = topo.route_rtt_s[pair_index(topo.n_dcs, f.pair.0, f.pair.1)];
        records.push(FlowRecord {
            pair: f.pair,
            size_bytes: f.size_bytes,
            start_s: f.start_s,
            fct_s: max_transfer[id] + rtt,
        });
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use iris_simnet::engine::{SimConfig, Simulator};
    use iris_simnet::traffic::ChangeModel;
    use iris_simnet::workloads::FlowSizeDist;
    use iris_simnet::TrafficMatrix;

    fn spec_trace(
        topo: &SimTopology,
        fabric: FabricModel,
        seed: u64,
        duration_s: f64,
    ) -> FlowTrace {
        let matrix = TrafficMatrix::heavy_tailed(topo.n_dcs, seed);
        Simulator::new(
            topo.clone(),
            matrix,
            SimConfig {
                duration_s,
                utilization: 0.5,
                flow_sizes: FlowSizeDist::facebook_web(),
                change_interval_s: Some(1.0),
                change_model: ChangeModel::Unbounded,
                fabric,
                capacity_events: Vec::new(),
                seed,
            },
        )
        .trace()
    }

    #[test]
    fn decomposition_covers_every_admitted_flow() {
        let topo = SimTopology::hub_and_spoke(5, 1.0);
        let trace = spec_trace(&topo, FabricModel::Eps, 3, 4.0);
        let dec = Decomposition::build(&topo, &trace);
        assert_eq!(dec.flows.len(), trace.flow_count());
        // Every flow appears on exactly the links of its route.
        let mut seen = vec![0usize; dec.flows.len()];
        for ids in &dec.link_flows {
            for &id in ids {
                seen[id as usize] += 1;
            }
        }
        for (id, f) in dec.flows.iter().enumerate() {
            assert_eq!(seen[id], topo.route(f.pair.0, f.pair.1).len());
        }
    }

    #[test]
    fn eps_trace_yields_single_full_segment() {
        let topo = SimTopology::hub_and_spoke(4, 1.0);
        let trace = spec_trace(&topo, FabricModel::Eps, 3, 4.0);
        let dec = Decomposition::build(&topo, &trace);
        for segs in &dec.segments {
            assert_eq!(
                segs,
                &vec![ScaleSegment {
                    start_s: 0.0,
                    scale: 1.0
                }]
            );
        }
    }

    #[test]
    fn iris_trace_carves_outage_windows() {
        let topo = SimTopology::hub_and_spoke(4, 1.0);
        let trace = spec_trace(&topo, FabricModel::Iris { outage_s: 0.07 }, 3, 4.0);
        let dec = Decomposition::build(&topo, &trace);
        let segs = &dec.segments[0];
        // Unbounded changes essentially always move traffic: expect at
        // least one reduced-capacity window per change.
        let reduced = segs.iter().filter(|s| s.scale < 1.0).count();
        assert!(
            reduced >= trace.change_fractions.iter().filter(|&&f| f > 0.0).count(),
            "{segs:?}"
        );
        for w in segs.windows(2) {
            assert!(w[0].start_s < w[1].start_s);
            assert!(w[0].scale != w[1].scale, "unmerged segments: {segs:?}");
        }
    }

    #[test]
    fn combine_requires_all_links_to_finish() {
        // Two links; flow 0 crosses both, finishes on one only.
        let topo = SimTopology::hub_and_spoke(2, 1.0);
        let trace = FlowTrace {
            n_dcs: 2,
            duration_s: 10.0,
            change_interval_s: None,
            fabric: FabricModel::Eps,
            capacity_events: Vec::new(),
            arrivals: vec![iris_simnet::TraceArrival {
                start_s: 1.0,
                flow: Some(iris_simnet::TraceFlow {
                    pair: (0, 1),
                    size_bytes: 1e6,
                }),
            }],
            change_fractions: Vec::new(),
        };
        let dec = Decomposition::build(&topo, &trace);
        let done = combine(&topo, &dec, vec![(0, vec![2.0]), (1, vec![3.0])]);
        assert_eq!(done.len(), 1);
        assert!((done[0].fct_s - 2.0).abs() < 1e-12); // max(1.0, 2.0) transfer
        let partial = combine(&topo, &dec, vec![(0, vec![2.0]), (1, vec![INCOMPLETE])]);
        assert!(partial.is_empty());
        let missing = combine(&topo, &dec, vec![(0, vec![2.0])]);
        assert!(missing.is_empty());
    }
}
