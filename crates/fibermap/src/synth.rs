//! Synthetic metro fiber-map generation and randomized DC placement.
//!
//! Real regional fiber maps are proprietary, so experiments run on
//! synthetic metros that match the paper's stated regime: a dense duct
//! mesh over a few tens of kilometres with intermediate fiber huts, onto
//! which 5–20 DCs are placed. DC placement follows §6.1 of the paper
//! verbatim:
//!
//! > "the first DC is placed uniformly at random in the service area, and
//! > each successive DC is placed randomly (in the more restricted service
//! > area given reach from already placed DCs) with probability of a
//! > candidate location being inversely proportional to its distance from
//! > the nearest already placed DC."
//!
//! Everything is seeded and deterministic.

use crate::map::{FiberMap, Region, SiteId, SiteKind};
use iris_geo::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic metro (huts + ducts only).
#[derive(Debug, Clone)]
pub struct MetroParams {
    /// RNG seed: same seed, same map.
    pub seed: u64,
    /// Half-width of the square region, km (sites span `[-extent, extent]`).
    pub extent_km: f64,
    /// Number of fiber huts.
    pub n_huts: usize,
    /// Minimum hut separation, km.
    pub min_hut_spacing_km: f64,
    /// How many nearest neighbours each hut trenches ducts to.
    pub neighbor_ducts: usize,
    /// Street-routing detour factor applied to duct lengths.
    pub detour: f64,
}

impl Default for MetroParams {
    fn default() -> Self {
        Self {
            seed: 1,
            extent_km: 30.0,
            n_huts: 16,
            min_hut_spacing_km: 4.0,
            neighbor_ducts: 3,
            detour: 1.3,
        }
    }
}

/// Parameters of the §6.1 DC placement procedure.
#[derive(Debug, Clone)]
pub struct PlacementParams {
    /// RNG seed for placement (independent of the map seed).
    pub seed: u64,
    /// Number of DCs to place.
    pub n_dcs: usize,
    /// Hose capacity of every DC, in fibers (f ∈ {8, 16, 32} in §6.1).
    pub capacity_fibers: u32,
    /// Wavelengths per fiber (λ ∈ {40, 64} in §6.1).
    pub wavelengths_per_fiber: u32,
    /// Maximum DC-DC fiber distance permitted by the SLA (OC1), km.
    pub max_fiber_km: f64,
    /// How many huts each new DC trenches laterals to.
    pub attach_huts: usize,
}

impl Default for PlacementParams {
    fn default() -> Self {
        Self {
            seed: 7,
            n_dcs: 8,
            capacity_fibers: 16,
            wavelengths_per_fiber: 40,
            max_fiber_km: 120.0,
            attach_huts: 3,
        }
    }
}

/// Generate a hut-only metro fiber map.
///
/// Huts are scattered with a minimum spacing (dart throwing), joined to
/// their nearest neighbours, and the duct mesh is then augmented until it
/// is connected and every hut has degree ≥ 3, approximating the redundant
/// duct meshes of real metros.
#[must_use]
pub fn generate_metro(params: &MetroParams) -> FiberMap {
    assert!(params.n_huts >= 2, "a metro needs at least two huts");
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut map = FiberMap::new();
    let mut positions: Vec<Point> = Vec::new();

    // Dart-throwing with relaxation: shrink the spacing requirement if the
    // region is too crowded to satisfy it.
    let mut spacing = params.min_hut_spacing_km;
    let mut attempts = 0usize;
    while positions.len() < params.n_huts {
        let p = Point::new(
            rng.random_range(-params.extent_km..params.extent_km),
            rng.random_range(-params.extent_km..params.extent_km),
        );
        if positions.iter().all(|q| q.distance(&p) >= spacing) {
            positions.push(p);
        }
        attempts += 1;
        if attempts > 1000 * params.n_huts {
            spacing *= 0.8;
            attempts = 0;
        }
    }
    for &p in &positions {
        map.add_site(SiteKind::Hut, p);
    }

    // Connect each hut to its nearest neighbours.
    let mut have_duct = std::collections::HashSet::new();
    for a in 0..params.n_huts {
        let mut order: Vec<usize> = (0..params.n_huts).filter(|&b| b != a).collect();
        order.sort_by(|&x, &y| {
            positions[a]
                .distance_sq(&positions[x])
                .partial_cmp(&positions[a].distance_sq(&positions[y]))
                .expect("finite")
        });
        for &b in order.iter().take(params.neighbor_ducts) {
            let key = (a.min(b), a.max(b));
            if have_duct.insert(key) {
                map.add_duct_detour(a, b, params.detour);
            }
        }
    }

    // Augment to a single connected component.
    loop {
        let dist = map.fiber_distances_from(0);
        let Some(orphan) = (0..params.n_huts).find(|&i| !dist[i].is_finite()) else {
            break;
        };
        // Connect the orphan's component to the nearest reachable hut.
        let nearest = (0..params.n_huts)
            .filter(|&i| dist[i].is_finite())
            .min_by(|&x, &y| {
                positions[orphan]
                    .distance_sq(&positions[x])
                    .partial_cmp(&positions[orphan].distance_sq(&positions[y]))
                    .expect("finite")
            })
            .expect("node 0 is always reachable");
        let key = (orphan.min(nearest), orphan.max(nearest));
        have_duct.insert(key);
        map.add_duct_detour(orphan, nearest, params.detour);
    }

    // Ensure degree >= 3 everywhere so two duct cuts cannot isolate a hut.
    for a in 0..params.n_huts {
        while map.graph().degree(a) < 3 {
            let candidate = (0..params.n_huts)
                .filter(|&b| b != a && !have_duct.contains(&(a.min(b), a.max(b))))
                .min_by(|&x, &y| {
                    positions[a]
                        .distance_sq(&positions[x])
                        .partial_cmp(&positions[a].distance_sq(&positions[y]))
                        .expect("finite")
                });
            let Some(b) = candidate else { break };
            have_duct.insert((a.min(b), a.max(b)));
            map.add_duct_detour(a, b, params.detour);
        }
    }

    map
}

/// Place `params.n_dcs` data centers on `map` per §6.1 and return the
/// complete planning [`Region`].
///
/// Each new DC trenches lateral ducts to its `attach_huts` nearest huts.
/// Candidate positions are rejected unless the new DC would be within
/// `max_fiber_km` of every already-placed DC (the SLA-restricted service
/// area). If the region is so constrained that no feasible candidate is
/// found, placement stops early with fewer DCs.
#[must_use]
pub fn place_dcs(mut map: FiberMap, params: &PlacementParams) -> Region {
    assert!(params.n_dcs >= 1, "must place at least one DC");
    let mut rng = StdRng::seed_from_u64(params.seed);
    let huts = map.huts();
    assert!(
        !huts.is_empty(),
        "map must contain huts before DC placement"
    );
    let extent = huts
        .iter()
        .map(|&h| {
            let p = map.site(h).position;
            p.x.abs().max(p.y.abs())
        })
        .fold(0.0f64, f64::max);

    let mut dcs: Vec<SiteId> = Vec::new();
    const CANDIDATES_PER_DC: usize = 200;

    while dcs.len() < params.n_dcs {
        // The map is fixed for the whole candidate round, so one Dijkstra
        // per *attachment site* answers every feasibility query this round
        // — the naive per-(candidate, DC) query costs hundreds of
        // identical Dijkstras. Values are read from the same
        // source-to-everywhere runs `fiber_distance_from_point` would
        // perform, so feasibility (and thus placement) is unchanged.
        let mut dist_from: std::collections::HashMap<SiteId, Vec<f64>> =
            std::collections::HashMap::new();
        // Sample candidate positions and keep the feasible ones.
        let mut feasible: Vec<(Point, f64)> = Vec::new(); // (pos, weight)
        for _ in 0..CANDIDATES_PER_DC {
            let p = Point::new(
                rng.random_range(-extent..extent),
                rng.random_range(-extent..extent),
            );
            let attach = map.nearest_sites(&p, params.attach_huts.max(1));
            let within_reach = dcs.iter().all(|&d| {
                let mut best = f64::INFINITY;
                for &a in &attach {
                    let lateral = p.distance(&map.site(a).position) * 1.3;
                    let dist = dist_from
                        .entry(a)
                        .or_insert_with(|| map.fiber_distances_from(a));
                    best = best.min(lateral + dist[d]);
                }
                best <= params.max_fiber_km
            });
            if within_reach {
                let weight = if dcs.is_empty() {
                    1.0
                } else {
                    let nearest = dcs
                        .iter()
                        .map(|&d| map.site(d).position.distance(&p))
                        .fold(f64::INFINITY, f64::min);
                    1.0 / (nearest + 0.5)
                };
                feasible.push((p, weight));
            }
        }
        let Some(pos) = weighted_pick(&mut rng, &feasible) else {
            break; // region exhausted — return fewer DCs
        };

        // Add the site and trench laterals to the nearest huts (always
        // huts, never other DCs: laterals land on the duct mesh).
        let mut nearest_huts = huts.clone();
        nearest_huts.sort_by(|&x, &y| {
            map.site(x)
                .position
                .distance_sq(&pos)
                .partial_cmp(&map.site(y).position.distance_sq(&pos))
                .expect("finite")
        });
        nearest_huts.truncate(params.attach_huts.max(1));
        let dc = map.add_site(SiteKind::DataCenter, pos);
        for h in nearest_huts {
            map.add_duct_detour(dc, h, 1.3);
        }
        dcs.push(dc);
    }

    let n = dcs.len();
    Region {
        map,
        dcs,
        capacity_fibers: vec![params.capacity_fibers; n],
        wavelengths_per_fiber: params.wavelengths_per_fiber,
        gbps_per_wavelength: 400.0,
    }
}

/// Pick an index proportionally to weight; `None` if the list is empty.
fn weighted_pick(rng: &mut StdRng, items: &[(Point, f64)]) -> Option<Point> {
    let total: f64 = items.iter().map(|(_, w)| w).sum();
    if items.is_empty() || total <= 0.0 {
        return None;
    }
    let mut target = rng.random_range(0.0..total);
    for &(p, w) in items {
        if target < w {
            return Some(p);
        }
        target -= w;
    }
    Some(items.last().expect("non-empty").0)
}

/// Pick a hub pair for centralized-topology analyses: two distinct huts
/// near the map centroid whose mutual *fiber* distance falls within
/// `[min_km, max_km]` (the paper contrasts 4–7 km and 20–24 km pairs).
/// Falls back to the closest-to-centroid pair if no pair satisfies the
/// separation window.
#[must_use]
pub fn pick_hub_pair(map: &FiberMap, min_km: f64, max_km: f64) -> (SiteId, SiteId) {
    let huts = map.huts();
    assert!(huts.len() >= 2, "need at least two huts for a hub pair");
    let cx = huts.iter().map(|&h| map.site(h).position.x).sum::<f64>() / huts.len() as f64;
    let cy = huts.iter().map(|&h| map.site(h).position.y).sum::<f64>() / huts.len() as f64;
    let centroid = Point::new(cx, cy);

    let mut best: Option<(SiteId, SiteId, f64)> = None;
    let mut fallback: Option<(SiteId, SiteId, f64)> = None;
    for (i, &a) in huts.iter().enumerate() {
        for &b in &huts[i + 1..] {
            let Some(sep) = map.fiber_distance(a, b) else {
                continue;
            };
            let score =
                map.site(a).position.distance(&centroid) + map.site(b).position.distance(&centroid);
            if sep >= min_km && sep <= max_km && best.as_ref().is_none_or(|&(_, _, s)| score < s) {
                best = Some((a, b, score));
            }
            if fallback.as_ref().is_none_or(|&(_, _, s)| score < s) {
                fallback = Some((a, b, score));
            }
        }
    }
    let (a, b, _) = best.or(fallback).expect("at least one pair exists");
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metro_is_deterministic() {
        let p = MetroParams::default();
        let m1 = generate_metro(&p);
        let m2 = generate_metro(&p);
        assert_eq!(m1.site_count(), m2.site_count());
        assert_eq!(m1.duct_count(), m2.duct_count());
        for i in 0..m1.site_count() {
            assert_eq!(m1.site(i).position, m2.site(i).position);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let m1 = generate_metro(&MetroParams::default());
        let m2 = generate_metro(&MetroParams {
            seed: 99,
            ..MetroParams::default()
        });
        let same = (0..m1.site_count().min(m2.site_count()))
            .all(|i| m1.site(i).position == m2.site(i).position);
        assert!(!same);
    }

    #[test]
    fn metro_is_connected_with_min_degree_three() {
        for seed in 0..5 {
            let m = generate_metro(&MetroParams {
                seed,
                ..MetroParams::default()
            });
            let dist = m.fiber_distances_from(0);
            assert!(
                dist.iter().all(|d| d.is_finite()),
                "seed {seed} disconnected"
            );
            for h in m.huts() {
                assert!(m.graph().degree(h) >= 3, "seed {seed} hut {h} degree < 3");
            }
        }
    }

    #[test]
    fn huts_respect_spacing() {
        let p = MetroParams::default();
        let m = generate_metro(&p);
        let huts = m.huts();
        for (i, &a) in huts.iter().enumerate() {
            for &b in &huts[i + 1..] {
                let d = m.site(a).position.distance(&m.site(b).position);
                assert!(d >= p.min_hut_spacing_km - 1e-9, "huts {a},{b} at {d} km");
            }
        }
    }

    #[test]
    fn placement_produces_requested_dcs() {
        let map = generate_metro(&MetroParams::default());
        let region = place_dcs(map, &PlacementParams::default());
        region.validate();
        assert_eq!(region.dcs.len(), 8);
        assert_eq!(region.capacity_fibers.len(), 8);
    }

    #[test]
    fn placement_is_deterministic() {
        let p = MetroParams::default();
        let r1 = place_dcs(generate_metro(&p), &PlacementParams::default());
        let r2 = place_dcs(generate_metro(&p), &PlacementParams::default());
        for (&a, &b) in r1.dcs.iter().zip(&r2.dcs) {
            assert_eq!(r1.map.site(a).position, r2.map.site(b).position);
        }
    }

    #[test]
    fn placed_dcs_respect_sla_reach() {
        let map = generate_metro(&MetroParams::default());
        let params = PlacementParams::default();
        let region = place_dcs(map, &params);
        for (i, &a) in region.dcs.iter().enumerate() {
            for &b in &region.dcs[i + 1..] {
                let d = region.map.fiber_distance(a, b).expect("connected");
                assert!(
                    d <= params.max_fiber_km + 15.0,
                    "DC pair {a},{b} at {d:.1} km exceeds SLA reach"
                );
            }
        }
    }

    #[test]
    fn dcs_attach_to_multiple_huts() {
        let map = generate_metro(&MetroParams::default());
        let region = place_dcs(map, &PlacementParams::default());
        for &d in &region.dcs {
            assert!(region.map.graph().degree(d) >= 2, "DC {d} poorly attached");
        }
    }

    #[test]
    fn hub_pair_separation_window() {
        let map = generate_metro(&MetroParams::default());
        let (a, b) = pick_hub_pair(&map, 4.0, 24.0);
        assert_ne!(a, b);
        let sep = map.fiber_distance(a, b).unwrap();
        assert!((4.0..=24.0).contains(&sep), "separation {sep} km");
    }

    #[test]
    fn single_dc_region_is_valid() {
        let map = generate_metro(&MetroParams::default());
        let region = place_dcs(
            map,
            &PlacementParams {
                n_dcs: 1,
                ..PlacementParams::default()
            },
        );
        region.validate();
        assert_eq!(region.dcs.len(), 1);
    }
}
