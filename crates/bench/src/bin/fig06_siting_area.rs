//! Figure 6 — per-region increase in permissible siting area for one new
//! DC when moving from the centralized to the distributed design.
//!
//! Paper shape: 2-5x across 33 regions with 5-15 existing DCs; regions
//! with more DCs show smaller (but still >= 2x) gains.

use iris_fibermap::siting::{centralized_service_area, distributed_service_area, region_grid};
use iris_fibermap::synth::pick_hub_pair;

fn main() {
    let n_regions: u64 = if iris_bench::quick_mode() { 4 } else { 33 };
    let step = if iris_bench::quick_mode() { 3.0 } else { 1.5 };
    println!("# region  n_dcs  central_km2  distrib_km2  ratio");
    let mut ratios = Vec::new();
    let mut rows = Vec::new();
    for seed in 0..n_regions {
        let n_dcs = 5 + (seed as usize * 3) % 11; // 5-15 existing DCs
        let region = iris_bench::simple_region(seed + 40, n_dcs);
        let (h1, h2) = pick_hub_pair(&region.map, 4.0, 7.0);
        let grid = region_grid(&region.map, step, 40.0);
        let central = centralized_service_area(&region.map, &[h1, h2], &grid, 60.0);
        let distributed = distributed_service_area(&region.map, &region.dcs, &grid, 120.0);
        let ratio = if central > 0.0 {
            distributed / central
        } else {
            f64::INFINITY
        };
        println!(
            "{seed:8}  {n_dcs:5}  {central:11.0}  {distrib:11.0}  {ratio:5.2}",
            distrib = distributed
        );
        ratios.push(ratio);
        rows.push(serde_json::json!({
            "region": seed, "n_dcs": n_dcs,
            "centralized_km2": central, "distributed_km2": distributed,
            "ratio": ratio,
        }));
    }
    let finite: Vec<f64> = ratios.iter().copied().filter(|r| r.is_finite()).collect();
    let median = iris_bench::percentile(&finite, 0.5);
    let min = iris_bench::percentile(&finite, 0.0);
    let max = iris_bench::percentile(&finite, 1.0);
    println!("\nmedian area increase: {median:.2}x   range: {min:.2}-{max:.2}x (paper: 2-5x)");

    iris_bench::write_results(
        "fig06_siting_area",
        &serde_json::json!({
            "rows": rows,
            "median_ratio": median,
            "min_ratio": min,
            "max_ratio": max,
            "paper_claim": "service area increases 2-5x with the distributed approach",
        }),
    );
}
