//! Greedy link clustering: simulate one representative per cluster.
//!
//! Most links in a region look alike — similar offered load, similar
//! flow-size mix, same outage timeline — and processor sharing is
//! governed by exactly those features. Clustering keys each link on
//! (offered load, flow-size ECDF) and greedily groups links whose
//! feature distance is within a tolerance **and** whose capacity-scale
//! timelines are identical (an outage window changes tail behaviour
//! qualitatively; links that go dark differently are never merged).
//!
//! Only cluster representatives are simulated. A member's flows are
//! estimated by *broadcasting the representative's slowdown
//! distribution*: the rep's per-flow slowdowns (transfer time over
//! ideal transfer time at full capacity) form a size-indexed table, and
//! each member flow pays the slowdown of the nearest-sized rep flow on
//! its own ideal time. Everything is a deterministic function of the
//! decomposition, so clustered runs keep the byte-identical artifact
//! contract.

use crate::decompose::Decomposition;
use crate::link::INCOMPLETE;
use iris_simnet::SimTopology;

/// Feature vector of one link's offered workload.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFeatures {
    /// Offered load: admitted bits over `capacity * duration`.
    pub load: f64,
    /// log10 flow-size deciles (9 interior quantiles of the ECDF).
    pub size_deciles: [f64; 9],
}

/// Weight of the mean ECDF-decile distance relative to the offered-load
/// distance in [`feature_distance`].
const ECDF_WEIGHT: f64 = 0.25;

/// Extract [`LinkFeatures`] for `link`.
#[must_use]
pub fn link_features(topo: &SimTopology, dec: &Decomposition, link: usize) -> LinkFeatures {
    let ids = &dec.link_flows[link];
    let mut sizes: Vec<f64> = ids
        .iter()
        .map(|&id| dec.flows[id as usize].size_bytes)
        .collect();
    sizes.sort_by(|a, b| a.partial_cmp(b).expect("finite sizes"));
    let total_bits: f64 = sizes.iter().map(|s| s * 8.0).sum();
    let cap_bits = topo.links[link].capacity_gbps * 1e9 * dec.duration_s;
    let mut size_deciles = [0.0f64; 9];
    if !sizes.is_empty() {
        for (k, d) in size_deciles.iter_mut().enumerate() {
            let q = (k + 1) as f64 / 10.0;
            let idx = ((sizes.len() - 1) as f64 * q).round() as usize;
            *d = sizes[idx].max(1.0).log10();
        }
    }
    LinkFeatures {
        load: if cap_bits > 0.0 {
            total_bits / cap_bits
        } else {
            0.0
        },
        size_deciles,
    }
}

/// Distance between two links' features: |Δload| plus the mean
/// log10-decile gap, weighted by [`ECDF_WEIGHT`].
#[must_use]
pub fn feature_distance(a: &LinkFeatures, b: &LinkFeatures) -> f64 {
    let decile_gap: f64 = a
        .size_deciles
        .iter()
        .zip(&b.size_deciles)
        .map(|(x, y)| (x - y).abs())
        .sum::<f64>()
        / 9.0;
    (a.load - b.load).abs() + ECDF_WEIGHT * decile_gap
}

/// One cluster: the representative link (simulated) and its members
/// (estimated from the rep's slowdown distribution; the rep itself is
/// not listed as a member).
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    /// The simulated representative.
    pub rep: usize,
    /// Member links estimated from the rep.
    pub members: Vec<usize>,
}

/// Greedily cluster `links` (ascending link ids — the deterministic
/// iteration order). A link joins the first existing cluster whose rep
/// is within `epsilon` feature distance and has an identical
/// capacity-scale timeline; otherwise it founds a new cluster.
#[must_use]
pub fn cluster_links(
    topo: &SimTopology,
    dec: &Decomposition,
    links: &[usize],
    epsilon: f64,
) -> Vec<Cluster> {
    let mut clusters: Vec<(Cluster, LinkFeatures)> = Vec::new();
    for &l in links {
        let feat = link_features(topo, dec, l);
        let found = clusters.iter_mut().find(|(c, rep_feat)| {
            dec.segments[c.rep] == dec.segments[l] && feature_distance(rep_feat, &feat) <= epsilon
        });
        match found {
            Some((c, _)) => c.members.push(l),
            None => clusters.push((
                Cluster {
                    rep: l,
                    members: Vec::new(),
                },
                feat,
            )),
        }
    }
    clusters.into_iter().map(|(c, _)| c).collect()
}

/// The representative's slowdown distribution, indexed by flow size:
/// for each completed rep flow, `slowdown = transfer / ideal` where
/// `ideal = bits / capacity`. Incomplete rep flows mark their size
/// range as unfinishable.
#[derive(Debug)]
pub struct SlowdownTable {
    /// (size_bytes, slowdown), sorted by size. Slowdown < 0 encodes an
    /// incomplete rep flow.
    entries: Vec<(f64, f64)>,
}

impl SlowdownTable {
    /// Build from the rep link's simulation result (`finishes` aligned
    /// with `dec.link_flows[rep]`).
    #[must_use]
    pub fn build(topo: &SimTopology, dec: &Decomposition, rep: usize, finishes: &[f64]) -> Self {
        let cap_bps = topo.links[rep].capacity_gbps * 1e9;
        let mut entries: Vec<(f64, f64)> = dec.link_flows[rep]
            .iter()
            .zip(finishes)
            .map(|(&id, &fin)| {
                let f = &dec.flows[id as usize];
                let slowdown = if fin < 0.0 {
                    -1.0
                } else {
                    let ideal = (f.size_bytes * 8.0) / cap_bps;
                    if ideal > 0.0 {
                        ((fin - f.start_s) / ideal).max(1.0)
                    } else {
                        1.0
                    }
                };
                (f.size_bytes, slowdown)
            })
            .collect();
        entries.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Self { entries }
    }

    /// Slowdown for a flow of `size_bytes`: the entry with the nearest
    /// size (ties to the smaller). Returns `None` if the table is empty
    /// or the nearest rep flow was incomplete.
    #[must_use]
    pub fn slowdown(&self, size_bytes: f64) -> Option<f64> {
        if self.entries.is_empty() {
            return None;
        }
        let idx = self
            .entries
            .partition_point(|&(s, _)| s < size_bytes)
            .min(self.entries.len() - 1);
        let best = if idx > 0
            && (size_bytes - self.entries[idx - 1].0).abs()
                <= (self.entries[idx].0 - size_bytes).abs()
        {
            idx - 1
        } else {
            idx
        };
        let (_, sd) = self.entries[best];
        (sd >= 0.0).then_some(sd)
    }
}

/// Estimate a member link's finishes by broadcasting the rep's slowdown
/// distribution: each member flow pays `slowdown(size) * ideal` on the
/// *member's* capacity. Output aligns with `dec.link_flows[member]`;
/// flows whose nearest rep flow was incomplete — or that would finish
/// past the duration — come back [`INCOMPLETE`].
#[must_use]
pub fn estimate_member(
    topo: &SimTopology,
    dec: &Decomposition,
    member: usize,
    table: &SlowdownTable,
) -> Vec<f64> {
    let cap_bps = topo.links[member].capacity_gbps * 1e9;
    dec.link_flows[member]
        .iter()
        .map(|&id| {
            let f = &dec.flows[id as usize];
            match table.slowdown(f.size_bytes) {
                Some(sd) if cap_bps > 0.0 => {
                    let fin = f.start_s + sd * (f.size_bytes * 8.0) / cap_bps;
                    if fin < dec.duration_s {
                        fin
                    } else {
                        INCOMPLETE
                    }
                }
                _ => INCOMPLETE,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use iris_simnet::engine::{FabricModel, SimConfig, Simulator};
    use iris_simnet::traffic::ChangeModel;
    use iris_simnet::workloads::FlowSizeDist;
    use iris_simnet::TrafficMatrix;

    fn dec_for(topo: &SimTopology, seed: u64) -> Decomposition {
        let trace = Simulator::new(
            topo.clone(),
            TrafficMatrix::heavy_tailed(topo.n_dcs, seed),
            SimConfig {
                duration_s: 4.0,
                utilization: 0.5,
                flow_sizes: FlowSizeDist::facebook_web(),
                change_interval_s: Some(1.0),
                change_model: ChangeModel::Bounded(0.5),
                fabric: FabricModel::Eps,
                capacity_events: Vec::new(),
                seed,
            },
        )
        .trace();
        Decomposition::build(topo, &trace)
    }

    #[test]
    fn identical_links_cluster_together_at_modest_epsilon() {
        // A symmetric matrix seed still loads spokes unevenly, but a
        // huge epsilon must collapse everything into one cluster and a
        // zero epsilon into singletons.
        let topo = SimTopology::hub_and_spoke(6, 1.0);
        let dec = dec_for(&topo, 5);
        let links = dec.occupied_links();
        let one = cluster_links(&topo, &dec, &links, f64::INFINITY);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].members.len() + 1, links.len());
        let singletons = cluster_links(&topo, &dec, &links, 0.0);
        // Distinct workloads -> (almost) all singletons; at minimum the
        // clustering must be a partition.
        let covered: usize = singletons.iter().map(|c| 1 + c.members.len()).sum();
        assert_eq!(covered, links.len());
    }

    #[test]
    fn clustering_is_a_partition() {
        let topo = SimTopology::hub_and_spoke(8, 1.0);
        let dec = dec_for(&topo, 9);
        let links = dec.occupied_links();
        let clusters = cluster_links(&topo, &dec, &links, 0.05);
        let mut seen: Vec<usize> = clusters
            .iter()
            .flat_map(|c| std::iter::once(c.rep).chain(c.members.iter().copied()))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, links);
    }

    #[test]
    fn slowdown_table_interpolates_by_nearest_size() {
        let topo = SimTopology::hub_and_spoke(2, 1.0);
        let dec = dec_for(&topo, 2);
        let link = dec.occupied_links()[0];
        let finishes = dec.simulate(&topo, link);
        let table = SlowdownTable::build(&topo, &dec, link, &finishes);
        // Any queried slowdown is >= 1 (PS can never beat the ideal).
        for size in [100.0, 1e4, 1e6, 1e8] {
            if let Some(sd) = table.slowdown(size) {
                assert!(sd >= 1.0, "slowdown {sd} for size {size}");
            }
        }
    }

    #[test]
    fn member_estimate_scales_with_capacity() {
        // Same workload broadcast to a member with twice the capacity
        // must halve the estimated transfer times.
        let topo = SimTopology::hub_and_spoke(2, 1.0);
        let dec = dec_for(&topo, 2);
        let link = dec.occupied_links()[0];
        let finishes = dec.simulate(&topo, link);
        let table = SlowdownTable::build(&topo, &dec, link, &finishes);
        let mut fat = topo.clone();
        fat.links[link].capacity_gbps *= 2.0;
        let est_same = estimate_member(&topo, &dec, link, &table);
        let est_fat = estimate_member(&fat, &dec, link, &table);
        for (id, (a, b)) in est_same.iter().zip(&est_fat).enumerate() {
            if *a >= 0.0 && *b >= 0.0 {
                let f = &dec.flows[dec.link_flows[link][id] as usize];
                let ta = a - f.start_s;
                let tb = b - f.start_s;
                assert!(
                    (ta - 2.0 * tb).abs() <= 1e-9 * ta.abs().max(1.0),
                    "{ta} vs {tb}"
                );
            }
        }
    }
}
