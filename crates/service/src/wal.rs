//! The append-only write-ahead log and the periodic compacted snapshot.
//!
//! Every write batch the mutator applies is serialized as one
//! [`WalBatch`] record and appended + fsync'd to `iris.wal` *before* the
//! new [`crate::StateSnapshot`] is published, so an accepted mutation
//! survives a crash of the process. Records reuse the framing discipline
//! of [`crate::frame`]: a 4-byte big-endian length (checked against
//! [`crate::MAX_FRAME_LEN`] before any allocation), then a 4-byte
//! big-endian CRC32 of the payload, then the JSON payload itself.
//!
//! Periodically the whole durable state is compacted into
//! `snapshot.json` (written to a temp file, fsync'd, renamed) and the
//! log is truncated; recovery loads the snapshot and replays only the
//! records after it ([`crate::recovery`]).
//!
//! A crash can tear the *tail* of the log — a partial header, a record
//! cut off mid-payload, a CRC that does not match. That is the expected
//! crash artifact, so [`read_log`] salvages: it stops at the first bad
//! record, reports what it dropped in [`Salvage`], and [`Wal::open`]
//! truncates the file back to the last good record. Damage that fsync
//! ordering cannot explain — a CRC-valid record whose payload is not a
//! [`WalBatch`], or an unparsable `snapshot.json` — is a typed
//! [`IrisError::Corrupt`] instead.

use crate::api::{AllocEntry, RecoverySummary};
use crate::frame::MAX_FRAME_LEN;
use crate::state::StateSnapshot;
use iris_errors::{IrisError, IrisResult};
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Log file name inside the WAL directory.
pub const WAL_FILE: &str = "iris.wal";
/// Compacted-snapshot file name inside the WAL directory.
pub const SNAPSHOT_FILE: &str = "snapshot.json";

/// Bytes of record header: 4-byte length + 4-byte CRC32.
const HEADER_LEN: usize = 8;

/// CRC32 (IEEE 802.3, reflected) of `bytes` — the checksum every WAL
/// record carries. Table-driven; the table is built in a `const` so the
/// per-byte cost is one lookup and one xor.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// One fiber-cut operation as applied by the mutator: the full merged
/// cumulative cut set and the recovery it produced. The summary is
/// *stored*, not recomputed on replay, so the republished snapshot's
/// `last_recovery` is byte-for-byte the one clients saw before the
/// crash.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CutRecord {
    /// The cumulative active cut set after this operation, ascending.
    pub cuts: Vec<usize>,
    /// The completed recovery's summary.
    pub recovery: RecoverySummary,
}

/// One WAL record: everything one applied (post-coalescing) write batch
/// changed. Updates are absolute per-pair circuit targets (`0` removes
/// the pair), so replaying a batch twice converges to the same state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalBatch {
    /// The epoch this batch published.
    pub epoch: u64,
    /// Coalesced demand updates, `(a, b)` ascending, absolute targets.
    pub updates: Vec<AllocEntry>,
    /// Fiber-cut operations applied in this batch, in order.
    pub cuts: Vec<CutRecord>,
    /// Write operations applied by this batch (delta).
    pub writes_applied: u64,
    /// Redundant updates absorbed by coalescing in this batch (delta).
    pub coalesced: u64,
}

/// The compacted durable state — [`StateSnapshot`] minus the per-pair
/// paths, which are a deterministic function of `active_cuts` and are
/// recomputed on recovery by the same [`iris_planner::ScenarioEngine`]
/// call the live mutator uses. Pair-keyed maps are flattened into
/// [`AllocEntry`] rows (the offline serde derive does not handle
/// tuple-keyed maps).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PersistedSnapshot {
    /// Snapshot epoch.
    pub epoch: u64,
    /// Circuits per DC pair, `(a, b)` ascending.
    pub allocation: Vec<AllocEntry>,
    /// Cumulative failed ducts, ascending.
    pub active_cuts: Vec<usize>,
    /// Quarantined sites.
    pub quarantined: Vec<usize>,
    /// Write operations applied up to this epoch.
    pub writes_applied: u64,
    /// Redundant updates absorbed by coalescing up to this epoch.
    pub coalesced: u64,
    /// The most recent completed fiber-cut recovery.
    pub last_recovery: Option<RecoverySummary>,
}

impl PersistedSnapshot {
    /// Flatten a live snapshot for persistence (paths are dropped; they
    /// are recomputed from `active_cuts` on recovery).
    #[must_use]
    pub fn from_state(snap: &StateSnapshot) -> Self {
        Self {
            epoch: snap.epoch,
            allocation: snap
                .allocation
                .iter()
                .map(|(&(a, b), &circuits)| AllocEntry { a, b, circuits })
                .collect(),
            active_cuts: snap.active_cuts.clone(),
            quarantined: snap.quarantined.clone(),
            writes_applied: snap.writes_applied,
            coalesced: snap.coalesced,
            last_recovery: snap.last_recovery.clone(),
        }
    }
}

/// What [`read_log`] kept and what it dropped.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Salvage {
    /// Records that passed framing, CRC and JSON validation.
    pub records: u64,
    /// Bytes of good records (the offset the log is truncated to).
    pub good_bytes: u64,
    /// Bytes dropped after the last good record.
    pub truncated_bytes: u64,
    /// Why reading stopped before end-of-file, when it did.
    pub torn: Option<String>,
}

/// Parse a WAL file, salvaging a torn tail.
///
/// Returns the good-record prefix plus a [`Salvage`] describing anything
/// dropped. A missing file reads as an empty log.
///
/// # Errors
///
/// [`IrisError::Io`] if the file exists but cannot be read;
/// [`IrisError::Corrupt`] for damage a crash cannot explain: a record
/// whose CRC matches but whose payload is not a [`WalBatch`].
pub fn read_log(path: &Path) -> IrisResult<(Vec<WalBatch>, Salvage)> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => {
            return Err(IrisError::Io {
                detail: format!("cannot read WAL {}: {e}", path.display()),
            })
        }
    };
    let mut batches = Vec::new();
    let mut salvage = Salvage::default();
    let mut off = 0usize;
    while off < bytes.len() {
        let Some(header) = bytes.get(off..off + HEADER_LEN) else {
            salvage.torn = Some(format!(
                "torn record header at offset {off}: wanted {HEADER_LEN} bytes, got {}",
                bytes.len() - off
            ));
            break;
        };
        let len = u32::from_be_bytes(header[..4].try_into().expect("4-byte slice")) as usize;
        if len > MAX_FRAME_LEN {
            // Checked before slicing, mirroring the frame codec: a torn
            // or garbage length must not drive an allocation.
            salvage.torn = Some(format!(
                "record length {len} at offset {off} exceeds the {MAX_FRAME_LEN}-byte maximum"
            ));
            break;
        }
        let stored_crc = u32::from_be_bytes(header[4..].try_into().expect("4-byte slice"));
        let Some(payload) = bytes.get(off + HEADER_LEN..off + HEADER_LEN + len) else {
            salvage.torn = Some(format!(
                "torn record payload at offset {off}: wanted {len} bytes, got {}",
                bytes.len() - off - HEADER_LEN
            ));
            break;
        };
        if crc32(payload) != stored_crc {
            salvage.torn = Some(format!(
                "CRC mismatch at offset {off}: stored {stored_crc:#010x}, computed {:#010x}",
                crc32(payload)
            ));
            break;
        }
        // A CRC-valid record was fully written and fsync'd; if it does
        // not decode, the log is corrupt in a way salvage must not
        // silently paper over.
        let text = std::str::from_utf8(payload).map_err(|e| IrisError::Corrupt {
            what: path.display().to_string(),
            detail: format!(
                "record {} at offset {off}: payload is not UTF-8: {e}",
                batches.len()
            ),
        })?;
        let batch: WalBatch = serde_json::from_str(text).map_err(|e| IrisError::Corrupt {
            what: path.display().to_string(),
            detail: format!(
                "record {} at offset {off}: CRC-valid payload is not a WalBatch: {e}",
                batches.len()
            ),
        })?;
        batches.push(batch);
        off += HEADER_LEN + len;
        salvage.records += 1;
        salvage.good_bytes = off as u64;
    }
    salvage.truncated_bytes = bytes.len() as u64 - salvage.good_bytes;
    Ok((batches, salvage))
}

/// Load the compacted snapshot, if one exists.
///
/// # Errors
///
/// [`IrisError::Io`] if the file exists but cannot be read;
/// [`IrisError::Corrupt`] if it does not parse as a
/// [`PersistedSnapshot`].
pub fn read_snapshot(path: &Path) -> IrisResult<Option<PersistedSnapshot>> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err(IrisError::Io {
                detail: format!("cannot read snapshot {}: {e}", path.display()),
            })
        }
    };
    serde_json::from_str(&text)
        .map(Some)
        .map_err(|e| IrisError::Corrupt {
            what: path.display().to_string(),
            detail: format!("not a persisted snapshot: {e}"),
        })
}

/// An open write-ahead log plus its snapshot slot.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    file: File,
    /// Batches appended since the last compaction.
    since_compaction: u64,
    /// Records in the log since open (salvaged replay + appended).
    records: u64,
    /// Bytes in the log since open (salvaged + appended).
    bytes: u64,
    /// Duration of the most recent fsync, ms (0 before the first
    /// append).
    last_fsync_ms: f64,
}

/// Cumulative log statistics, surfaced through `HealthInfo`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WalStats {
    /// Records known to the log since open (salvaged + appended).
    pub records: u64,
    /// Bytes known to the log since open (salvaged + appended).
    pub bytes: u64,
    /// Duration of the most recent fsync, ms (0 before the first
    /// append).
    pub last_fsync_ms: f64,
}

/// Everything found in a WAL directory at open time, before replay.
#[derive(Debug)]
pub struct DurableState {
    /// The compacted snapshot, if one was written.
    pub snapshot: Option<PersistedSnapshot>,
    /// Good WAL records, oldest first.
    pub batches: Vec<WalBatch>,
    /// What salvage kept and dropped.
    pub salvage: Salvage,
}

impl DurableState {
    /// The durable state of a server that has never persisted anything:
    /// no snapshot, no records. Booting from this reproduces a fresh
    /// memory-only start.
    #[must_use]
    pub fn empty() -> Self {
        Self {
            snapshot: None,
            batches: Vec::new(),
            salvage: Salvage::default(),
        }
    }
}

impl Wal {
    /// Open (creating if needed) the log in `dir`, salvaging any torn
    /// tail — the file is truncated back to its last good record — and
    /// returning whatever durable state was found.
    ///
    /// # Errors
    ///
    /// [`IrisError::Io`] on filesystem failure; [`IrisError::Corrupt`]
    /// for unsalvageable damage (see [`read_log`] / [`read_snapshot`]).
    pub fn open(dir: &Path) -> IrisResult<(Self, DurableState)> {
        std::fs::create_dir_all(dir).map_err(|e| IrisError::Io {
            detail: format!("cannot create WAL dir {}: {e}", dir.display()),
        })?;
        let log_path = dir.join(WAL_FILE);
        let snapshot = read_snapshot(&dir.join(SNAPSHOT_FILE))?;
        let (batches, salvage) = read_log(&log_path)?;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&log_path)
            .map_err(|e| IrisError::Io {
                detail: format!("cannot open WAL {}: {e}", log_path.display()),
            })?;
        if salvage.truncated_bytes > 0 {
            // Drop the torn tail so the next append starts at a record
            // boundary.
            file.set_len(salvage.good_bytes)
                .map_err(|e| IrisError::Io {
                    detail: format!("cannot truncate torn WAL {}: {e}", log_path.display()),
                })?;
        }
        Ok((
            Self {
                dir: dir.to_path_buf(),
                file,
                since_compaction: batches.len() as u64,
                records: batches.len() as u64,
                bytes: salvage.good_bytes,
                last_fsync_ms: 0.0,
            },
            DurableState {
                snapshot,
                batches,
                salvage,
            },
        ))
    }

    /// The directory this log lives in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Batches appended (or replayed at open) since the last compaction.
    #[must_use]
    pub fn batches_since_compaction(&self) -> u64 {
        self.since_compaction
    }

    /// Cumulative log statistics since open.
    #[must_use]
    pub fn stats(&self) -> WalStats {
        WalStats {
            records: self.records,
            bytes: self.bytes,
            last_fsync_ms: self.last_fsync_ms,
        }
    }

    /// Append one batch record and fsync — the write-ahead barrier. Only
    /// after this returns may the batch's snapshot be published.
    ///
    /// # Errors
    ///
    /// [`IrisError::Io`] on write/fsync failure, [`IrisError::Decode`]
    /// if the batch cannot be serialized.
    pub fn append(&mut self, batch: &WalBatch) -> IrisResult<()> {
        self.append_nosync(batch)?;
        let fsync_span = iris_telemetry::trace::span("wal_fsync");
        let fsync_start = Instant::now();
        self.file.sync_data().map_err(|e| IrisError::Io {
            detail: format!("WAL fsync failed: {e}"),
        })?;
        let fsync_ms = fsync_start.elapsed().as_secs_f64() * 1e3;
        drop(fsync_span);
        self.last_fsync_ms = fsync_ms;
        iris_telemetry::global()
            .histogram("iris_service_wal_fsync_ms")
            .record(fsync_ms);
        Ok(())
    }

    /// Append one batch record **without** the fsync — the group-commit
    /// half of [`Wal::append`]. The record reaches the kernel but is not
    /// durable until someone syncs the file ([`WalSyncHandle::sync`] or
    /// a subsequent [`Wal::append`]); callers must not acknowledge the
    /// batch to clients before that barrier.
    ///
    /// # Errors
    ///
    /// [`IrisError::Io`] on write failure, [`IrisError::Decode`] if the
    /// batch cannot be serialized.
    pub fn append_nosync(&mut self, batch: &WalBatch) -> IrisResult<()> {
        let payload = serde_json::to_string(batch)
            .map_err(|e| IrisError::Decode {
                detail: format!("cannot encode WAL record: {e}"),
            })?
            .into_bytes();
        debug_assert!(payload.len() <= MAX_FRAME_LEN, "WAL records are small");
        let len = u32::try_from(payload.len()).map_err(|_| IrisError::InvalidInput {
            detail: format!("WAL record of {} bytes exceeds u32", payload.len()),
        })?;
        let io_err = |e: std::io::Error| IrisError::Io {
            detail: format!("WAL append failed: {e}"),
        };
        let _append_span = iris_telemetry::trace::span("wal_append");
        self.file.write_all(&len.to_be_bytes()).map_err(io_err)?;
        self.file
            .write_all(&crc32(&payload).to_be_bytes())
            .map_err(io_err)?;
        self.file.write_all(&payload).map_err(io_err)?;
        self.since_compaction += 1;
        self.records += 1;
        self.bytes += (HEADER_LEN + payload.len()) as u64;
        let telemetry = iris_telemetry::global();
        telemetry.counter("iris_service_wal_records_total").inc();
        telemetry
            .counter("iris_service_wal_bytes_total")
            .add((HEADER_LEN + payload.len()) as u64);
        Ok(())
    }

    /// A second handle onto the log file for syncing from another
    /// thread. `fsync` acts on the *file*, not the descriptor, so a sync
    /// through the clone makes every record already written through the
    /// `Wal` durable — the group-commit thread can batch fsyncs while
    /// the mutator keeps appending.
    ///
    /// # Errors
    ///
    /// [`IrisError::Io`] if the descriptor cannot be duplicated.
    pub fn sync_handle(&self) -> IrisResult<WalSyncHandle> {
        let file = self.file.try_clone().map_err(|e| IrisError::Io {
            detail: format!("cannot clone WAL descriptor: {e}"),
        })?;
        Ok(WalSyncHandle { file })
    }

    /// Compact: persist `snap` (temp file, fsync, atomic rename) and
    /// truncate the log. A crash between the rename and the truncate
    /// leaves records older than the snapshot in the log; recovery skips
    /// them by epoch.
    ///
    /// # Errors
    ///
    /// [`IrisError::Io`] on filesystem failure, [`IrisError::Decode`] if
    /// the snapshot cannot be serialized.
    pub fn compact(&mut self, snap: &PersistedSnapshot) -> IrisResult<()> {
        let _span = iris_telemetry::trace::span("wal_compact");
        let mut text = serde_json::to_string_pretty(snap).map_err(|e| IrisError::Decode {
            detail: format!("cannot encode snapshot: {e}"),
        })?;
        text.push('\n');
        let final_path = self.dir.join(SNAPSHOT_FILE);
        let tmp_path = self.dir.join(format!("{SNAPSHOT_FILE}.tmp"));
        let io_err = |what: &str, e: std::io::Error| IrisError::Io {
            detail: format!("snapshot compaction: {what}: {e}"),
        };
        let mut tmp = File::create(&tmp_path).map_err(|e| io_err("create temp", e))?;
        tmp.write_all(text.as_bytes())
            .map_err(|e| io_err("write temp", e))?;
        tmp.sync_data().map_err(|e| io_err("fsync temp", e))?;
        drop(tmp);
        std::fs::rename(&tmp_path, &final_path).map_err(|e| io_err("rename", e))?;
        self.file
            .set_len(0)
            .map_err(|e| io_err("truncate log", e))?;
        self.file
            .sync_data()
            .map_err(|e| io_err("fsync truncated log", e))?;
        self.since_compaction = 0;
        iris_telemetry::global()
            .counter("iris_service_snapshots_total")
            .inc();
        Ok(())
    }
}

/// A duplicated descriptor onto the WAL file, used by the group-commit
/// thread to fsync records the mutator appended with
/// [`Wal::append_nosync`]. See [`Wal::sync_handle`].
#[derive(Debug)]
pub struct WalSyncHandle {
    file: File,
}

impl WalSyncHandle {
    /// Make every record written so far durable with one fsync.
    /// Returns the fsync duration in milliseconds (also recorded in the
    /// `iris_service_wal_fsync_ms` histogram).
    ///
    /// # Errors
    ///
    /// [`IrisError::Io`] on fsync failure.
    pub fn sync(&self) -> IrisResult<f64> {
        let _span = iris_telemetry::trace::span("wal_fsync");
        let start = Instant::now();
        self.file.sync_data().map_err(|e| IrisError::Io {
            detail: format!("WAL fsync failed: {e}"),
        })?;
        let ms = start.elapsed().as_secs_f64() * 1e3;
        iris_telemetry::global()
            .histogram("iris_service_wal_fsync_ms")
            .record(ms);
        Ok(ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("iris-wal-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir
    }

    fn batch(epoch: u64) -> WalBatch {
        WalBatch {
            epoch,
            updates: vec![AllocEntry {
                a: 0,
                b: 1,
                circuits: epoch as u32,
            }],
            cuts: Vec::new(),
            writes_applied: 1,
            coalesced: 0,
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_log_reads_as_no_records() {
        let dir = tmp_dir("empty");
        let (batches, salvage) = read_log(&dir.join(WAL_FILE)).expect("missing file is empty");
        assert!(batches.is_empty());
        assert_eq!(salvage, Salvage::default());
        // An existing zero-byte file behaves the same.
        std::fs::write(dir.join(WAL_FILE), b"").unwrap();
        let (batches, salvage) = read_log(&dir.join(WAL_FILE)).expect("zero-byte file");
        assert!(batches.is_empty());
        assert!(salvage.torn.is_none());
    }

    #[test]
    fn append_then_read_round_trips() {
        let dir = tmp_dir("roundtrip");
        let (mut wal, state) = Wal::open(&dir).expect("open");
        assert!(state.snapshot.is_none());
        assert!(state.batches.is_empty());
        for e in 1..=3 {
            wal.append(&batch(e)).expect("append");
        }
        assert_eq!(wal.batches_since_compaction(), 3);
        let (batches, salvage) = read_log(&dir.join(WAL_FILE)).expect("read");
        assert_eq!(batches, vec![batch(1), batch(2), batch(3)]);
        assert_eq!(salvage.records, 3);
        assert_eq!(salvage.truncated_bytes, 0);
        assert!(salvage.torn.is_none());
    }

    #[test]
    fn torn_final_record_is_salvaged_and_truncated_on_open() {
        let dir = tmp_dir("torn");
        let (mut wal, _) = Wal::open(&dir).expect("open");
        wal.append(&batch(1)).expect("append");
        wal.append(&batch(2)).expect("append");
        drop(wal);
        // A crash mid-append: a header promising 64 bytes, then only 3.
        let path = dir.join(WAL_FILE);
        let good_len = std::fs::metadata(&path).unwrap().len();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&64u32.to_be_bytes());
        bytes.extend_from_slice(&0u32.to_be_bytes());
        bytes.extend_from_slice(b"abc");
        std::fs::write(&path, &bytes).unwrap();

        let (wal, state) = Wal::open(&dir).expect("salvage");
        assert_eq!(state.batches, vec![batch(1), batch(2)]);
        assert_eq!(state.salvage.records, 2);
        assert_eq!(state.salvage.truncated_bytes, 11);
        let torn = state.salvage.torn.as_deref().expect("torn reported");
        assert!(torn.contains("torn record payload"), "{torn}");
        // Open truncated the file back to the record boundary, so the
        // next append produces a clean log.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good_len);
        drop(wal);
    }

    #[test]
    fn bad_crc_mid_log_recovers_to_the_last_consistent_record() {
        let dir = tmp_dir("badcrc");
        let (mut wal, _) = Wal::open(&dir).expect("open");
        for e in 1..=3 {
            wal.append(&batch(e)).expect("append");
        }
        drop(wal);
        let path = dir.join(WAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte of record 2 (skip record 1 and record
        // 2's header). Records are identical length here.
        let rec_len = bytes.len() / 3;
        bytes[rec_len + HEADER_LEN + 4] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let (batches, salvage) = read_log(&path).expect("salvage, not error");
        assert_eq!(batches, vec![batch(1)], "replay stops at the bad record");
        assert_eq!(salvage.records, 1);
        // Record 2 *and* the still-intact record 3 after it are dropped:
        // replay must never skip a hole.
        assert_eq!(salvage.truncated_bytes as usize, 2 * rec_len);
        assert!(salvage.torn.as_deref().unwrap().contains("CRC mismatch"));
    }

    #[test]
    fn garbage_length_does_not_allocate_and_is_salvaged() {
        let dir = tmp_dir("garbagelen");
        let (mut wal, _) = Wal::open(&dir).expect("open");
        wal.append(&batch(1)).expect("append");
        drop(wal);
        let path = dir.join(WAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        bytes.extend_from_slice(&[0u8; 8]);
        std::fs::write(&path, &bytes).unwrap();
        let (batches, salvage) = read_log(&path).expect("salvage");
        assert_eq!(batches.len(), 1);
        assert!(salvage.torn.as_deref().unwrap().contains("exceeds"));
    }

    #[test]
    fn crc_valid_garbage_payload_is_typed_corrupt() {
        let dir = tmp_dir("corrupt");
        let path = dir.join(WAL_FILE);
        // A well-framed record whose payload is valid JSON but not a
        // WalBatch: a crash cannot produce this, so it must not be
        // silently dropped.
        let payload = b"{\"not\":\"a batch\"}";
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        bytes.extend_from_slice(&crc32(payload).to_be_bytes());
        bytes.extend_from_slice(payload);
        std::fs::write(&path, &bytes).unwrap();
        let err = read_log(&path).unwrap_err();
        assert_eq!(err.code(), "corrupt");
        assert_eq!(err.exit_code(), 5);
        assert!(err.to_string().contains("WalBatch"), "{err}");
    }

    #[test]
    fn corrupt_snapshot_is_a_typed_error() {
        let dir = tmp_dir("badsnap");
        std::fs::write(dir.join(SNAPSHOT_FILE), b"{]").unwrap();
        let err = Wal::open(&dir).unwrap_err();
        assert_eq!(err.code(), "corrupt");
        assert!(err.to_string().contains(SNAPSHOT_FILE), "{err}");
    }

    #[test]
    fn compact_persists_the_snapshot_and_truncates_the_log() {
        let dir = tmp_dir("compact");
        let (mut wal, _) = Wal::open(&dir).expect("open");
        wal.append(&batch(1)).expect("append");
        wal.append(&batch(2)).expect("append");
        let snap = PersistedSnapshot {
            epoch: 2,
            allocation: vec![AllocEntry {
                a: 0,
                b: 1,
                circuits: 2,
            }],
            active_cuts: vec![4],
            quarantined: Vec::new(),
            writes_applied: 2,
            coalesced: 0,
            last_recovery: None,
        };
        wal.compact(&snap).expect("compact");
        assert_eq!(wal.batches_since_compaction(), 0);
        drop(wal);
        let (wal, state) = Wal::open(&dir).expect("reopen");
        assert_eq!(state.snapshot, Some(snap));
        assert!(state.batches.is_empty(), "log was truncated");
        assert_eq!(std::fs::metadata(dir.join(WAL_FILE)).unwrap().len(), 0);
        drop(wal);
    }

    #[test]
    fn nosync_appends_are_covered_by_one_handle_sync() {
        let dir = tmp_dir("groupcommit");
        let (mut wal, _) = Wal::open(&dir).expect("open");
        let handle = wal.sync_handle().expect("sync handle");
        for e in 1..=4 {
            wal.append_nosync(&batch(e)).expect("append");
        }
        // One fsync through the duplicated descriptor covers all four
        // records (fsync is per-file, not per-descriptor).
        let ms = handle.sync().expect("group fsync");
        assert!(ms >= 0.0);
        assert_eq!(wal.stats().records, 4);
        drop(wal);
        let (batches, salvage) = read_log(&dir.join(WAL_FILE)).expect("read");
        assert_eq!(batches, vec![batch(1), batch(2), batch(3), batch(4)]);
        assert_eq!(salvage.truncated_bytes, 0);
    }

    #[test]
    fn persisted_snapshot_round_trips_through_json() {
        let snap = PersistedSnapshot {
            epoch: 9,
            allocation: vec![AllocEntry {
                a: 1,
                b: 3,
                circuits: 4,
            }],
            active_cuts: vec![2, 7],
            quarantined: vec![5],
            writes_applied: 14,
            coalesced: 3,
            last_recovery: Some(RecoverySummary {
                cuts: vec![2, 7],
                within_tolerance: true,
                fully_recovered: true,
                shed_pairs: 0,
                detection_ms: 10.0,
                replan_ms: 5.0,
                reconfig_ms: 52.0,
                recovery_ms: 67.0,
            }),
        };
        let text = serde_json::to_string(&snap).unwrap();
        let back: PersistedSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
        // Serialization is deterministic: same value, same bytes.
        assert_eq!(serde_json::to_string(&back).unwrap(), text);
    }
}
