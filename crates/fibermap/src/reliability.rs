//! Correlated-disaster reliability analysis (§2.2, Fig. 4).
//!
//! Placing the two hubs close together maximizes the centralized
//! design's service area (the intersection of their 60 km reach discs)
//! — but "if one hub is lost to a catastrophic event, the other is more
//! likely to be also affected if it is nearby". This module quantifies
//! that trade-off with the standard geographically-correlated failure
//! model: a disaster is a disc of radius `r` whose center falls
//! uniformly over the region; sites inside the disc are lost.
//!
//! For any two sites at distance `d`, the set of disaster centers that
//! destroys *both* is the lens-shaped intersection of two radius-`r`
//! discs around them — empty as soon as `d > 2r`. The model is used by
//! the design-space table to show the reliability price of the paper's
//! "place hubs near each other" service-area optimization.

use crate::map::{FiberMap, SiteId};
use iris_geo::{service_area, Grid, Point};

/// Area (km²) of the intersection of two radius-`r` discs whose centers
/// are `d` apart (the classic lens formula).
#[must_use]
pub fn lens_area(r: f64, d: f64) -> f64 {
    assert!(
        r >= 0.0 && d >= 0.0,
        "radius and distance must be non-negative"
    );
    if d >= 2.0 * r {
        return 0.0;
    }
    if d == 0.0 {
        return std::f64::consts::PI * r * r;
    }
    let half = d / 2.0;
    2.0 * r * r * (half / r).acos() - half * (r * r - half * half).sqrt() * 2.0
}

/// Probability that one disaster (disc of radius `r`, center uniform
/// over a region of area `region_km2`) destroys **both** given sites.
#[must_use]
pub fn p_both_lost(site_a: Point, site_b: Point, r: f64, region_km2: f64) -> f64 {
    assert!(region_km2 > 0.0, "region area must be positive");
    (lens_area(r, site_a.distance(&site_b)) / region_km2).min(1.0)
}

/// Probability that a disaster destroys at least `k` of the given sites,
/// estimated by rasterizing the disaster-center space over `grid`.
#[must_use]
pub fn p_at_least_k_lost(map: &FiberMap, sites: &[SiteId], k: usize, r: f64, grid: &Grid) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let positions: Vec<Point> = sites.iter().map(|&s| map.site(s).position).collect();
    let region_area = (grid.max().x - grid.min().x) * (grid.max().y - grid.min().y);
    let hit_area = service_area(grid, |center| {
        positions
            .iter()
            .filter(|p| p.distance(&center) <= r)
            .count()
            >= k
    });
    (hit_area / region_area).min(1.0)
}

/// The §2.2 trade-off in one struct: service area vs correlated-loss
/// probability for one hub-pair placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HubPlacementTradeoff {
    /// Fiber distance between the hubs, km.
    pub separation_km: f64,
    /// Centralized service area for new DCs, km².
    pub service_area_km2: f64,
    /// Probability a single disaster of the given radius takes out both
    /// hubs.
    pub p_both_hubs_lost: f64,
}

/// Evaluate the trade-off for a hub pair under a disaster radius `r`.
#[must_use]
pub fn hub_tradeoff(
    map: &FiberMap,
    hubs: (SiteId, SiteId),
    r: f64,
    grid: &Grid,
    max_leg_km: f64,
) -> HubPlacementTradeoff {
    let separation_km = map.fiber_distance(hubs.0, hubs.1).unwrap_or(f64::INFINITY);
    let service_area_km2 =
        crate::siting::centralized_service_area(map, &[hubs.0, hubs.1], grid, max_leg_km);
    let region_area = (grid.max().x - grid.min().x) * (grid.max().y - grid.min().y);
    let p_both_hubs_lost = p_both_lost(
        map.site(hubs.0).position,
        map.site(hubs.1).position,
        r,
        region_area,
    );
    HubPlacementTradeoff {
        separation_km,
        service_area_km2,
        p_both_hubs_lost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate_metro, pick_hub_pair, MetroParams};

    #[test]
    fn lens_area_limits() {
        let r = 10.0;
        // Coincident: full disc.
        assert!((lens_area(r, 0.0) - std::f64::consts::PI * 100.0).abs() < 1e-9);
        // Touching or beyond: zero.
        assert_eq!(lens_area(r, 2.0 * r), 0.0);
        assert_eq!(lens_area(r, 50.0), 0.0);
        // Monotone decreasing in d.
        let mut prev = lens_area(r, 0.0);
        for i in 1..20 {
            let a = lens_area(r, i as f64);
            assert!(a <= prev, "lens area must shrink with distance");
            prev = a;
        }
    }

    #[test]
    fn lens_area_half_overlap_reference() {
        // d = r: known closed form 2r^2*(pi/3 - sqrt(3)/4).
        let r = 7.0;
        let expected = 2.0 * r * r * (std::f64::consts::PI / 3.0 - 3f64.sqrt() / 4.0);
        assert!((lens_area(r, r) - expected).abs() < 1e-9);
    }

    #[test]
    fn closer_hubs_are_riskier() {
        let region_km2 = 80.0 * 80.0;
        let near = p_both_lost(Point::new(0.0, 0.0), Point::new(3.0, 0.0), 5.0, region_km2);
        let far = p_both_lost(Point::new(0.0, 0.0), Point::new(9.0, 0.0), 5.0, region_km2);
        assert!(near > far);
        assert_eq!(
            p_both_lost(Point::new(0.0, 0.0), Point::new(11.0, 0.0), 5.0, region_km2),
            0.0,
            "beyond 2r the hubs cannot share a disaster"
        );
    }

    #[test]
    fn raster_estimate_agrees_with_lens_formula() {
        let mut map = FiberMap::new();
        let a = map.add_site(crate::SiteKind::Hut, Point::new(-2.0, 0.0));
        let b = map.add_site(crate::SiteKind::Hut, Point::new(2.0, 0.0));
        map.add_duct(a, b, 4.5);
        let grid = Grid::new(Point::new(-40.0, -40.0), Point::new(40.0, 40.0), 0.25);
        let raster = p_at_least_k_lost(&map, &[a, b], 2, 6.0, &grid);
        let exact = p_both_lost(
            Point::new(-2.0, 0.0),
            Point::new(2.0, 0.0),
            6.0,
            80.0 * 80.0,
        );
        assert!(
            (raster - exact).abs() / exact < 0.05,
            "raster {raster} exact {exact}"
        );
    }

    #[test]
    fn k_zero_is_certain_and_k_huge_is_rare() {
        let map = generate_metro(&MetroParams::default());
        let grid = Grid::new(Point::new(-40.0, -40.0), Point::new(40.0, 40.0), 1.0);
        let all = map.huts();
        assert_eq!(p_at_least_k_lost(&map, &all, 0, 5.0, &grid), 1.0);
        let p_many = p_at_least_k_lost(&map, &all, all.len(), 5.0, &grid);
        assert!(
            p_many < 0.05,
            "losing every hut to one 5 km disaster: {p_many}"
        );
    }

    #[test]
    fn tradeoff_surface_matches_fig4_story() {
        // Near hubs: more service area, higher correlated-loss risk.
        let map = generate_metro(&MetroParams {
            n_huts: 24,
            ..MetroParams::default()
        });
        let grid = crate::siting::region_grid(&map, 2.0, 30.0);
        let near = hub_tradeoff(&map, pick_hub_pair(&map, 2.0, 8.0), 10.0, &grid, 60.0);
        let far = hub_tradeoff(&map, pick_hub_pair(&map, 25.0, 60.0), 10.0, &grid, 60.0);
        if far.separation_km > near.separation_km + 5.0 {
            assert!(near.p_both_hubs_lost >= far.p_both_hubs_lost);
            assert!(near.service_area_km2 >= far.service_area_km2);
        }
    }
}
