//! Rate-adaptive coherent transceiver modes.
//!
//! The testbed's Acacia transceivers (§6.2) "support varying baud-rates,
//! modulation formats, channel grid spacing, etc." — a coherent port can
//! trade rate for reach by stepping down its modulation (16QAM → 8QAM →
//! QPSK). The paper plans for the fixed 400ZR operating point, but a
//! deployment can recover capacity on short paths and keep long paths
//! alive at reduced rate; this module models that menu and is used by
//! the rate-vs-distance ablation bench.

use serde::{Deserialize, Serialize};

/// One operating mode of a coherent transceiver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransceiverMode {
    /// Human-readable name.
    pub name: &'static str,
    /// Line rate, Gbps.
    pub rate_gbps: f64,
    /// Minimum OSNR at the receiver (dB, 0.1 nm).
    pub min_osnr_db: f64,
}

/// The standard mode menu for a 400ZR-class DWDM port, fastest first.
///
/// OSNR requirements follow the usual ~3 dB per modulation step.
pub const MODE_MENU: [TransceiverMode; 4] = [
    TransceiverMode {
        name: "400G-16QAM",
        rate_gbps: 400.0,
        min_osnr_db: 26.0,
    },
    TransceiverMode {
        name: "300G-8QAM",
        rate_gbps: 300.0,
        min_osnr_db: 22.5,
    },
    TransceiverMode {
        name: "200G-QPSK",
        rate_gbps: 200.0,
        min_osnr_db: 19.0,
    },
    TransceiverMode {
        name: "100G-QPSK",
        rate_gbps: 100.0,
        min_osnr_db: 15.5,
    },
];

/// The fastest mode whose OSNR requirement is met (with `margin_db` of
/// headroom), or `None` if even the slowest mode cannot close the link.
#[must_use]
pub fn best_mode(osnr_db: f64, margin_db: f64) -> Option<TransceiverMode> {
    MODE_MENU
        .iter()
        .find(|m| osnr_db >= m.min_osnr_db + margin_db)
        .copied()
}

/// Deliverable rate over a path with `amplifiers` amplifiers (OSNR from
/// the cascade model, 400ZR transmit OSNR), Gbps. Zero if unreachable.
#[must_use]
pub fn rate_for_cascade(amplifiers: usize, margin_db: f64) -> f64 {
    let osnr = crate::Transceiver::spec_400zr().tx_osnr_db
        - crate::osnr::cascade_penalty_default_db(amplifiers);
    best_mode(osnr, margin_db).map_or(0.0, |m| m.rate_gbps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn menu_is_ordered_fastest_first() {
        for w in MODE_MENU.windows(2) {
            assert!(w[0].rate_gbps > w[1].rate_gbps);
            assert!(w[0].min_osnr_db > w[1].min_osnr_db);
        }
    }

    #[test]
    fn high_osnr_gets_full_rate() {
        let m = best_mode(35.0, 1.5).unwrap();
        assert_eq!(m.rate_gbps, 400.0);
    }

    #[test]
    fn degraded_osnr_steps_down() {
        let m = best_mode(24.0, 1.5).unwrap();
        assert_eq!(m.name, "300G-8QAM".to_string());
        let m = best_mode(17.5, 1.5).unwrap();
        assert_eq!(m.rate_gbps, 100.0);
    }

    #[test]
    fn hopeless_osnr_gets_nothing() {
        assert!(best_mode(10.0, 1.5).is_none());
    }

    #[test]
    fn margin_is_honored() {
        // 26.5 dB closes 400G with 0.5 dB margin but not with 1.5 dB.
        assert_eq!(best_mode(26.5, 0.5).unwrap().rate_gbps, 400.0);
        assert_eq!(best_mode(26.5, 1.5).unwrap().rate_gbps, 300.0);
    }

    #[test]
    fn paper_operating_point_carries_full_rate() {
        // 3 amplifiers (TC2's limit): 37 - 9.27 = 27.7 dB OSNR -> with
        // the 1.5 dB impairment margin, 400G still closes, which is why
        // the paper can plan fixed-rate 400ZR everywhere.
        assert_eq!(rate_for_cascade(3, crate::IMPAIRMENT_MARGIN_DB), 400.0);
    }

    #[test]
    fn deep_cascades_degrade_gracefully() {
        let mut prev = f64::INFINITY;
        for amps in 1..50 {
            let r = rate_for_cascade(amps, 1.5);
            assert!(r <= prev);
            prev = r;
        }
        // Penalty exceeds 20 dB (OSNR < 17 dB) past ~36 amplifiers.
        assert_eq!(rate_for_cascade(40, 1.5), 0.0);
    }
}
