//! `iris` — command-line front end for the regional DCI planner.
//!
//! ```text
//! iris gen      --seed 7 --dcs 8 --fibers 16 --lambda 40 --out region.json
//! iris plan     --region region.json [--cuts 2] [--robust [--matrices SPEC]]
//! iris compare  --region region.json [--cuts 1]
//! iris siting   --region region.json
//! iris simulate --region region.json [--util 0.4] [--interval 5] [--duration 20]
//! iris simd     [--dcs 8] [--flows 1000000] [--matrices SPEC] [--workers A1,A2]
//!               [--no-cluster] [--out FILE]
//! iris testbed
//! iris chaos    --seed 7 --scenarios 10 [--dcs 6] [--cuts 1] [--out FILE]
//! iris chaos    --crash [--seed 7] [--scenarios 9] [--batches 8] [--out FILE]
//! iris serve    --region region.json [--addr HOST:PORT] [--cuts 1] [--wal-dir DIR]
//! iris wal      inspect --dir DIR
//! iris rpc      --op health [--addr HOST:PORT]
//! iris trace    dump [--addr HOST:PORT] [--max N] [--traces N]
//! iris top      [--addr HOST:PORT] [--watch SECS]
//! iris loadgen  --seed 7 --requests 2000 [--cut DUCT] [--out FILE]
//! ```
//!
//! Failures exit with the stable per-class codes of
//! [`iris_errors::IrisError::exit_code`] (2 = bad input, 5 = corrupt
//! durable state, 6 = replay failed, ...); 1 is reserved for an unknown
//! subcommand.

mod args;
mod commands;

use iris_errors::IrisError;

/// `run` outcomes `main` maps to exit codes.
enum CliError {
    /// Not a subcommand at all: conventional exit 1.
    UnknownCommand(String),
    /// A typed failure: exit with its [`IrisError::exit_code`].
    Typed(IrisError),
}

impl From<IrisError> for CliError {
    fn from(e: IrisError) -> Self {
        CliError::Typed(e)
    }
}

impl From<String> for CliError {
    fn from(detail: String) -> Self {
        CliError::Typed(IrisError::InvalidInput { detail })
    }
}

fn main() {
    // `IRIS_TRACE=0` disables the in-process flight recorder before any
    // subcommand (notably `serve` and `loadgen`) starts recording.
    iris_telemetry::trace::init_from_env();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&argv) {
        Ok(()) => 0,
        Err(CliError::UnknownCommand(msg)) => {
            eprintln!("error: {msg}");
            1
        }
        Err(CliError::Typed(e)) => {
            eprintln!("error: [{}] {e}", e.code());
            e.exit_code()
        }
    };
    std::process::exit(code);
}

/// Accepted `--options` per subcommand. `--telemetry` works everywhere:
/// after the subcommand finishes, the process-global metric registry is
/// snapshotted to the given path (Prometheus text for `.prom`/`.txt`,
/// JSON otherwise).
fn accepted_options(command: &str) -> Option<&'static [&'static str]> {
    Some(match command {
        "gen" => &[
            "seed",
            "dcs",
            "fibers",
            "lambda",
            "huts",
            "out",
            "telemetry",
        ],
        "plan" => &[
            "region",
            "cuts",
            "threads",
            "robust",
            "matrices",
            "telemetry",
        ],
        "compare" => &["region", "cuts", "threads", "telemetry"],
        "siting" => &["region", "telemetry"],
        "simulate" | "sim" => &[
            "region",
            "util",
            "interval",
            "duration",
            "workload",
            "threads",
            "out",
            "telemetry",
        ],
        "simd" => &[
            "dcs",
            "util",
            "duration",
            "flows",
            "seed",
            "epsilon",
            "workload",
            "matrices",
            "interval",
            "workers",
            "no-cluster",
            "threads",
            "out",
            "telemetry",
        ],
        "testbed" => &["telemetry"],
        "chaos" => &[
            "seed",
            "scenarios",
            "dcs",
            "cuts",
            "batches",
            "crash",
            "federation",
            "users",
            "writes",
            "threads",
            "out",
            "telemetry",
        ],
        // No --telemetry for serve: it never exits on its own; live
        // metrics are served by the MetricsSnapshot request instead.
        "serve" => &[
            "region",
            "cuts",
            "addr",
            "queue",
            "window",
            "threads",
            "shards",
            "wal-dir",
            "snapshot-every",
            "trace",
            "slow-ms",
            "region-id",
            "peers",
            "follower",
        ],
        "rpc" => &[
            "addr",
            "op",
            "a",
            "b",
            "circuits",
            "cuts",
            "max",
            "min-epoch",
            "wait",
            "telemetry",
        ],
        "top" => &["addr", "watch", "telemetry"],
        "regions" => &["addr", "telemetry"],
        "loadgen" => &[
            "addr",
            "seed",
            "requests",
            "connections",
            "cut",
            "codec",
            "pipeline",
            "rate",
            "matrices",
            "out",
            "telemetry",
        ],
        _ => return None,
    })
}

fn run(argv: &[String]) -> Result<(), CliError> {
    let Some(command) = argv.first() else {
        print_usage();
        return Ok(());
    };
    if command == "wal" {
        return run_wal(&argv[1..]);
    }
    if command == "trace" {
        return run_trace(&argv[1..]);
    }
    // `--crash`/`--federation` (chaos), `--follower` (serve),
    // `--no-cluster` (simd) and `--robust` (plan) are boolean switches;
    // everything else is strict `--key value`.
    let flags: &[&str] = match command.as_str() {
        "chaos" => &["crash", "federation"],
        "serve" => &["follower"],
        "simd" => &["no-cluster"],
        "plan" => &["robust"],
        _ => &[],
    };
    let opts = args::Options::parse_with_flags(&argv[1..], flags)?;
    if let Some(allowed) = accepted_options(command) {
        opts.ensure_known(command, allowed)?;
    }
    match command.as_str() {
        "gen" => commands::generate(&opts),
        "plan" => commands::plan(&opts),
        "compare" => commands::compare(&opts),
        "siting" => commands::siting(&opts),
        "simulate" | "sim" => commands::simulate(&opts),
        "simd" => commands::simd(&opts),
        "testbed" => commands::testbed(&opts),
        "chaos" => commands::chaos(&opts),
        "serve" => commands::serve(&opts),
        "rpc" => commands::rpc(&opts),
        "top" => commands::top(&opts),
        "regions" => commands::regions(&opts),
        "loadgen" => commands::loadgen(&opts),
        "help" | "--help" | "-h" => {
            print_usage();
            return Ok(());
        }
        other => {
            return Err(CliError::UnknownCommand(format!(
                "unknown command '{other}' (try `iris help`)"
            )))
        }
    }?;
    if let Some(path) = opts.get("telemetry") {
        write_telemetry(path)?;
    }
    Ok(())
}

/// `iris trace <verb>` dispatch (two-token, like `iris wal`).
fn run_trace(rest: &[String]) -> Result<(), CliError> {
    let Some(verb) = rest.first() else {
        return Err(CliError::UnknownCommand(
            "usage: iris trace dump [--addr HOST:PORT] [--max N] [--traces N]".to_owned(),
        ));
    };
    match verb.as_str() {
        "dump" => {
            let opts = args::Options::parse(&rest[1..])?;
            opts.ensure_known("trace dump", &["addr", "max", "traces", "telemetry"])?;
            commands::trace_dump(&opts)?;
            if let Some(path) = opts.get("telemetry") {
                write_telemetry(path)?;
            }
            Ok(())
        }
        other => Err(CliError::UnknownCommand(format!(
            "unknown command 'trace {other}' (try `iris trace dump --addr HOST:PORT`)"
        ))),
    }
}

/// `iris wal <verb>` dispatch (two-token, like `iris trace`).
fn run_wal(rest: &[String]) -> Result<(), CliError> {
    let Some(verb) = rest.first() else {
        return Err(CliError::UnknownCommand(
            "usage: iris wal inspect --dir DIR".to_owned(),
        ));
    };
    match verb.as_str() {
        "inspect" => {
            let opts = args::Options::parse(&rest[1..])?;
            opts.ensure_known("wal inspect", &["dir", "telemetry"])?;
            commands::wal_inspect(&opts)?;
            if let Some(path) = opts.get("telemetry") {
                write_telemetry(path)?;
            }
            Ok(())
        }
        other => Err(CliError::UnknownCommand(format!(
            "unknown command 'wal {other}' (try `iris wal inspect --dir DIR`)"
        ))),
    }
}

/// Snapshot the global metric registry to `path` (format dispatch lives
/// in [`iris_telemetry::Snapshot::write_to_file`], shared with the bench
/// sidecars and the service).
fn write_telemetry(path: &str) -> Result<(), String> {
    iris_telemetry::global()
        .snapshot()
        .write_to_file(path)
        .map_err(|e| format!("--telemetry: {e}"))?;
    println!("telemetry snapshot written to {path}");
    Ok(())
}

fn print_usage() {
    println!(
        "iris — regional DCI planning (SIGCOMM'20 Iris reproduction)

USAGE:
  iris gen      --seed N --dcs N [--fibers F] [--lambda L] [--huts H] --out FILE
                generate a synthetic metro region and write it as JSON
  iris plan     --region FILE [--cuts K] [--threads T]
                [--robust [--matrices SPEC]]
                plan the region as an Iris all-optical network; print the
                bill of materials and any constraint violations.
                --robust provisions for a seeded family of concrete
                traffic matrices instead of the hose envelope and prints
                the hose-vs-robust cost and shed-under-surprise
                comparison; --matrices KIND[:COUNT][@SEED] picks the
                family (diurnal | burst | hotspot, default burst:8@42)
  iris compare  --region FILE [--cuts K] [--threads T]
                plan Iris, EPS and centralized designs; print the cost and
                latency comparison table
  iris siting   --region FILE
                service-area analysis: where can the next DC go?
  iris simulate --region FILE [--util U] [--interval S] [--duration S]
                [--workload W] [--threads T] [--out FILE]
                paired Iris-vs-EPS flow-level simulation (`sim` for short);
                --out writes the result plus its reproducibility manifest
  iris simd     [--dcs N] [--util U] [--duration S] [--flows N] [--seed N]
                [--workload W] [--matrices SPEC] [--interval S]
                [--epsilon E] [--no-cluster]
                [--workers HOST:PORT,..] [--threads T] [--out FILE]
                the simulate experiment at 10^6+ flows via per-link
                decomposition: each occupied duct becomes an independent
                single-link simulation, similar ducts are clustered so
                only one representative per cluster is simulated
                (--no-cluster simulates every duct; --epsilon tunes the
                cluster tolerance), and link jobs run on an in-process
                pool or, with --workers, a fleet of iris-flowsim-worker
                processes (jobs are retried on worker death). Capacities
                are scaled so the run offers --flows flows; a small cell
                is cross-checked against the exact engine and the p50/p99
                agreement printed. --matrices KIND[:COUNT][@SEED] replaces
                the default heavy-tailed traffic matrix with a planner
                workload family's mean rates, so the simulated traffic
                matches what `iris plan --robust` provisioned for. --out
                writes a deterministic artifact that is byte-identical
                across backends, worker counts and IRIS_THREADS
  iris testbed  replay the Fig. 14 physical-layer experiment
  iris chaos    [--seed N] [--scenarios N] [--dcs D] [--cuts K]
                [--threads T] [--out FILE]
                replay seeded fault schedules (fiber cuts, stuck/misrouted
                OSS ports, relock failures, EDFA excursions, lost control
                messages) through the self-healing control loop; print
                recovery-time / dark-time / FCT-impact distributions.
                Deterministic: same seed, byte-identical output
  iris chaos    --crash [--seed N] [--scenarios N] [--dcs D] [--cuts K]
                [--batches B] [--out FILE]
                controller crash-recovery sweep: per scenario, run a
                scripted write workload against a WAL-backed control
                machine, kill it mid-sequence (clean kill / torn WAL tail
                / corrupted tail record), restart, and diff the recovered
                snapshot byte-for-byte against an uninterrupted run.
                Exits 6 (replay-failed) if any scenario diverges
  iris chaos    --federation [--seed N] [--dcs D] [--users U]
                [--writes W] [--out FILE]
                region-level chaos against a real 3-region federation:
                steady replication, a primary->follower partition (lag +
                stale-read redirects), a follower kill-and-restart (torn
                peer stream, full re-sync), and a primary kill-9 with
                promotion and write re-assertion. Exits 6 unless every
                phase converges CRC-identically with zero lost
                acknowledged writes. Deterministic: same seed,
                byte-identical output at any IRIS_THREADS
  iris serve    --region FILE [--addr HOST:PORT] [--cuts K] [--queue N]
                [--window MS] [--threads T] [--shards S] [--wal-dir DIR]
                [--snapshot-every B] [--trace on|off] [--slow-ms MS]
                [--region-id R] [--peers A1,A2] [--follower]
                run the long-lived control-plane server: length-prefixed
                frames over TCP (JSON by default, compact binary after a
                per-connection Hello); snapshot reads, coalesced writes,
                typed Overloaded backpressure. Connections are served by
                S non-blocking event-loop shards (default 0 = derive from
                the thread count). --addr HOST:0 picks a free
                port (printed on the first stdout line). Runs until killed.
                --wal-dir makes accepted writes durable: each coalesced
                batch is appended to DIR/iris.wal (fsync'd) and compacted
                into DIR/snapshot.json every B batches (default 64; 0 =
                never); on restart the server replays WAL-after-snapshot
                and republishes the pre-crash state byte-identically.
                --region-id names this instance's region; --peers lists
                follower addresses it ships acknowledged write batches
                to (resuming from each peer's acked epoch, falling back
                to a full state sync after long partitions); --follower
                starts it read-only, applying replicated batches until
                an `iris rpc --op promote` flips it to primary
  iris wal      inspect --dir DIR
                read-only dump of a WAL directory: snapshot epoch,
                per-record epochs/ops/CRCs, torn-tail diagnosis, and the
                epoch the server would recover to. Never modifies DIR
  iris rpc      --op OP [--addr HOST:PORT] [--a N --b N] [--circuits C]
                [--cuts D1,D2] [--max N]
                [--min-epoch E --wait MS]
                one request against a running server, reply as JSON; OP is
                get_plan | get_plan_at | get_topology | query_path |
                update_demand | report_fiber_cut | health | promote |
                metrics_snapshot | trace_dump. get_plan_at waits up to
                --wait ms for the server to reach epoch --min-epoch (the
                read-your-writes fence), answering a typed Timeout if it
                cannot catch up
  iris trace    dump [--addr HOST:PORT] [--max N] [--traces N]
                fetch the server's flight recorder and render each trace
                as an indented span tree with per-stage latencies
                (queue wait, coalesce, WAL append, fsync, apply, publish;
                modeled reconfiguration phases marked with `~`), plus the
                slow-request log. --traces N keeps only the N newest
                traces (default 10, 0 = all)
  iris top      [--addr HOST:PORT] [--watch SECS]
                one-shot (or repeating, with --watch) health and latency
                view of a running server: uptime, epoch, queue depth,
                WAL totals, group-commit batches and fsyncs saved,
                per-shard request/connection counters, and approximate
                per-op p50/p99 read from the server's live histograms;
                federated servers add per-region rows (role, peer acked
                epochs, lag in epochs and modeled ms, reconnects)
  iris regions  [--addr HOST:PORT[,HOST:PORT...]]
                probe every listed server and print the federation map:
                each region's role and epoch plus its replication ledger
                (peer lag in epochs/ms, reconnect counts)
  iris loadgen  [--addr HOST:PORT] [--seed N] [--requests N]
                [--connections N] [--cut D1,D2] [--codec json|binary]
                [--pipeline W] [--rate RPS] [--matrices SPEC] [--out FILE]
                seeded load against a running server, every connection
                multiplexed on one event loop. Closed loop by default
                (--pipeline keeps W requests in flight per connection);
                --rate RPS switches to an open loop with seeded
                exponential arrivals; --matrices KIND[:COUNT][@SEED]
                draws QueryPath/UpdateDemand pairs proportionally to a
                planner workload family instead of uniformly (this
                changes the artifact). Writes the seed-deterministic
                results (byte-identical across runs, codecs, pipeline
                depths and thread counts) to FILE (default
                results/service_load.json) and prints wall-clock latency
                and throughput
  iris help     this text

--threads T sets the worker count wherever a parallel failure-scenario
sweep runs (plan, compare, simulate, chaos, serve). The IRIS_THREADS
environment variable takes precedence over --threads; planner output is
bit-identical for every thread count.

Every subcommand except serve also accepts --telemetry FILE: after the
command runs, the process-wide metric registry (simulator event counts,
control-plane phase latencies, planner work counters) is snapshotted to
FILE — Prometheus text for .prom/.txt paths, JSON otherwise. A running
server exposes the same registry through the MetricsSnapshot request."
    );
}
