//! Appendix B / Fig. 15 — residual-fiber savings from hybrid
//! wavelength-switched aggregation.
//!
//! Paper shape: the hybrid heuristic reduces the residual fiber overhead
//! by roughly 50%, but the resulting cost delta is too small to justify
//! managing one more device type (§4.4, §6.1).

use iris_core::DesignStudy;
use iris_planner::residual::hybrid_aggregate;
use iris_planner::DesignGoals;

fn main() {
    let points: Vec<_> = iris_bench::sweep_points()
        .into_iter()
        .filter(|p| p.f == 16 && p.lambda == 40) // structure-only sweep
        .collect();
    let goals = DesignGoals::with_cuts(0);

    println!("# map  n_dcs  spans_before  spans_after  span_savings  dc_fiber_savings  cost_delta");
    let mut savings = Vec::new();
    let mut dc_savings = Vec::new();
    let mut cost_deltas = Vec::new();
    let mut rows = Vec::new();
    for p in &points {
        let region = iris_bench::build_region(p);
        let agg = hybrid_aggregate(&region, &goals);
        let before: u64 = agg
            .before_pairs_per_edge
            .iter()
            .map(|&x| u64::from(x))
            .sum();
        let after: u64 = agg.after_pairs_per_edge.iter().map(|&x| u64::from(x)).sum();
        // The paper's metric: residual fibers terminating at the DCs
        // (the n·(n-1) overhead itself), i.e. pairs on DC-adjacent spans.
        let g = region.map.graph();
        let dc_set: std::collections::HashSet<usize> = region.dcs.iter().copied().collect();
        let endpoint_pairs = |per_edge: &[u32]| -> u64 {
            per_edge
                .iter()
                .enumerate()
                .filter(|(e, _)| {
                    let edge = g.edge(*e);
                    dc_set.contains(&edge.u) || dc_set.contains(&edge.v)
                })
                .map(|(_, &c)| u64::from(c))
                .sum()
        };
        let dc_before = endpoint_pairs(&agg.before_pairs_per_edge);
        let dc_after = endpoint_pairs(&agg.after_pairs_per_edge);
        let dc_saving = 1.0 - dc_after as f64 / dc_before.max(1) as f64;
        let study = DesignStudy::run(&region, &goals);
        let delta = (study.iris_cost.total() - study.hybrid_cost.total()) / study.iris_cost.total();
        println!(
            "{:4}  {:5}  {before:12}  {after:11}  {:11.1}%  {:15.1}%  {:9.2}%",
            p.map_seed,
            p.n_dcs,
            agg.savings_fraction() * 100.0,
            dc_saving * 100.0,
            delta * 100.0
        );
        savings.push(agg.savings_fraction());
        dc_savings.push(dc_saving);
        cost_deltas.push(delta);
        rows.push(serde_json::json!({
            "map": p.map_seed, "n_dcs": p.n_dcs,
            "residual_spans_before": before, "residual_spans_after": after,
            "span_savings_fraction": agg.savings_fraction(),
            "dc_fiber_savings_fraction": dc_saving,
            "total_cost_delta": delta,
        }));
    }
    let mean_savings = savings.iter().sum::<f64>() / savings.len() as f64;
    let mean_dc = dc_savings.iter().sum::<f64>() / dc_savings.len() as f64;
    let mean_delta = cost_deltas.iter().sum::<f64>() / cost_deltas.len() as f64;
    println!(
        "\nmean span-weighted savings:     {:.0}%",
        mean_savings * 100.0
    );
    println!(
        "mean DC-side residual savings:  {:.0}% (paper: ~50%)",
        mean_dc * 100.0
    );
    println!(
        "mean total-cost delta:          {:.2}% (paper: small — not worth the complexity)",
        mean_delta * 100.0
    );

    iris_bench::write_results(
        "fig15_hybrid_savings",
        &serde_json::json!({
            "rows": rows,
            "mean_span_savings_fraction": mean_savings,
            "mean_dc_fiber_savings_fraction": mean_dc,
            "mean_cost_delta": mean_delta,
            "paper_claim": "hybrid halves residual fiber but barely moves total cost",
        }),
    );
}
