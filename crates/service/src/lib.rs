//! `iris-service` — the long-running regional control-plane server.
//!
//! The planner and controller crates answer one-shot questions; this
//! crate keeps a region *live*: a sharded non-blocking TCP server (std
//! only — readiness comes from the workspace's [`iris_poll`] leaf, no
//! async runtime) speaking length-prefixed frames ([`frame`]) with a
//! typed request API ([`api`]) in either of two codecs ([`codec`]).
//!
//! The serving model is the crate's point:
//!
//! * **Connections live on event-loop shards.** One acceptor hands each
//!   socket round-robin to a [`ServiceConfig::shards`]-sized pool of
//!   worker loops; each shard drives its connections through one
//!   `iris_poll::Poller` with per-connection read/write buffers.
//!   Clients may pipeline — any number of request frames in flight,
//!   replies strictly FIFO per connection.
//! * **Codecs are negotiated per connection.** Frames carry JSON until
//!   a `Hello { codec: "binary" }` switches the connection to the
//!   compact binary encoding (and back); the ack travels in the old
//!   codec, and an unknown name is a typed `InvalidInput` that leaves
//!   the connection usable.
//! * **Reads are pre-serialized snapshot reads.** Every `GetPlan` /
//!   `GetTopology` is answered from reply frames serialized once per
//!   epoch, in both codecs, when the snapshot is published — the
//!   per-request cost is a memcpy. `QueryPath` / `Health` read the same
//!   immutable `Arc<StateSnapshot>` ([`state::SnapshotCell`]); the only
//!   synchronization on the read path is an `Arc` clone.
//! * **Writes are single-threaded, coalesced, and group-committed.**
//!   `UpdateDemand` and `ReportFiberCut` flow through a bounded queue
//!   to one mutator thread, which gathers a short batch, keeps only the
//!   last update per DC pair, drives the [`iris_control::Controller`],
//!   and hands the batch to a syncer thread that fsyncs and publishes —
//!   one fsync acknowledges every batch queued behind it.
//! * **Backpressure is typed.** A full queue answers
//!   [`iris_errors::IrisError::Overloaded`] with a suggested
//!   `retry_after_ms` instead of blocking the socket; the client's
//!   retry path adds seeded decorrelated jitter on top.
//!
//! [`loadgen`] is the matching seeded load generator — the same poller
//! drives all its connections from one thread, closed-loop (optionally
//! pipelined) or open-loop (seeded Poisson arrivals via
//! `LoadgenConfig::rate`) — and it splits its report into
//! seed-deterministic results (byte-identical JSON across runs, thread
//! counts, codecs, shard counts, and pipeline depths) and wall-clock
//! measurements (printed only).
//!
//! **Durability** is opt-in via [`ServiceConfig::wal_dir`]: every
//! applied write batch is appended + fsync'd to an append-only
//! write-ahead log ([`wal`]) *before* its snapshot is published, and the
//! log is periodically compacted into a JSON snapshot. A restarted
//! server replays WAL-after-snapshot ([`recovery`]) and republishes a
//! byte-identical `Arc<StateSnapshot>` — same epoch, same allocation,
//! same paths, same `last_recovery` — as the process that crashed.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod api;
pub mod client;
pub mod codec;
pub use iris_wire::frame;
pub mod loadgen;
pub mod recovery;
pub mod server;
pub mod state;
pub mod wal;

pub use api::{Request, Response, SlowRequestInfo, TraceDumpInfo, TraceEventInfo};
pub use client::{RegionEndpoint, RegionRouter, ServiceClient};
pub use codec::Codec;
pub use frame::{
    read_frame, read_frame_traced, write_frame, write_frame_traced, FrameEvent, MAX_FRAME_LEN,
    TRACE_FLAG,
};
pub use loadgen::{run_loadgen, GeoPopulation, LoadReport, LoadgenConfig};
pub use recovery::{recover, ControlMachine, CutReply, ReplayStats};
pub use server::{serve, ServiceConfig, ServiceHandle};
pub use state::{SnapshotCell, StateSnapshot};
pub use wal::{read_log, read_snapshot, PersistedSnapshot, Salvage, Wal, WalBatch};
