//! `iris` — command-line front end for the regional DCI planner.
//!
//! ```text
//! iris gen      --seed 7 --dcs 8 --fibers 16 --lambda 40 --out region.json
//! iris plan     --region region.json [--cuts 2]
//! iris compare  --region region.json [--cuts 1]
//! iris siting   --region region.json
//! iris simulate --region region.json [--util 0.4] [--interval 5] [--duration 20]
//! iris testbed
//! ```

mod args;
mod commands;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&argv) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    };
    std::process::exit(code);
}

fn run(argv: &[String]) -> Result<(), String> {
    let Some(command) = argv.first() else {
        print_usage();
        return Ok(());
    };
    let opts = args::Options::parse(&argv[1..])?;
    match command.as_str() {
        "gen" => commands::generate(&opts),
        "plan" => commands::plan(&opts),
        "compare" => commands::compare(&opts),
        "siting" => commands::siting(&opts),
        "simulate" => commands::simulate(&opts),
        "testbed" => commands::testbed(&opts),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command '{other}' (try `iris help`)")),
    }
}

fn print_usage() {
    println!(
        "iris — regional DCI planning (SIGCOMM'20 Iris reproduction)

USAGE:
  iris gen      --seed N --dcs N [--fibers F] [--lambda L] [--huts H] --out FILE
                generate a synthetic metro region and write it as JSON
  iris plan     --region FILE [--cuts K]
                plan the region as an Iris all-optical network; print the
                bill of materials and any constraint violations
  iris compare  --region FILE [--cuts K]
                plan Iris, EPS and centralized designs; print the cost and
                latency comparison table
  iris siting   --region FILE
                service-area analysis: where can the next DC go?
  iris simulate --region FILE [--util U] [--interval S] [--duration S]
                paired Iris-vs-EPS flow-level simulation
  iris testbed  replay the Fig. 14 physical-layer experiment
  iris help     this text"
    );
}
