//! Per-scenario DC-pair shortest-path computation shared by the planning
//! stages.

use crate::goals::DesignGoals;
use iris_fibermap::Region;
use iris_netgraph::{dijkstra, shortest::path_length_km, EdgeId, NodeId};
use serde::{Deserialize, Serialize};

/// The shortest path between one DC pair in one failure scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DcPath {
    /// Index (into `region.dcs`) of the lower-numbered endpoint.
    pub a: usize,
    /// Index of the higher-numbered endpoint.
    pub b: usize,
    /// Node sequence from `a`'s site to `b`'s site.
    pub nodes: Vec<NodeId>,
    /// Edge sequence, parallel to `nodes` windows.
    pub edges: Vec<EdgeId>,
    /// Total fiber length, km (unperturbed).
    pub length_km: f64,
}

impl DcPath {
    /// In-network OSS traversals of this path: one per intermediate node
    /// (hut or transited DC). Terminal OSS/mux losses at the endpoint DCs
    /// are compensated by the DCs' own booster/pre-amplifiers (Fig. 11 of
    /// the paper), so they do not count against the in-network budgets.
    #[must_use]
    pub fn oss_traversals(&self) -> usize {
        self.nodes.len().saturating_sub(2)
    }

    /// In-network loss of the whole path with no amplification: fiber
    /// attenuation plus one OSS insertion loss per intermediate node, dB.
    #[must_use]
    pub fn unamplified_loss_db(&self) -> f64 {
        self.length_km * iris_optics::FIBER_LOSS_DB_PER_KM
            + self.oss_traversals() as f64 * iris_optics::OSS_LOSS_DB
    }

    /// Whether the path needs in-line amplification: its end-to-end loss
    /// exceeds what one terminal amplifier pair restores (TC1 generalized
    /// to include switch insertion loss).
    #[must_use]
    pub fn needs_amplification(&self) -> bool {
        self.unamplified_loss_db() > iris_optics::AMPLIFIER_GAIN_DB + 1e-9
    }

    /// Losses of the two segments created by amplifying at interior node
    /// index `at` (index into `nodes`, `1..=nodes.len()-2`): the amplifier
    /// location's own OSS traversal lands on the *prefix* side (the fiber
    /// is switched into the amplifier loopback after the OSS).
    ///
    /// # Panics
    ///
    /// Panics if `at` is not an interior index.
    #[must_use]
    pub fn split_losses_db(&self, region: &Region, at: usize) -> (f64, f64) {
        assert!(
            at >= 1 && at + 1 < self.nodes.len(),
            "amplifier must sit at an interior node"
        );
        let prefix_km = self.prefix_km(region);
        let fiber = iris_optics::FIBER_LOSS_DB_PER_KM;
        let oss = iris_optics::OSS_LOSS_DB;
        let pre = prefix_km[at] * fiber + at as f64 * oss;
        let interior_after = (self.nodes.len() - 2) - at;
        let post = (self.length_km - prefix_km[at]) * fiber + interior_after as f64 * oss;
        (pre, post)
    }

    /// The set of intermediate nodes (candidate amplifier locations).
    #[must_use]
    pub fn interior_nodes(&self) -> &[NodeId] {
        if self.nodes.len() <= 2 {
            &[]
        } else {
            &self.nodes[1..self.nodes.len() - 1]
        }
    }

    /// Cumulative km from the start to each node (len = nodes.len()).
    #[must_use]
    pub fn prefix_km(&self, region: &Region) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut acc = 0.0;
        out.push(0.0);
        for &e in &self.edges {
            acc += region.map.graph().edge(e).length_km;
            out.push(acc);
        }
        out
    }
}

/// The disabled-edge mask that removes (a) the scenario's failed ducts and
/// (b) every duct longer than the unamplified span limit, which no
/// switching technology can use point-to-point (TC1, §4.1).
#[must_use]
pub fn scenario_mask(region: &Region, goals: &DesignGoals, failed: &[EdgeId]) -> Vec<bool> {
    let g = region.map.graph();
    let mut mask = vec![false; g.edge_count()];
    for (e, edge) in g.edges().iter().enumerate() {
        if edge.length_km > goals.max_span_km {
            mask[e] = true;
        }
    }
    for &e in failed {
        mask[e] = true;
    }
    mask
}

/// All DC-pair shortest paths in the failure scenario `failed`.
///
/// Pairs that are disconnected, or whose shortest path exceeds the SLA
/// length, are returned in the second list as `(a, b)` index pairs.
#[must_use]
pub fn scenario_paths(
    region: &Region,
    goals: &DesignGoals,
    failed: &[EdgeId],
) -> (Vec<DcPath>, Vec<(usize, usize)>) {
    let g = region.map.graph();
    let mask = scenario_mask(region, goals, failed);
    let n = region.dcs.len();
    let mut paths = Vec::new();
    let mut unreachable = Vec::new();
    for a in 0..n {
        let r = dijkstra(g, region.dcs[a], &mask);
        for b in (a + 1)..n {
            let target = region.dcs[b];
            match r.path_edges(g, target) {
                Some(edges) => {
                    // path_edges succeeding means the target is reachable,
                    // but degrade to "unreachable" rather than panic if the
                    // node reconstruction ever disagrees.
                    let Some(nodes) = r.path_nodes(g, target) else {
                        unreachable.push((a, b));
                        continue;
                    };
                    let length_km = path_length_km(g, &edges);
                    if length_km > goals.sla_km + 1e-9 {
                        unreachable.push((a, b));
                    } else {
                        paths.push(DcPath {
                            a,
                            b,
                            nodes,
                            edges,
                            length_km,
                        });
                    }
                }
                None => unreachable.push((a, b)),
            }
        }
    }
    (paths, unreachable)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iris_fibermap::{synth, MetroParams, PlacementParams};

    fn region() -> Region {
        synth::place_dcs(
            synth::generate_metro(&MetroParams::default()),
            &PlacementParams::default(),
        )
    }

    #[test]
    fn nominal_scenario_reaches_all_pairs() {
        let r = region();
        let goals = DesignGoals::default();
        let (paths, unreachable) = scenario_paths(&r, &goals, &[]);
        let n = r.dcs.len();
        assert_eq!(paths.len() + unreachable.len(), n * (n - 1) / 2);
        assert!(
            unreachable.is_empty(),
            "nominal scenario should reach all pairs: {unreachable:?}"
        );
    }

    #[test]
    fn paths_respect_sla() {
        let r = region();
        let goals = DesignGoals::default();
        let (paths, _) = scenario_paths(&r, &goals, &[]);
        for p in &paths {
            assert!(p.length_km <= goals.sla_km + 1e-9);
            assert_eq!(p.nodes.len(), p.edges.len() + 1);
        }
    }

    #[test]
    fn long_edges_are_masked() {
        let r = region();
        let goals = DesignGoals::default();
        let mask = scenario_mask(&r, &goals, &[]);
        for (e, edge) in r.map.graph().edges().iter().enumerate() {
            if edge.length_km > goals.max_span_km {
                assert!(mask[e]);
            }
        }
    }

    #[test]
    fn failed_edges_are_avoided() {
        let r = region();
        let goals = DesignGoals::default();
        let (paths, _) = scenario_paths(&r, &goals, &[]);
        let victim = paths[0].edges[0];
        let (paths2, _) = scenario_paths(&r, &goals, &[victim]);
        for p in &paths2 {
            assert!(!p.edges.contains(&victim), "path uses failed duct");
        }
    }

    #[test]
    fn oss_traversal_count() {
        let p = DcPath {
            a: 0,
            b: 1,
            nodes: vec![10, 11, 12, 13],
            edges: vec![0, 1, 2],
            length_km: 30.0,
        };
        // Only the 2 intermediate nodes count as in-network traversals.
        assert_eq!(p.oss_traversals(), 2);
        assert_eq!(p.interior_nodes(), &[11, 12]);
        // 30 km * 0.25 + 2 * 1.5 dB.
        assert!((p.unamplified_loss_db() - 10.5).abs() < 1e-9);
        assert!(!p.needs_amplification());
    }

    #[test]
    fn long_path_needs_amplification() {
        let p = DcPath {
            a: 0,
            b: 1,
            nodes: vec![10, 11],
            edges: vec![0],
            length_km: 81.0,
        };
        assert!(p.needs_amplification());
        let ok = DcPath {
            length_km: 80.0,
            ..p
        };
        assert!(!ok.needs_amplification());
    }

    #[test]
    fn split_losses_partition_total() {
        let r = region();
        let goals = DesignGoals::default();
        let (paths, _) = scenario_paths(&r, &goals, &[]);
        let p = paths
            .iter()
            .find(|p| p.edges.len() >= 3)
            .expect("3-hop path");
        for at in 1..p.nodes.len() - 1 {
            let (pre, post) = p.split_losses_db(&r, at);
            assert!(
                (pre + post - p.unamplified_loss_db()).abs() < 1e-9,
                "split at {at} does not partition the loss"
            );
            assert!(pre > 0.0 && post >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "interior node")]
    fn split_at_endpoint_panics() {
        let r = region();
        let goals = DesignGoals::default();
        let (paths, _) = scenario_paths(&r, &goals, &[]);
        let p = &paths[0];
        let _ = p.split_losses_db(&r, 0);
    }

    #[test]
    fn prefix_km_accumulates() {
        let r = region();
        let goals = DesignGoals::default();
        let (paths, _) = scenario_paths(&r, &goals, &[]);
        let p = paths
            .iter()
            .find(|p| p.edges.len() >= 2)
            .expect("multi-hop path");
        let pre = p.prefix_km(&r);
        assert_eq!(pre.len(), p.nodes.len());
        assert_eq!(pre[0], 0.0);
        assert!((pre.last().unwrap() - p.length_km).abs() < 1e-9);
        for w in pre.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }
}
